//! # subthreads — sub-thread checkpointing for large speculative threads
//!
//! A production-quality Rust reproduction of Colohan, Ailamaki, Steffan and
//! Mowry, *"Tolerating Dependences Between Large Speculative Threads Via
//! Sub-Threads"* (ISCA 2006).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`trace`] — instruction traces, epochs and programs.
//! * [`cpu`] — the out-of-order core timing model.
//! * [`cache`] — the L1/L2/victim-cache memory hierarchy.
//! * [`core`] — the TLS protocol with sub-thread checkpointing and the CMP
//!   simulator (the paper's contribution).
//! * [`minidb`] — the storage engine + TPC-C workload the paper evaluates
//!   on.
//! * [`obs`] — passive event tracing, Perfetto timeline export and
//!   sampled per-run metrics for the simulator.
//!
//! # Quickstart
//!
//! ```
//! use subthreads::core::{CmpConfig, CmpSimulator, ExperimentKind};
//! use subthreads::minidb::{Tpcc, TpccConfig, Transaction};
//!
//! // Record a (scaled-down) NEW ORDER transaction as a trace program.
//! let mut tpcc = Tpcc::new(TpccConfig::test());
//! let program = tpcc.record(Transaction::NewOrder, 2);
//!
//! // Simulate it on a 4-CPU CMP with 8 sub-threads per thread.
//! let config = CmpConfig::paper_default();
//! let report = CmpSimulator::new(config).run(&program);
//! assert!(report.total_cycles > 0);
//! ```

pub use tls_cache as cache;
pub use tls_core as core;
pub use tls_cpu as cpu;
pub use tls_minidb as minidb;
pub use tls_obs as obs;
pub use tls_trace as trace;
