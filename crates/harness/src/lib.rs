//! # tls-harness — parallel experiment-execution subsystem
//!
//! The fourth subsystem of the reproduction (beside the simulator, the
//! protocol model and the workload): infrastructure for *running* the
//! evaluation quickly and reproducibly.
//!
//! - [`codec`] / [`store`] — a versioned, checksummed snapshot format
//!   for recorded trace pairs and simulation reports, cached under
//!   `traces/` and keyed by a hash of the workload configuration, so
//!   repeated suite runs skip both TPC-C recording and repeated
//!   simulation of identical (program, machine) inputs.
//! - [`runner`] — a deterministic scoped-thread job pool: results come
//!   back in submission order regardless of worker count, so every
//!   artifact is byte-identical for any `--jobs` value.
//! - [`plan`] / [`plans`] — the evaluation artifacts
//!   (figure2/figure5/figure6/table2/ablations/scalability/
//!   tuning_curve/spec_contrast/pool_pressure/scan_collision/workload)
//!   as declarative [`plan::Plan`]s over the shared runner and store.
//! - [`suite`] — the unified driver: filtering, baseline regression
//!   comparison, and `BENCH_suite.json` throughput accounting.
//! - [`eval`] — shared evaluation helpers (scales, instance counts, the
//!   paper machine, text-bar rendering).
//! - [`observe`] — observed runs behind the `suite trace` verb: a
//!   Perfetto timeline plus a metrics time series per benchmark, with a
//!   zero-drift guarantee against the unobserved (cached) report.
//! - [`workload`] — the declarative workload language: JSON specs
//!   (operation mix, Zipfian key skew, scan lengths) compiled into
//!   `(plain, tls)` trace pairs with range scans speculatively
//!   parallelized, behind the `suite workload` verb and the
//!   `scan_collision` / `workload` plans.
//! - [`sweep`] — the batched multi-seed parameter-sweep engine behind
//!   the `suite sweep` verb: seed-major grids over (spacing × contexts ×
//!   memory latency), one zero-copy map per seed, interned machine
//!   configs, deterministic JSONL row streams with crash `--resume`.

pub mod codec;
pub mod eval;
pub mod mapped;
pub mod observe;
pub mod plan;
pub mod plans;
pub mod runner;
pub mod store;
pub mod suite;
pub mod sweep;
pub mod workload;

pub use codec::{decode_pair, encode_pair, SnapshotError};
pub use eval::{breakdown_row, initials, instances, paper_machine, render_stack, Scale};
pub use mapped::{MapOutcome, Mapping, TraceView};
pub use observe::{observe_run, ObserveOutcome, ObserveRequest};
pub use plan::{all_plans, find_plan, Plan, PlanCtx, PlanOutput};
pub use runner::{capture, run_protected, FailureKind, JobFailure, JobPool, Protection};
pub use store::{HarnessStore, StoreStats, TraceKey};
pub use sweep::{run_sweep, run_sweep_verb, SweepOptions, SweepPlan, SweepPoint, SweepSpec};
pub use workload::{compile, CompiledWorkload, MixWeights, SpecError, WorkloadSpec, Zipf};
