//! The versioned, checksummed snapshot container and the binary trace
//! codec.
//!
//! Every file the harness writes under `traces/` is one *container*:
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0  | 6 | magic `TLSNAP` |
//! | 6  | 1 | payload kind (1 = trace pair, 2 = sim report) |
//! | 7  | 1 | format version (currently 1) |
//! | 8  | 8 | cache-key hash, little-endian (see [`crate::store`]) |
//! | 16 | 8 | payload length in bytes, little-endian |
//! | 24 | n | payload |
//! | 24 + n | 8 | FNV-1a-64 checksum of bytes `0 .. 24 + n` |
//!
//! The decoder verifies magic, kind, version, key hash, length and
//! checksum *before* interpreting a single payload byte, so a corrupt or
//! truncated snapshot is rejected — never misdecoded — and a format bump
//! simply invalidates old cache entries (the store falls back to
//! re-recording).
//!
//! The **trace-pair payload** (kind 1) holds the `(plain, tls)` program
//! pair of one benchmark:
//!
//! | field | encoding |
//! |---|---|
//! | program × 2 | plain first, then TLS |
//! | ├ name | u32 length + UTF-8 bytes |
//! | ├ region count | u32 |
//! | └ region | tag u8 (0 sequential, 1 parallel) |
//! | &nbsp;&nbsp; sequential | one epoch |
//! | &nbsp;&nbsp; parallel | u32 epoch count, then epochs |
//! | &nbsp;&nbsp; epoch | u32 op count + ops × 16-byte [`TraceOp::to_raw`] records |
//!
//! All integers are little-endian. The op records are validated by
//! [`TraceOp::from_raw`], so even a checksum collision cannot smuggle an
//! op the simulator would choke on.

use std::fmt;
use tls_core::experiment::BenchmarkPrograms;
use tls_trace::{Epoch, RawOpError, Region, TraceOp, TraceProgram};

/// Magic prefix of every snapshot container.
pub const MAGIC: &[u8; 6] = b"TLSNAP";
/// Current container format version.
pub const VERSION: u8 = 1;
/// Container payload kind: a recorded `(plain, tls)` trace pair.
pub const KIND_TRACE_PAIR: u8 = 1;
/// Container payload kind: a cached simulation report (JSON payload).
pub const KIND_SIM_REPORT: u8 = 2;

const HEADER_LEN: usize = 24;
const CHECKSUM_LEN: usize = 8;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Shorter than header + checksum.
    TooShort(usize),
    /// Magic bytes do not match [`MAGIC`].
    BadMagic,
    /// Container holds a different payload kind than requested.
    KindMismatch {
        /// Kind found in the container.
        found: u8,
        /// Kind the caller asked for.
        expected: u8,
    },
    /// Written by a different format version.
    VersionMismatch {
        /// Version found in the container.
        found: u8,
    },
    /// The stored cache-key hash differs from the requested key (a stale
    /// or misfiled snapshot).
    KeyMismatch {
        /// Hash found in the container.
        found: u64,
        /// Hash the caller derived from its key.
        expected: u64,
    },
    /// The declared payload length disagrees with the file size.
    LengthMismatch {
        /// Payload length declared in the header.
        declared: u64,
        /// Payload bytes actually present.
        present: u64,
    },
    /// The trailing FNV-1a checksum does not match the bytes.
    ChecksumMismatch,
    /// A 16-byte op record failed validation.
    BadOp(RawOpError),
    /// A program name was not valid UTF-8.
    BadUtf8,
    /// An unknown region tag byte.
    BadRegionTag(u8),
    /// The payload ended mid-structure.
    Truncated,
    /// The payload decoded but left unconsumed trailing bytes.
    TrailingBytes(usize),
    /// A JSON payload (sim report) failed to parse.
    BadJson(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::TooShort(n) => write!(f, "snapshot too short ({n} bytes)"),
            SnapshotError::BadMagic => write!(f, "bad magic (not a TLSNAP container)"),
            SnapshotError::KindMismatch { found, expected } => {
                write!(f, "payload kind {found} where {expected} expected")
            }
            SnapshotError::VersionMismatch { found } => {
                write!(f, "format version {found} (this build reads {VERSION})")
            }
            SnapshotError::KeyMismatch { found, expected } => {
                write!(f, "cache key {found:016x} where {expected:016x} expected")
            }
            SnapshotError::LengthMismatch { declared, present } => {
                write!(f, "declared payload {declared} bytes but {present} present")
            }
            SnapshotError::ChecksumMismatch => write!(f, "checksum mismatch"),
            SnapshotError::BadOp(e) => write!(f, "corrupt op record: {e}"),
            SnapshotError::BadUtf8 => write!(f, "program name is not UTF-8"),
            SnapshotError::BadRegionTag(t) => write!(f, "unknown region tag {t}"),
            SnapshotError::Truncated => write!(f, "payload ends mid-structure"),
            SnapshotError::TrailingBytes(n) => write!(f, "{n} unconsumed payload bytes"),
            SnapshotError::BadJson(e) => write!(f, "report payload is not valid JSON: {e}"),
        }
    }
}

impl SnapshotError {
    /// A stable machine-greppable code for this failure class, written
    /// into the quarantine reason files next to the human-readable
    /// rendering (so `traces/quarantine/` can be triaged by code even
    /// when the wording above evolves).
    pub fn code(&self) -> &'static str {
        match self {
            SnapshotError::TooShort(_) => "too-short",
            SnapshotError::BadMagic => "bad-magic",
            SnapshotError::KindMismatch { .. } => "kind-mismatch",
            SnapshotError::VersionMismatch { .. } => "version-mismatch",
            SnapshotError::KeyMismatch { .. } => "key-mismatch",
            SnapshotError::LengthMismatch { .. } => "length-mismatch",
            SnapshotError::ChecksumMismatch => "checksum-mismatch",
            SnapshotError::BadOp(_) => "bad-op",
            SnapshotError::BadUtf8 => "bad-utf8",
            SnapshotError::BadRegionTag(_) => "bad-region-tag",
            SnapshotError::Truncated => "truncated",
            SnapshotError::TrailingBytes(_) => "trailing-bytes",
            SnapshotError::BadJson(_) => "bad-json",
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<RawOpError> for SnapshotError {
    fn from(e: RawOpError) -> Self {
        SnapshotError::BadOp(e)
    }
}

/// FNV-1a 64-bit over `bytes` — the container checksum and the cache-key
/// fingerprint hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps `payload` in a checksummed container.
pub fn encode_container(kind: u8, key_hash: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(MAGIC);
    out.push(kind);
    out.push(VERSION);
    out.extend_from_slice(&key_hash.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Verifies a container's framing and returns its payload slice.
pub fn decode_container(bytes: &[u8], kind: u8, key_hash: u64) -> Result<&[u8], SnapshotError> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(SnapshotError::TooShort(bytes.len()));
    }
    if &bytes[0..6] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes[6] != kind {
        return Err(SnapshotError::KindMismatch { found: bytes[6], expected: kind });
    }
    if bytes[7] != VERSION {
        return Err(SnapshotError::VersionMismatch { found: bytes[7] });
    }
    let found_key = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let declared = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let present = (bytes.len() - HEADER_LEN - CHECKSUM_LEN) as u64;
    if declared != present {
        return Err(SnapshotError::LengthMismatch { declared, present });
    }
    let body_end = bytes.len() - CHECKSUM_LEN;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if fnv1a(&bytes[..body_end]) != stored {
        return Err(SnapshotError::ChecksumMismatch);
    }
    // Key verified after integrity so a flipped key bit reads as
    // corruption, not as somebody else's (valid) snapshot.
    if found_key != key_hash {
        return Err(SnapshotError::KeyMismatch { found: found_key, expected: key_hash });
    }
    Ok(&bytes[HEADER_LEN..body_end])
}

// ---------------------------------------------------------------------------
// Trace-pair payload.
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_epoch(out: &mut Vec<u8>, epoch: &Epoch) {
    put_u32(out, epoch.ops.len() as u32);
    for op in &epoch.ops {
        out.extend_from_slice(&op.to_raw());
    }
}

fn encode_program(out: &mut Vec<u8>, program: &TraceProgram) {
    put_u32(out, program.name.len() as u32);
    out.extend_from_slice(program.name.as_bytes());
    put_u32(out, program.regions.len() as u32);
    for region in &program.regions {
        match region {
            Region::Sequential(e) => {
                out.push(0);
                encode_epoch(out, e);
            }
            Region::Parallel(es) => {
                out.push(1);
                put_u32(out, es.len() as u32);
                for e in es {
                    encode_epoch(out, e);
                }
            }
        }
    }
}

/// Serializes one program as payload bytes (used for both snapshot
/// payloads and content-addressed simulation cache keys).
pub fn program_bytes(program: &TraceProgram) -> Vec<u8> {
    // 16 bytes per op plus a small framing overhead.
    let mut out = Vec::with_capacity(16 * program.total_ops() + 64);
    encode_program(&mut out, program);
    out
}

/// Serializes a `(plain, tls)` pair as a kind-1 payload.
pub fn encode_pair(pair: &BenchmarkPrograms) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * (pair.plain.total_ops() + pair.tls.total_ops()) + 128);
    encode_program(&mut out, &pair.plain);
    encode_program(&mut out, &pair.tls);
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn epoch(&mut self) -> Result<Epoch, SnapshotError> {
        let count = self.u32()? as usize;
        // Bound the allocation by the bytes actually present.
        if count > (self.bytes.len() - self.pos) / 16 {
            return Err(SnapshotError::Truncated);
        }
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            let raw: [u8; 16] = self.take(16)?.try_into().expect("16 bytes");
            ops.push(TraceOp::from_raw(raw)?);
        }
        Ok(Epoch::new(ops))
    }

    fn program(&mut self) -> Result<TraceProgram, SnapshotError> {
        let name_len = self.u32()? as usize;
        let name = std::str::from_utf8(self.take(name_len)?)
            .map_err(|_| SnapshotError::BadUtf8)?
            .to_string();
        let region_count = self.u32()? as usize;
        if region_count > self.bytes.len() - self.pos {
            return Err(SnapshotError::Truncated);
        }
        let mut regions = Vec::with_capacity(region_count);
        for _ in 0..region_count {
            regions.push(match self.u8()? {
                0 => Region::Sequential(self.epoch()?),
                1 => {
                    let n = self.u32()? as usize;
                    if n > self.bytes.len() - self.pos {
                        return Err(SnapshotError::Truncated);
                    }
                    let mut epochs = Vec::with_capacity(n);
                    for _ in 0..n {
                        epochs.push(self.epoch()?);
                    }
                    Region::Parallel(epochs)
                }
                tag => return Err(SnapshotError::BadRegionTag(tag)),
            });
        }
        Ok(TraceProgram::new(name, regions))
    }
}

/// Decodes a kind-1 payload back into the `(plain, tls)` pair.
pub fn decode_pair(payload: &[u8]) -> Result<BenchmarkPrograms, SnapshotError> {
    let mut r = Reader { bytes: payload, pos: 0 };
    let plain = r.program()?;
    let tls = r.program()?;
    if r.pos != payload.len() {
        return Err(SnapshotError::TrailingBytes(payload.len() - r.pos));
    }
    Ok(BenchmarkPrograms { plain, tls })
}

/// Encodes a pair as a complete container file image.
pub fn encode_pair_file(key_hash: u64, pair: &BenchmarkPrograms) -> Vec<u8> {
    encode_container(KIND_TRACE_PAIR, key_hash, &encode_pair(pair))
}

/// Decodes a container file image back into a pair, verifying framing,
/// checksum and key.
pub fn decode_pair_file(bytes: &[u8], key_hash: u64) -> Result<BenchmarkPrograms, SnapshotError> {
    decode_pair(decode_container(bytes, KIND_TRACE_PAIR, key_hash)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tls_trace::{Addr, LatchId, OpSink, Pc, ProgramBuilder};

    fn sample_pair() -> BenchmarkPrograms {
        let mut plain = ProgramBuilder::new("plain");
        plain.int_ops(Pc::new(0, 0), 10);
        plain.load(Pc::new(0, 1), Addr(0x40), 8);
        let plain = plain.finish();
        let mut tls = ProgramBuilder::new("tls");
        tls.int_ops(Pc::new(0, 2), 2);
        tls.begin_parallel();
        for i in 0..3u64 {
            tls.begin_epoch();
            tls.store(Pc::new(1, i as u16), Addr(0x100 + 8 * i), 8);
            tls.latch_acquire(Pc::new(1, 100), LatchId(4));
            tls.latch_release(Pc::new(1, 101), LatchId(4));
            tls.end_epoch();
        }
        tls.end_parallel();
        let tls = tls.finish();
        BenchmarkPrograms { plain, tls }
    }

    fn programs_equal(a: &TraceProgram, b: &TraceProgram) -> bool {
        a.name == b.name
            && a.regions.len() == b.regions.len()
            && a.iter_ops().zip(b.iter_ops()).all(|(x, y)| x == y)
            && a.total_ops() == b.total_ops()
    }

    #[test]
    fn pair_round_trips() {
        let pair = sample_pair();
        let file = encode_pair_file(0xABCD, &pair);
        let back = decode_pair_file(&file, 0xABCD).expect("decode");
        assert!(programs_equal(&pair.plain, &back.plain));
        assert!(programs_equal(&pair.tls, &back.tls));
    }

    #[test]
    fn every_flipped_byte_is_rejected_or_identical() {
        let pair = sample_pair();
        let file = encode_pair_file(7, &pair);
        for i in 0..file.len() {
            let mut bad = file.clone();
            bad[i] ^= 0x20;
            // Either the framing/checksum rejects it, or (never, for a
            // single flip with FNV over the body) it decodes — it must
            // not silently misdecode.
            assert!(decode_pair_file(&bad, 7).is_err(), "flip at byte {i} was accepted");
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let pair = sample_pair();
        let file = encode_pair_file(7, &pair);
        for len in [0, 10, 23, 24, file.len() / 2, file.len() - 1] {
            assert!(decode_pair_file(&file[..len], 7).is_err(), "truncation to {len} accepted");
        }
    }

    #[test]
    fn wrong_key_version_and_kind_are_rejected() {
        let pair = sample_pair();
        let file = encode_pair_file(7, &pair);
        assert!(matches!(
            decode_pair_file(&file, 8),
            Err(SnapshotError::KeyMismatch { found: 7, expected: 8 })
        ));
        let mut wrong_version = file.clone();
        wrong_version[7] = VERSION + 1;
        // Version is checked before the checksum, so a future-format file
        // reads as a version mismatch (then gets re-recorded), not as
        // corruption.
        assert!(matches!(
            decode_pair_file(&wrong_version, 7),
            Err(SnapshotError::VersionMismatch { .. })
        ));
        let report = encode_container(KIND_SIM_REPORT, 7, b"{}");
        assert!(matches!(
            decode_pair_file(&report, 7),
            Err(SnapshotError::KindMismatch { found: KIND_SIM_REPORT, expected: KIND_TRACE_PAIR })
        ));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a-64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
