//! The versioned, checksummed snapshot container and the binary trace
//! codec.
//!
//! Every file the harness writes under `traces/` is one *container*:
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0  | 6 | magic `TLSNAP` |
//! | 6  | 1 | payload kind (1 = trace pair, 2 = sim report) |
//! | 7  | 1 | format version (currently 2; version-1 trace pairs still decode) |
//! | 8  | 8 | cache-key hash, little-endian (see [`crate::store`]) |
//! | 16 | 8 | payload length in bytes, little-endian |
//! | 24 | n | payload |
//! | 24 + n | 8 | FNV-1a-64 checksum of bytes `0 .. 24 + n` |
//!
//! The decoder verifies magic, kind, version, key hash, length and
//! checksum *before* interpreting a single payload byte, so a corrupt or
//! truncated snapshot is rejected — never misdecoded.
//!
//! # Version-2 trace-pair payload: the zero-copy record bank
//!
//! Version 2 splits the `(plain, tls)` trace pair into a compact
//! *structure section* and an aligned *op bank*, so the 16-byte
//! [`TraceOp`] records can be served in place from a memory map (the
//! `zerocopy` `FromBytes` idiom) instead of decoded into owned buffers:
//!
//! | payload offset | size | field |
//! |---|---|---|
//! | 0 | 2 | endianness stamp [`ENDIAN_STAMP`], little-endian |
//! | 2 | 2 | record size in bytes (16), little-endian |
//! | 4 | 4 | op-bank offset within the payload, little-endian |
//! | 8 | 8 | total op records in the bank, little-endian |
//! | 16 | — | structure section (see below) |
//! | … | — | zero padding to the bank offset |
//! | bank offset | 16 × total | op records, [`TraceOp::to_raw`] layout |
//!
//! The structure section describes both programs (plain first, then TLS)
//! without inline ops — each epoch is just a record count, and records
//! are assigned to epochs left to right:
//!
//! | field | encoding |
//! |---|---|
//! | name | u32 length + UTF-8 bytes |
//! | region count | u32 |
//! | region | tag u8 (0 sequential, 1 parallel) |
//! | &nbsp;&nbsp; sequential | u32 op count |
//! | &nbsp;&nbsp; parallel | u32 epoch count, then u32 op count per epoch |
//!
//! Two invariants make the in-place read sound:
//!
//! * **Alignment** — the encoder chooses the bank offset so the bank
//!   begins at a *file* offset that is a multiple of 16; any page- (mmap)
//!   or 16- (aligned heap) aligned buffer therefore presents the records
//!   at `TraceOp`'s 8-byte alignment. A bank offset violating this is a
//!   typed [`SnapshotError::Misaligned`] rejection.
//! * **Endianness** — records are always written little-endian (the
//!   canonical [`TraceOp::to_raw`] layout), and the stamp distinguishes a
//!   container written by a native-byte-order writer on a big-endian
//!   machine ([`SnapshotError::ForeignEndian`]). Little-endian hosts map
//!   records in place; big-endian hosts fall back to the owned decoder,
//!   which parses fields explicitly and is endian-correct everywhere.
//!
//! Every record is validated (same checks as [`TraceOp::from_raw`])
//! exactly once — at decode for the owned path, at map time for the
//! zero-copy path — so even a checksum collision cannot smuggle an op
//! the simulator would choke on.
//!
//! Version-1 containers (inline op records, no bank) are still decoded
//! by the owned path; the store transparently rewrites them as version 2
//! on first touch. [`program_bytes`] keeps the version-1 single-program
//! encoding as the canonical *fingerprint* byte stream, so content
//! fingerprints — and therefore every report-cache key and artifact —
//! are identical whichever container version or read path served the
//! program.

use std::fmt;
use tls_core::experiment::BenchmarkPrograms;
use tls_trace::{Epoch, ProgramView, RawOpError, Region, RegionView, TraceOp, TraceProgram};

/// Magic prefix of every snapshot container.
pub const MAGIC: &[u8; 6] = b"TLSNAP";
/// Current container format version.
pub const VERSION: u8 = 2;
/// The previous format version (inline op records); still decoded, never
/// written.
pub const LEGACY_VERSION: u8 = 1;
/// Container payload kind: a recorded `(plain, tls)` trace pair.
pub const KIND_TRACE_PAIR: u8 = 1;
/// Container payload kind: a cached simulation report (JSON payload).
pub const KIND_SIM_REPORT: u8 = 2;
/// The byte-order stamp of a version-2 trace-pair payload. Written as a
/// little-endian `u16`; a writer that (incorrectly) used native byte
/// order on a big-endian machine produces the swapped pattern, which the
/// decoder rejects as [`SnapshotError::ForeignEndian`].
pub const ENDIAN_STAMP: u16 = 0x1EAF;

/// Container header length: magic + kind + version + key hash +
/// payload length. The payload starts at this file offset.
pub const HEADER_LEN: usize = 24;
/// Trailing FNV-1a checksum length.
pub const CHECKSUM_LEN: usize = 8;
const RECORD_LEN: usize = 16;
/// The required file-offset alignment of the op bank (a multiple of
/// `TraceOp`'s 8-byte alignment, rounded to the record size so records
/// also never straddle an alignment boundary).
pub const BANK_ALIGN: usize = 16;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Shorter than header + checksum.
    TooShort(usize),
    /// Magic bytes do not match [`MAGIC`].
    BadMagic,
    /// Container holds a different payload kind than requested.
    KindMismatch {
        /// Kind found in the container.
        found: u8,
        /// Kind the caller asked for.
        expected: u8,
    },
    /// Written by a different format version.
    VersionMismatch {
        /// Version found in the container.
        found: u8,
    },
    /// The stored cache-key hash differs from the requested key (a stale
    /// or misfiled snapshot).
    KeyMismatch {
        /// Hash found in the container.
        found: u64,
        /// Hash the caller derived from its key.
        expected: u64,
    },
    /// The declared payload length disagrees with the file size.
    LengthMismatch {
        /// Payload length declared in the header.
        declared: u64,
        /// Payload bytes actually present.
        present: u64,
    },
    /// The trailing FNV-1a checksum does not match the bytes.
    ChecksumMismatch,
    /// A 16-byte op record failed validation.
    BadOp(RawOpError),
    /// A program name was not valid UTF-8.
    BadUtf8,
    /// An unknown region tag byte.
    BadRegionTag(u8),
    /// The payload ended mid-structure.
    Truncated,
    /// The payload decoded but left unconsumed trailing bytes.
    TrailingBytes(usize),
    /// A JSON payload (sim report) failed to parse.
    BadJson(String),
    /// A version-2 payload carries a byte-swapped endianness stamp: it
    /// was written by a native-byte-order writer on a foreign-endian
    /// machine and its op bank cannot be interpreted.
    ForeignEndian {
        /// The stamp as read little-endian.
        stamp: u16,
    },
    /// A version-2 payload declares a record size other than 16.
    BadRecordSize(u16),
    /// A version-2 op bank starts at a file offset that is not a
    /// multiple of [`BANK_ALIGN`] — in-place record casts would be
    /// misaligned.
    Misaligned {
        /// The bank's byte offset within the file.
        file_offset: usize,
    },
    /// The header's total-op count disagrees with the sum of the
    /// structure section's epoch counts.
    OpCountMismatch {
        /// Count declared in the payload header.
        declared: u64,
        /// Sum of the structure section's epoch counts.
        structured: u64,
    },
    /// The gap between the structure section and the op bank holds
    /// non-zero bytes (the encoding is canonical; padding must be zero).
    BadPadding,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::TooShort(n) => write!(f, "snapshot too short ({n} bytes)"),
            SnapshotError::BadMagic => write!(f, "bad magic (not a TLSNAP container)"),
            SnapshotError::KindMismatch { found, expected } => {
                write!(f, "payload kind {found} where {expected} expected")
            }
            SnapshotError::VersionMismatch { found } => {
                write!(f, "format version {found} (this build reads {LEGACY_VERSION}-{VERSION})")
            }
            SnapshotError::KeyMismatch { found, expected } => {
                write!(f, "cache key {found:016x} where {expected:016x} expected")
            }
            SnapshotError::LengthMismatch { declared, present } => {
                write!(f, "declared payload {declared} bytes but {present} present")
            }
            SnapshotError::ChecksumMismatch => write!(f, "checksum mismatch"),
            SnapshotError::BadOp(e) => write!(f, "corrupt op record: {e}"),
            SnapshotError::BadUtf8 => write!(f, "program name is not UTF-8"),
            SnapshotError::BadRegionTag(t) => write!(f, "unknown region tag {t}"),
            SnapshotError::Truncated => write!(f, "payload ends mid-structure"),
            SnapshotError::TrailingBytes(n) => write!(f, "{n} unconsumed payload bytes"),
            SnapshotError::BadJson(e) => write!(f, "report payload is not valid JSON: {e}"),
            SnapshotError::ForeignEndian { stamp } => {
                write!(
                    f,
                    "foreign-endian payload (stamp {stamp:#06x}, expected {ENDIAN_STAMP:#06x})"
                )
            }
            SnapshotError::BadRecordSize(n) => {
                write!(f, "record size {n} (this build reads {RECORD_LEN}-byte records)")
            }
            SnapshotError::Misaligned { file_offset } => {
                write!(f, "op bank at file offset {file_offset} is not {BANK_ALIGN}-byte aligned")
            }
            SnapshotError::OpCountMismatch { declared, structured } => {
                write!(f, "header declares {declared} ops but the structure sums to {structured}")
            }
            SnapshotError::BadPadding => write!(f, "non-zero padding before the op bank"),
        }
    }
}

impl SnapshotError {
    /// A stable machine-greppable code for this failure class, written
    /// into the quarantine reason files next to the human-readable
    /// rendering (so `traces/quarantine/` can be triaged by code even
    /// when the wording above evolves).
    pub fn code(&self) -> &'static str {
        match self {
            SnapshotError::TooShort(_) => "too-short",
            SnapshotError::BadMagic => "bad-magic",
            SnapshotError::KindMismatch { .. } => "kind-mismatch",
            SnapshotError::VersionMismatch { .. } => "version-mismatch",
            SnapshotError::KeyMismatch { .. } => "key-mismatch",
            SnapshotError::LengthMismatch { .. } => "length-mismatch",
            SnapshotError::ChecksumMismatch => "checksum-mismatch",
            SnapshotError::BadOp(_) => "bad-op",
            SnapshotError::BadUtf8 => "bad-utf8",
            SnapshotError::BadRegionTag(_) => "bad-region-tag",
            SnapshotError::Truncated => "truncated",
            SnapshotError::TrailingBytes(_) => "trailing-bytes",
            SnapshotError::BadJson(_) => "bad-json",
            SnapshotError::ForeignEndian { .. } => "foreign-endian",
            SnapshotError::BadRecordSize(_) => "bad-record-size",
            SnapshotError::Misaligned { .. } => "misaligned-bank",
            SnapshotError::OpCountMismatch { .. } => "op-count-mismatch",
            SnapshotError::BadPadding => "bad-padding",
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<RawOpError> for SnapshotError {
    fn from(e: RawOpError) -> Self {
        SnapshotError::BadOp(e)
    }
}

/// A streaming FNV-1a-64 hasher: the container checksum, the cache-key
/// fingerprint hash, and the content-fingerprint stream — without ever
/// materializing the hashed bytes.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// FNV-1a 64-bit over `bytes` (one-shot form of [`Fnv`]).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut f = Fnv::new();
    f.update(bytes);
    f.finish()
}

/// Wraps `payload` in a checksummed container.
pub fn encode_container(kind: u8, key_hash: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(MAGIC);
    out.push(kind);
    out.push(VERSION);
    out.extend_from_slice(&key_hash.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Verifies a container's framing and returns its payload slice. Both
/// the current and the legacy format version are accepted — use
/// [`container_version`] to learn which payload encoding applies.
pub fn decode_container(bytes: &[u8], kind: u8, key_hash: u64) -> Result<&[u8], SnapshotError> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(SnapshotError::TooShort(bytes.len()));
    }
    if &bytes[0..6] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes[6] != kind {
        return Err(SnapshotError::KindMismatch { found: bytes[6], expected: kind });
    }
    if bytes[7] != VERSION && bytes[7] != LEGACY_VERSION {
        return Err(SnapshotError::VersionMismatch { found: bytes[7] });
    }
    let found_key = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let declared = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let present = (bytes.len() - HEADER_LEN - CHECKSUM_LEN) as u64;
    if declared != present {
        return Err(SnapshotError::LengthMismatch { declared, present });
    }
    let body_end = bytes.len() - CHECKSUM_LEN;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if fnv1a(&bytes[..body_end]) != stored {
        return Err(SnapshotError::ChecksumMismatch);
    }
    // Key verified after integrity so a flipped key bit reads as
    // corruption, not as somebody else's (valid) snapshot.
    if found_key != key_hash {
        return Err(SnapshotError::KeyMismatch { found: found_key, expected: key_hash });
    }
    Ok(&bytes[HEADER_LEN..body_end])
}

/// The format version byte of a (framing-verified) container.
pub fn container_version(bytes: &[u8]) -> u8 {
    bytes[7]
}

// ---------------------------------------------------------------------------
// Canonical fingerprint encoding (version-1 program layout).
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_epoch_v1(out: &mut Vec<u8>, ops: &[TraceOp]) {
    put_u32(out, ops.len() as u32);
    for op in ops {
        out.extend_from_slice(&op.to_raw());
    }
}

fn encode_program_v1(out: &mut Vec<u8>, view: &ProgramView<'_>) {
    put_u32(out, view.name.len() as u32);
    out.extend_from_slice(view.name.as_bytes());
    put_u32(out, view.regions.len() as u32);
    for region in &view.regions {
        match region {
            RegionView::Sequential(e) => {
                out.push(0);
                encode_epoch_v1(out, e);
            }
            RegionView::Parallel(es) => {
                out.push(1);
                put_u32(out, es.len() as u32);
                for e in es {
                    encode_epoch_v1(out, e);
                }
            }
        }
    }
}

/// Serializes one program in the canonical (version-1) byte layout —
/// the content-fingerprint stream. [`fingerprint_view`] hashes exactly
/// these bytes without materializing them.
pub fn program_bytes(program: &TraceProgram) -> Vec<u8> {
    // 16 bytes per op plus a small framing overhead.
    let mut out = Vec::with_capacity(16 * program.total_ops() + 64);
    encode_program_v1(&mut out, &program.view());
    out
}

/// Streams a view's canonical byte encoding through FNV-1a without
/// allocating: `fingerprint_view(&p.view()) == fnv1a(&program_bytes(&p))`
/// for every program, whichever read path (owned or memory-mapped)
/// produced the view. This identity is what keeps report-cache keys and
/// artifacts byte-identical across container versions.
pub fn fingerprint_view(view: &ProgramView<'_>) -> u64 {
    let mut f = Fnv::new();
    f.update(&(view.name.len() as u32).to_le_bytes());
    f.update(view.name.as_bytes());
    f.update(&(view.regions.len() as u32).to_le_bytes());
    for region in &view.regions {
        match region {
            RegionView::Sequential(e) => {
                f.update(&[0]);
                fingerprint_epoch(&mut f, e);
            }
            RegionView::Parallel(es) => {
                f.update(&[1]);
                f.update(&(es.len() as u32).to_le_bytes());
                for e in es {
                    fingerprint_epoch(&mut f, e);
                }
            }
        }
    }
    f.finish()
}

fn fingerprint_epoch(f: &mut Fnv, ops: &[TraceOp]) {
    f.update(&(ops.len() as u32).to_le_bytes());
    #[cfg(target_endian = "little")]
    {
        // In-memory layout == canonical wire layout (pinned by the
        // repr(C) assertions in tls-trace): hash the records in bulk.
        f.update(zerocopy::slice_as_bytes(ops));
    }
    #[cfg(not(target_endian = "little"))]
    {
        for op in ops {
            f.update(&op.to_raw());
        }
    }
}

// ---------------------------------------------------------------------------
// Version-2 trace-pair payload.
// ---------------------------------------------------------------------------

/// A contiguous run of records in a version-2 op bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRange {
    /// First record index.
    pub start: usize,
    /// Number of records.
    pub count: usize,
}

/// One region of a [`ProgramLayout`]: epoch extents without the ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionLayout {
    /// A sequential region's single epoch.
    Sequential(OpRange),
    /// A parallel region's epochs, in iteration order.
    Parallel(Vec<OpRange>),
}

/// The structural skeleton of one program in a version-2 payload: the
/// name plus record extents into the shared op bank. Tiny (a few dozen
/// bytes per region) regardless of trace size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramLayout {
    /// Human-readable benchmark name.
    pub name: String,
    /// The regions, in execution order.
    pub regions: Vec<RegionLayout>,
}

impl ProgramLayout {
    /// Builds a borrowed [`ProgramView`] over a casted op bank.
    pub fn view<'a>(&'a self, bank: &'a [TraceOp]) -> ProgramView<'a> {
        ProgramView {
            name: &self.name,
            regions: self
                .regions
                .iter()
                .map(|r| match r {
                    RegionLayout::Sequential(x) => {
                        RegionView::Sequential(&bank[x.start..x.start + x.count])
                    }
                    RegionLayout::Parallel(es) => RegionView::Parallel(
                        es.iter().map(|x| &bank[x.start..x.start + x.count]).collect(),
                    ),
                })
                .collect(),
        }
    }

    /// Materializes the owned program from a decoded record vector.
    fn to_program(&self, records: &[TraceOp]) -> TraceProgram {
        let regions = self
            .regions
            .iter()
            .map(|r| match r {
                RegionLayout::Sequential(x) => {
                    Region::Sequential(Epoch::new(records[x.start..x.start + x.count].to_vec()))
                }
                RegionLayout::Parallel(es) => Region::Parallel(
                    es.iter()
                        .map(|x| Epoch::new(records[x.start..x.start + x.count].to_vec()))
                        .collect(),
                ),
            })
            .collect();
        TraceProgram::new(self.name.clone(), regions)
    }
}

/// The parsed skeleton of a version-2 trace-pair payload: both program
/// layouts plus the bank geometry. Holds no ops — pair it with the
/// payload bytes (see [`PairLayout::bank`]) to read records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairLayout {
    /// The unmodified execution's skeleton.
    pub plain: ProgramLayout,
    /// The TLS-transformed execution's skeleton.
    pub tls: ProgramLayout,
    /// Byte offset of the op bank within the payload.
    pub bank_offset: usize,
    /// Total records in the bank (plain's ops first, then TLS's).
    pub total_ops: usize,
}

impl PairLayout {
    /// The raw op-bank bytes of `payload`.
    pub fn bank<'a>(&self, payload: &'a [u8]) -> &'a [u8] {
        &payload[self.bank_offset..]
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn name(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        Ok(std::str::from_utf8(self.take(len)?).map_err(|_| SnapshotError::BadUtf8)?.to_string())
    }
}

/// The smallest bank offset `>= min` that lands the bank on a
/// [`BANK_ALIGN`]-aligned *file* offset (the payload begins at file
/// offset [`HEADER_LEN`]).
fn bank_offset_for(min: usize) -> usize {
    let mut off = min;
    while !(HEADER_LEN + off).is_multiple_of(BANK_ALIGN) {
        off += 1;
    }
    off
}

fn encode_structure(out: &mut Vec<u8>, view: &ProgramView<'_>) {
    put_u32(out, view.name.len() as u32);
    out.extend_from_slice(view.name.as_bytes());
    put_u32(out, view.regions.len() as u32);
    for region in &view.regions {
        match region {
            RegionView::Sequential(e) => {
                out.push(0);
                put_u32(out, e.len() as u32);
            }
            RegionView::Parallel(es) => {
                out.push(1);
                put_u32(out, es.len() as u32);
                for e in es {
                    put_u32(out, e.len() as u32);
                }
            }
        }
    }
}

fn append_bank(out: &mut Vec<u8>, view: &ProgramView<'_>) {
    let mut push = |ops: &[TraceOp]| {
        #[cfg(target_endian = "little")]
        out.extend_from_slice(zerocopy::slice_as_bytes(ops));
        #[cfg(not(target_endian = "little"))]
        for op in ops {
            out.extend_from_slice(&op.to_raw());
        }
    };
    for region in &view.regions {
        match region {
            RegionView::Sequential(e) => push(e),
            RegionView::Parallel(es) => {
                for e in es {
                    push(e);
                }
            }
        }
    }
}

/// Serializes a `(plain, tls)` pair as a version-2 (kind-1) payload.
pub fn encode_pair(pair: &BenchmarkPrograms) -> Vec<u8> {
    encode_pair_views(&pair.plain.view(), &pair.tls.view())
}

/// As [`encode_pair`], from borrowed views (the healing path for mapped
/// snapshots needs no owned pair).
pub fn encode_pair_views(plain: &ProgramView<'_>, tls: &ProgramView<'_>) -> Vec<u8> {
    let mut structure = Vec::new();
    encode_structure(&mut structure, plain);
    encode_structure(&mut structure, tls);
    let total_ops = plain.total_ops() + tls.total_ops();
    let bank_offset = bank_offset_for(16 + structure.len());
    let mut out = Vec::with_capacity(bank_offset + RECORD_LEN * total_ops);
    out.extend_from_slice(&ENDIAN_STAMP.to_le_bytes());
    out.extend_from_slice(&(RECORD_LEN as u16).to_le_bytes());
    out.extend_from_slice(&(bank_offset as u32).to_le_bytes());
    out.extend_from_slice(&(total_ops as u64).to_le_bytes());
    out.extend_from_slice(&structure);
    out.resize(bank_offset, 0);
    append_bank(&mut out, plain);
    append_bank(&mut out, tls);
    out
}

fn parse_structure(r: &mut Reader<'_>, cursor: &mut usize) -> Result<ProgramLayout, SnapshotError> {
    let name = r.name()?;
    let region_count = r.u32()? as usize;
    // Each region costs at least 5 structure bytes; bound the allocation
    // by the bytes actually present.
    if region_count > (r.bytes.len() - r.pos) / 5 + 1 {
        return Err(SnapshotError::Truncated);
    }
    let mut regions = Vec::with_capacity(region_count);
    let range = |cursor: &mut usize, count: usize| {
        let start = *cursor;
        *cursor += count;
        OpRange { start, count }
    };
    for _ in 0..region_count {
        regions.push(match r.u8()? {
            0 => RegionLayout::Sequential(range(cursor, r.u32()? as usize)),
            1 => {
                let n = r.u32()? as usize;
                if n > (r.bytes.len() - r.pos) / 4 + 1 {
                    return Err(SnapshotError::Truncated);
                }
                let mut epochs = Vec::with_capacity(n);
                for _ in 0..n {
                    epochs.push(range(cursor, r.u32()? as usize));
                }
                RegionLayout::Parallel(epochs)
            }
            tag => return Err(SnapshotError::BadRegionTag(tag)),
        });
    }
    Ok(ProgramLayout { name, regions })
}

/// Parses and validates the skeleton of a version-2 trace-pair payload:
/// stamp, record size, bank alignment and extent, padding, and the
/// op-count identity. Does **not** validate individual records — the
/// owned decoder validates while materializing, the map path validates
/// once per map via [`validate_bank`].
pub fn parse_pair_layout(payload: &[u8]) -> Result<PairLayout, SnapshotError> {
    let mut r = Reader { bytes: payload, pos: 0 };
    let stamp = r.u16()?;
    if stamp != ENDIAN_STAMP {
        return Err(if stamp == ENDIAN_STAMP.swap_bytes() {
            SnapshotError::ForeignEndian { stamp }
        } else {
            // An unrecognizable stamp is corruption, not a byte order.
            SnapshotError::ForeignEndian { stamp }
        });
    }
    let record = r.u16()?;
    if record as usize != RECORD_LEN {
        return Err(SnapshotError::BadRecordSize(record));
    }
    let bank_offset = r.u32()? as usize;
    let declared_ops = r.u64()?;
    if bank_offset > payload.len() {
        return Err(SnapshotError::Truncated);
    }
    if !(HEADER_LEN + bank_offset).is_multiple_of(BANK_ALIGN) {
        return Err(SnapshotError::Misaligned { file_offset: HEADER_LEN + bank_offset });
    }
    let mut cursor = 0usize;
    let structure = &payload[..bank_offset];
    let mut sr = Reader { bytes: structure, pos: r.pos };
    let plain = parse_structure(&mut sr, &mut cursor)?;
    let tls = parse_structure(&mut sr, &mut cursor)?;
    if structure[sr.pos..].iter().any(|&b| b != 0) {
        return Err(SnapshotError::BadPadding);
    }
    if cursor as u64 != declared_ops {
        return Err(SnapshotError::OpCountMismatch {
            declared: declared_ops,
            structured: cursor as u64,
        });
    }
    let bank_len = payload.len() - bank_offset;
    let need = declared_ops.checked_mul(RECORD_LEN as u64).ok_or(SnapshotError::Truncated)?;
    if (bank_len as u64) < need {
        return Err(SnapshotError::Truncated);
    }
    if (bank_len as u64) > need {
        return Err(SnapshotError::TrailingBytes(bank_len - need as usize));
    }
    Ok(PairLayout { plain, tls, bank_offset, total_ops: cursor })
}

/// Validates every record of a version-2 op bank — the once-per-map
/// semantic pass that licenses serving records in place thereafter.
/// Alignment-independent: uses the bulk zerocopy cast when the bytes are
/// aligned, field-wise decoding otherwise.
pub fn validate_bank(bank: &[u8]) -> Result<(), SnapshotError> {
    #[cfg(target_endian = "little")]
    if let Ok(ops) = zerocopy::slice_from_bytes::<TraceOp>(bank) {
        for op in ops {
            op.validate()?;
        }
        return Ok(());
    }
    for raw in bank.chunks_exact(RECORD_LEN) {
        TraceOp::from_raw(raw.try_into().expect("16 bytes"))?;
    }
    Ok(())
}

/// Casts a (validated) op bank to records in place. Fails with a typed
/// error if the bytes are misaligned for `TraceOp` — the caller's buffer
/// must be [`BANK_ALIGN`]-aligned — or on a big-endian host, where the
/// in-memory layout does not match the little-endian wire records.
pub fn cast_bank(bank: &[u8]) -> Result<&[TraceOp], SnapshotError> {
    #[cfg(target_endian = "little")]
    {
        zerocopy::slice_from_bytes::<TraceOp>(bank).map_err(|e| match e {
            zerocopy::CastError::Misaligned { offset, .. } => {
                SnapshotError::Misaligned { file_offset: offset }
            }
            zerocopy::CastError::SizeMismatch { len, .. } => {
                SnapshotError::TrailingBytes(len % RECORD_LEN)
            }
        })
    }
    #[cfg(not(target_endian = "little"))]
    {
        let _ = bank;
        Err(SnapshotError::ForeignEndian { stamp: ENDIAN_STAMP.swap_bytes() })
    }
}

/// Decodes a version-2 (kind-1) payload into an owned `(plain, tls)`
/// pair, validating every record. Endian-correct on every host.
pub fn decode_pair(payload: &[u8]) -> Result<BenchmarkPrograms, SnapshotError> {
    let layout = parse_pair_layout(payload)?;
    let bank = layout.bank(payload);
    let mut records = Vec::with_capacity(layout.total_ops);
    for raw in bank.chunks_exact(RECORD_LEN) {
        records.push(TraceOp::from_raw(raw.try_into().expect("16 bytes"))?);
    }
    Ok(BenchmarkPrograms {
        plain: layout.plain.to_program(&records),
        tls: layout.tls.to_program(&records),
    })
}

// ---------------------------------------------------------------------------
// Legacy (version-1) trace-pair payload.
// ---------------------------------------------------------------------------

impl<'a> Reader<'a> {
    fn epoch_v1(&mut self) -> Result<Epoch, SnapshotError> {
        let count = self.u32()? as usize;
        // Bound the allocation by the bytes actually present.
        if count > (self.bytes.len() - self.pos) / 16 {
            return Err(SnapshotError::Truncated);
        }
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            let raw: [u8; 16] = self.take(16)?.try_into().expect("16 bytes");
            ops.push(TraceOp::from_raw(raw)?);
        }
        Ok(Epoch::new(ops))
    }

    fn program_v1(&mut self) -> Result<TraceProgram, SnapshotError> {
        let name = self.name()?;
        let region_count = self.u32()? as usize;
        if region_count > self.bytes.len() - self.pos {
            return Err(SnapshotError::Truncated);
        }
        let mut regions = Vec::with_capacity(region_count);
        for _ in 0..region_count {
            regions.push(match self.u8()? {
                0 => Region::Sequential(self.epoch_v1()?),
                1 => {
                    let n = self.u32()? as usize;
                    if n > self.bytes.len() - self.pos {
                        return Err(SnapshotError::Truncated);
                    }
                    let mut epochs = Vec::with_capacity(n);
                    for _ in 0..n {
                        epochs.push(self.epoch_v1()?);
                    }
                    Region::Parallel(epochs)
                }
                tag => return Err(SnapshotError::BadRegionTag(tag)),
            });
        }
        Ok(TraceProgram::new(name, regions))
    }
}

/// Decodes a legacy version-1 (kind-1) payload (inline op records).
pub fn decode_pair_v1(payload: &[u8]) -> Result<BenchmarkPrograms, SnapshotError> {
    let mut r = Reader { bytes: payload, pos: 0 };
    let plain = r.program_v1()?;
    let tls = r.program_v1()?;
    if r.pos != payload.len() {
        return Err(SnapshotError::TrailingBytes(payload.len() - r.pos));
    }
    Ok(BenchmarkPrograms { plain, tls })
}

// ---------------------------------------------------------------------------
// Whole-file forms.
// ---------------------------------------------------------------------------

/// Encodes a pair as a complete (version-2) container file image.
pub fn encode_pair_file(key_hash: u64, pair: &BenchmarkPrograms) -> Vec<u8> {
    encode_container(KIND_TRACE_PAIR, key_hash, &encode_pair(pair))
}

/// Decodes a container file image back into an owned pair, verifying
/// framing, checksum and key, and dispatching on the container version
/// (the current aligned-bank format or the legacy inline format).
pub fn decode_pair_file(bytes: &[u8], key_hash: u64) -> Result<BenchmarkPrograms, SnapshotError> {
    let payload = decode_container(bytes, KIND_TRACE_PAIR, key_hash)?;
    if container_version(bytes) == LEGACY_VERSION {
        decode_pair_v1(payload)
    } else {
        decode_pair(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tls_trace::{Addr, LatchId, OpSink, Pc, ProgramBuilder};

    fn sample_pair() -> BenchmarkPrograms {
        let mut plain = ProgramBuilder::new("plain");
        plain.int_ops(Pc::new(0, 0), 10);
        plain.load(Pc::new(0, 1), Addr(0x40), 8);
        let plain = plain.finish();
        let mut tls = ProgramBuilder::new("tls");
        tls.int_ops(Pc::new(0, 2), 2);
        tls.begin_parallel();
        for i in 0..3u64 {
            tls.begin_epoch();
            tls.store(Pc::new(1, i as u16), Addr(0x100 + 8 * i), 8);
            tls.latch_acquire(Pc::new(1, 100), LatchId(4));
            tls.latch_release(Pc::new(1, 101), LatchId(4));
            tls.end_epoch();
        }
        tls.end_parallel();
        let tls = tls.finish();
        BenchmarkPrograms { plain, tls }
    }

    fn programs_equal(a: &TraceProgram, b: &TraceProgram) -> bool {
        a.name == b.name
            && a.regions.len() == b.regions.len()
            && a.iter_ops().zip(b.iter_ops()).all(|(x, y)| x == y)
            && a.total_ops() == b.total_ops()
    }

    /// Encodes `pair` the legacy way (inline records, version-1 byte).
    fn encode_pair_file_v1(key_hash: u64, pair: &BenchmarkPrograms) -> Vec<u8> {
        let mut payload = Vec::new();
        let prog = |p: &TraceProgram| {
            let mut out = Vec::new();
            encode_program_v1(&mut out, &p.view());
            out
        };
        payload.extend_from_slice(&prog(&pair.plain));
        payload.extend_from_slice(&prog(&pair.tls));
        let mut out = encode_container(KIND_TRACE_PAIR, key_hash, &payload);
        out[7] = LEGACY_VERSION;
        // Re-checksum with the patched version byte.
        let body_end = out.len() - CHECKSUM_LEN;
        let sum = fnv1a(&out[..body_end]);
        out[body_end..].copy_from_slice(&sum.to_le_bytes());
        out
    }

    #[test]
    fn pair_round_trips() {
        let pair = sample_pair();
        let file = encode_pair_file(0xABCD, &pair);
        let back = decode_pair_file(&file, 0xABCD).expect("decode");
        assert!(programs_equal(&pair.plain, &back.plain));
        assert!(programs_equal(&pair.tls, &back.tls));
    }

    #[test]
    fn legacy_v1_containers_still_decode() {
        let pair = sample_pair();
        let file = encode_pair_file_v1(0xABCD, &pair);
        assert_eq!(container_version(&file), LEGACY_VERSION);
        let back = decode_pair_file(&file, 0xABCD).expect("legacy decode");
        assert!(programs_equal(&pair.plain, &back.plain));
        assert!(programs_equal(&pair.tls, &back.tls));
    }

    #[test]
    fn bank_is_file_aligned_and_layout_parses() {
        let pair = sample_pair();
        let file = encode_pair_file(9, &pair);
        let payload = decode_container(&file, KIND_TRACE_PAIR, 9).expect("framing");
        let layout = parse_pair_layout(payload).expect("layout");
        assert_eq!((HEADER_LEN + layout.bank_offset) % BANK_ALIGN, 0);
        assert_eq!(layout.total_ops, pair.plain.total_ops() + pair.tls.total_ops());
        validate_bank(layout.bank(payload)).expect("records valid");
        assert_eq!(layout.plain.name, "plain");
        assert_eq!(layout.tls.name, "tls");
    }

    #[test]
    fn fingerprints_agree_between_owned_and_view_paths() {
        let pair = sample_pair();
        for p in [&pair.plain, &pair.tls] {
            assert_eq!(fingerprint_view(&p.view()), fnv1a(&program_bytes(p)));
        }
    }

    #[test]
    fn foreign_endian_stamp_is_rejected() {
        let pair = sample_pair();
        let payload = encode_pair(&pair);
        let mut swapped = payload.clone();
        swapped[0..2].copy_from_slice(&ENDIAN_STAMP.swap_bytes().to_le_bytes());
        assert!(matches!(parse_pair_layout(&swapped), Err(SnapshotError::ForeignEndian { .. })));
    }

    #[test]
    fn misaligned_bank_offset_is_rejected() {
        let pair = sample_pair();
        let payload = encode_pair(&pair);
        let layout = parse_pair_layout(&payload).expect("layout");
        let mut bad = payload.clone();
        // Shift the declared bank offset off the alignment grid. (The
        // whole-file decoder would also catch this via the checksum;
        // the layout parser must reject it on its own.)
        bad[4..8].copy_from_slice(&((layout.bank_offset as u32) + 1).to_le_bytes());
        assert!(matches!(parse_pair_layout(&bad), Err(SnapshotError::Misaligned { .. })));
    }

    #[test]
    fn bad_record_size_is_rejected() {
        let pair = sample_pair();
        let mut payload = encode_pair(&pair);
        payload[2..4].copy_from_slice(&8u16.to_le_bytes());
        assert!(matches!(parse_pair_layout(&payload), Err(SnapshotError::BadRecordSize(8))));
    }

    #[test]
    fn op_count_mismatch_is_rejected() {
        let pair = sample_pair();
        let mut payload = encode_pair(&pair);
        let declared = u64::from_le_bytes(payload[8..16].try_into().unwrap());
        payload[8..16].copy_from_slice(&(declared + 1).to_le_bytes());
        assert!(matches!(parse_pair_layout(&payload), Err(SnapshotError::OpCountMismatch { .. })));
    }

    #[test]
    fn every_flipped_byte_is_rejected_or_identical() {
        let pair = sample_pair();
        let file = encode_pair_file(7, &pair);
        for i in 0..file.len() {
            let mut bad = file.clone();
            bad[i] ^= 0x20;
            // Either the framing/checksum rejects it, or (never, for a
            // single flip with FNV over the body) it decodes — it must
            // not silently misdecode.
            assert!(decode_pair_file(&bad, 7).is_err(), "flip at byte {i} was accepted");
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let pair = sample_pair();
        let file = encode_pair_file(7, &pair);
        for len in [0, 10, 23, 24, file.len() / 2, file.len() - 1] {
            assert!(decode_pair_file(&file[..len], 7).is_err(), "truncation to {len} accepted");
        }
    }

    #[test]
    fn wrong_key_version_and_kind_are_rejected() {
        let pair = sample_pair();
        let file = encode_pair_file(7, &pair);
        assert!(matches!(
            decode_pair_file(&file, 8),
            Err(SnapshotError::KeyMismatch { found: 7, expected: 8 })
        ));
        let mut wrong_version = file.clone();
        wrong_version[7] = VERSION + 1;
        // Version is checked before the checksum, so a future-format file
        // reads as a version mismatch (then gets re-recorded), not as
        // corruption.
        assert!(matches!(
            decode_pair_file(&wrong_version, 7),
            Err(SnapshotError::VersionMismatch { .. })
        ));
        let report = encode_container(KIND_SIM_REPORT, 7, b"{}");
        assert!(matches!(
            decode_pair_file(&report, 7),
            Err(SnapshotError::KindMismatch { found: KIND_SIM_REPORT, expected: KIND_TRACE_PAIR })
        ));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a-64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
        let mut streaming = Fnv::new();
        streaming.update(b"foo");
        streaming.update(b"bar");
        assert_eq!(streaming.finish(), 0x85944171f73967e8);
    }
}
