//! The deterministic parallel runner and the hardened job-failure path.
//!
//! [`JobPool::run`] fans a vector of independent jobs across scoped host
//! threads and returns their results **in submission order**, whatever
//! the worker count or completion interleaving. Determinism therefore
//! reduces to the jobs themselves being pure functions — which simulator
//! runs are — so `suite --jobs 8` is byte-identical to `--jobs 1`.
//!
//! Work is distributed by an atomic take-a-number counter rather than
//! pre-partitioning, so a pool never idles while one long simulation
//! (NEW ORDER 150 at paper scale dwarfs PAYMENT) monopolizes a stripe of
//! the plan.
//!
//! On top of the infallible path sits the **quarantine engine**: one
//! shared implementation of panic capture, deadline watchdogs and
//! retry-with-backoff used by every host-side runner in the workspace
//! (the suite driver's per-plan execution, [`JobPool::run_quarantined`],
//! and the chaos binary's survival cells). A failing job becomes a
//! structured [`JobFailure`] instead of tearing the process down, so a
//! long campaign completes its healthy work and reports the casualties
//! at the end.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a protected job failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The job panicked; [`JobFailure::message`] carries the payload.
    Panicked,
    /// The job ran past its deadline. Host threads cannot be killed, so
    /// the overrun is detected when the attempt eventually returns (a
    /// watchdog thread reports the overrun on stderr while it is still
    /// in flight); the late result is discarded.
    TimedOut,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FailureKind::Panicked => "panicked",
            FailureKind::TimedOut => "timed out",
        })
    }
}

/// A structured record of one quarantined job: what failed, how, with
/// what payload, and how long it ran. This is what the suite reports in
/// `BENCH_suite.json` instead of crashing.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// The job's key (a plan name, a chaos cell, …).
    pub key: String,
    /// Panic or deadline overrun.
    pub kind: FailureKind,
    /// The panic payload, or a timeout description.
    pub message: String,
    /// Wall time of the final attempt, in seconds.
    pub duration_s: f64,
    /// Attempts made (1 = failed first try with no retry budget left).
    pub attempts: u32,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} after {:.3}s (attempt {}): {}",
            self.key, self.kind, self.duration_s, self.attempts, self.message
        )
    }
}

/// Retry and deadline policy for the quarantine engine.
#[derive(Debug, Clone, Copy)]
pub struct Protection {
    /// Deadline per attempt; `None` disables the watchdog.
    pub timeout: Option<Duration>,
    /// Extra attempts after the first failure (default 1: one retry,
    /// then quarantine).
    pub retries: u32,
    /// Pause before each retry, doubling per attempt.
    pub backoff: Duration,
}

impl Default for Protection {
    fn default() -> Self {
        Protection { timeout: None, retries: 1, backoff: Duration::from_millis(50) }
    }
}

impl Protection {
    /// No watchdog, no retries: capture panics only. What
    /// [`JobPool::run_quarantined`] and the chaos cells use — their
    /// jobs are deterministic, so a retry would fail identically.
    pub fn capture_only() -> Self {
        Protection { timeout: None, retries: 0, backoff: Duration::ZERO }
    }
}

/// Renders a panic payload as text (the common `&str` / `String` cases;
/// anything else gets a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `job` once, converting a panic into a [`JobFailure`]. The shared
/// capture primitive behind every hardened runner in the workspace.
pub fn capture<T>(key: &str, job: impl FnOnce() -> T) -> Result<T, JobFailure> {
    let start = Instant::now();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)) {
        Ok(value) => Ok(value),
        Err(payload) => Err(JobFailure {
            key: key.to_string(),
            kind: FailureKind::Panicked,
            message: panic_message(payload.as_ref()),
            duration_s: start.elapsed().as_secs_f64(),
            attempts: 1,
        }),
    }
}

/// Runs `job` under the full quarantine policy: panic capture, a
/// deadline watchdog, and retry-with-backoff. Returns the first
/// successful result, or the *last* attempt's failure once the retry
/// budget is spent.
///
/// The watchdog is an observer, not an executioner: a host thread
/// cannot be killed safely, so an attempt that overruns its deadline is
/// reported on stderr while in flight and its (late) result is
/// discarded when it returns. A hung job therefore still hangs its
/// caller — but a *slow* job is quarantined instead of silently
/// poisoning a campaign's timing.
pub fn run_protected<T>(
    key: &str,
    policy: Protection,
    job: impl Fn() -> T,
) -> Result<T, JobFailure> {
    let mut failure: Option<JobFailure> = None;
    for attempt in 0..=policy.retries {
        if attempt > 0 {
            std::thread::sleep(policy.backoff * (1u32 << (attempt - 1).min(8)));
        }
        let start = Instant::now();
        let _watchdog = policy.timeout.map(|t| Watchdog::arm(key, attempt + 1, t));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&job));
        let duration_s = start.elapsed().as_secs_f64();
        let fail = match result {
            Ok(value) => match policy.timeout {
                Some(t) if start.elapsed() > t => JobFailure {
                    key: key.to_string(),
                    kind: FailureKind::TimedOut,
                    message: format!(
                        "deadline {:.3}s exceeded; late result discarded",
                        t.as_secs_f64()
                    ),
                    duration_s,
                    attempts: attempt + 1,
                },
                _ => return Ok(value),
            },
            Err(payload) => JobFailure {
                key: key.to_string(),
                kind: FailureKind::Panicked,
                message: panic_message(payload.as_ref()),
                duration_s,
                attempts: attempt + 1,
            },
        };
        eprintln!(
            "warning: job {fail}{}",
            if attempt < policy.retries { "; retrying" } else { "" }
        );
        failure = Some(fail);
    }
    Err(failure.expect("at least one attempt ran"))
}

/// Background deadline reporter for one attempt: sleeps until the
/// deadline and prints a warning if the attempt is still running.
/// Dropping it (the attempt returned) stands the thread down.
struct Watchdog {
    done: Arc<AtomicBool>,
}

impl Watchdog {
    fn arm(key: &str, attempt: u32, timeout: Duration) -> Watchdog {
        let done = Arc::new(AtomicBool::new(false));
        let flag = done.clone();
        let key = key.to_string();
        std::thread::spawn(move || {
            // Poll in slices so a finished attempt releases the thread
            // promptly instead of holding it for the full deadline.
            let deadline = Instant::now() + timeout;
            while Instant::now() < deadline {
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(25).min(timeout));
            }
            if !flag.load(Ordering::Relaxed) {
                eprintln!(
                    "warning: job {key} (attempt {attempt}) exceeded its {:.3}s deadline \
                     and is still running",
                    timeout.as_secs_f64()
                );
            }
        });
        Watchdog { done }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
    }
}

/// A keyed, re-runnable job for [`JobPool::run_quarantined`].
pub struct QuarantineJob<'env, T> {
    /// Identifies the job in failure reports.
    pub key: String,
    /// The work; `Fn` (not `FnOnce`) so the engine may retry it.
    pub job: Box<dyn Fn() -> T + Send + Sync + 'env>,
}

/// A fixed-width pool of scoped worker threads.
#[derive(Debug, Clone, Copy)]
pub struct JobPool {
    workers: usize,
}

impl JobPool {
    /// A pool of `workers` threads (0 is clamped to 1).
    pub fn new(workers: usize) -> Self {
        JobPool { workers: workers.max(1) }
    }

    /// The host's available parallelism (the `--jobs` default).
    pub fn available() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job and returns the results in submission order.
    ///
    /// A single-worker pool (or a single job) runs inline on the calling
    /// thread — the `--jobs 1` reference execution has no thread
    /// machinery at all. Panics quarantine nothing here: every job still
    /// runs (a panic in one does not discard the others' work), and
    /// afterwards a single panic is re-raised with its original payload
    /// while multiple panics are aggregated into one report naming each
    /// — never the old silent first-panic-wins.
    pub fn run<'env, T: Send>(&self, jobs: Vec<Box<dyn FnOnce() -> T + Send + 'env>>) -> Vec<T> {
        let workers = self.workers.min(jobs.len());
        let total = jobs.len();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());
        type JobSlot<'env, T> = Mutex<Option<Box<dyn FnOnce() -> T + Send + 'env>>>;
        let jobs: Vec<JobSlot<'env, T>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let work = |_worker: usize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= total {
                break;
            }
            let job = jobs[i]
                .lock()
                .expect("job slot poisoned")
                .take()
                .expect("each job taken exactly once");
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)) {
                Ok(result) => *slots[i].lock().expect("result slot poisoned") = Some(result),
                Err(p) => panics.lock().expect("panic list poisoned").push((i, p)),
            }
        };
        if workers <= 1 {
            work(0);
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers).map(|w| scope.spawn(move || work(w))).collect();
                for handle in handles {
                    // Workers capture every job panic themselves; a join
                    // error would be a bug in the pool, not in a job.
                    handle.join().expect("pool worker panicked outside a job");
                }
            });
        }
        let mut panics = panics.into_inner().expect("panic list poisoned");
        match panics.len() {
            0 => {}
            1 => std::panic::resume_unwind(panics.pop().expect("nonempty").1),
            n => {
                panics.sort_by_key(|(i, _)| *i);
                let lines: Vec<String> = panics
                    .iter()
                    .map(|(i, p)| format!("  job {i}: {}", panic_message(p.as_ref())))
                    .collect();
                panic!("{n} of {total} jobs panicked:\n{}", lines.join("\n"));
            }
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every slot filled after join")
            })
            .collect()
    }

    /// Runs every job through the quarantine engine and returns per-job
    /// `Result`s in submission order: a panicking or deadline-overrunning
    /// job becomes a [`JobFailure`] (retried per `policy` first) while
    /// its siblings complete normally. The pool itself never panics.
    pub fn run_quarantined<'env, T: Send>(
        &self,
        jobs: Vec<QuarantineJob<'env, T>>,
        policy: Protection,
    ) -> Vec<Result<T, JobFailure>> {
        let workers = self.workers.min(jobs.len());
        let total = jobs.len();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<T, JobFailure>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= total {
                break;
            }
            let result = run_protected(&jobs[i].key, policy, &jobs[i].job);
            *slots[i].lock().expect("result slot poisoned") = Some(result);
        };
        if workers <= 1 {
            work();
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers).map(|_| scope.spawn(work)).collect();
                for handle in handles {
                    handle.join().expect("quarantined worker panicked outside a job");
                }
            });
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every slot filled after join")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed<T, F: FnOnce() -> T + Send + 'static>(f: F) -> Box<dyn FnOnce() -> T + Send> {
        Box::new(f)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        for workers in [1, 2, 8, 32] {
            let pool = JobPool::new(workers);
            let jobs: Vec<_> = (0..50u64)
                .map(|i| {
                    boxed(move || {
                        // Stagger completion: later jobs finish sooner.
                        std::thread::sleep(std::time::Duration::from_micros(50 - i));
                        i * i
                    })
                })
                .collect();
            let out = pool.run(jobs);
            assert_eq!(out, (0..50u64).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single_job_vectors_work() {
        let pool = JobPool::new(8);
        assert_eq!(pool.run(Vec::<Box<dyn FnOnce() -> u32 + Send>>::new()), vec![]);
        assert_eq!(pool.run(vec![boxed(|| 7u32)]), vec![7]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(JobPool::new(0).workers(), 1);
    }

    #[test]
    fn panics_propagate() {
        let pool = JobPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8)
            .map(|i| boxed(move || if i == 5 { panic!("job 5 exploded") } else { i }))
            .collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run(jobs)));
        let payload = result.expect_err("panic must propagate");
        assert_eq!(panic_message(payload.as_ref()), "job 5 exploded", "payload preserved");
    }

    #[test]
    fn every_panic_is_reported_not_just_the_first() {
        for workers in [1, 4] {
            let pool = JobPool::new(workers);
            let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8)
                .map(|i| {
                    boxed(move || match i {
                        2 => panic!("job 2 exploded"),
                        6 => panic!("job 6 exploded"),
                        _ => i,
                    })
                })
                .collect();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run(jobs)));
            let msg = panic_message(result.expect_err("panics propagate").as_ref());
            assert!(msg.contains("job 2 exploded"), "workers={workers}: {msg}");
            assert!(msg.contains("job 6 exploded"), "workers={workers}: {msg}");
            assert!(msg.contains("2 of 8 jobs panicked"), "workers={workers}: {msg}");
        }
    }

    #[test]
    fn capture_returns_ok_or_structured_failure() {
        assert_eq!(capture("fine", || 42).expect("ok"), 42);
        let f = capture("boom", || -> u32 { panic!("kapow") }).expect_err("failure");
        assert_eq!(f.key, "boom");
        assert_eq!(f.kind, FailureKind::Panicked);
        assert_eq!(f.message, "kapow");
        assert_eq!(f.attempts, 1);
    }

    #[test]
    fn run_protected_retries_once_then_quarantines() {
        let calls = AtomicUsize::new(0);
        // Fails on the first attempt, succeeds on the retry.
        let flaky = || {
            if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            11u32
        };
        let policy = Protection { backoff: Duration::from_millis(1), ..Protection::default() };
        assert_eq!(run_protected("flaky", policy, flaky).expect("retry succeeds"), 11);
        assert_eq!(calls.load(Ordering::SeqCst), 2);

        // Always fails: the retry budget spends, then quarantine.
        let calls = AtomicUsize::new(0);
        let doomed = || -> u32 {
            calls.fetch_add(1, Ordering::SeqCst);
            panic!("permanent")
        };
        let f = run_protected("doomed", policy, doomed).expect_err("quarantined");
        assert_eq!(calls.load(Ordering::SeqCst), 2, "one retry, then give up");
        assert_eq!(f.attempts, 2);
        assert_eq!(f.message, "permanent");
    }

    #[test]
    fn run_protected_flags_deadline_overruns() {
        let policy = Protection {
            timeout: Some(Duration::from_millis(5)),
            retries: 0,
            backoff: Duration::ZERO,
        };
        let f = run_protected("slow", policy, || {
            std::thread::sleep(Duration::from_millis(30));
            1u32
        })
        .expect_err("late result is discarded");
        assert_eq!(f.kind, FailureKind::TimedOut);
        assert_eq!(f.key, "slow");

        // A fast job under the same policy is untouched.
        assert_eq!(run_protected("fast", policy, || 2u32).expect("ok"), 2);
    }

    #[test]
    fn run_quarantined_completes_healthy_jobs_around_failures() {
        for workers in [1, 4] {
            let pool = JobPool::new(workers);
            let jobs: Vec<QuarantineJob<u32>> = (0..6)
                .map(|i| QuarantineJob {
                    key: format!("job-{i}"),
                    job: Box::new(move || if i == 3 { panic!("cell {i} died") } else { i * 10 }),
                })
                .collect();
            let out = pool.run_quarantined(jobs, Protection::capture_only());
            assert_eq!(out.len(), 6);
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    let f = r.as_ref().expect_err("job 3 quarantined");
                    assert_eq!(f.key, "job-3");
                    assert_eq!(f.message, "cell 3 died");
                } else {
                    assert_eq!(*r.as_ref().expect("healthy"), i as u32 * 10, "workers={workers}");
                }
            }
        }
    }
}
