//! The deterministic parallel runner.
//!
//! [`JobPool::run`] fans a vector of independent jobs across scoped host
//! threads and returns their results **in submission order**, whatever
//! the worker count or completion interleaving. Determinism therefore
//! reduces to the jobs themselves being pure functions — which simulator
//! runs are — so `suite --jobs 8` is byte-identical to `--jobs 1`.
//!
//! Work is distributed by an atomic take-a-number counter rather than
//! pre-partitioning, so a pool never idles while one long simulation
//! (NEW ORDER 150 at paper scale dwarfs PAYMENT) monopolizes a stripe of
//! the plan.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width pool of scoped worker threads.
#[derive(Debug, Clone, Copy)]
pub struct JobPool {
    workers: usize,
}

impl JobPool {
    /// A pool of `workers` threads (0 is clamped to 1).
    pub fn new(workers: usize) -> Self {
        JobPool { workers: workers.max(1) }
    }

    /// The host's available parallelism (the `--jobs` default).
    pub fn available() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job and returns the results in submission order.
    ///
    /// A single-worker pool (or a single job) runs inline on the calling
    /// thread — the `--jobs 1` reference execution has no thread
    /// machinery at all. If a job panics, the panic is propagated to the
    /// caller after all workers stop.
    pub fn run<'env, T: Send>(&self, jobs: Vec<Box<dyn FnOnce() -> T + Send + 'env>>) -> Vec<T> {
        let workers = self.workers.min(jobs.len());
        if workers <= 1 {
            return jobs.into_iter().map(|job| job()).collect();
        }
        type JobSlot<'env, T> = Mutex<Option<Box<dyn FnOnce() -> T + Send + 'env>>>;
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let jobs: Vec<JobSlot<'env, T>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let job = jobs[i]
                            .lock()
                            .expect("job slot poisoned")
                            .take()
                            .expect("each job taken exactly once");
                        let result = job();
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    })
                })
                .collect();
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for handle in handles {
                if let Err(p) = handle.join() {
                    panic.get_or_insert(p);
                }
            }
            if let Some(p) = panic {
                std::panic::resume_unwind(p);
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every slot filled after join")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed<T, F: FnOnce() -> T + Send + 'static>(f: F) -> Box<dyn FnOnce() -> T + Send> {
        Box::new(f)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        for workers in [1, 2, 8, 32] {
            let pool = JobPool::new(workers);
            let jobs: Vec<_> = (0..50u64)
                .map(|i| {
                    boxed(move || {
                        // Stagger completion: later jobs finish sooner.
                        std::thread::sleep(std::time::Duration::from_micros(50 - i));
                        i * i
                    })
                })
                .collect();
            let out = pool.run(jobs);
            assert_eq!(out, (0..50u64).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single_job_vectors_work() {
        let pool = JobPool::new(8);
        assert_eq!(pool.run(Vec::<Box<dyn FnOnce() -> u32 + Send>>::new()), vec![]);
        assert_eq!(pool.run(vec![boxed(|| 7u32)]), vec![7]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(JobPool::new(0).workers(), 1);
    }

    #[test]
    fn panics_propagate() {
        let pool = JobPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8)
            .map(|i| boxed(move || if i == 5 { panic!("job 5 exploded") } else { i }))
            .collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run(jobs)));
        assert!(result.is_err());
    }
}
