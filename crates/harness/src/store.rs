//! The snapshot store: record-once / replay-many workload traces, plus a
//! content-addressed simulation-report cache.
//!
//! Recording a TPC-C benchmark (populate database, execute transactions,
//! capture every dynamic instruction) is pure — it depends only on the
//! [`TpccConfig`] (which embeds the workload seed and engine options),
//! the transaction and the instance count. The store exploits that in two
//! layers:
//!
//! 1. **Trace snapshots** — the recorded `(plain, tls)` pair is written
//!    once to `traces/<name>-<key>.trace` in the versioned binary format
//!    of [`crate::codec`] and replayed by every binary and test that
//!    asks for the same key. Corrupt, stale or truncated snapshots fail
//!    closed *and self-heal*: the offending file is moved to
//!    `<dir>/quarantine/` beside a reason file naming the decode
//!    failure, and the trace is re-recorded and rewritten transparently.
//! 2. **Simulation reports** — a simulation is likewise a pure function
//!    of (program bytes, machine configuration). When enabled, finished
//!    [`SimReport`]s are memoized in memory (deduplicating the many
//!    identical SEQUENTIAL/BASELINE runs shared across figures) and
//!    persisted under `traces/reports/`, so a warm-cache suite run
//!    replays timing results instead of re-simulating them.
//!
//! Both layers are transparent: a cache hit returns bit-identical data to
//! a recompute, which `tests/suite_determinism.rs` checks end to end.
//! Writes go through a temp file (fsynced) + atomic rename so neither a
//! concurrent run nor a `kill -9` mid-write can ever leave a half-written
//! TLSNAP in place of a good one.

use crate::codec::{
    self, decode_container, encode_container, fingerprint_view, fnv1a, Fnv, SnapshotError,
    KIND_SIM_REPORT,
};
use crate::mapped::{MapOutcome, TraceView};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use tls_core::experiment::{serialize_view, BenchmarkPrograms};
use tls_core::{CmpConfig, CmpSimulator, RunOptions, SimReport};
use tls_minidb::{Tpcc, TpccConfig, Transaction};
use tls_trace::{ProgramView, TraceProgram, TraceStats};

/// Identifies one recorded benchmark: everything that influences the
/// recorded trace pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceKey {
    /// Workload scale, seed and engine options.
    pub cfg: TpccConfig,
    /// The transaction (benchmark) recorded.
    pub txn: Transaction,
    /// Back-to-back instances recorded.
    pub count: usize,
}

impl TraceKey {
    /// The cache-key fingerprint: FNV-1a over the canonical JSON of every
    /// field (the JSON encoding is deterministic, so the hash is stable
    /// across runs and platforms).
    pub fn hash(&self) -> u64 {
        let mut s = String::new();
        use serde::Serialize;
        self.cfg.serialize(&mut s);
        s.push('|');
        s.push_str(self.txn.trace_name());
        s.push('|');
        s.push_str(&self.count.to_string());
        fnv1a(s.as_bytes())
    }

    /// The snapshot file name: human-greppable benchmark name plus the
    /// full key fingerprint.
    pub fn file_name(&self) -> String {
        format!("{}-{:016x}.trace", self.txn.trace_name(), self.hash())
    }
}

/// Aggregate cache counters, reported into `BENCH_suite.json`.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Trace pairs served from the in-memory map.
    pub trace_mem_hits: AtomicU64,
    /// Trace pairs decoded from a disk snapshot.
    pub trace_disk_hits: AtomicU64,
    /// Trace pairs recorded from scratch.
    pub trace_records: AtomicU64,
    /// Reports served from memory.
    pub report_mem_hits: AtomicU64,
    /// Reports decoded from disk.
    pub report_disk_hits: AtomicU64,
    /// Simulations actually executed.
    pub report_sims: AtomicU64,
    /// Undecodable snapshot files moved to `<dir>/quarantine/` (and then
    /// regenerated — each quarantine implies a record or sim above).
    pub snapshots_quarantined: AtomicU64,
    /// Buffer-pool frames evicted across every paged recording.
    pub pager_evictions: AtomicU64,
    /// Dirty pages written back to the simulated disk.
    pub pager_flushes: AtomicU64,
    /// Disk reads rejected (checksum/stale-LSN) and repaired from the
    /// logged image.
    pub pager_recovery_replays: AtomicU64,
    /// Pages recovery had to quarantine as corrupt beyond repair.
    pub pager_pages_quarantined: AtomicU64,
}

impl StoreStats {
    fn get(v: &AtomicU64) -> u64 {
        v.load(Ordering::Relaxed)
    }

    /// Snapshot of all eleven counters, in declaration order.
    pub fn snapshot(&self) -> [u64; 11] {
        [
            Self::get(&self.trace_mem_hits),
            Self::get(&self.trace_disk_hits),
            Self::get(&self.trace_records),
            Self::get(&self.report_mem_hits),
            Self::get(&self.report_disk_hits),
            Self::get(&self.report_sims),
            Self::get(&self.snapshots_quarantined),
            Self::get(&self.pager_evictions),
            Self::get(&self.pager_flushes),
            Self::get(&self.pager_recovery_replays),
            Self::get(&self.pager_pages_quarantined),
        ]
    }

    /// Folds one paged recording's buffer-pool counters into the
    /// aggregate (quarantined pages are passed separately — they come
    /// from recovery runs, not the live counters).
    pub fn record_pager(&self, c: &tls_minidb::PagerCounters, pages_quarantined: u64) {
        self.pager_evictions.fetch_add(c.evictions, Ordering::Relaxed);
        self.pager_flushes.fetch_add(c.flushes, Ordering::Relaxed);
        self.pager_recovery_replays.fetch_add(c.recovery_replays, Ordering::Relaxed);
        self.pager_pages_quarantined.fetch_add(pages_quarantined, Ordering::Relaxed);
    }
}

/// Where a [`KeyedProgram`]'s ops live.
#[derive(Debug, Clone)]
enum ProgramRepr {
    /// An owned, heap-decoded program.
    Owned(Arc<TraceProgram>),
    /// One side of a memory-mapped snapshot: the ops are served in place
    /// from the page cache, never copied.
    Mapped {
        view: Arc<TraceView>,
        /// Which program of the pair (`true` = TLS-transformed).
        tls: bool,
    },
}

/// A trace program bundled with the FNV-1a fingerprint of its canonical
/// [`codec`] encoding — backed either by an owned program or by a
/// memory-mapped snapshot (the representations are interchangeable;
/// every consumer goes through [`KeyedProgram::view`]).
///
/// Fingerprinting streams the entire (often multi-megabyte) program, so
/// it happens exactly once — when the program enters the store or is
/// wrapped by a plan — instead of on every report-cache lookup, which
/// previously re-encoded the full trace per [`HarnessStore::simulate`]
/// call just to derive its key. (It no longer materializes the encoded
/// bytes either: [`fingerprint_view`] hashes the canonical stream with
/// zero allocation.) Cloning is cheap (both representations are behind
/// `Arc`s).
#[derive(Debug, Clone)]
pub struct KeyedProgram {
    repr: ProgramRepr,
    fingerprint: u64,
}

impl KeyedProgram {
    /// Wraps `program`, computing its content fingerprint.
    pub fn new(program: TraceProgram) -> Self {
        Self::from_arc(Arc::new(program))
    }

    /// Wraps an already-shared program, computing its content fingerprint.
    pub fn from_arc(program: Arc<TraceProgram>) -> Self {
        let fingerprint = fingerprint_view(&program.view());
        KeyedProgram { repr: ProgramRepr::Owned(program), fingerprint }
    }

    /// Wraps one side of a mapped snapshot (fingerprints were computed at
    /// map time, streamed over the mapped bank).
    pub fn from_mapped(view: Arc<TraceView>, tls: bool) -> Self {
        let fingerprint = if tls { view.tls_fingerprint } else { view.plain_fingerprint };
        KeyedProgram { repr: ProgramRepr::Mapped { view, tls }, fingerprint }
    }

    /// The FNV-1a hash of the program's canonical byte encoding.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// A borrowed view of the program — the form the simulator executes.
    /// Free for both representations (slice borrows, no op copies).
    pub fn view(&self) -> ProgramView<'_> {
        match &self.repr {
            ProgramRepr::Owned(p) => p.view(),
            ProgramRepr::Mapped { view, tls } => {
                if *tls {
                    view.tls()
                } else {
                    view.plain()
                }
            }
        }
    }

    /// The program's benchmark name.
    pub fn name(&self) -> &str {
        match &self.repr {
            ProgramRepr::Owned(p) => &p.name,
            ProgramRepr::Mapped { view, tls } => {
                if *tls {
                    view.tls_name()
                } else {
                    view.plain_name()
                }
            }
        }
    }

    /// Total dynamic instructions.
    pub fn total_ops(&self) -> usize {
        self.view().total_ops()
    }

    /// Static trace statistics (Table 2 quantities).
    pub fn stats(&self) -> TraceStats {
        self.view().stats()
    }

    /// `(epochs, ops)` attributed to `module` (see
    /// [`ProgramView::epochs_of_module`]).
    pub fn epochs_of_module(&self, module: u16) -> (u64, u64) {
        self.view().epochs_of_module(module)
    }

    /// Materializes an owned copy (tests and the healing path; the hot
    /// paths never need one).
    pub fn to_program(&self) -> TraceProgram {
        match &self.repr {
            ProgramRepr::Owned(p) => (**p).clone(),
            ProgramRepr::Mapped { .. } => self.view().to_program(),
        }
    }
}

/// A benchmark's recorded `(plain, tls)` pair plus memoized derived
/// forms: the content fingerprints the report cache keys on, and the
/// serialized (every-region-sequential) variants that the SEQUENTIAL and
/// TLS-SEQ experiments execute — each computed once per store entry
/// instead of once per experiment dispatch.
#[derive(Debug)]
pub struct StoredPrograms {
    /// The unmodified execution (no TLS software transformations).
    pub plain: KeyedProgram,
    /// The TLS-transformed execution (parallel markers + overhead).
    pub tls: KeyedProgram,
    plain_serialized: OnceLock<KeyedProgram>,
    tls_serialized: OnceLock<KeyedProgram>,
}

impl StoredPrograms {
    /// Wraps a recorded pair, fingerprinting both programs.
    pub fn new(pair: BenchmarkPrograms) -> Self {
        StoredPrograms {
            plain: KeyedProgram::new(pair.plain),
            tls: KeyedProgram::new(pair.tls),
            plain_serialized: OnceLock::new(),
            tls_serialized: OnceLock::new(),
        }
    }

    /// Wraps a mapped snapshot: both programs are served in place from
    /// the shared map, zero op bytes copied.
    pub fn from_view(view: Arc<TraceView>) -> Self {
        StoredPrograms {
            plain: KeyedProgram::from_mapped(view.clone(), false),
            tls: KeyedProgram::from_mapped(view, true),
            plain_serialized: OnceLock::new(),
            tls_serialized: OnceLock::new(),
        }
    }

    /// The serialized variant (epochs concatenated onto one CPU) of the
    /// TLS or plain trace, built and fingerprinted on first use. (This
    /// one is owned by construction — serialization rewrites the region
    /// structure, so there is nothing to borrow in place.)
    pub fn serialized(&self, tls: bool) -> &KeyedProgram {
        let (cell, source) = if tls {
            (&self.tls_serialized, &self.tls)
        } else {
            (&self.plain_serialized, &self.plain)
        };
        cell.get_or_init(|| KeyedProgram::new(serialize_view(&source.view())))
    }
}

type Slot<T> = Arc<OnceLock<Arc<T>>>;

/// The process-wide snapshot store. Thread-safe; per-key initialization
/// is serialized (two threads asking for the same uncached benchmark
/// record it once), distinct keys proceed in parallel.
pub struct HarnessStore {
    dir: Option<PathBuf>,
    sim_cache: bool,
    traces: Mutex<HashMap<u64, Slot<StoredPrograms>>>,
    reports: Mutex<HashMap<u64, Slot<SimReport>>>,
    /// Cache activity counters.
    pub stats: StoreStats,
}

impl HarnessStore {
    /// A store caching under `dir` (`None` = in-memory only).
    pub fn new(dir: Option<PathBuf>, sim_cache: bool) -> Self {
        HarnessStore {
            dir,
            sim_cache,
            traces: Mutex::new(HashMap::new()),
            reports: Mutex::new(HashMap::new()),
            stats: StoreStats::default(),
        }
    }

    /// A store with no disk backing and no report memoization: every
    /// request records and simulates from scratch (used to measure the
    /// serial-equivalent baseline).
    pub fn uncached() -> Self {
        HarnessStore::new(None, false)
    }

    /// The snapshot directory, if disk caching is enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Where undecodable snapshots are set aside, if disk caching is
    /// enabled.
    pub fn quarantine_dir(&self) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join("quarantine"))
    }

    /// Self-healing path for an undecodable snapshot: the file is moved
    /// to `<dir>/quarantine/` with a `.reason.txt` beside it naming the
    /// decode failure, and the caller regenerates the data. Failure to
    /// quarantine (e.g. a read-only tree) falls back to leaving the file
    /// for the rewrite to replace — the store must heal, never abort.
    fn quarantine(&self, path: &Path, err: &SnapshotError) {
        self.stats.snapshots_quarantined.fetch_add(1, Ordering::Relaxed);
        let Some(qdir) = self.quarantine_dir() else { return };
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n.to_string(),
            None => return,
        };
        if let Err(e) = std::fs::create_dir_all(&qdir) {
            eprintln!("warning: cannot create {}: {e}", qdir.display());
            return;
        }
        let dest = qdir.join(&name);
        if let Err(e) = std::fs::rename(path, &dest) {
            eprintln!("warning: cannot quarantine {}: {e}", path.display());
            return;
        }
        let reason = format!(
            "file: {name}\ncode: {}\nreason: {err}\naction: regenerated transparently\n",
            err.code()
        );
        write_atomic(&qdir.join(format!("{name}.reason.txt")), reason.as_bytes());
        eprintln!("warning: quarantined snapshot {} ({err}); regenerating", dest.display());
    }

    fn slot<T>(map: &Mutex<HashMap<u64, Slot<T>>>, key: u64) -> Slot<T> {
        map.lock().expect("store map poisoned").entry(key).or_default().clone()
    }

    /// The recorded `(plain, tls)` pair for `key`: from memory, else
    /// served in place from a memory-mapped disk snapshot, else recorded
    /// (and persisted in the mappable format).
    ///
    /// A snapshot in the legacy inline format still decodes (owned) and
    /// is transparently rewritten as version 2, so the *next* open maps;
    /// a corrupt snapshot is quarantined and re-recorded as before.
    pub fn programs(&self, key: &TraceKey) -> Arc<StoredPrograms> {
        let hash = key.hash();
        let slot = Self::slot(&self.traces, hash);
        if let Some(hit) = slot.get() {
            self.stats.trace_mem_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        slot.get_or_init(|| {
            let path = self.dir.as_ref().map(|d| d.join(key.file_name()));
            if let Some(path) = &path {
                match TraceView::open(path, hash) {
                    MapOutcome::Mapped(view) => {
                        self.stats.trace_disk_hits.fetch_add(1, Ordering::Relaxed);
                        return Arc::new(StoredPrograms::from_view(Arc::new(*view)));
                    }
                    MapOutcome::Legacy(pair) => {
                        // Upgrade in place so the next open maps; the
                        // fingerprint encoding is version-independent,
                        // so downstream artifacts are unchanged.
                        self.stats.trace_disk_hits.fetch_add(1, Ordering::Relaxed);
                        write_atomic(path, &codec::encode_pair_file(hash, &pair));
                        return Arc::new(StoredPrograms::new(*pair));
                    }
                    MapOutcome::Unsupported(pair) => {
                        // Decoded owned (big-endian host); the snapshot
                        // bytes are fine — leave them be.
                        self.stats.trace_disk_hits.fetch_add(1, Ordering::Relaxed);
                        return Arc::new(StoredPrograms::new(*pair));
                    }
                    MapOutcome::Bad(e) => self.quarantine(path, &e),
                    MapOutcome::Io(e) => {
                        eprintln!("warning: cannot read {}: {e}", path.display());
                    }
                    MapOutcome::Missing => {}
                }
            }
            self.stats.trace_records.fetch_add(1, Ordering::Relaxed);
            let (plain, tls) = Tpcc::record_pair(&key.cfg, key.txn, key.count);
            let pair = BenchmarkPrograms { plain, tls };
            if let Some(path) = &path {
                write_atomic(path, &codec::encode_pair_file(hash, &pair));
                // Serve the freshly written snapshot in place too: the
                // recording already cost seconds, and mapping now frees
                // the owned copy for the rest of the run.
                if let MapOutcome::Mapped(view) = TraceView::open(path, hash) {
                    return Arc::new(StoredPrograms::from_view(Arc::new(*view)));
                }
            }
            Arc::new(StoredPrograms::new(pair))
        })
        .clone()
    }

    /// Runs `program` on the machine `cfg`, memoizing by content: the key
    /// combines the program's memoized content fingerprint with the full
    /// machine configuration, so any change to either re-simulates.
    pub fn simulate(&self, program: &KeyedProgram, cfg: &CmpConfig) -> Arc<SimReport> {
        if !self.sim_cache {
            self.stats.report_sims.fetch_add(1, Ordering::Relaxed);
            return Arc::new(CmpSimulator::new(*cfg).run_view(
                &program.view(),
                RunOptions::checked_default(),
                None,
            ));
        }
        let mut cfg_json = String::new();
        {
            use serde::Serialize;
            cfg.serialize(&mut cfg_json);
        }
        self.simulate_keyed(program, cfg, &cfg_json)
    }

    /// As [`HarnessStore::simulate`], with the machine configuration's
    /// canonical JSON supplied by the caller — the sweep engine interns
    /// each grid point's JSON once and reuses it across every seed,
    /// instead of re-serializing the config per simulation. The cache key
    /// streams through FNV (no intermediate key buffer).
    pub fn simulate_keyed(
        &self,
        program: &KeyedProgram,
        cfg: &CmpConfig,
        cfg_json: &str,
    ) -> Arc<SimReport> {
        if !self.sim_cache {
            self.stats.report_sims.fetch_add(1, Ordering::Relaxed);
            return Arc::new(CmpSimulator::new(*cfg).run_view(
                &program.view(),
                RunOptions::checked_default(),
                None,
            ));
        }
        let mut key = Fnv::new();
        key.update(&program.fingerprint().to_le_bytes());
        key.update(cfg_json.as_bytes());
        let hash = key.finish();
        let slot = Self::slot(&self.reports, hash);
        if let Some(hit) = slot.get() {
            self.stats.report_mem_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        slot.get_or_init(|| {
            let path =
                self.dir.as_ref().map(|d| d.join("reports").join(format!("{hash:016x}.rpt")));
            if let Some(path) = &path {
                if let Ok(bytes) = std::fs::read(path) {
                    match decode_report(&bytes, hash) {
                        Ok(report) => {
                            self.stats.report_disk_hits.fetch_add(1, Ordering::Relaxed);
                            return Arc::new(report);
                        }
                        Err(e) => self.quarantine(path, &e),
                    }
                }
            }
            self.stats.report_sims.fetch_add(1, Ordering::Relaxed);
            let report = CmpSimulator::new(*cfg).run_view(
                &program.view(),
                RunOptions::checked_default(),
                None,
            );
            if let Some(path) = &path {
                let json = serde_json::to_string(&report).expect("serialize report");
                write_atomic(path, &encode_container(KIND_SIM_REPORT, hash, json.as_bytes()));
            }
            Arc::new(report)
        })
        .clone()
    }
}

fn decode_report(bytes: &[u8], hash: u64) -> Result<SimReport, SnapshotError> {
    let payload = decode_container(bytes, KIND_SIM_REPORT, hash)?;
    let json = std::str::from_utf8(payload).map_err(|_| SnapshotError::BadUtf8)?;
    serde_json::from_str(json).map_err(|e| SnapshotError::BadJson(e.to_string()))
}

/// Writes `bytes` to `path` via a unique temp file, an fsync, and an
/// atomic rename, creating parent directories. A crash or `kill -9` at
/// any point leaves either the old file or the complete new one — never
/// a torn TLSNAP — and the fsync-before-rename ensures the renamed file
/// has its contents on disk, not just its directory entry. Failures warn
/// and leave the cache cold — the snapshot store is an accelerator,
/// never a correctness dependency.
fn write_atomic(path: &Path, bytes: &[u8]) {
    let Some(parent) = path.parent() else { return };
    if let Err(e) = std::fs::create_dir_all(parent) {
        eprintln!("warning: cannot create {}: {e}", parent.display());
        return;
    }
    let tmp = parent.join(format!(
        ".{}.tmp-{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("snapshot"),
        std::process::id()
    ));
    let synced = std::fs::File::create(&tmp).and_then(|mut f| {
        use std::io::Write;
        f.write_all(bytes)?;
        f.sync_all()
    });
    if let Err(e) = synced {
        eprintln!("warning: cannot write {}: {e}", tmp.display());
        let _ = std::fs::remove_file(&tmp);
        return;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        eprintln!("warning: cannot publish {}: {e}", path.display());
        let _ = std::fs::remove_file(&tmp);
        return;
    }
    // Persist the directory entry too (best-effort; not all platforms
    // allow opening a directory for sync).
    if let Ok(d) = std::fs::File::open(parent) {
        let _ = d.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Scale;

    fn key() -> TraceKey {
        TraceKey { cfg: Scale::Test.tpcc(), txn: Transaction::Payment, count: 1 }
    }

    #[test]
    fn key_hash_is_stable_and_sensitive() {
        let k = key();
        assert_eq!(k.hash(), k.hash());
        let mut other = key();
        other.count = 2;
        assert_ne!(k.hash(), other.hash());
        let mut reseeded = key();
        reseeded.cfg.seed ^= 1;
        assert_ne!(k.hash(), reseeded.hash());
    }

    #[test]
    fn memory_store_records_once() {
        let store = HarnessStore::new(None, true);
        let a = store.programs(&key());
        let b = store.programs(&key());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.stats.snapshot()[2], 1, "one record");
        assert_eq!(store.stats.snapshot()[0], 1, "one memory hit");
    }

    #[test]
    fn disk_snapshot_round_trips_through_a_second_store() {
        let dir = std::env::temp_dir().join(format!("tls-harness-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cold = HarnessStore::new(Some(dir.clone()), true);
        let a = cold.programs(&key());
        assert_eq!(cold.stats.snapshot()[2], 1);
        let warm = HarnessStore::new(Some(dir.clone()), true);
        let b = warm.programs(&key());
        assert_eq!(warm.stats.snapshot()[1], 1, "served from disk");
        assert_eq!(warm.stats.snapshot()[2], 0, "no re-record");
        assert_eq!(a.tls.total_ops(), b.tls.total_ops());
        assert_eq!(a.tls.fingerprint(), b.tls.fingerprint(), "same content fingerprint");
        assert_eq!(
            crate::codec::program_bytes(&a.tls.to_program()),
            crate::codec::program_bytes(&b.tls.to_program()),
            "decoded trace is bit-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_and_regenerated() {
        let dir = std::env::temp_dir().join(format!("tls-harness-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cold = HarnessStore::new(Some(dir.clone()), true);
        cold.programs(&key());
        let path = dir.join(key().file_name());
        let mut bytes = std::fs::read(&path).expect("snapshot written");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite");
        let warm = HarnessStore::new(Some(dir.clone()), true);
        let b = warm.programs(&key());
        assert_eq!(warm.stats.snapshot()[2], 1, "re-recorded after corruption");
        assert_eq!(warm.stats.snapshot()[6], 1, "corruption was quarantined");
        assert!(b.tls.total_ops() > 0);

        // The corrupt bytes were set aside with a reason file, and the
        // snapshot in place is the regenerated (decodable) one.
        let qdir = warm.quarantine_dir().expect("disk-backed store");
        let qfile = qdir.join(key().file_name());
        assert_eq!(std::fs::read(&qfile).expect("quarantined bytes"), bytes);
        let reason =
            std::fs::read_to_string(qdir.join(format!("{}.reason.txt", key().file_name())))
                .expect("reason file");
        assert!(reason.contains("code: checksum-mismatch"), "{reason}");
        let healed = std::fs::read(&path).expect("regenerated snapshot");
        assert!(codec::decode_pair_file(&healed, key().hash()).is_ok());

        // A third store sees only the healed snapshot: no re-record, no
        // new quarantine.
        let again = HarnessStore::new(Some(dir.clone()), true);
        again.programs(&key());
        assert_eq!(again.stats.snapshot()[1], 1, "healed snapshot served from disk");
        assert_eq!(again.stats.snapshot()[6], 0, "nothing left to quarantine");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulation_cache_is_transparent() {
        let cached = HarnessStore::new(None, true);
        let raw = HarnessStore::uncached();
        let pair = cached.programs(&key());
        let cfg = crate::eval::paper_machine();
        let a = cached.simulate(&pair.tls, &cfg);
        let b = cached.simulate(&pair.tls, &cfg);
        assert!(Arc::ptr_eq(&a, &b), "second simulate is a memo hit");
        let c = raw.simulate(&pair.tls, &cfg);
        assert_eq!(a.total_cycles, c.total_cycles);
        assert_eq!(a.breakdown, c.breakdown);
        assert_eq!(a.violations, c.violations);
    }
}
