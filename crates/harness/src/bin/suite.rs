//! The unified evaluation driver: every figure/table/study of the
//! reproduction as one parallel, cached, regression-checked run.
//!
//! Usage: `cargo run --release -p tls-harness --bin suite -- [options]`
//! (see `--help` for the option list).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        std::process::exit(tls_harness::suite::run_trace_verb(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("workload") {
        std::process::exit(tls_harness::suite::run_workload_verb(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("sweep") {
        std::process::exit(tls_harness::sweep::run_sweep_verb(&args[1..]));
    }
    let opts = match tls_harness::suite::SuiteOptions::parse(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    std::process::exit(tls_harness::suite::run_suite(&opts));
}
