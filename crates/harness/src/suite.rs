//! The unified suite driver behind the `suite` binary.
//!
//! Runs any subset of the evaluation plans through the parallel runner
//! and the snapshot store, writes `results/<plan>.{json,txt}`, optionally
//! compares the JSON artifacts against a previous `results/` tree
//! (failing on cycle-count drift), and records per-plan wall time plus
//! simulated-cycles-per-host-second throughput in `BENCH_suite.json`.

use crate::eval::{paper_machine, Scale};
use crate::plan::{all_plans, Plan, PlanCtx, PlanOutput};
use crate::runner::{self, JobPool, Protection};
use crate::store::HarnessStore;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use tls_minidb::Transaction;

/// Everything `suite` accepts on its command line.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Workload scale (`--scale paper|test`).
    pub scale: Scale,
    /// Worker threads (`--jobs N`, default = available parallelism).
    pub jobs: usize,
    /// Comma-separated plan-name substrings (`--filter fig,table2`).
    pub filter: Option<String>,
    /// Artifact output directory (`--out`, default `results`).
    pub out_dir: PathBuf,
    /// Snapshot cache directory (`--traces`, default `traces`); `None`
    /// after `--no-cache`.
    pub trace_dir: Option<PathBuf>,
    /// Previous results tree to regression-compare against (`--baseline`).
    pub baseline: Option<PathBuf>,
    /// Where to write the timing report (`--bench`, default
    /// `BENCH_suite.json`).
    pub bench_path: PathBuf,
    /// Measure the uncached single-worker equivalent of every plan
    /// (`--compare-serial` / `--no-compare-serial`; default: on at test
    /// scale, off at paper scale).
    pub compare_serial: Option<bool>,
    /// Suppress the plans' human-readable tables on stdout (`--quiet`).
    pub quiet: bool,
    /// List plans and exit (`--list`).
    pub list: bool,
    /// Skip plans already recorded as completed in the out-dir's run
    /// manifest (`--resume`) — the crash-recovery path.
    pub resume: bool,
    /// Per-plan deadline in seconds (`--job-timeout SECS`); an
    /// overrunning plan is retried once, then quarantined.
    pub job_timeout: Option<f64>,
    /// Test hook: force the named plan to panic (`--force-panic PLAN`),
    /// exercising the quarantine path end to end.
    pub force_panic: Option<String>,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            scale: Scale::Paper,
            jobs: JobPool::available(),
            filter: None,
            out_dir: PathBuf::from("results"),
            trace_dir: Some(PathBuf::from("traces")),
            baseline: None,
            bench_path: PathBuf::from("BENCH_suite.json"),
            compare_serial: None,
            quiet: false,
            list: false,
            resume: false,
            job_timeout: None,
            force_panic: None,
        }
    }
}

pub const USAGE: &str = "\
usage: suite [options]
       suite trace <benchmark> [--scale paper|test] [--out DIR]
                   [--traces DIR | --no-cache]
       suite workload <spec.json> [--scale paper|test] [--jobs N]
                   [--out DIR] [--traces DIR | --no-cache]
       suite sweep <grid.json> [--scale paper|test] [--jobs N]
                   [--filter KEYS] [--out DIR] [--traces DIR | --no-cache]
                   [--resume] [--bench PATH] [--baseline-sample N] [--quiet]
  --scale paper|test     workload scale (default: paper)
  --jobs N               worker threads (default: available cores)
  --filter A,B           run only plans whose name contains A or B
  --out DIR              artifact directory (default: results)
  --traces DIR           snapshot cache directory (default: traces)
  --no-cache             disable the snapshot/report cache entirely
  --baseline DIR         compare artifacts against a previous results tree;
                         exit 1 on cycle-count drift
  --bench PATH           timing report (default: BENCH_suite.json)
  --compare-serial       also time the uncached 1-worker equivalent
  --no-compare-serial    skip that measurement (default at paper scale)
  --quiet                do not print the plans' tables to stdout
  --list                 list available plans and exit
  --resume               skip plans already completed per the out-dir's
                         .run_manifest.jsonl (crash/interrupt recovery);
                         for sweep: keep the row file's valid prefix and
                         run only the remaining grid points
  --baseline-sample N    (sweep) points to time one-simulation-per-job
                         for the speedup comparison (default: 8)
  --job-timeout SECS     per-plan deadline; an overrunning plan is
                         retried once, then quarantined
  --force-panic PLAN     test hook: make the named plan panic, to
                         exercise the quarantine path
";

impl SuiteOptions {
    /// Parses a `suite` command line.
    pub fn parse(args: &[String]) -> Result<SuiteOptions, String> {
        let mut opts = SuiteOptions::default();
        let mut it = args.iter().peekable();
        let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                     flag: &str|
         -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    opts.scale = match value(&mut it, "--scale")?.as_str() {
                        "paper" => Scale::Paper,
                        "test" => Scale::Test,
                        other => return Err(format!("unknown scale '{other}' (use: paper, test)")),
                    }
                }
                "--jobs" => {
                    let v = value(&mut it, "--jobs")?;
                    opts.jobs =
                        v.parse().map_err(|_| format!("--jobs needs a number, got '{v}'"))?;
                }
                "--filter" => opts.filter = Some(value(&mut it, "--filter")?),
                "--out" => opts.out_dir = PathBuf::from(value(&mut it, "--out")?),
                "--traces" => opts.trace_dir = Some(PathBuf::from(value(&mut it, "--traces")?)),
                "--no-cache" => opts.trace_dir = None,
                "--baseline" => opts.baseline = Some(PathBuf::from(value(&mut it, "--baseline")?)),
                "--bench" => opts.bench_path = PathBuf::from(value(&mut it, "--bench")?),
                "--compare-serial" => opts.compare_serial = Some(true),
                "--no-compare-serial" => opts.compare_serial = Some(false),
                "--quiet" => opts.quiet = true,
                "--list" => opts.list = true,
                "--resume" => opts.resume = true,
                "--job-timeout" => {
                    let v = value(&mut it, "--job-timeout")?;
                    let secs: f64 =
                        v.parse().map_err(|_| format!("--job-timeout needs seconds, got '{v}'"))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(format!("--job-timeout needs positive seconds, got '{v}'"));
                    }
                    opts.job_timeout = Some(secs);
                }
                "--force-panic" => opts.force_panic = Some(value(&mut it, "--force-panic")?),
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
            }
        }
        Ok(opts)
    }

    /// The plans selected by `--filter` (all of them without a filter).
    /// Needles substring-match plan names; a needle that matches no
    /// plan is a typed error (a misspelled plan name used to silently
    /// select nothing) naming the offender.
    pub fn selected_plans(&self) -> Result<Vec<Plan>, String> {
        let plans = all_plans();
        match &self.filter {
            None => Ok(plans),
            Some(f) => {
                let needles: Vec<&str> =
                    f.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
                if let Some(bad) =
                    needles.iter().find(|n| !plans.iter().any(|p| p.name.contains(*n)))
                {
                    return Err(format!("--filter '{bad}' matches no plan"));
                }
                Ok(plans
                    .into_iter()
                    .filter(|p| needles.iter().any(|n| p.name.contains(n)))
                    .collect())
            }
        }
    }
}

#[derive(Serialize)]
struct BenchPlan {
    name: &'static str,
    wall_s: f64,
    sim_cycles: u64,
    sim_mcycles_per_s: f64,
}

#[derive(Serialize)]
struct BenchCache {
    trace_mem_hits: u64,
    trace_disk_hits: u64,
    trace_records: u64,
    report_mem_hits: u64,
    report_disk_hits: u64,
    report_sims: u64,
    snapshots_quarantined: u64,
}

/// Aggregate buffer-pool activity across every paged recording of the
/// run (the `pool_pressure` plan; zero when it didn't run).
#[derive(Serialize)]
struct BenchPager {
    evictions: u64,
    flushes: u64,
    recovery_replays: u64,
    pages_quarantined: u64,
}

/// One quarantined plan in `BENCH_suite.json` — the structured failure
/// summary the suite exits non-zero with.
#[derive(Serialize)]
struct BenchFailure {
    plan: String,
    kind: String,
    message: String,
    duration_s: f64,
    attempts: u32,
}

#[derive(Serialize)]
struct BenchSerial {
    /// Back-to-back wall time of the uncached single-worker equivalent
    /// of every selected plan — what the pre-existing per-figure
    /// binaries cost.
    serial_wall_s: f64,
    /// Serial wall time over the suite's wall time.
    speedup_vs_serial: f64,
}

#[derive(Serialize)]
struct BenchSuite {
    scale: &'static str,
    jobs: usize,
    prewarm_s: f64,
    plans: Vec<BenchPlan>,
    total_wall_s: f64,
    total_sim_cycles: u64,
    sim_mcycles_per_host_s: f64,
    cache: BenchCache,
    pager: BenchPager,
    serial_equivalent: Option<BenchSerial>,
    baseline: Option<String>,
    /// Plans served from the run manifest instead of re-executed.
    resumed: Vec<String>,
    /// Plans that panicked or overran their deadline and were
    /// quarantined; non-empty makes the suite exit non-zero.
    failures: Vec<BenchFailure>,
}

/// Name of the append-only completion log inside the out dir: one
/// fsynced JSON line per completed plan, keyed by scale and a hash of
/// the machine configuration so `--resume` never trusts stale entries.
const MANIFEST_NAME: &str = ".run_manifest.jsonl";

#[derive(Serialize, Deserialize)]
struct ManifestEntry {
    plan: String,
    scale: String,
    config_hash: String,
    sim_cycles: u64,
    wall_s: f64,
}

/// Content-address of the suite configuration a manifest entry is valid
/// for (the same FNV-1a the snapshot store keys caches with).
fn config_hash(machine: &tls_core::CmpConfig) -> String {
    let json = serde_json::to_string(machine).expect("config serializes");
    format!("{:016x}", crate::codec::fnv1a(json.as_bytes()))
}

/// Reads the manifest (if any), returning completed plans matching this
/// run's scale and config hash: plan name → (sim_cycles, wall_s).
fn load_manifest(path: &Path, scale: &str, hash: &str) -> HashMap<String, (u64, f64)> {
    let mut done = HashMap::new();
    let Ok(text) = std::fs::read_to_string(path) else { return done };
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        // A torn final line (crash mid-write despite the fsync-per-line
        // discipline) parses as an error and is simply ignored: the
        // plan it named re-runs.
        let Ok(value) = serde::parse(line) else { continue };
        let Ok(entry) = ManifestEntry::deserialize(&value) else { continue };
        if entry.scale == scale && entry.config_hash == hash {
            done.insert(entry.plan, (entry.sim_cycles, entry.wall_s));
        }
    }
    done
}

/// SIGINT flag: the handler only sets it; `run_suite` checks it between
/// plans, so in-flight work always finishes and the manifest stays
/// consistent. Non-unix builds never set it.
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::SeqCst)
    }

    #[cfg(unix)]
    pub fn install() {
        extern "C" fn on_sigint(_: i32) {
            INTERRUPTED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

/// The `suite trace <benchmark>` verb: one observed run producing a
/// Perfetto timeline and a metrics time series. Returns the process
/// exit code.
pub fn run_trace_verb(args: &[String]) -> i32 {
    let mut txn = None;
    let mut scale = Scale::Paper;
    let mut out_dir = PathBuf::from("results");
    let mut trace_dir = Some(PathBuf::from("traces"));
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().map(String::as_str) {
                Some("paper") => scale = Scale::Paper,
                Some("test") => scale = Scale::Test,
                other => {
                    eprintln!("--scale needs paper or test, got {other:?}");
                    return 2;
                }
            },
            "--out" => match it.next() {
                Some(v) => out_dir = PathBuf::from(v),
                None => {
                    eprintln!("--out needs a value");
                    return 2;
                }
            },
            "--traces" => match it.next() {
                Some(v) => trace_dir = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--traces needs a value");
                    return 2;
                }
            },
            "--no-cache" => trace_dir = None,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return 0;
            }
            name if txn.is_none() => match Transaction::from_cli_name(name) {
                Some(t) => txn = Some(t),
                None => {
                    eprintln!("unknown benchmark '{name}'; valid benchmarks:");
                    for t in Transaction::ALL {
                        eprintln!("  {}", t.trace_name());
                    }
                    return 2;
                }
            },
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return 2;
            }
        }
    }
    let Some(txn) = txn else {
        eprintln!("suite trace: which benchmark? valid benchmarks:");
        for t in Transaction::ALL {
            eprintln!("  {}", t.trace_name());
        }
        return 2;
    };
    let store = HarnessStore::new(trace_dir, true);
    let req = crate::observe::ObserveRequest::new(txn, scale, out_dir);
    match crate::observe::observe_run(&store, &req) {
        Ok(out) => {
            println!(
                "{}: {} cycles, {} event(s) kept ({} dropped), {} livelock(s), \
                 report drift: none",
                txn.label(),
                out.report.total_cycles,
                out.events_kept,
                out.events_dropped,
                out.report.livelocks.len()
            );
            println!("wrote {}", out.trace_path.display());
            println!("wrote {}", out.metrics_path.display());
            println!("open the trace in https://ui.perfetto.dev (Open trace file)");
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// The `suite workload <spec.json>` verb: parse a declarative workload
/// spec, compile it to a `(plain, tls)` trace pair and run it through
/// record → simulate → report. A malformed spec exits 2 with the typed
/// field/line error and the list of valid fields (the same convention
/// the probe binary uses for unknown benchmarks). Returns the process
/// exit code.
pub fn run_workload_verb(args: &[String]) -> i32 {
    let mut spec_path: Option<PathBuf> = None;
    let mut scale = Scale::Paper;
    let mut out_dir = PathBuf::from("results");
    let mut trace_dir = Some(PathBuf::from("traces"));
    let mut jobs = JobPool::available();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().map(String::as_str) {
                Some("paper") => scale = Scale::Paper,
                Some("test") => scale = Scale::Test,
                other => {
                    eprintln!("--scale needs paper or test, got {other:?}");
                    return 2;
                }
            },
            "--out" => match it.next() {
                Some(v) => out_dir = PathBuf::from(v),
                None => {
                    eprintln!("--out needs a value");
                    return 2;
                }
            },
            "--traces" => match it.next() {
                Some(v) => trace_dir = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--traces needs a value");
                    return 2;
                }
            },
            "--no-cache" => trace_dir = None,
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => jobs = n,
                None => {
                    eprintln!("--jobs needs a number");
                    return 2;
                }
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return 0;
            }
            path if spec_path.is_none() && !path.starts_with("--") => {
                spec_path = Some(PathBuf::from(path));
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return 2;
            }
        }
    }
    let Some(spec_path) = spec_path else {
        eprintln!("suite workload: which spec file?\n{USAGE}");
        return 2;
    };
    let src = match std::fs::read_to_string(&spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: read {}: {e}", spec_path.display());
            return 1;
        }
    };
    let spec = match crate::workload::WorkloadSpec::parse(&src) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{}: {e}", spec_path.display());
            eprintln!("valid fields:");
            for (name, what) in crate::workload::WorkloadSpec::valid_fields() {
                eprintln!("  {name:<20} {what}");
            }
            return 2;
        }
    };
    let pool = JobPool::new(jobs);
    let store = HarnessStore::new(trace_dir, true);
    let ctx = PlanCtx { scale, machine: paper_machine(), store: &store, pool: &pool };
    let out = crate::plans::workload::run_spec(&ctx, &spec);
    print!("{}", out.text);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("error: cannot create {}: {e}", out_dir.display());
        return 1;
    }
    let stem = format!("workload_{}", spec.name);
    let json_path = out_dir.join(format!("{stem}.json"));
    let txt_path = out_dir.join(format!("{stem}.txt"));
    for (path, body) in [(&json_path, &out.json), (&txt_path, &out.text)] {
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: write {}: {e}", path.display());
            return 1;
        }
    }
    eprintln!("wrote {}", json_path.display());
    eprintln!("wrote {}", txt_path.display());
    0
}

/// Runs the suite; returns the process exit code.
pub fn run_suite(opts: &SuiteOptions) -> i32 {
    let plans = match opts.selected_plans() {
        Ok(plans) => plans,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("valid plans:");
            for p in all_plans() {
                eprintln!("  {:<20} {}", p.name, p.title);
            }
            return 2;
        }
    };
    if opts.list || plans.is_empty() {
        if plans.is_empty() {
            eprintln!("no plan matches --filter {:?}", opts.filter.as_deref().unwrap_or(""));
        }
        for p in all_plans() {
            println!("{:<14} {}", p.name, p.title);
        }
        return if opts.list { 0 } else { 2 };
    }

    sigint::install();
    let pool = JobPool::new(opts.jobs);
    let store = HarnessStore::new(opts.trace_dir.clone(), true);
    let ctx = PlanCtx { scale: opts.scale, machine: paper_machine(), store: &store, pool: &pool };
    let cfg_hash = config_hash(&ctx.machine);
    let manifest_path = opts.out_dir.join(MANIFEST_NAME);
    let completed: HashMap<String, (u64, f64)> = if opts.resume {
        load_manifest(&manifest_path, opts.scale.name(), &cfg_hash)
    } else {
        HashMap::new()
    };

    let suite_start = Instant::now();
    // Pre-record every distinct workload trace through the pool so plan
    // execution starts from a warm in-memory store.
    let prewarm_start = Instant::now();
    let mut keys = Vec::new();
    for plan in &plans {
        for key in (plan.traces)(&ctx) {
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
    }
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = keys
        .iter()
        .map(|key| {
            let key = key.clone();
            let store = &store;
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                store.programs(&key);
            });
            job
        })
        .collect();
    pool.run(jobs);
    let prewarm_s = prewarm_start.elapsed().as_secs_f64();

    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!("error: cannot create {}: {e}", opts.out_dir.display());
        return 1;
    }

    let mut manifest =
        match std::fs::OpenOptions::new().create(true).append(true).open(&manifest_path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: open {}: {e}", manifest_path.display());
                return 1;
            }
        };
    let protection = Protection {
        timeout: opts.job_timeout.map(Duration::from_secs_f64),
        ..Protection::default()
    };

    let mut bench_plans = Vec::new();
    let mut outputs: Vec<Option<PlanOutput>> = Vec::new();
    let mut resumed: Vec<String> = Vec::new();
    let mut failures: Vec<BenchFailure> = Vec::new();
    let mut interrupted = false;
    for plan in &plans {
        if sigint::interrupted() {
            interrupted = true;
            break;
        }
        let json_path = opts.out_dir.join(format!("{}.json", plan.name));
        let txt_path = opts.out_dir.join(format!("{}.txt", plan.name));
        // Crash-safe resume: a manifest entry plus both artifacts on
        // disk means the plan's work is already done and byte-exact.
        if let Some(&(sim_cycles, wall_s)) = completed.get(plan.name) {
            if let (Ok(json), Ok(text)) =
                (std::fs::read_to_string(&json_path), std::fs::read_to_string(&txt_path))
            {
                eprintln!("resumed {} from {}", plan.name, MANIFEST_NAME);
                bench_plans.push(BenchPlan {
                    name: plan.name,
                    wall_s,
                    sim_cycles,
                    sim_mcycles_per_s: sim_cycles as f64 / 1e6 / wall_s.max(1e-9),
                });
                outputs.push(Some(PlanOutput { json, text, sim_cycles }));
                resumed.push(plan.name.to_string());
                continue;
            }
            eprintln!(
                "note: {} is in the manifest but its artifacts are missing; re-running",
                plan.name
            );
        }
        let t0 = Instant::now();
        let forced = opts.force_panic.as_deref() == Some(plan.name);
        let result = runner::run_protected(plan.name, protection, || {
            if forced {
                panic!("forced panic via --force-panic");
            }
            (plan.run)(&ctx)
        });
        let wall_s = t0.elapsed().as_secs_f64();
        let out = match result {
            Ok(out) => out,
            Err(f) => {
                // Quarantine the plan and keep going: the rest of the
                // campaign is still worth its wall-clock.
                failures.push(BenchFailure {
                    plan: f.key.clone(),
                    kind: f.kind.to_string(),
                    message: f.message.clone(),
                    duration_s: f.duration_s,
                    attempts: f.attempts,
                });
                outputs.push(None);
                continue;
            }
        };
        if !opts.quiet {
            println!("==> {} ({})", plan.name, plan.title);
            print!("{}", out.text);
        }
        if let Err(e) = std::fs::write(&json_path, &out.json) {
            eprintln!("error: write {}: {e}", json_path.display());
            return 1;
        }
        if let Err(e) = std::fs::write(&txt_path, &out.text) {
            eprintln!("error: write {}: {e}", txt_path.display());
            return 1;
        }
        eprintln!("wrote {} ({wall_s:.3}s)", json_path.display());
        // Log completion only after both artifacts landed; one fsynced
        // line per plan keeps the manifest torn-write-proof.
        let entry = ManifestEntry {
            plan: plan.name.to_string(),
            scale: opts.scale.name().to_string(),
            config_hash: cfg_hash.clone(),
            sim_cycles: out.sim_cycles,
            wall_s,
        };
        let mut line = serde_json::to_string(&entry).expect("manifest entry serializes");
        line.push('\n');
        if let Err(e) = manifest.write_all(line.as_bytes()).and_then(|()| manifest.sync_all()) {
            eprintln!("error: append {}: {e}", manifest_path.display());
            return 1;
        }
        bench_plans.push(BenchPlan {
            name: plan.name,
            wall_s,
            sim_cycles: out.sim_cycles,
            sim_mcycles_per_s: out.sim_cycles as f64 / 1e6 / wall_s.max(1e-9),
        });
        outputs.push(Some(out));
    }
    let total_wall_s = suite_start.elapsed().as_secs_f64();
    let total_sim_cycles: u64 = bench_plans.iter().map(|p| p.sim_cycles).sum();

    // Optional honesty check + denominator for the speedup claim: run the
    // same plans with no cache and one worker, the way the standalone
    // per-figure binaries execute.
    let compare_serial = opts.compare_serial.unwrap_or(opts.scale == Scale::Test) && !interrupted;
    let mut serial_equivalent = None;
    if compare_serial {
        let serial_store = HarnessStore::uncached();
        let serial_pool = JobPool::new(1);
        let serial_ctx = PlanCtx {
            scale: opts.scale,
            machine: paper_machine(),
            store: &serial_store,
            pool: &serial_pool,
        };
        let serial_start = Instant::now();
        for (plan, parallel_out) in plans.iter().zip(&outputs) {
            // Quarantined plans have no parallel output to compare.
            let Some(parallel_out) = parallel_out else { continue };
            let out = (plan.run)(&serial_ctx);
            if out.json != parallel_out.json || out.text != parallel_out.text {
                eprintln!(
                    "error: plan '{}' is not deterministic — uncached 1-worker output \
                     differs from the cached parallel run",
                    plan.name
                );
                return 1;
            }
        }
        let serial_wall_s = serial_start.elapsed().as_secs_f64();
        eprintln!(
            "serial equivalent: {serial_wall_s:.3}s vs suite {total_wall_s:.3}s \
             ({:.2}x)",
            serial_wall_s / total_wall_s.max(1e-9)
        );
        serial_equivalent = Some(BenchSerial {
            serial_wall_s,
            speedup_vs_serial: serial_wall_s / total_wall_s.max(1e-9),
        });
    }

    let stats = store.stats.snapshot();
    let bench = BenchSuite {
        scale: opts.scale.name(),
        jobs: pool.workers(),
        prewarm_s,
        plans: bench_plans,
        total_wall_s,
        total_sim_cycles,
        sim_mcycles_per_host_s: total_sim_cycles as f64 / 1e6 / total_wall_s.max(1e-9),
        cache: BenchCache {
            trace_mem_hits: stats[0],
            trace_disk_hits: stats[1],
            trace_records: stats[2],
            report_mem_hits: stats[3],
            report_disk_hits: stats[4],
            report_sims: stats[5],
            snapshots_quarantined: stats[6],
        },
        pager: BenchPager {
            evictions: stats[7],
            flushes: stats[8],
            recovery_replays: stats[9],
            pages_quarantined: stats[10],
        },
        serial_equivalent,
        baseline: opts.baseline.as_ref().map(|p| p.display().to_string()),
        resumed,
        failures,
    };
    let mut bench_json = serde_json::to_string_pretty(&bench).expect("serialize bench report");
    bench_json.push('\n');
    // A prior `suite sweep` run may have merged its section into this
    // file; carry it across instead of clobbering it.
    if let Some(serde::Value::Object(old)) =
        std::fs::read_to_string(&opts.bench_path).ok().and_then(|t| serde::parse(&t).ok())
    {
        if let Some((_, sweep)) = old.into_iter().find(|(k, _)| k == "sweep") {
            if let Ok(serde::Value::Object(mut pairs)) = serde::parse(&bench_json) {
                pairs.push(("sweep".to_string(), sweep));
                let mut merged = String::new();
                serde::Value::Object(pairs).write(&mut merged, Some(2), 0);
                merged.push('\n');
                bench_json = merged;
            }
        }
    }
    if let Err(e) = std::fs::write(&opts.bench_path, bench_json) {
        eprintln!("error: write {}: {e}", opts.bench_path.display());
        return 1;
    }
    eprintln!("wrote {}", opts.bench_path.display());

    if interrupted {
        eprintln!(
            "interrupted: {} of {} plan(s) completed; manifest flushed",
            bench.plans.len(),
            plans.len()
        );
        eprintln!(
            "resume with: suite --resume --scale {} --out {}{}",
            opts.scale.name(),
            opts.out_dir.display(),
            opts.filter.as_deref().map(|f| format!(" --filter {f}")).unwrap_or_default()
        );
        return 130;
    }

    if let Some(baseline) = &opts.baseline {
        // A quarantined plan wrote no fresh artifact, so its baseline
        // diff is meaningless — compare only what actually completed.
        let compared: Vec<Plan> =
            plans.iter().zip(&outputs).filter(|(_, o)| o.is_some()).map(|(p, _)| *p).collect();
        if compared.len() < plans.len() {
            eprintln!(
                "note: {} quarantined plan(s) excluded from the baseline comparison",
                plans.len() - compared.len()
            );
        }
        let drifts = compare_against_baseline(&compared, &opts.out_dir, baseline);
        if !drifts.is_empty() {
            eprintln!(
                "regression: {} artifact difference(s) vs {}:",
                drifts.len(),
                baseline.display()
            );
            for d in drifts.iter().take(20) {
                eprintln!("  {d}");
            }
            if drifts.len() > 20 {
                eprintln!("  ... and {} more", drifts.len() - 20);
            }
            return 1;
        }
        eprintln!("baseline comparison: {} artifact(s) identical", compared.len());
    }

    if !bench.failures.is_empty() {
        eprintln!("suite completed with {} quarantined plan(s):", bench.failures.len());
        for f in &bench.failures {
            eprintln!(
                "  {} {} after {:.3}s (attempt {}): {}",
                f.plan, f.kind, f.duration_s, f.attempts, f.message
            );
        }
        return 1;
    }
    0
}

/// Compares each plan's fresh artifact to `baseline/<name>.json`.
/// Returns human-readable descriptions of every difference (cycle-count
/// drift or structural change); an empty vector means no drift.
fn compare_against_baseline(plans: &[Plan], out_dir: &Path, baseline: &Path) -> Vec<String> {
    let mut drifts = Vec::new();
    for plan in plans {
        let base_path = baseline.join(format!("{}.json", plan.name));
        let new_path = out_dir.join(format!("{}.json", plan.name));
        let base = match std::fs::read_to_string(&base_path) {
            Ok(s) => s,
            Err(_) => {
                eprintln!("note: no baseline artifact {}, skipping", base_path.display());
                continue;
            }
        };
        let new = match std::fs::read_to_string(&new_path) {
            Ok(s) => s,
            Err(e) => {
                drifts.push(format!("{}: unreadable fresh artifact: {e}", plan.name));
                continue;
            }
        };
        match (serde::parse(&base), serde::parse(&new)) {
            (Ok(b), Ok(n)) => diff_values(plan.name, &b, &n, &mut drifts),
            (Err(e), _) => drifts.push(format!("{}: baseline is not JSON: {}", plan.name, e.0)),
            (_, Err(e)) => {
                drifts.push(format!("{}: fresh artifact is not JSON: {}", plan.name, e.0))
            }
        }
    }
    drifts
}

/// Structural JSON diff. Every leaf difference is reported; differences
/// under a key containing `cycles` are flagged as cycle drift.
fn diff_values(path: &str, a: &Value, b: &Value, drifts: &mut Vec<String>) {
    match (a, b) {
        (Value::Object(pa), Value::Object(pb)) => {
            if pa.len() != pb.len() || pa.iter().zip(pb.iter()).any(|((ka, _), (kb, _))| ka != kb) {
                drifts.push(format!("{path}: object keys changed"));
                return;
            }
            for ((k, va), (_, vb)) in pa.iter().zip(pb.iter()) {
                diff_values(&format!("{path}.{k}"), va, vb, drifts);
            }
        }
        (Value::Array(xa), Value::Array(xb)) => {
            if xa.len() != xb.len() {
                drifts.push(format!("{path}: array length {} -> {}", xa.len(), xb.len()));
                return;
            }
            for (i, (va, vb)) in xa.iter().zip(xb.iter()).enumerate() {
                diff_values(&format!("{path}[{i}]"), va, vb, drifts);
            }
        }
        _ => {
            if a != b {
                let kind = if path
                    .rsplit(['.', '[', ']'])
                    .next()
                    .map(|_| path.to_ascii_lowercase().contains("cycles"))
                    .unwrap_or(false)
                {
                    "cycle drift"
                } else {
                    "drift"
                };
                drifts.push(format!("{path}: {kind}: {a} -> {b}"));
            }
        }
    }
}

/// The engine behind the thin per-figure wrapper binaries in `tls-bench`:
/// runs one plan with the standalone binaries' historical CLI (`--scale
/// paper|test`, `--json DIR`), printing the table to stdout. Honors
/// `--jobs N` and `--traces DIR` too, defaulting to every core and the
/// shared `traces/` cache.
pub fn run_single_plan(name: &str, args: &[String]) {
    let scale = Scale::parse(args);
    let flag = |f: &str| -> Option<&String> {
        args.iter().position(|a| a == f).and_then(|i| args.get(i + 1))
    };
    let jobs = flag("--jobs")
        .map(|v| v.parse().unwrap_or_else(|_| panic!("--jobs needs a number, got '{v}'")))
        .unwrap_or_else(JobPool::available);
    let trace_dir = if args.iter().any(|a| a == "--no-cache") {
        None
    } else {
        Some(PathBuf::from(flag("--traces").map(String::as_str).unwrap_or("traces")))
    };
    let plan = crate::plan::find_plan(name).unwrap_or_else(|| panic!("no plan named '{name}'"));
    let pool = JobPool::new(jobs);
    let store = HarnessStore::new(trace_dir, true);
    let ctx = PlanCtx { scale, machine: paper_machine(), store: &store, pool: &pool };
    let out = (plan.run)(&ctx);
    print!("{}", out.text);
    if let Some(dir) = flag("--json").map(PathBuf::from) {
        std::fs::create_dir_all(&dir).expect("create json dir");
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, &out.json)
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_command_line() {
        let o = SuiteOptions::parse(&args(&[
            "--scale",
            "test",
            "--jobs",
            "8",
            "--filter",
            "fig",
            "--out",
            "r",
            "--baseline",
            "old",
            "--quiet",
        ]))
        .unwrap();
        assert_eq!(o.scale, Scale::Test);
        assert_eq!(o.jobs, 8);
        assert_eq!(o.out_dir, PathBuf::from("r"));
        assert_eq!(o.baseline, Some(PathBuf::from("old")));
        assert!(o.quiet);
        let names: Vec<_> =
            o.selected_plans().expect("filter matches").iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["figure2", "figure5", "figure6"]);
    }

    #[test]
    fn unknown_filter_needle_is_a_typed_error() {
        let mut o = SuiteOptions::parse(&args(&["--filter", "figure9"])).unwrap();
        let err = o.selected_plans().err().expect("no plan is figure9");
        assert!(err.contains("figure9"), "{err}");
        // A mix of one good and one bad needle still errors: the bad
        // needle names a plan the user wanted and did not get.
        o.filter = Some("figure2,predection".to_string());
        let err = o.selected_plans().err().expect("typo'd needle");
        assert!(err.contains("predection"), "{err}");
        // Matching needles keep their substring semantics.
        o.filter = Some("prediction_frontier".to_string());
        let names: Vec<_> =
            o.selected_plans().expect("exact name").iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["prediction_frontier"]);
    }

    #[test]
    fn rejects_unknown_arguments() {
        assert!(SuiteOptions::parse(&args(&["--bogus"])).is_err());
        assert!(SuiteOptions::parse(&args(&["--scale", "huge"])).is_err());
        assert!(SuiteOptions::parse(&args(&["--jobs", "many"])).is_err());
    }

    #[test]
    fn diff_flags_cycle_drift() {
        let a = serde::parse(r#"[{"name":"x","total_cycles":10}]"#).unwrap();
        let b = serde::parse(r#"[{"name":"x","total_cycles":11}]"#).unwrap();
        let mut drifts = Vec::new();
        diff_values("t", &a, &b, &mut drifts);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].contains("cycle drift"), "{drifts:?}");

        let mut same = Vec::new();
        diff_values("t", &a, &a, &mut same);
        assert!(same.is_empty());
    }

    #[test]
    fn diff_flags_structural_changes() {
        let a = serde::parse(r#"{"rows":[1,2]}"#).unwrap();
        let b = serde::parse(r#"{"rows":[1,2,3]}"#).unwrap();
        let mut drifts = Vec::new();
        diff_values("t", &a, &b, &mut drifts);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].contains("array length"));
    }
}
