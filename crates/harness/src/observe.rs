//! Observed benchmark runs: the engine behind the `suite trace` verb
//! and the `timeline` binary.
//!
//! An observed run replays one TPC-C benchmark through the snapshot
//! store exactly as the evaluation plans do, but with a
//! [`tls_core::Observer`] attached. It then
//!
//! 1. asserts **zero drift**: the observed [`SimReport`] must serialize
//!    byte-for-byte identically to the (possibly cached) unobserved
//!    report for the same program and machine — observation is passive
//!    or it is broken;
//! 2. writes `trace_<txn>.perfetto.json`, a Chrome `trace_event`
//!    timeline loadable in `ui.perfetto.dev`;
//! 3. writes `metrics_<txn>.json`, the sampled per-CPU cycle-class and
//!    machine-pressure time series.

use crate::eval::{instances, paper_machine, Scale};
use crate::store::{HarnessStore, TraceKey};
use std::path::PathBuf;
use tls_core::obs::perfetto::{self, TraceMeta};
use tls_core::{CmpSimulator, Observer, RunOptions, SimReport};
use tls_minidb::Transaction;

/// What to observe and where to put the artifacts.
#[derive(Debug, Clone)]
pub struct ObserveRequest {
    /// The benchmark to record, simulate and trace.
    pub txn: Transaction,
    /// Workload scale (paper or test).
    pub scale: Scale,
    /// Directory receiving the two artifacts.
    pub out_dir: PathBuf,
    /// Event-ring capacity (defaults to
    /// [`tls_core::obs::DEFAULT_RING_CAPACITY`]).
    pub ring_capacity: usize,
    /// Metrics sampling interval in cycles (defaults to
    /// [`tls_core::obs::DEFAULT_METRICS_INTERVAL`]).
    pub metrics_interval: u64,
}

impl ObserveRequest {
    /// A request with the default ring and sampling parameters.
    pub fn new(txn: Transaction, scale: Scale, out_dir: PathBuf) -> Self {
        ObserveRequest {
            txn,
            scale,
            out_dir,
            ring_capacity: tls_core::obs::DEFAULT_RING_CAPACITY,
            metrics_interval: tls_core::obs::DEFAULT_METRICS_INTERVAL,
        }
    }
}

/// Everything an observed run produced.
#[derive(Debug)]
pub struct ObserveOutcome {
    /// The run's report (identical to the unobserved one).
    pub report: SimReport,
    /// Path of the Perfetto timeline artifact.
    pub trace_path: PathBuf,
    /// Path of the metrics time-series artifact.
    pub metrics_path: PathBuf,
    /// Events retained in the ring at the end of the run.
    pub events_kept: usize,
    /// Events overwritten by ring overflow (0 with a large enough ring).
    pub events_dropped: u64,
}

/// Runs `req.txn` with observation attached and writes both artifacts.
///
/// The baseline (unobserved) report comes from [`HarnessStore::simulate`]
/// — served from the report cache when warm — so a drift here also
/// catches an observed run diverging from cached suite artifacts.
pub fn observe_run(store: &HarnessStore, req: &ObserveRequest) -> Result<ObserveOutcome, String> {
    let key =
        TraceKey { cfg: req.scale.tpcc(), txn: req.txn, count: instances(req.txn, req.scale) };
    let programs = store.programs(&key);
    let machine = paper_machine();
    let baseline = store.simulate(&programs.tls, &machine);

    let mut observer = Observer::new(machine.cpus, req.ring_capacity, req.metrics_interval);
    let observed = CmpSimulator::new(machine).run_view(
        &programs.tls.view(),
        RunOptions::checked_default(),
        Some(&mut observer),
    );

    let baseline_json =
        serde_json::to_string(&*baseline).map_err(|e| format!("serialize baseline: {e:?}"))?;
    let observed_json =
        serde_json::to_string(&observed).map_err(|e| format!("serialize observed: {e:?}"))?;
    if baseline_json != observed_json {
        return Err(format!(
            "observation is not passive: observed report for {} differs from baseline",
            req.txn.trace_name()
        ));
    }

    std::fs::create_dir_all(&req.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", req.out_dir.display()))?;

    let meta = TraceMeta {
        program: programs.tls.name().to_string(),
        cpus: observed.cpus,
        total_cycles: observed.total_cycles,
    };
    let trace_json = perfetto::export(&meta, observer.events.iter().copied());
    let trace_path = req.out_dir.join(format!("trace_{}.perfetto.json", req.txn.trace_name()));
    std::fs::write(&trace_path, &trace_json)
        .map_err(|e| format!("write {}: {e}", trace_path.display()))?;

    let series = observer.metrics.series(programs.tls.name());
    let mut metrics_json =
        serde_json::to_string_pretty(&series).map_err(|e| format!("serialize metrics: {e:?}"))?;
    metrics_json.push('\n');
    let metrics_path = req.out_dir.join(format!("metrics_{}.json", req.txn.trace_name()));
    std::fs::write(&metrics_path, metrics_json)
        .map_err(|e| format!("write {}: {e}", metrics_path.display()))?;

    Ok(ObserveOutcome {
        report: observed,
        trace_path,
        metrics_path,
        events_kept: observer.events.len(),
        events_dropped: observer.events.dropped(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_run_writes_both_artifacts_and_stays_neutral() {
        let dir = std::env::temp_dir().join(format!("tls-observe-{}", std::process::id()));
        let store = HarnessStore::uncached();
        let req = ObserveRequest::new(Transaction::Payment, Scale::Test, dir.clone());
        let out = observe_run(&store, &req).expect("observed run succeeds");
        assert!(out.report.total_cycles > 0);
        assert!(out.events_kept > 0, "a real run emits events");
        assert_eq!(out.events_dropped, 0, "default ring holds a test-scale run");
        let trace = std::fs::read_to_string(&out.trace_path).unwrap();
        assert!(serde::parse(&trace).is_ok(), "Perfetto artifact is valid JSON");
        let metrics = std::fs::read_to_string(&out.metrics_path).unwrap();
        assert!(serde::parse(&metrics).is_ok(), "metrics artifact is valid JSON");
        std::fs::remove_dir_all(&dir).ok();
    }
}
