//! The batched multi-seed sweep engine behind `suite sweep`.
//!
//! A parameter sweep — N workload seeds × sub-thread spacings × context
//! counts × memory latencies — used to cost one full store round-trip
//! *per point*: open the snapshot, decode every op into owned buffers,
//! fingerprint, simulate, write a report container. A [`SweepPlan`]
//! restructures that into the shape the zero-copy store is built for:
//!
//! 1. **One map per seed.** Points are grouped by workload seed (the
//!    only axis that changes the trace). Each group opens its snapshot
//!    once — served in place via [`crate::mapped::TraceView`] — and
//!    every simulation in the group borrows the same mapped records.
//! 2. **Interned machine configs.** The (spacing × contexts ×
//!    mem-latency) grid is materialized once as `(CmpConfig, canonical
//!    JSON)` pairs; every seed reuses them, and the report-cache key is
//!    streamed from the pre-serialized JSON
//!    ([`crate::store::HarnessStore::simulate_keyed`]) instead of
//!    re-serializing the config per point.
//! 3. **Deterministic streaming output.** Points fan across the
//!    [`JobPool`] in submission order, so the JSONL row stream is
//!    byte-identical for any `--jobs` value; rows append to
//!    `<out>/sweep_<name>.jsonl` as each seed group completes, and
//!    `--resume` validates the surviving prefix after a crash (torn or
//!    out-of-order tails are truncated, finished points are not re-run).
//!
//! The verb also measures the *one-simulation-per-job equivalent* on a
//! sample of points — read + owned-decode + fingerprint + simulate +
//! fsynced report write, the full cost the old warm path paid per point
//! — and reports both throughputs (points/hour), their ratio, and the
//! process's peak RSS in a `sweep` section merged into
//! `BENCH_suite.json`.

use crate::codec::{self, encode_container, KIND_SIM_REPORT};
use crate::eval::{instances, paper_machine, Scale};
use crate::runner::JobPool;
use crate::store::{HarnessStore, StoredPrograms, TraceKey};
use serde::{Serialize, Value};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;
use tls_core::{
    CmpConfig, CmpSimulator, MemoryModel, RunOptions, SimReport, SpacingPolicy, VPredictConfig,
    MAX_SUBTHREADS,
};
use tls_minidb::Transaction;

/// A declarative sweep grid: what `suite sweep <grid.json>` consumes.
///
/// The cartesian product `seeds × spacings × contexts × mem_latencies`
/// defines the points; `seeds` vary the recorded workload, the other
/// three axes vary the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep name (`[A-Za-z0-9_-]+`; artifact file stem).
    pub name: String,
    /// The TPC-C benchmark recorded per seed.
    pub benchmark: Transaction,
    /// Back-to-back transaction instances per recording (0 = the
    /// scale's default for the benchmark).
    pub count: usize,
    /// Workload RNG seeds (one trace pair recorded per seed).
    pub seeds: Vec<u64>,
    /// Sub-thread spacings in speculative instructions.
    pub spacings: Vec<u64>,
    /// Sub-thread contexts per speculative thread.
    pub contexts: Vec<u8>,
    /// Minimum L1-miss-to-memory latencies in cycles.
    pub mem_latencies: Vec<u64>,
    /// Value-predictor table sizes (powers of two; 0 = predictor off).
    /// Empty leaves the axis out entirely: point keys, config grid and
    /// row bytes are identical to a grid written before the axis
    /// existed.
    pub vpredict_entries: Vec<usize>,
    /// Memory models (`sc` or `tso<N>` with N buffer entries). Empty
    /// leaves the axis out, exactly like `vpredict_entries`.
    pub memory_models: Vec<MemoryModel>,
}

/// Parses a memory-model axis value: `sc`, or `tso<N>` with N = buffer
/// entries in 1..=256.
pub fn parse_memory_model(s: &str) -> Option<MemoryModel> {
    if s == "sc" {
        return Some(MemoryModel::Sc);
    }
    let n: usize = s.strip_prefix("tso")?.parse().ok()?;
    (1..=256).contains(&n).then_some(MemoryModel::Tso { buffer_entries: n })
}

/// The stable key-component name of a memory model (`sc` / `tso<N>`).
pub fn memory_model_name(m: MemoryModel) -> String {
    match m {
        MemoryModel::Sc => "sc".to_string(),
        MemoryModel::Tso { buffer_entries } => format!("tso{buffer_entries}"),
    }
}

/// A typed sweep-spec failure: which field, what is wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// The offending field, when attributable.
    pub field: Option<String>,
    /// What is wrong with it.
    pub message: String,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.field {
            Some(field) => write!(f, "field '{field}': {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for SweepError {}

impl SweepSpec {
    /// Every field a grid file may contain (printed on a parse error).
    pub fn valid_fields() -> &'static [(&'static str, &'static str)] {
        &[
            ("name", "sweep name, [A-Za-z0-9_-]+ (artifact file stem)"),
            ("benchmark", "TPC-C benchmark name (e.g. payment, new_order)"),
            ("count", "transaction instances per recording (0 = scale default)"),
            ("seeds", "array of workload RNG seeds, 1..=64 entries"),
            ("spacings", "array of sub-thread spacings in instructions, >= 1"),
            ("contexts", "array of sub-thread context counts, 1..=8"),
            ("mem_latencies", "array of memory latencies in cycles, >= 1"),
            ("vpredict_entries", "array of value-predictor table sizes (2^k; 0 = off); optional"),
            (
                "memory_models",
                "array of memory models: \"sc\" or \"tsoN\" (N buffer entries); optional",
            ),
        ]
    }

    /// Parses a grid from JSON source text; unknown fields, type
    /// mismatches and out-of-range values are typed [`SweepError`]s.
    pub fn parse(src: &str) -> Result<SweepSpec, SweepError> {
        let value = serde::parse(src)
            .map_err(|e| SweepError { field: None, message: format!("not JSON: {e}") })?;
        let Value::Object(pairs) = &value else {
            return Err(SweepError {
                field: None,
                message: "grid must be a JSON object".to_string(),
            });
        };
        let err =
            |field: &str, message: String| SweepError { field: Some(field.to_string()), message };
        let u64s = |field: &str, v: &Value| -> Result<Vec<u64>, SweepError> {
            let Value::Array(items) = v else {
                return Err(err(field, "expected an array of unsigned integers".to_string()));
            };
            items
                .iter()
                .map(|i| match i {
                    Value::Int(n) if *n >= 0 => Ok(*n as u64),
                    _ => Err(err(field, "expected unsigned integers".to_string())),
                })
                .collect()
        };
        let mut spec = SweepSpec {
            name: String::new(),
            benchmark: Transaction::Payment,
            count: 0,
            seeds: Vec::new(),
            spacings: Vec::new(),
            contexts: Vec::new(),
            mem_latencies: Vec::new(),
            vpredict_entries: Vec::new(),
            memory_models: Vec::new(),
        };
        let mut saw_benchmark = false;
        for (key, v) in pairs {
            match key.as_str() {
                "name" => match v {
                    Value::Str(s) => spec.name = s.clone(),
                    _ => return Err(err("name", "expected a string".to_string())),
                },
                "benchmark" => match v {
                    Value::Str(s) => match Transaction::from_cli_name(s) {
                        Some(t) => {
                            spec.benchmark = t;
                            saw_benchmark = true;
                        }
                        None => {
                            let names: Vec<&str> =
                                Transaction::ALL.iter().map(|t| t.trace_name()).collect();
                            return Err(err(
                                "benchmark",
                                format!("unknown benchmark '{s}' (valid: {})", names.join(", ")),
                            ));
                        }
                    },
                    _ => return Err(err("benchmark", "expected a string".to_string())),
                },
                "count" => match v {
                    Value::Int(n) if *n >= 0 => spec.count = *n as usize,
                    _ => return Err(err("count", "expected an unsigned integer".to_string())),
                },
                "seeds" => spec.seeds = u64s("seeds", v)?,
                "spacings" => spec.spacings = u64s("spacings", v)?,
                "contexts" => {
                    spec.contexts = u64s("contexts", v)?
                        .into_iter()
                        .map(|n| {
                            u8::try_from(n)
                                .ok()
                                .filter(|c| (1..=MAX_SUBTHREADS as u8).contains(c))
                                .ok_or_else(|| {
                                    err(
                                        "contexts",
                                        format!("contexts must be 1..={MAX_SUBTHREADS}, got {n}"),
                                    )
                                })
                        })
                        .collect::<Result<_, _>>()?
                }
                "mem_latencies" => spec.mem_latencies = u64s("mem_latencies", v)?,
                "vpredict_entries" => {
                    spec.vpredict_entries =
                        u64s("vpredict_entries", v)?.into_iter().map(|n| n as usize).collect()
                }
                "memory_models" => {
                    let Value::Array(items) = v else {
                        return Err(err(
                            "memory_models",
                            "expected an array of strings".to_string(),
                        ));
                    };
                    spec.memory_models = items
                        .iter()
                        .map(|i| match i {
                            Value::Str(s) => parse_memory_model(s).ok_or_else(|| {
                                err(
                                    "memory_models",
                                    format!("'{s}' is not 'sc' or 'tsoN' (N in 1..=256)"),
                                )
                            }),
                            _ => Err(err("memory_models", "expected strings".to_string())),
                        })
                        .collect::<Result<_, _>>()?
                }
                other => {
                    return Err(SweepError {
                        field: Some(other.to_string()),
                        message: "unknown field".to_string(),
                    })
                }
            }
        }
        if !saw_benchmark {
            return Err(SweepError {
                field: Some("benchmark".to_string()),
                message: "required".to_string(),
            });
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Checks every value constraint.
    pub fn validate(&self) -> Result<(), SweepError> {
        let err = |field: &str, message: String| {
            Err(SweepError { field: Some(field.to_string()), message })
        };
        if self.name.is_empty()
            || self.name.len() > 64
            || !self.name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return err("name", "must be 1..=64 chars of [A-Za-z0-9_-]".to_string());
        }
        if self.seeds.is_empty() || self.seeds.len() > 64 {
            return err("seeds", format!("need 1..=64 seeds, got {}", self.seeds.len()));
        }
        if self.spacings.is_empty() || self.spacings.contains(&0) {
            return err("spacings", "need at least one spacing, all >= 1".to_string());
        }
        if self.contexts.is_empty() {
            return err("contexts", "need at least one context count".to_string());
        }
        if self.mem_latencies.is_empty() || self.mem_latencies.contains(&0) {
            return err("mem_latencies", "need at least one latency, all >= 1".to_string());
        }
        if let Some(bad) = self.vpredict_entries.iter().find(|&&n| n != 0 && !n.is_power_of_two()) {
            return err(
                "vpredict_entries",
                format!("table sizes must be powers of two (or 0 = off), got {bad}"),
            );
        }
        Ok(())
    }

    /// The value-predictor axis as grid values: `[None]` when the axis
    /// is absent (so the product and keys match the pre-axis layout).
    fn vpredict_axis(&self) -> Vec<Option<usize>> {
        if self.vpredict_entries.is_empty() {
            vec![None]
        } else {
            self.vpredict_entries.iter().map(|&n| Some(n)).collect()
        }
    }

    /// The memory-model axis as grid values: `[None]` when absent, so
    /// model-less grids keep their pre-axis keys and row bytes.
    fn memory_model_axis(&self) -> Vec<Option<MemoryModel>> {
        if self.memory_models.is_empty() {
            vec![None]
        } else {
            self.memory_models.iter().map(|&m| Some(m)).collect()
        }
    }

    /// Points in the grid (before filtering).
    pub fn total_points(&self) -> usize {
        self.seeds.len()
            * self.spacings.len()
            * self.contexts.len()
            * self.mem_latencies.len()
            * self.vpredict_axis().len()
            * self.memory_model_axis().len()
    }
}

/// One grid point: a workload seed plus a machine configuration index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// Workload RNG seed.
    pub seed: u64,
    /// Sub-thread spacing in speculative instructions.
    pub spacing: u64,
    /// Sub-thread contexts.
    pub contexts: u8,
    /// Minimum memory latency in cycles.
    pub mem_latency: u64,
    /// Value-predictor table size (`None` when the grid has no
    /// `vpredict_entries` axis; `Some(0)` = axis present, predictor off).
    pub vpredict_entries: Option<usize>,
    /// Memory model (`None` when the grid has no `memory_models` axis).
    pub memory_model: Option<MemoryModel>,
}

impl SweepPoint {
    /// The point's stable key — what `--filter` substring-matches and
    /// what each JSONL row carries. Grids without a `vpredict_entries`
    /// or `memory_models` axis keep the pre-axis key shape, byte for
    /// byte.
    pub fn key(&self) -> String {
        let mut key = format!(
            "seed={}/spacing={}/ctx={}/mem={}",
            self.seed, self.spacing, self.contexts, self.mem_latency
        );
        if let Some(vp) = self.vpredict_entries {
            key.push_str(&format!("/vp={vp}"));
        }
        if let Some(m) = self.memory_model {
            key.push_str(&format!("/mm={}", memory_model_name(m)));
        }
        key
    }
}

/// A compiled sweep: the point sequence (seed-major, so each seed's
/// trace maps exactly once) and the interned machine-configuration grid
/// shared across seeds.
pub struct SweepPlan {
    /// The parsed grid.
    pub spec: SweepSpec,
    /// Workload scale.
    pub scale: Scale,
    /// `(config, canonical JSON)` per (spacing, contexts, mem) triple,
    /// in grid order — built once, reused by every seed.
    configs: Vec<(CmpConfig, String)>,
    /// `(config index, point)` in canonical execution order.
    points: Vec<(usize, SweepPoint)>,
}

impl SweepPlan {
    /// Compiles `spec` at `scale`: interns the machine grid and lays the
    /// points out seed-major.
    pub fn new(spec: SweepSpec, scale: Scale) -> SweepPlan {
        let base = paper_machine();
        let vp_axis = spec.vpredict_axis();
        let mm_axis = spec.memory_model_axis();
        let mut configs = Vec::new();
        for &spacing in &spec.spacings {
            for &contexts in &spec.contexts {
                for &mem_latency in &spec.mem_latencies {
                    for &vp in &vp_axis {
                        for &mm in &mm_axis {
                            let mut cfg = base;
                            cfg.subthreads.spacing = SpacingPolicy::Every(spacing);
                            cfg.subthreads.contexts = contexts;
                            cfg.mem.mem_min_latency = mem_latency;
                            if let Some(entries) = vp.filter(|&n| n > 0) {
                                cfg.vpredict =
                                    VPredictConfig { entries, ..VPredictConfig::prophet() };
                            }
                            if let Some(model) = mm {
                                cfg.memory_model = model;
                            }
                            let mut json = String::new();
                            cfg.serialize(&mut json);
                            configs.push((cfg, json));
                        }
                    }
                }
            }
        }
        let mut points = Vec::with_capacity(spec.total_points());
        for &seed in &spec.seeds {
            let mut ci = 0;
            for &spacing in &spec.spacings {
                for &contexts in &spec.contexts {
                    for &mem_latency in &spec.mem_latencies {
                        for &vp in &vp_axis {
                            for &mm in &mm_axis {
                                points.push((
                                    ci,
                                    SweepPoint {
                                        seed,
                                        spacing,
                                        contexts,
                                        mem_latency,
                                        vpredict_entries: vp,
                                        memory_model: mm,
                                    },
                                ));
                                ci += 1;
                            }
                        }
                    }
                }
            }
        }
        SweepPlan { spec, scale, configs, points }
    }

    /// The machine configuration and canonical JSON of config `i`.
    pub fn config(&self, i: usize) -> (&CmpConfig, &str) {
        let (cfg, json) = &self.configs[i];
        (cfg, json)
    }

    /// Points surviving `--filter` (comma-separated substrings matched
    /// against [`SweepPoint::key`]; `None` keeps everything), in
    /// execution order.
    pub fn selected(&self, filter: Option<&str>) -> Vec<(usize, SweepPoint)> {
        match filter {
            None => self.points.clone(),
            Some(f) => {
                let needles: Vec<&str> =
                    f.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
                self.points
                    .iter()
                    .filter(|(_, p)| {
                        let key = p.key();
                        needles.iter().any(|n| key.contains(n))
                    })
                    .copied()
                    .collect()
            }
        }
    }

    /// Like [`SweepPlan::selected`], but a needle that matches no point
    /// key is a typed error naming the needle and every matchable key
    /// component of this grid — a silent empty selection would write an
    /// empty row file that reads as "sweep done".
    pub fn selected_checked(
        &self,
        filter: Option<&str>,
    ) -> Result<Vec<(usize, SweepPoint)>, SweepError> {
        if let Some(f) = filter {
            for needle in f.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                if !self.points.iter().any(|(_, p)| p.key().contains(needle)) {
                    return Err(SweepError {
                        field: Some("--filter".to_string()),
                        message: format!(
                            "'{needle}' matches none of the {} point keys; matchable \
                             components: {}",
                            self.points.len(),
                            self.matchable_components()
                        ),
                    });
                }
            }
        }
        Ok(self.selected(filter))
    }

    /// The key components `--filter` can substring-match in this grid,
    /// with their actual axis values (`seed={1,2} spacing={1000} ...`).
    fn matchable_components(&self) -> String {
        let list = |name: &str, values: Vec<String>| format!("{name}={{{}}}", values.join(","));
        let mut out = vec![
            list("seed", self.spec.seeds.iter().map(|v| v.to_string()).collect()),
            list("spacing", self.spec.spacings.iter().map(|v| v.to_string()).collect()),
            list("ctx", self.spec.contexts.iter().map(|v| v.to_string()).collect()),
            list("mem", self.spec.mem_latencies.iter().map(|v| v.to_string()).collect()),
        ];
        if !self.spec.vpredict_entries.is_empty() {
            out.push(list(
                "vp",
                self.spec.vpredict_entries.iter().map(|v| v.to_string()).collect(),
            ));
        }
        if !self.spec.memory_models.is_empty() {
            out.push(list(
                "mm",
                self.spec.memory_models.iter().map(|&m| memory_model_name(m)).collect(),
            ));
        }
        out.join(" ")
    }

    /// The snapshot key of one seed's recording.
    pub fn trace_key(&self, seed: u64) -> TraceKey {
        let mut cfg = self.scale.tpcc();
        cfg.seed = seed;
        let count = if self.spec.count > 0 {
            self.spec.count
        } else {
            instances(self.spec.benchmark, self.scale)
        };
        TraceKey { cfg, txn: self.spec.benchmark, count }
    }
}

/// Renders one JSONL row. Field order is fixed and the report JSON is
/// the canonical compact encoding, so the stream is byte-identical for
/// any worker count, any cache temperature, and across resumes.
fn render_row(point: &SweepPoint, fingerprint: u64, report: &SimReport) -> String {
    let report_json = serde_json::to_string(report).expect("report serializes");
    format!(
        "{{\"point\":\"{}\",\"seed\":{},\"spacing\":{},\"contexts\":{},\"mem_latency\":{},\
         \"fingerprint\":\"{fingerprint:016x}\",\"total_cycles\":{},\"report\":{report_json}}}",
        point.key(),
        point.seed,
        point.spacing,
        point.contexts,
        point.mem_latency,
        report.total_cycles,
    )
}

/// Result of validating an existing row file for `--resume`: how many
/// leading rows are intact and in expected order, and their cycle counts
/// (fed into the aggregates without re-running the points).
struct ResumState {
    /// Valid leading rows (also the index of the first point to run).
    rows: usize,
    /// Byte length of the valid prefix.
    bytes: usize,
    /// `total_cycles` of each valid row, in order.
    cycles: Vec<u64>,
}

/// Validates `text` against the expected point sequence. A row that
/// fails to parse, carries the wrong point key, or ends without a
/// newline (a torn tail from `kill -9`) ends the valid prefix.
fn validate_rows(text: &str, expected: &[(usize, SweepPoint)]) -> ResumState {
    let mut state = ResumState { rows: 0, bytes: 0, cycles: Vec::new() };
    let mut offset = 0;
    for line in text.split_inclusive('\n') {
        if !line.ends_with('\n') {
            break; // torn tail
        }
        if state.rows >= expected.len() {
            break; // stale rows beyond this grid — truncate them
        }
        let Ok(v) = serde::parse(line) else { break };
        let Value::Object(pairs) = &v else { break };
        let get = |k: &str| pairs.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let Some(Value::Str(point)) = get("point") else { break };
        let Some(Value::Int(cycles)) = get("total_cycles") else { break };
        if *point != expected[state.rows].1.key() || *cycles < 0 {
            break;
        }
        offset += line.len();
        state.cycles.push(*cycles as u64);
        state.rows += 1;
        state.bytes = offset;
    }
    state
}

/// Peak resident-set size of this process in kilobytes, from
/// `/proc/self/status` `VmHWM` (0 where unavailable).
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
        }
    }
    0
}

/// Running per-configuration aggregate across seeds.
#[derive(Debug, Clone, Copy, Serialize)]
struct ConfigAgg {
    spacing: u64,
    contexts: u8,
    mem_latency: u64,
    points: usize,
    mean_cycles: f64,
    min_cycles: u64,
    max_cycles: u64,
}

/// The `sweep` section of `BENCH_suite.json`.
#[derive(Serialize)]
struct BenchSweep {
    name: String,
    scale: &'static str,
    jobs: usize,
    grid_points: usize,
    selected_points: usize,
    resumed_points: usize,
    executed_points: usize,
    wall_s: f64,
    points_per_hour: f64,
    peak_rss_kb: u64,
    total_sim_cycles: u64,
    baseline_sample: usize,
    baseline_wall_s: f64,
    baseline_points_per_hour: f64,
    speedup_vs_baseline: f64,
}

/// Everything `suite sweep` accepts on its command line.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// The grid file.
    pub spec_path: PathBuf,
    /// Workload scale override (`--scale`; the grid itself has no scale).
    pub scale: Scale,
    /// Worker threads.
    pub jobs: usize,
    /// Artifact directory (rows + summary land here).
    pub out_dir: PathBuf,
    /// Snapshot cache directory; `None` after `--no-cache`.
    pub trace_dir: Option<PathBuf>,
    /// Comma-separated point-key substrings.
    pub filter: Option<String>,
    /// Resume a partial row file instead of restarting.
    pub resume: bool,
    /// Where the `sweep` bench section is merged.
    pub bench_path: PathBuf,
    /// Points to measure the one-simulation-per-job equivalent on
    /// (0 disables the comparison).
    pub baseline_sample: usize,
    /// Suppress the summary table on stdout.
    pub quiet: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            spec_path: PathBuf::new(),
            scale: Scale::Paper,
            jobs: JobPool::available(),
            out_dir: PathBuf::from("results"),
            trace_dir: Some(PathBuf::from("traces")),
            filter: None,
            resume: false,
            bench_path: PathBuf::from("BENCH_suite.json"),
            baseline_sample: 8,
            quiet: false,
        }
    }
}

/// What a sweep run produced (the verb prints from this; tests assert
/// on it).
pub struct SweepOutcome {
    /// Path of the JSONL row stream.
    pub rows_path: PathBuf,
    /// Path of the aggregate summary artifact.
    pub summary_path: PathBuf,
    /// Rows taken from a previous run via `--resume`.
    pub resumed_points: usize,
    /// Points simulated by this run.
    pub executed_points: usize,
    /// Simulated cycles across executed points.
    pub total_sim_cycles: u64,
    /// Wall time of the batched run, in seconds.
    pub wall_s: f64,
    /// The human-readable summary table.
    pub summary_text: String,
}

/// Runs a sweep end to end: resume-validate, batch per seed, stream
/// rows, aggregate, and write the summary artifact. Returns an error
/// string suitable for stderr.
pub fn run_sweep(plan: &SweepPlan, opts: &SweepOptions) -> Result<SweepOutcome, String> {
    let selected = plan.selected(opts.filter.as_deref());
    if selected.is_empty() {
        return Err(format!(
            "no point matches --filter {:?} (grid has {} points)",
            opts.filter.as_deref().unwrap_or(""),
            plan.spec.total_points()
        ));
    }
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.out_dir.display()))?;
    let rows_path = opts.out_dir.join(format!("sweep_{}.jsonl", plan.spec.name));
    let summary_path = opts.out_dir.join(format!("sweep_{}_summary.json", plan.spec.name));

    // --resume: keep the longest valid prefix of an existing row file.
    let mut resumed_cycles: Vec<u64> = Vec::new();
    if opts.resume {
        if let Ok(text) = std::fs::read_to_string(&rows_path) {
            let state = validate_rows(&text, &selected);
            if state.bytes < text.len() {
                eprintln!(
                    "resume: truncating {} byte(s) of torn/stale tail after {} valid row(s)",
                    text.len() - state.bytes,
                    state.rows
                );
                std::fs::write(&rows_path, &text.as_bytes()[..state.bytes])
                    .map_err(|e| format!("truncate {}: {e}", rows_path.display()))?;
            } else if state.rows > 0 {
                eprintln!("resume: {} valid row(s) kept", state.rows);
            }
            resumed_cycles = state.cycles;
        }
    } else {
        // A fresh run never appends to stale rows.
        let _ = std::fs::remove_file(&rows_path);
    }
    let resumed_points = resumed_cycles.len();
    let todo = &selected[resumed_points..];

    let mut rows_file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&rows_path)
        .map_err(|e| format!("open {}: {e}", rows_path.display()))?;

    let store = HarnessStore::new(opts.trace_dir.clone(), true);
    let pool = JobPool::new(opts.jobs);

    // Aggregates fold in resumed rows first, so the summary is the same
    // whether the run was interrupted or not.
    let mut aggs: Vec<(usize, Vec<u64>)> = Vec::new(); // (config idx, cycles per seed-point)
    let mut fold = |ci: usize, cycles: u64| match aggs.iter_mut().find(|(i, _)| *i == ci) {
        Some((_, v)) => v.push(cycles),
        None => aggs.push((ci, vec![cycles])),
    };
    for ((ci, _), &cycles) in selected.iter().zip(&resumed_cycles) {
        fold(*ci, cycles);
    }

    let start = Instant::now();
    let mut executed = 0usize;
    let mut total_sim_cycles = 0u64;
    // Seed-major batching: each contiguous run of same-seed points maps
    // its trace once and fans its configs across the pool.
    let mut i = 0;
    while i < todo.len() {
        let seed = todo[i].1.seed;
        let mut j = i;
        while j < todo.len() && todo[j].1.seed == seed {
            j += 1;
        }
        let group = &todo[i..j];
        let programs = store.programs(&plan.trace_key(seed));
        let jobs: Vec<Box<dyn FnOnce() -> std::sync::Arc<SimReport> + Send + '_>> = group
            .iter()
            .map(|(ci, _)| {
                let (cfg, json) = plan.config(*ci);
                let programs = programs.clone();
                let store = &store;
                let job: Box<dyn FnOnce() -> std::sync::Arc<SimReport> + Send + '_> =
                    Box::new(move || store.simulate_keyed(&programs.tls, cfg, json));
                job
            })
            .collect();
        let reports = pool.run(jobs);
        let mut chunk = String::new();
        for ((ci, point), report) in group.iter().zip(&reports) {
            chunk.push_str(&render_row(point, programs.tls.fingerprint(), report.as_ref()));
            chunk.push('\n');
            fold(*ci, report.total_cycles);
            total_sim_cycles += report.total_cycles;
            executed += 1;
        }
        rows_file
            .write_all(chunk.as_bytes())
            .map_err(|e| format!("append {}: {e}", rows_path.display()))?;
        i = j;
    }
    rows_file.flush().map_err(|e| format!("flush {}: {e}", rows_path.display()))?;
    let wall_s = start.elapsed().as_secs_f64();

    // Aggregate summary, in config (grid) order.
    let mut summary: Vec<ConfigAgg> = Vec::new();
    let mut order: Vec<usize> = aggs.iter().map(|(ci, _)| *ci).collect();
    order.sort_unstable();
    for ci in order {
        let cycles = &aggs.iter().find(|(i, _)| *i == ci).expect("present").1;
        let (cfg, _) = plan.config(ci);
        let spacing = match cfg.subthreads.spacing {
            SpacingPolicy::Every(n) => n,
            SpacingPolicy::EvenDivision => 0,
        };
        let sum: u64 = cycles.iter().sum();
        summary.push(ConfigAgg {
            spacing,
            contexts: cfg.subthreads.contexts,
            mem_latency: cfg.mem.mem_min_latency,
            points: cycles.len(),
            mean_cycles: sum as f64 / cycles.len() as f64,
            min_cycles: *cycles.iter().min().expect("non-empty"),
            max_cycles: *cycles.iter().max().expect("non-empty"),
        });
    }
    let mut summary_text = String::new();
    use std::fmt::Write as _;
    writeln!(
        summary_text,
        "{:<10} {:>8} {:>6} {:>6} {:>14} {:>14} {:>14}",
        "spacing", "ctx", "mem", "seeds", "mean cycles", "min", "max"
    )
    .expect("write to string");
    for a in &summary {
        writeln!(
            summary_text,
            "{:<10} {:>8} {:>6} {:>6} {:>14.0} {:>14} {:>14}",
            a.spacing,
            a.contexts,
            a.mem_latency,
            a.points,
            a.mean_cycles,
            a.min_cycles,
            a.max_cycles
        )
        .expect("write to string");
    }
    let mut summary_json = serde_json::to_string_pretty(&summary).expect("serialize summary");
    summary_json.push('\n');
    std::fs::write(&summary_path, summary_json)
        .map_err(|e| format!("write {}: {e}", summary_path.display()))?;

    Ok(SweepOutcome {
        rows_path,
        summary_path,
        resumed_points,
        executed_points: executed,
        total_sim_cycles,
        wall_s,
        summary_text,
    })
}

/// The one-simulation-per-job equivalent of one point: exactly what the
/// pre-batching warm path cost — read the snapshot file, decode every
/// op into owned buffers, fingerprint both programs, simulate, and
/// persist the report container with an fsync. Returns the simulated
/// cycles (so the caller can sanity-check against the batched rows).
fn baseline_point(
    trace_path: &Path,
    key_hash: u64,
    cfg: &CmpConfig,
    scratch: &Path,
    idx: usize,
) -> Result<u64, String> {
    let bytes = std::fs::read(trace_path)
        .map_err(|e| format!("baseline read {}: {e}", trace_path.display()))?;
    let pair = codec::decode_pair_file(&bytes, key_hash)
        .map_err(|e| format!("baseline decode {}: {e}", trace_path.display()))?;
    let programs = StoredPrograms::new(pair);
    let report =
        CmpSimulator::new(*cfg).run_view(&programs.tls.view(), RunOptions::checked_default(), None);
    let json = serde_json::to_string(&report).expect("report serializes");
    let container = encode_container(KIND_SIM_REPORT, key_hash ^ idx as u64, json.as_bytes());
    let path = scratch.join(format!("{idx}.rpt"));
    std::fs::File::create(&path)
        .and_then(|mut f| {
            f.write_all(&container)?;
            f.sync_all()
        })
        .map_err(|e| format!("baseline write {}: {e}", path.display()))?;
    Ok(report.total_cycles)
}

/// Measures the one-simulation-per-job equivalent on the first `sample`
/// selected points. Returns `(points timed, wall seconds)`; `(0, 0.0)`
/// when disabled, cache-less, or nothing is on disk to read.
fn measure_baseline(
    plan: &SweepPlan,
    opts: &SweepOptions,
    selected: &[(usize, SweepPoint)],
) -> Result<(usize, f64), String> {
    let Some(trace_dir) = &opts.trace_dir else { return Ok((0, 0.0)) };
    let sample = opts.baseline_sample.min(selected.len());
    if sample == 0 {
        return Ok((0, 0.0));
    }
    let scratch = opts.out_dir.join(format!(".sweep_{}_baseline", plan.spec.name));
    std::fs::create_dir_all(&scratch)
        .map_err(|e| format!("cannot create {}: {e}", scratch.display()))?;
    let start = Instant::now();
    for (idx, (ci, point)) in selected[..sample].iter().enumerate() {
        let key = plan.trace_key(point.seed);
        let trace_path = trace_dir.join(key.file_name());
        let (cfg, _) = plan.config(*ci);
        baseline_point(&trace_path, key.hash(), cfg, &scratch, idx)?;
    }
    let wall = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&scratch);
    Ok((sample, wall))
}

/// Merges `section` into the JSON object at `path` under the `sweep`
/// key, preserving every other key (so a sweep after a suite run
/// augments `BENCH_suite.json` instead of clobbering it).
fn merge_bench_section(path: &Path, section: &BenchSweep) -> Result<(), String> {
    let section_json = serde_json::to_string(section).expect("bench section serializes");
    let section_value =
        serde::parse(&section_json).map_err(|e| format!("bench section reparse: {}", e.0))?;
    let mut pairs = match std::fs::read_to_string(path).ok().and_then(|t| serde::parse(&t).ok()) {
        Some(Value::Object(pairs)) => pairs,
        _ => Vec::new(),
    };
    pairs.retain(|(k, _)| k != "sweep");
    pairs.push(("sweep".to_string(), section_value));
    let mut out = String::new();
    Value::Object(pairs).write(&mut out, Some(2), 0);
    out.push('\n');
    std::fs::write(path, out).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Parses the `suite sweep` command line.
pub fn parse_sweep_args(args: &[String]) -> Result<SweepOptions, String> {
    let mut opts = SweepOptions::default();
    let mut spec_path = None;
    let mut it = args.iter().peekable();
    let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                 flag: &str|
     -> Result<String, String> {
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                opts.scale = match value(&mut it, "--scale")?.as_str() {
                    "paper" => Scale::Paper,
                    "test" => Scale::Test,
                    other => return Err(format!("unknown scale '{other}' (use: paper, test)")),
                }
            }
            "--jobs" => {
                let v = value(&mut it, "--jobs")?;
                opts.jobs = v.parse().map_err(|_| format!("--jobs needs a number, got '{v}'"))?;
            }
            "--filter" => opts.filter = Some(value(&mut it, "--filter")?),
            "--out" => opts.out_dir = PathBuf::from(value(&mut it, "--out")?),
            "--traces" => opts.trace_dir = Some(PathBuf::from(value(&mut it, "--traces")?)),
            "--no-cache" => opts.trace_dir = None,
            "--resume" => opts.resume = true,
            "--bench" => opts.bench_path = PathBuf::from(value(&mut it, "--bench")?),
            "--baseline-sample" => {
                let v = value(&mut it, "--baseline-sample")?;
                opts.baseline_sample = v
                    .parse()
                    .map_err(|_| format!("--baseline-sample needs a number, got '{v}'"))?;
            }
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => return Err(crate::suite::USAGE.to_string()),
            path if spec_path.is_none() && !path.starts_with("--") => {
                spec_path = Some(PathBuf::from(path));
            }
            other => return Err(format!("unknown argument '{other}'\n{}", crate::suite::USAGE)),
        }
    }
    opts.spec_path = spec_path
        .ok_or_else(|| format!("suite sweep: which grid file?\n{}", crate::suite::USAGE))?;
    Ok(opts)
}

/// The `suite sweep <grid.json>` verb. Returns the process exit code.
pub fn run_sweep_verb(args: &[String]) -> i32 {
    let opts = match parse_sweep_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let src = match std::fs::read_to_string(&opts.spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: read {}: {e}", opts.spec_path.display());
            return 1;
        }
    };
    let spec = match SweepSpec::parse(&src) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{}: {e}", opts.spec_path.display());
            eprintln!("valid fields:");
            for (name, what) in SweepSpec::valid_fields() {
                eprintln!("  {name:<16} {what}");
            }
            return 2;
        }
    };
    let plan = SweepPlan::new(spec, opts.scale);
    // A filter matching nothing is a usage error (exit 2), not an empty
    // row file masquerading as a finished sweep.
    let selected = match plan.selected_checked(opts.filter.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("suite sweep: {e}");
            return 2;
        }
    };
    let out = match run_sweep(&plan, &opts) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    if !opts.quiet {
        print!("{}", out.summary_text);
    }
    eprintln!(
        "sweep {}: {} point(s) ({} resumed) in {:.3}s — {:.0} points/hour, peak RSS {} kB",
        plan.spec.name,
        out.resumed_points + out.executed_points,
        out.resumed_points,
        out.wall_s,
        3600.0 * out.executed_points as f64 / out.wall_s.max(1e-9),
        peak_rss_kb(),
    );
    eprintln!("wrote {}", out.rows_path.display());
    eprintln!("wrote {}", out.summary_path.display());

    let (baseline_sample, baseline_wall_s) = match measure_baseline(&plan, &opts, &selected) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("warning: baseline comparison skipped: {e}");
            (0, 0.0)
        }
    };
    let points_per_hour = 3600.0 * out.executed_points as f64 / out.wall_s.max(1e-9);
    let baseline_points_per_hour = if baseline_sample > 0 {
        3600.0 * baseline_sample as f64 / baseline_wall_s.max(1e-9)
    } else {
        0.0
    };
    let speedup = if baseline_points_per_hour > 0.0 {
        points_per_hour / baseline_points_per_hour
    } else {
        0.0
    };
    if baseline_sample > 0 {
        eprintln!(
            "one-sim-per-job equivalent: {:.0} points/hour over {} sample point(s) \
             ({speedup:.2}x batched speedup)",
            baseline_points_per_hour, baseline_sample
        );
    }
    let section = BenchSweep {
        name: plan.spec.name.clone(),
        scale: opts.scale.name(),
        jobs: opts.jobs,
        grid_points: plan.spec.total_points(),
        selected_points: selected.len(),
        resumed_points: out.resumed_points,
        executed_points: out.executed_points,
        wall_s: out.wall_s,
        points_per_hour,
        peak_rss_kb: peak_rss_kb(),
        total_sim_cycles: out.total_sim_cycles,
        baseline_sample,
        baseline_wall_s,
        baseline_points_per_hour,
        speedup_vs_baseline: speedup,
    };
    if let Err(e) = merge_bench_section(&opts.bench_path, &section) {
        eprintln!("error: {e}");
        return 1;
    }
    eprintln!("merged sweep section into {}", opts.bench_path.display());
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_src() -> &'static str {
        r#"{
            "name": "demo",
            "benchmark": "payment",
            "count": 1,
            "seeds": [1, 2],
            "spacings": [1000, 5000],
            "contexts": [2, 8],
            "mem_latencies": [75]
        }"#
    }

    #[test]
    fn parses_a_grid() {
        let spec = SweepSpec::parse(grid_src()).expect("parse");
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.benchmark, Transaction::Payment);
        assert_eq!(spec.total_points(), 8);
    }

    #[test]
    fn rejects_bad_grids() {
        assert!(SweepSpec::parse("not json").is_err());
        assert!(SweepSpec::parse(r#"{"name":"x"}"#).is_err(), "empty axes");
        let bad_ctx = grid_src().replace("[2, 8]", "[0]");
        assert!(SweepSpec::parse(&bad_ctx).is_err(), "context 0");
        let bad_bench = grid_src().replace("payment", "bogus");
        assert!(SweepSpec::parse(&bad_bench).is_err(), "unknown benchmark");
        let unknown = grid_src().replace("\"count\"", "\"frobnicate\"");
        assert!(SweepSpec::parse(&unknown).is_err(), "unknown field");
    }

    #[test]
    fn points_are_seed_major_and_filterable() {
        let plan = SweepPlan::new(SweepSpec::parse(grid_src()).unwrap(), Scale::Test);
        let all = plan.selected(None);
        assert_eq!(all.len(), 8);
        // Seed-major: the first half is seed 1, the second seed 2.
        assert!(all[..4].iter().all(|(_, p)| p.seed == 1));
        assert!(all[4..].iter().all(|(_, p)| p.seed == 2));
        // Config indices repeat identically across seeds.
        let firsts: Vec<usize> = all[..4].iter().map(|(ci, _)| *ci).collect();
        let seconds: Vec<usize> = all[4..].iter().map(|(ci, _)| *ci).collect();
        assert_eq!(firsts, seconds);
        let filtered = plan.selected(Some("seed=2/spacing=5000"));
        assert_eq!(filtered.len(), 2);
        assert!(filtered.iter().all(|(_, p)| p.seed == 2 && p.spacing == 5000));
    }

    #[test]
    fn resume_validation_keeps_the_valid_prefix_only() {
        let plan = SweepPlan::new(SweepSpec::parse(grid_src()).unwrap(), Scale::Test);
        let pts = plan.selected(None);
        let row = |i: usize, cycles: u64| {
            format!("{{\"point\":\"{}\",\"total_cycles\":{cycles}}}\n", pts[i].1.key())
        };
        // Two good rows, then a torn third.
        let text = format!("{}{}{}", row(0, 10), row(1, 20), "{\"point\":\"seed=");
        let state = validate_rows(&text, &pts);
        assert_eq!(state.rows, 2);
        assert_eq!(state.cycles, vec![10, 20]);
        assert_eq!(state.bytes, row(0, 10).len() + row(1, 20).len());
        // A wrong-order row ends the prefix even though it parses.
        let text = format!("{}{}", row(1, 20), row(0, 10));
        assert_eq!(validate_rows(&text, &pts).rows, 0);
        // Garbage is rejected outright.
        assert_eq!(validate_rows("nonsense\n", &pts).rows, 0);
    }

    #[test]
    fn vpredict_axis_is_opt_in() {
        // Absent axis: keys and point count match the pre-axis layout.
        let plan = SweepPlan::new(SweepSpec::parse(grid_src()).unwrap(), Scale::Test);
        assert!(plan.selected(None).iter().all(|(_, p)| !p.key().contains("/vp=")));

        // Present axis: the product grows and keys carry the suffix.
        let src = grid_src().replace(
            "\"mem_latencies\": [75]",
            "\"mem_latencies\": [75],\n\"vpredict_entries\": [0, 1024]",
        );
        let spec = SweepSpec::parse(&src).expect("parse with axis");
        assert_eq!(spec.total_points(), 16);
        let plan = SweepPlan::new(spec, Scale::Test);
        let pts = plan.selected(None);
        assert!(pts.iter().all(|(_, p)| p.key().contains("/vp=")));
        let filtered = plan.selected(Some("/vp=1024"));
        assert_eq!(filtered.len(), 8);
        // vp=0 leaves the predictor off; vp=1024 turns it on.
        let off = pts.iter().find(|(_, p)| p.vpredict_entries == Some(0)).unwrap();
        let on = pts.iter().find(|(_, p)| p.vpredict_entries == Some(1024)).unwrap();
        assert!(!plan.config(off.0).0.vpredict.enabled);
        let on_cfg = plan.config(on.0).0;
        assert!(on_cfg.vpredict.enabled);
        assert_eq!(on_cfg.vpredict.entries, 1024);

        // Non-power-of-two sizes are rejected.
        let bad = grid_src().replace(
            "\"mem_latencies\": [75]",
            "\"mem_latencies\": [75],\n\"vpredict_entries\": [48]",
        );
        assert!(SweepSpec::parse(&bad).is_err());
    }

    #[test]
    fn memory_model_axis_is_opt_in() {
        // Absent axis: keys and point count match the pre-axis layout.
        let plan = SweepPlan::new(SweepSpec::parse(grid_src()).unwrap(), Scale::Test);
        assert!(plan.selected(None).iter().all(|(_, p)| !p.key().contains("/mm=")));

        // Present axis: the product grows and keys carry the suffix.
        let src = grid_src().replace(
            "\"mem_latencies\": [75]",
            "\"mem_latencies\": [75],\n\"memory_models\": [\"sc\", \"tso8\"]",
        );
        let spec = SweepSpec::parse(&src).expect("parse with axis");
        assert_eq!(spec.total_points(), 16);
        let plan = SweepPlan::new(spec, Scale::Test);
        let pts = plan.selected(None);
        assert!(pts.iter().all(|(_, p)| p.key().contains("/mm=")));
        let filtered = plan.selected(Some("/mm=tso8"));
        assert_eq!(filtered.len(), 8);
        // sc keeps the SC baseline; tso8 configures an 8-entry buffer.
        let sc = pts.iter().find(|(_, p)| p.memory_model == Some(MemoryModel::Sc)).unwrap();
        let tso = pts
            .iter()
            .find(|(_, p)| p.memory_model == Some(MemoryModel::Tso { buffer_entries: 8 }))
            .unwrap();
        assert_eq!(plan.config(sc.0).0.memory_model, MemoryModel::Sc);
        assert_eq!(plan.config(tso.0).0.memory_model, MemoryModel::Tso { buffer_entries: 8 });

        // Unknown model names are rejected.
        let bad = grid_src().replace(
            "\"mem_latencies\": [75]",
            "\"mem_latencies\": [75],\n\"memory_models\": [\"psc\"]",
        );
        assert!(SweepSpec::parse(&bad).is_err());
        assert!(parse_memory_model("tso0").is_none(), "zero-entry buffer");
        assert!(parse_memory_model("tso257").is_none(), "over the cap");
    }

    #[test]
    fn zero_match_filter_is_a_typed_error() {
        let plan = SweepPlan::new(SweepSpec::parse(grid_src()).unwrap(), Scale::Test);
        // A live needle passes through unchanged.
        let ok = plan.selected_checked(Some("seed=2")).expect("matching filter");
        assert_eq!(ok, plan.selected(Some("seed=2")));
        // A dead needle errors even when another needle matches — a
        // typo'd component must never silently shrink the grid.
        let err = plan.selected_checked(Some("seed=2,spacing=9999")).unwrap_err();
        assert_eq!(err.field.as_deref(), Some("--filter"));
        assert!(err.message.contains("spacing=9999"), "{err}");
        assert!(err.message.contains("spacing={1000,5000}"), "lists matchable values: {err}");
        assert!(!err.message.contains("vp={"), "no vp axis in this grid: {err}");
        // No filter, no error.
        assert_eq!(plan.selected_checked(None).expect("unfiltered").len(), 8);
    }

    #[test]
    fn config_json_is_interned_and_canonical() {
        let plan = SweepPlan::new(SweepSpec::parse(grid_src()).unwrap(), Scale::Test);
        let (cfg, json) = plan.config(0);
        let mut fresh = String::new();
        cfg.serialize(&mut fresh);
        assert_eq!(json, fresh);
        // Distinct configs serialize distinctly (the cache key depends
        // on it).
        let (_, other) = plan.config(1);
        assert_ne!(json, other);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_kb() > 0);
        }
    }

    #[test]
    fn parse_args_round_trips() {
        let args: Vec<String> = ["grid.json", "--scale", "test", "--jobs", "3", "--resume"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_sweep_args(&args).expect("parse");
        assert_eq!(o.spec_path, PathBuf::from("grid.json"));
        assert_eq!(o.scale, Scale::Test);
        assert_eq!(o.jobs, 3);
        assert!(o.resume);
        assert!(parse_sweep_args(&["--bogus".to_string()]).is_err());
        assert!(parse_sweep_args(&[]).is_err(), "grid file required");
    }
}
