//! The declarative workload language: JSON specs compiled to trace
//! programs.
//!
//! A [`WorkloadSpec`] describes a synthetic key-value workload over one
//! MiniDB table plus a secondary index: an operation mix (point reads,
//! point updates, predicate-filtered range scans), key skew via a seeded
//! Zipfian sampler, scan lengths and think time. [`compile`] *executes*
//! the spec against a fresh database twice — once with the engine
//! unoptimized and the recorder in sequential mode, once fully optimized
//! in TLS mode — producing the `(plain, tls)` program pair every other
//! benchmark records.
//!
//! Range scans are speculatively parallelized the way the paper
//! parallelized the DELIVERY outer loop: the scan splits into chunks of
//! `rows_per_epoch` keys, each chunk becomes one epoch, and every epoch
//! (a) reads its key range through a [`RangeScan`] with a field
//! predicate, (b) probes the secondary index for each qualifying row,
//! (c) performs `colliders_per_epoch` Zipfian point updates — the writes
//! that collide with other epochs' reads when skew concentrates the key
//! stream — and (d) read-modify-writes a shared aggregate cell near its
//! end, the position-correlated dependence sub-threads contain. Scan
//! epochs are stamped with [`SCAN_LOOP_MODULE`] so the simulator's
//! `scan_epochs` / `scan_epoch_ops` report fields attribute them.
//!
//! Spec parsing is strict: unknown fields and out-of-range values return
//! a typed [`SpecError`] carrying the offending field name and its line
//! in the source text, plus the full list of valid fields — the `suite
//! workload` verb prints these and exits 2, matching the probe binary's
//! unknown-benchmark convention.

use serde::{Serialize, Value};
use std::fmt;
use tls_minidb::{
    BTree, CmpOp, Db, Env, FieldPred, FieldWidth, LocalLog, OptLevel, RangeScan, SecondaryIndex,
};
use tls_trace::{Pc, TraceProgram, SCAN_LOOP_MODULE};

/// PC module of sequential workload operations and the base table.
pub const WORKLOAD_MODULE: u16 = 0x70;
/// PC module of the secondary index tree.
pub const WORKLOAD_INDEX_MODULE: u16 = 0x71;

// Sites within WORKLOAD_MODULE.
const READ: u16 = 1;
const UPDATE: u16 = 2;
const THINK: u16 = 3;
const COMMIT: u16 = 4;

// Sites within SCAN_LOOP_MODULE (the parallelized scan body).
const SPAWN: u16 = 0;
const ROW: u16 = 1;
const PROBE: u16 = 2;
const COLLIDE: u16 = 3;
const AGG: u16 = 4;

/// Row layout: `val: u64` at offset 0, `cat: u32` at offset 8; the rest
/// of the row is payload the scans read through.
const VAL_OFF: u64 = 0;
const CAT_OFF: u64 = 8;

/// Categories the secondary index partitions rows into.
const CATEGORIES: u64 = 16;

/// Operation-mix weights (relative, need not sum to anything).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MixWeights {
    /// Weight of single-row reads.
    pub point_read: u32,
    /// Weight of single-row updates (with index maintenance).
    pub point_update: u32,
    /// Weight of predicate-filtered range scans (the parallelized op).
    pub range_scan: u32,
}

impl MixWeights {
    fn total(&self) -> u64 {
        self.point_read as u64 + self.point_update as u64 + self.range_scan as u64
    }
}

/// A declarative workload: what `specs/*.json` files deserialize to.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadSpec {
    /// Workload name (artifact file stem; `[A-Za-z0-9_-]+`).
    pub name: String,
    /// RNG seed: identical seeds give byte-identical programs.
    pub seed: u64,
    /// Rows loaded into the base table (keys `0..rows`).
    pub rows: u64,
    /// Bytes per row (16..=256, multiple of 8).
    pub row_bytes: u16,
    /// Transactions recorded back to back.
    pub transactions: usize,
    /// Operation-mix weights.
    pub mix: MixWeights,
    /// Zipfian skew of the key stream: 0.0 = uniform, towards 1.0 =
    /// heavily skewed (must be < 1.0).
    pub zipf_theta: f64,
    /// Keys covered by one range scan.
    pub scan_len: u64,
    /// Keys per speculative epoch within a scan.
    pub rows_per_epoch: u64,
    /// Zipfian point updates each scan epoch performs — the writes that
    /// collide with sibling epochs' reads.
    pub colliders_per_epoch: u32,
    /// Overhead instruction groups of think time between transactions.
    pub think_ops: u32,
}

impl WorkloadSpec {
    /// The default spec: a scan-heavy mix with moderate skew, sized for
    /// sub-second compilation.
    pub fn example() -> WorkloadSpec {
        WorkloadSpec {
            name: "example".to_string(),
            seed: 7,
            rows: 2048,
            row_bytes: 64,
            transactions: 10,
            mix: MixWeights { point_read: 2, point_update: 3, range_scan: 5 },
            zipf_theta: 0.8,
            scan_len: 512,
            rows_per_epoch: 64,
            colliders_per_epoch: 4,
            think_ops: 8,
        }
    }

    /// Shrinks the spec for fast test-scale runs while keeping every
    /// structural invariant (scans still span several epochs).
    pub fn scaled_down(&self) -> WorkloadSpec {
        let mut s = self.clone();
        s.rows = (s.rows / 4).max(256);
        s.transactions = (s.transactions / 2).max(4);
        s.scan_len = (s.scan_len / 4).max(64).min(s.rows);
        s.rows_per_epoch = s.rows_per_epoch.min(s.scan_len / 4).max(1);
        s
    }

    /// Every field a spec file may contain, with a one-line summary
    /// (printed by the `suite workload` verb on a parse error).
    pub fn valid_fields() -> &'static [(&'static str, &'static str)] {
        &[
            ("name", "workload name, [A-Za-z0-9_-]+ (artifact file stem)"),
            ("seed", "RNG seed (unsigned integer)"),
            ("rows", "rows in the base table, >= 16"),
            ("row_bytes", "bytes per row, 16..=256, multiple of 8"),
            ("transactions", "transactions to record, >= 1"),
            ("mix", "object {point_read, point_update, range_scan} of weights"),
            ("zipf_theta", "key skew in [0.0, 1.0)"),
            ("scan_len", "keys per range scan, rows_per_epoch..=rows"),
            ("rows_per_epoch", "keys per speculative scan epoch, >= 1"),
            ("colliders_per_epoch", "point updates per scan epoch"),
            ("think_ops", "think-time overhead groups between transactions"),
        ]
    }

    /// Parses a spec from JSON source text. Unknown fields, type
    /// mismatches and out-of-range values all produce a [`SpecError`]
    /// naming the field and its line in `src`.
    pub fn parse(src: &str) -> Result<WorkloadSpec, SpecError> {
        let value = serde::parse(src).map_err(|e| SpecError {
            field: None,
            line: None,
            message: format!("not JSON: {e}"),
        })?;
        let Value::Object(pairs) = &value else {
            return Err(SpecError {
                field: None,
                line: None,
                message: "spec must be a JSON object".to_string(),
            });
        };
        let mut spec = WorkloadSpec::example();
        let err = |field: &str, message: String| SpecError {
            field: Some(field.to_string()),
            line: line_of(src, field),
            message,
        };
        let as_u64 = |field: &str, v: &Value| match v {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            _ => Err(err(field, "expected an unsigned integer".to_string())),
        };
        for (key, v) in pairs {
            match key.as_str() {
                "name" => match v {
                    Value::Str(s) => spec.name = s.clone(),
                    _ => return Err(err("name", "expected a string".to_string())),
                },
                "seed" => spec.seed = as_u64("seed", v)?,
                "rows" => spec.rows = as_u64("rows", v)?,
                "row_bytes" => {
                    let n = as_u64("row_bytes", v)?;
                    spec.row_bytes = u16::try_from(n)
                        .map_err(|_| err("row_bytes", "value too large".to_string()))?;
                }
                "transactions" => spec.transactions = as_u64("transactions", v)? as usize,
                "mix" => {
                    let Value::Object(mix) = v else {
                        return Err(err("mix", "expected an object of weights".to_string()));
                    };
                    for (mk, mv) in mix {
                        let w = as_u64(mk, mv)? as u32;
                        match mk.as_str() {
                            "point_read" => spec.mix.point_read = w,
                            "point_update" => spec.mix.point_update = w,
                            "range_scan" => spec.mix.range_scan = w,
                            other => {
                                return Err(err(
                                    other,
                                    "unknown mix weight (valid: point_read, point_update, \
                                     range_scan)"
                                        .to_string(),
                                ))
                            }
                        }
                    }
                }
                "zipf_theta" => match v {
                    Value::Float(f) => spec.zipf_theta = *f,
                    Value::Int(i) => spec.zipf_theta = *i as f64,
                    _ => return Err(err("zipf_theta", "expected a number".to_string())),
                },
                "scan_len" => spec.scan_len = as_u64("scan_len", v)?,
                "rows_per_epoch" => spec.rows_per_epoch = as_u64("rows_per_epoch", v)?,
                "colliders_per_epoch" => {
                    spec.colliders_per_epoch = as_u64("colliders_per_epoch", v)? as u32
                }
                "think_ops" => spec.think_ops = as_u64("think_ops", v)? as u32,
                other => {
                    return Err(SpecError {
                        field: Some(other.to_string()),
                        line: line_of(src, other),
                        message: "unknown field".to_string(),
                    })
                }
            }
        }
        spec.validate(src)?;
        Ok(spec)
    }

    /// Checks every value constraint, reporting the first violation with
    /// field and line context (`src` may be empty for in-memory specs).
    pub fn validate(&self, src: &str) -> Result<(), SpecError> {
        let err = |field: &str, message: String| SpecError {
            field: Some(field.to_string()),
            line: line_of(src, field),
            message,
        };
        if self.name.is_empty()
            || self.name.len() > 64
            || !self.name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(err("name", "must be 1..=64 chars of [A-Za-z0-9_-]".to_string()));
        }
        if self.rows < 16 {
            return Err(err("rows", format!("must be >= 16, got {}", self.rows)));
        }
        if self.row_bytes < 16 || self.row_bytes > 256 || !self.row_bytes.is_multiple_of(8) {
            return Err(err(
                "row_bytes",
                format!("must be 16..=256 and a multiple of 8, got {}", self.row_bytes),
            ));
        }
        if self.transactions == 0 {
            return Err(err("transactions", "must be >= 1".to_string()));
        }
        if self.mix.total() == 0 {
            return Err(err("mix", "at least one weight must be positive".to_string()));
        }
        if !(0.0..1.0).contains(&self.zipf_theta) {
            return Err(err(
                "zipf_theta",
                format!("must be in [0.0, 1.0), got {}", self.zipf_theta),
            ));
        }
        if self.rows_per_epoch == 0 {
            return Err(err("rows_per_epoch", "must be >= 1".to_string()));
        }
        if self.scan_len < self.rows_per_epoch || self.scan_len > self.rows {
            return Err(err(
                "scan_len",
                format!(
                    "must be in rows_per_epoch..=rows ({}..={}), got {}",
                    self.rows_per_epoch, self.rows, self.scan_len
                ),
            ));
        }
        Ok(())
    }
}

/// First line (1-based) on which `"field"` appears in the source text;
/// `None` when the field is absent (defaulted or in-memory specs).
fn line_of(src: &str, field: &str) -> Option<usize> {
    let needle = format!("\"{field}\"");
    let pos = src.find(&needle)?;
    Some(src[..pos].bytes().filter(|&b| b == b'\n').count() + 1)
}

/// A typed spec failure: which field, where in the file, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The offending field, if the failure is field-specific.
    pub field: Option<String>,
    /// 1-based line of the field in the source text, if it appears.
    pub line: Option<usize>,
    /// What is wrong with it.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.field, self.line) {
            (Some(field), Some(line)) => {
                write!(f, "line {line}: field `{field}`: {}", self.message)
            }
            (Some(field), None) => write!(f, "field `{field}`: {}", self.message),
            _ => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for SpecError {}

// ---------------------------------------------------------------------------
// Zipfian sampler.
// ---------------------------------------------------------------------------

/// Seeded Zipfian key sampler over `0..n` (Gray et al.'s rejection-free
/// method): rank 0 is the hottest key. `theta = 0` degrades to uniform;
/// the same seed always produces the same sequence.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    state: u64,
}

impl Zipf {
    /// A sampler over `0..n` with skew `theta` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `[0, 1)`.
    pub fn new(n: u64, theta: f64, seed: u64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty key space");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = if n > 1 {
            (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan)
        } else {
            0.0
        };
        Zipf { n, theta, alpha, zetan, eta, state: seed }
    }

    /// The next key, in `0..n`. Named like `Iterator::next` on purpose —
    /// the sampler is an infinite stream, but `Option` wrapping would
    /// only add noise at every draw site.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let u = self.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }

    /// A uniform draw in `[0, 1)` from the internal splitmix64 stream.
    fn next_f64(&mut self) -> f64 {
        (splitmix64(&mut self.state) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The generalized harmonic number `sum_{i=1..n} i^-theta`.
fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// The compiler.
// ---------------------------------------------------------------------------

/// A compiled spec: the recorded `(plain, tls)` program pair plus static
/// accounting of what the compiler emitted.
#[derive(Debug)]
pub struct CompiledWorkload {
    /// The sequential-reference recording (unoptimized engine).
    pub plain: TraceProgram,
    /// The TLS recording (optimized engine, scans parallelized).
    pub tls: TraceProgram,
    /// Range-scan transactions in the recorded stream.
    pub scan_transactions: usize,
    /// Point reads + point updates in the recorded stream.
    pub point_transactions: usize,
}

/// Compiles a spec: executes it twice against fresh databases and
/// returns both recordings. Pure — every byte is a function of the spec.
pub fn compile(spec: &WorkloadSpec) -> CompiledWorkload {
    let (plain, scans, points) = record(spec, false);
    let (tls, _, _) = record(spec, true);
    CompiledWorkload { plain, tls, scan_transactions: scans, point_transactions: points }
}

/// The category a row's `val` maps to (index maintenance follows `val`).
/// Locality-preserving on purpose: a `val += 1` update crosses a category
/// boundary ~1/8 of the time, so collider updates migrate index entries
/// at a tolerable rate instead of rewriting the index on every bump.
fn category(val: u64) -> u64 {
    (val / 8) % CATEGORIES
}

/// The secondary-index key of `(cat, primary)`.
fn index_key(cat: u64, primary: u64) -> u64 {
    (cat << 40) | primary
}

struct Run {
    env: Env,
    db: Db,
    base: BTree,
    index: BTree,
    zipf: Zipf,
    rng: u64,
}

impl Run {
    /// One Zipfian key, hottest rank mapped across the table by a fixed
    /// bijection so hot keys are spread over B-tree leaves.
    fn key(&mut self, rows: u64) -> u64 {
        let rank = self.zipf.next();
        rank.wrapping_mul(0x9E37_79B9) % rows
    }
}

fn record(spec: &WorkloadSpec, tls: bool) -> (TraceProgram, usize, usize) {
    let opts = if tls { OptLevel::fully_optimized() } else { OptLevel::none() };
    let mut env = Env::new();
    let db = Db::new(&mut env, opts);
    let base = db.create_tree(&mut env, spec.row_bytes, WORKLOAD_MODULE);
    let index = db.create_tree(&mut env, 8, WORKLOAD_INDEX_MODULE);

    // Load (recording off): keys 0..rows, val seeded from the key, the
    // index entry following the category of val.
    let by_cat = SecondaryIndex::new(index);
    for k in 0..spec.rows {
        let val = k.wrapping_mul(31).wrapping_add(spec.seed);
        let mut row = vec![0u8; spec.row_bytes as usize];
        row[..8].copy_from_slice(&val.to_le_bytes());
        row[8..12].copy_from_slice(&(category(val) as u32).to_le_bytes());
        assert!(base.insert(&mut env, &db.alloc, k, &row), "load keys are distinct");
        assert!(by_cat.insert(&mut env, &db.alloc, index_key(category(val), k), k));
    }

    let mut run = Run {
        env,
        db,
        base,
        index,
        zipf: Zipf::new(spec.rows, spec.zipf_theta, spec.seed ^ 0x5CA1),
        rng: spec.seed ^ 0xACE1,
    };
    let mut scans = 0usize;
    let mut points = 0usize;
    run.env.rec.start(&spec.name, tls);
    let scratch = run.env.alloc(256, 64);
    for _ in 0..spec.transactions {
        run.env.mtr_begin();
        let draw = splitmix64(&mut run.rng) % spec.mix.total();
        if draw < spec.mix.point_read as u64 {
            point_read(&mut run, spec);
            points += 1;
        } else if draw < (spec.mix.point_read + spec.mix.point_update) as u64 {
            point_update(&mut run, spec, Pc::new(WORKLOAD_MODULE, UPDATE), None);
            points += 1;
        } else {
            range_scan(&mut run, spec);
            scans += 1;
        }
        run.env.mtr_end();
        // Think time between transactions (non-speculative).
        run.env.overhead(Pc::new(WORKLOAD_MODULE, THINK), scratch, spec.think_ops as usize);
    }
    (run.env.rec.finish(), scans, points)
}

/// One point read: a B-tree descent plus the row's fields.
fn point_read(run: &mut Run, spec: &WorkloadSpec) {
    let k = run.key(spec.rows);
    let pc = Pc::new(WORKLOAD_MODULE, READ);
    let env = &mut run.env;
    let ra = run.base.get_addr(env, k).expect("loaded key");
    let _val = env.load_u64(pc, ra.offset(VAL_OFF));
    let _cat = env.load_u32(pc, ra.offset(CAT_OFF));
    env.alu(pc, 4);
}

/// One point update: bump `val`, and when its category moves, migrate
/// the secondary-index entry (remove + insert) inside the same
/// mini-transaction — the index-page writes scans collide with.
fn point_update(run: &mut Run, spec: &WorkloadSpec, pc: Pc, local: Option<&mut LocalLog>) {
    let k = run.key(spec.rows);
    let env = &mut run.env;
    let ra = run.base.get_addr(env, k).expect("loaded key");
    let val = env.load_u64(pc, ra.offset(VAL_OFF));
    let new_val = val.wrapping_add(1);
    env.alu(pc, 2);
    env.store_u64(pc, ra.offset(VAL_OFF), new_val);
    let (old_cat, new_cat) = (category(val), category(new_val));
    if old_cat != new_cat {
        let by_cat = SecondaryIndex::new(run.index);
        assert!(by_cat.remove(env, index_key(old_cat, k)), "index entry tracks val");
        assert!(by_cat.insert(env, &run.db.alloc, index_key(new_cat, k), k));
        env.store_u32(pc, ra.offset(CAT_OFF), new_cat as u32);
    }
    run.db.log(env, spec.row_bytes as u64, local);
    run.db.bump_stats(env);
}

/// One range scan, parallelized DELIVERY-OUTER style: each chunk of
/// `rows_per_epoch` keys is one speculative epoch.
fn range_scan(run: &mut Run, spec: &WorkloadSpec) {
    // The scan window, clamped so it always covers scan_len keys.
    let start = run.key(spec.rows).min(spec.rows - spec.scan_len);
    // The predicate keeps roughly half the rows: categories are spread
    // uniformly, so `cat < CATEGORIES/2` halves the chunk (and collider
    // updates migrate rows across the boundary between recordings of
    // later chunks, keeping the filter genuinely data-dependent).
    let pred =
        FieldPred { offset: CAT_OFF, width: FieldWidth::U32, op: CmpOp::Lt, value: CATEGORIES / 2 };
    // Shared match-count cell: every epoch read-modify-writes it near
    // its end (the aggregation dependence sub-threads contain).
    let agg = run.env.alloc(8, 8);
    run.env.mem.poke_u64(agg, 0);

    run.env.rec.begin_parallel();
    let mut lo = start;
    while lo < start + spec.scan_len {
        let hi = (lo + spec.rows_per_epoch).min(start + spec.scan_len);
        run.env.rec.begin_epoch(Pc::new(SCAN_LOOP_MODULE, SPAWN));
        let escratch = run.env.alloc(256, 64);
        let mut local = run.db.opts.per_thread_log.then(|| run.db.local_log(&mut run.env));

        // (a) Read the chunk through the predicate-filtered scan,
        // probing the secondary index for each qualifying row.
        let chunk = RangeScan::new(lo, hi).filter(pred);
        let env = &mut run.env;
        let by_cat = SecondaryIndex::new(run.index);
        let base = run.base;
        let matched = chunk.run(&base, env, Pc::new(SCAN_LOOP_MODULE, ROW), |env, k, ra| {
            let cat = env.load_u32(Pc::new(SCAN_LOOP_MODULE, ROW), ra.offset(CAT_OFF));
            let hit = by_cat.probe(env, Pc::new(SCAN_LOOP_MODULE, PROBE), index_key(cat as u64, k));
            debug_assert_eq!(hit, Some(k), "index entry tracks cat");
            true
        });
        run.env.overhead(Pc::new(SCAN_LOOP_MODULE, ROW), escratch, spec.think_ops as usize);

        // (b) The colliders: Zipfian point updates from inside the scan
        // epoch — with skew, they land in other epochs' chunks.
        for _ in 0..spec.colliders_per_epoch {
            point_update(run, spec, Pc::new(SCAN_LOOP_MODULE, COLLIDE), local.as_mut());
        }

        // (c) Aggregate near the end of the epoch.
        let env = &mut run.env;
        let n = env.load_u64(Pc::new(SCAN_LOOP_MODULE, AGG), agg);
        env.alu(Pc::new(SCAN_LOOP_MODULE, AGG), 2);
        env.store_u64(Pc::new(SCAN_LOOP_MODULE, AGG), agg, n + matched);
        if let Some(buf) = &local {
            run.db.log_commit(&mut run.env, buf);
        }
        run.env.rec.end_epoch();
        lo = hi;
    }
    run.env.rec.end_parallel();

    // Commit-side consumption of the aggregate (sequential).
    let env = &mut run.env;
    let pc = Pc::new(WORKLOAD_MODULE, COMMIT);
    let _total = env.load_u64(pc, agg);
    env.alu(pc, 2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_spec_round_trips_through_json() {
        let spec = WorkloadSpec::example();
        let json = serde_json::to_string_pretty(&spec).expect("spec serializes");
        let parsed = WorkloadSpec::parse(&json).expect("round trip");
        assert_eq!(parsed, spec);
    }

    #[test]
    fn empty_object_gets_every_default() {
        let spec = WorkloadSpec::parse("{}").expect("defaults");
        assert_eq!(spec, WorkloadSpec::example());
    }

    #[test]
    fn unknown_field_reports_name_and_line() {
        let src = "{\n  \"rows\": 64,\n  \"zipf_tehta\": 0.5\n}\n";
        let e = WorkloadSpec::parse(src).unwrap_err();
        assert_eq!(e.field.as_deref(), Some("zipf_tehta"));
        assert_eq!(e.line, Some(3));
        assert!(e.message.contains("unknown field"), "{e}");
    }

    #[test]
    fn out_of_range_values_report_field_context() {
        let e = WorkloadSpec::parse("{\"zipf_theta\": 1.5}").unwrap_err();
        assert_eq!(e.field.as_deref(), Some("zipf_theta"));
        assert_eq!(e.line, Some(1));

        let e = WorkloadSpec::parse("{\"rows\": 4}").unwrap_err();
        assert_eq!(e.field.as_deref(), Some("rows"));

        let e = WorkloadSpec::parse(
            "{\"mix\": {\"point_read\": 0, \"point_update\": 0, \
                                      \"range_scan\": 0}}",
        )
        .unwrap_err();
        assert_eq!(e.field.as_deref(), Some("mix"));

        let e = WorkloadSpec::parse("{\"name\": \"no spaces!\"}").unwrap_err();
        assert_eq!(e.field.as_deref(), Some("name"));
    }

    #[test]
    fn type_mismatch_is_a_typed_error_not_a_panic() {
        let e = WorkloadSpec::parse("{\"rows\": \"many\"}").unwrap_err();
        assert_eq!(e.field.as_deref(), Some("rows"));
        assert!(e.message.contains("unsigned integer"), "{e}");
        let e = WorkloadSpec::parse("not json at all").unwrap_err();
        assert!(e.field.is_none());
    }

    #[test]
    fn zipf_same_seed_same_sequence() {
        let mut a = Zipf::new(1000, 0.9, 42);
        let mut b = Zipf::new(1000, 0.9, 42);
        for _ in 0..500 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = Zipf::new(1000, 0.9, 43);
        let differs = (0..500).any(|_| a.next() != c.next());
        assert!(differs, "different seeds should diverge");
    }

    #[test]
    fn zipf_stays_in_range_and_skews_towards_low_ranks() {
        let n = 500u64;
        let draws = 20_000usize;
        let mass_of_head = |theta: f64| -> f64 {
            let mut z = Zipf::new(n, theta, 9);
            let mut head = 0usize;
            for _ in 0..draws {
                let k = z.next();
                assert!(k < n);
                if k < 10 {
                    head += 1;
                }
            }
            head as f64 / draws as f64
        };
        let uniform = mass_of_head(0.0);
        let skewed = mass_of_head(0.9);
        assert!(uniform < 0.08, "uniform head mass {uniform}");
        assert!(skewed > 3.0 * uniform, "skew should concentrate: {skewed} vs {uniform}");
    }

    #[test]
    fn compile_is_deterministic_and_stamps_scan_epochs() {
        let mut spec = WorkloadSpec::example().scaled_down();
        spec.transactions = 6;
        let a = compile(&spec);
        let b = compile(&spec);
        let enc = |p: &TraceProgram| serde_json::to_string(p).expect("program serializes");
        assert_eq!(enc(&a.tls), enc(&b.tls));
        assert_eq!(enc(&a.plain), enc(&b.plain));

        // The TLS recording carries scan epochs stamped with the scan
        // module; the plain recording has no parallel regions at all.
        let (epochs, ops) = a.tls.epochs_of_module(SCAN_LOOP_MODULE);
        assert!(a.scan_transactions > 0, "mix should draw at least one scan");
        let chunks = spec.scan_len.div_ceil(spec.rows_per_epoch);
        assert_eq!(epochs, a.scan_transactions as u64 * chunks);
        assert!(ops > 0);
        assert_eq!(a.plain.epochs_of_module(SCAN_LOOP_MODULE), (0, 0));
        assert!(
            a.plain.regions.iter().all(|r| matches!(r, tls_trace::Region::Sequential(_))),
            "the plain recording must have no parallel regions"
        );
        assert!(a.tls.total_ops() > 0 && a.plain.total_ops() > 0);
    }

    #[test]
    fn scaled_down_specs_stay_valid() {
        let spec = WorkloadSpec::example().scaled_down();
        spec.validate("").expect("scaled spec valid");
        assert!(spec.rows >= spec.scan_len);
        assert!(spec.scan_len >= spec.rows_per_epoch);
    }
}
