//! Declarative experiment plans.
//!
//! A [`Plan`] names one artifact of the evaluation (`figure5`,
//! `ablations`, …) and knows how to (a) enumerate the workload traces it
//! needs — so the suite can pre-record them through the parallel runner —
//! and (b) produce the artifact: fan its independent (benchmark ×
//! experiment × configuration) simulations across the [`JobPool`],
//! assemble the results **in plan order**, and render both the JSON
//! artifact and the human-readable table the per-figure binaries used to
//! print.
//!
//! Because jobs are pure and results are assembled positionally, a plan's
//! output is byte-identical for any `--jobs` value and for cold or warm
//! snapshot caches.

use crate::eval::{instances, Scale};
use crate::runner::JobPool;
use crate::store::{HarnessStore, KeyedProgram, StoredPrograms, TraceKey};
use std::sync::Arc;
use tls_core::experiment::ExperimentKind;
use tls_core::{CmpConfig, SimReport};
use tls_minidb::Transaction;

/// Everything a plan needs to run.
pub struct PlanCtx<'a> {
    /// Workload scale.
    pub scale: Scale,
    /// The base machine configuration (the paper's 4-CPU chip).
    pub machine: CmpConfig,
    /// Trace-snapshot and simulation-report store.
    pub store: &'a HarnessStore,
    /// The parallel runner.
    pub pool: &'a JobPool,
}

impl PlanCtx<'_> {
    /// The snapshot key of a benchmark at this context's scale.
    pub fn trace_key(&self, txn: Transaction) -> TraceKey {
        TraceKey { cfg: self.scale.tpcc(), txn, count: instances(txn, self.scale) }
    }

    /// The recorded `(plain, tls)` pair of a benchmark (recording or
    /// replaying a snapshot as needed).
    pub fn programs(&self, txn: Transaction) -> Arc<StoredPrograms> {
        self.store.programs(&self.trace_key(txn))
    }

    /// Runs `program` on `cfg` through the report cache.
    pub fn sim(&self, program: &KeyedProgram, cfg: &CmpConfig) -> Arc<SimReport> {
        self.store.simulate(program, cfg)
    }

    /// Runs one Figure-5 experiment on a benchmark — the cached
    /// equivalent of [`tls_core::experiment::run_experiment`].
    pub fn experiment(&self, kind: ExperimentKind, programs: &StoredPrograms) -> Arc<SimReport> {
        let cfg = kind.configure(&self.machine);
        let tls = kind.uses_tls_trace();
        let program = if kind.serialized() {
            programs.serialized(tls)
        } else if tls {
            &programs.tls
        } else {
            &programs.plain
        };
        self.sim(program, &cfg)
    }
}

/// A boxed job for [`JobPool::run`].
pub type Job<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

/// What a plan produces.
pub struct PlanOutput {
    /// The pretty-printed JSON artifact (`results/<name>.json`).
    pub json: String,
    /// The human-readable rendering (`results/<name>.txt` / stdout).
    pub text: String,
    /// Total simulated cycles across every report the plan consumed —
    /// the numerator of the suite's cycles-per-host-second throughput.
    pub sim_cycles: u64,
}

/// One declarative artifact generator.
#[derive(Clone, Copy)]
pub struct Plan {
    /// Artifact name (`figure5`); also the output file stem.
    pub name: &'static str,
    /// One-line description shown by `suite --list`.
    pub title: &'static str,
    /// The workload traces the plan will ask for, in stable order.
    pub traces: fn(&PlanCtx) -> Vec<TraceKey>,
    /// Produces the artifact.
    pub run: fn(&PlanCtx) -> PlanOutput,
}

/// Every plan, in the order the suite runs them.
pub fn all_plans() -> Vec<Plan> {
    vec![
        crate::plans::figure2::plan(),
        crate::plans::figure5::plan(),
        crate::plans::figure6::plan(),
        crate::plans::table2::plan(),
        crate::plans::ablations::plan(),
        crate::plans::scalability::plan(),
        crate::plans::tuning_curve::plan(),
        crate::plans::spec_contrast::plan(),
        crate::plans::pool_pressure::plan(),
        crate::plans::scan_collision::plan(),
        crate::plans::prediction_frontier::plan(),
        crate::plans::memory_order::plan(),
        crate::plans::workload::plan(),
    ]
}

/// Looks up a plan by artifact name.
pub fn find_plan(name: &str) -> Option<Plan> {
    all_plans().into_iter().find(|p| p.name == name)
}

/// Pretty-prints a serializable artifact.
pub fn to_artifact_json<T: serde::Serialize>(rows: &T) -> String {
    let mut json = serde_json::to_string_pretty(rows).expect("serialize artifact");
    json.push('\n');
    json
}
