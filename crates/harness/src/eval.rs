//! Shared evaluation vocabulary: workload scale, per-benchmark instance
//! counts, the paper machine, and terminal rendering of breakdown stacks.
//!
//! These helpers used to live in `tls-bench`; they moved here so the
//! experiment plans (and the `suite` driver) can use them without a
//! dependency cycle. `tls-bench` re-exports them unchanged.

use tls_core::{CmpConfig, SimReport};
use tls_minidb::{TpccConfig, Transaction};

/// Workload scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full single-warehouse TPC-C (the paper's configuration).
    Paper,
    /// Milliseconds-fast scaled-down population.
    Test,
}

impl Scale {
    /// The matching TPC-C configuration.
    pub fn tpcc(self) -> TpccConfig {
        match self {
            Scale::Paper => TpccConfig::paper(),
            Scale::Test => TpccConfig::test(),
        }
    }

    /// The scale's `--scale` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Test => "test",
        }
    }

    /// Parses `--scale` arguments.
    pub fn parse(args: &[String]) -> Scale {
        match args.iter().position(|a| a == "--scale") {
            Some(i) => match args.get(i + 1).map(String::as_str) {
                Some("test") => Scale::Test,
                Some("paper") | None => Scale::Paper,
                Some(other) => panic!("unknown scale '{other}' (use: paper, test)"),
            },
            None => Scale::Paper,
        }
    }
}

/// How many transaction instances each benchmark records.
///
/// Per transaction size at paper scale (small transactions record more
/// instances so runs are not dominated by a single parameter draw); test
/// scale halves the count (minimum one instance) so the fast path is
/// genuinely faster while every benchmark still executes.
pub fn instances(txn: Transaction, scale: Scale) -> usize {
    let base = match txn {
        Transaction::NewOrder => 4,
        Transaction::NewOrder150 => 1,
        Transaction::Delivery => 1,
        Transaction::DeliveryOuter => 1,
        Transaction::StockLevel => 2,
        Transaction::Payment => 6,
        Transaction::OrderStatus => 6,
    };
    match scale {
        Scale::Paper => base,
        Scale::Test => base.div_ceil(2),
    }
}

/// The paper's 4-CPU machine (Table 1 + baseline sub-threads).
pub fn paper_machine() -> CmpConfig {
    let mut cfg = CmpConfig::paper_default();
    // Safety valve: no benchmark should exceed this.
    cfg.max_cycles = 4_000_000_000;
    cfg
}

/// One row of a breakdown table, normalized to a reference cycle count.
pub fn breakdown_row(report: &SimReport, reference: u64) -> String {
    let stack = report.normalized_stack(reference);
    let total: f64 = stack.iter().map(|(_, v)| v).sum();
    let cells: Vec<String> =
        stack.iter().map(|(n, v)| format!("{}={:5.3}", initials(n), v)).collect();
    format!("{} | total={:5.3}", cells.join(" "), total)
}

/// Renders a normalized breakdown as an ASCII stacked bar, 50 characters
/// per 1.0 of normalized time: `I` idle, `F` failed, `L` latch, `S` sync,
/// `M` cache miss, `D` drain stall, `B` busy — the Figure 5 bars in
/// terminal form. An
/// unknown category renders as `?` (with a warning on stderr) rather than
/// aborting the whole harness run.
pub fn render_stack(stack: &[(&'static str, f64)]) -> String {
    const CHARS_PER_UNIT: f64 = 50.0;
    let mut bar = String::new();
    let mut carry = 0.0;
    for (name, value) in stack {
        let glyph = match *name {
            "Idle" => 'I',
            "Failed" => 'F',
            "Latch Stall" => 'L',
            "Sync" => 'S',
            "Cache Miss" => 'M',
            "Drain Stall" => 'D',
            "Busy" => 'B',
            other => {
                eprintln!("warning: unknown breakdown category '{other}', rendering as '?'");
                '?'
            }
        };
        // Carry fractional cells so the bar length tracks the total.
        let exact = value * CHARS_PER_UNIT + carry;
        let cells = exact.floor() as usize;
        carry = exact - cells as f64;
        bar.extend(std::iter::repeat_n(glyph, cells));
    }
    bar
}

/// Four-letter column label of a breakdown category; unknown categories
/// degrade to `"????"` with a warning instead of panicking.
pub fn initials(name: &str) -> &'static str {
    match name {
        "Idle" => "idle",
        "Failed" => "fail",
        "Latch Stall" => "ltch",
        "Sync" => "sync",
        "Cache Miss" => "miss",
        "Drain Stall" => "drai",
        "Busy" => "busy",
        other => {
            eprintln!("warning: unknown breakdown category '{other}', rendering as '????'");
            "????"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses() {
        let args = vec!["--scale".to_string(), "test".to_string()];
        assert_eq!(Scale::parse(&args), Scale::Test);
        assert_eq!(Scale::parse(&[]), Scale::Paper);
    }

    #[test]
    fn test_scale_records_fewer_instances() {
        for txn in Transaction::ALL {
            let paper = instances(txn, Scale::Paper);
            let test = instances(txn, Scale::Test);
            assert!(test >= 1, "{txn:?} must run at least once");
            assert!(test <= paper, "{txn:?} test > paper");
        }
        // The knob is live: multi-instance benchmarks genuinely shrink.
        assert!(
            instances(Transaction::Payment, Scale::Test)
                < instances(Transaction::Payment, Scale::Paper)
        );
        assert!(
            instances(Transaction::NewOrder, Scale::Test)
                < instances(Transaction::NewOrder, Scale::Paper)
        );
    }

    #[test]
    fn render_stack_length_tracks_total() {
        let stack = vec![("Idle", 0.5), ("Busy", 0.5)];
        let bar = render_stack(&stack);
        assert_eq!(bar.len(), 50);
        assert!(bar.starts_with('I') && bar.ends_with('B'));
        let half = vec![("Busy", 0.25)];
        assert_eq!(render_stack(&half).len(), 12);
    }

    #[test]
    fn unknown_category_degrades_instead_of_panicking() {
        let stack = vec![("Busy", 0.1), ("Gremlins", 0.1)];
        let bar = render_stack(&stack);
        assert_eq!(bar.len(), 10);
        assert!(bar.contains('?'));
        assert_eq!(initials("Gremlins"), "????");
    }
}
