//! The **ablations** plan: the design-choice studies of DESIGN.md §5
//! (secondary-violation selectivity, victim-cache capacity, context
//! exhaustion, dependence prediction, L1 sub-thread awareness).

use crate::plan::{to_artifact_json, Job, Plan, PlanCtx, PlanOutput};
use crate::store::TraceKey;
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;
use tls_core::{
    CmpConfig, ExhaustionPolicy, PredictorConfig, SecondaryPolicy, SimReport, SubThreadConfig,
    VPredictConfig,
};
use tls_minidb::Transaction;

#[derive(Serialize)]
struct Entry {
    ablation: &'static str,
    benchmark: &'static str,
    variant: String,
    cycles: u64,
    failed: u64,
    violations_secondary: u64,
    violations_overflow: u64,
    predicted_hits: u64,
    value_mispredicts: u64,
}

/// Which counters a section's text rows show.
enum Style {
    Secondary,
    Victim,
    Exhaustion,
    Predictor,
    L1,
}

struct Spec {
    ablation: &'static str,
    benchmark: Transaction,
    variant: String,
    style: Style,
    cfg: CmpConfig,
}

/// The ablations plan.
pub fn plan() -> Plan {
    Plan { name: "ablations", title: "Design ablations (DESIGN.md §5)", traces, run }
}

fn traces(ctx: &PlanCtx) -> Vec<TraceKey> {
    [Transaction::NewOrder150, Transaction::DeliveryOuter, Transaction::NewOrder]
        .iter()
        .map(|&txn| ctx.trace_key(txn))
        .collect()
}

fn specs(base: &CmpConfig) -> Vec<Spec> {
    let mut out = Vec::new();
    // --- 1. Secondary-violation selectivity (Figure 4). ---
    for txn in [Transaction::NewOrder150, Transaction::DeliveryOuter] {
        for policy in [SecondaryPolicy::StartTable, SecondaryPolicy::RestartAll] {
            let mut cfg = *base;
            cfg.secondary = policy;
            out.push(Spec {
                ablation: "secondary-policy",
                benchmark: txn,
                variant: format!("{policy:?}"),
                style: Style::Secondary,
                cfg,
            });
        }
    }
    // --- 2. Victim-cache capacity (§2.1). ---
    for entries in [0usize, 16, 64, 256] {
        let mut cfg = *base;
        cfg.victim_entries = entries;
        out.push(Spec {
            ablation: "victim-capacity",
            benchmark: Transaction::NewOrder150,
            variant: format!("{entries}"),
            style: Style::Victim,
            cfg,
        });
    }
    // --- 3. Context exhaustion: merge vs stop. ---
    for txn in [Transaction::NewOrder, Transaction::DeliveryOuter] {
        for policy in [ExhaustionPolicy::Merge, ExhaustionPolicy::Stop] {
            let mut cfg = *base;
            cfg.subthreads.exhaustion = policy;
            out.push(Spec {
                ablation: "exhaustion-policy",
                benchmark: txn,
                variant: format!("{policy:?}"),
                style: Style::Exhaustion,
                cfg,
            });
        }
    }
    // --- 4. The §1.2 alternatives: dependence prediction (synchronize)
    // and value prediction (suppress + validate) vs sub-threads. ---
    for txn in [Transaction::NewOrder, Transaction::NewOrder150] {
        let off = VPredictConfig::disabled();
        let variants: [(&str, SubThreadConfig, PredictorConfig, VPredictConfig); 5] = [
            (
                "sub-threads (baseline)",
                SubThreadConfig::baseline(),
                PredictorConfig::disabled(),
                off,
            ),
            ("predictor only", SubThreadConfig::disabled(), PredictorConfig::aggressive(), off),
            ("both", SubThreadConfig::baseline(), PredictorConfig::aggressive(), off),
            (
                "value predictor only",
                SubThreadConfig::disabled(),
                PredictorConfig::disabled(),
                VPredictConfig::prophet(),
            ),
            (
                "value + sub-threads",
                SubThreadConfig::baseline(),
                PredictorConfig::disabled(),
                VPredictConfig::prophet(),
            ),
        ];
        for (name, subs, pred, vp) in variants {
            let mut cfg = *base;
            cfg.subthreads = subs;
            cfg.predictor = pred;
            cfg.vpredict = vp;
            out.push(Spec {
                ablation: "dependence-predictor",
                benchmark: txn,
                variant: name.to_string(),
                style: Style::Predictor,
                cfg,
            });
        }
    }
    // --- 5. L1 sub-thread awareness (§2.2: "not worthwhile"). ---
    for txn in [Transaction::NewOrder, Transaction::NewOrder150] {
        for aware in [false, true] {
            let mut cfg = *base;
            cfg.l1_subthread_aware = aware;
            out.push(Spec {
                ablation: "l1-subthread-aware",
                benchmark: txn,
                variant: format!("{aware}"),
                style: Style::L1,
                cfg,
            });
        }
    }
    out
}

const SECTION_HEADERS: [(&str, &str); 5] = [
    ("secondary-policy", "Ablation 1: secondary violations (Figure 4a vs 4b)"),
    ("victim-capacity", "\nAblation 2: speculative victim-cache capacity"),
    ("exhaustion-policy", "\nAblation 3: context exhaustion (merge-and-recycle vs stop)"),
    ("dependence-predictor", "\nAblation 4: dependence/value prediction vs sub-threads (§1.2)"),
    ("l1-subthread-aware", "\nAblation 5: sub-thread-aware L1 invalidation (§2.2)"),
];

fn run(ctx: &PlanCtx) -> PlanOutput {
    let specs = specs(&ctx.machine);
    let jobs: Vec<Job<Arc<SimReport>>> = specs
        .iter()
        .map(|spec| {
            let cfg = spec.cfg;
            let txn = spec.benchmark;
            let job: Job<Arc<SimReport>> = Box::new(move || {
                let progs = ctx.programs(txn);
                ctx.sim(&progs.tls, &cfg)
            });
            job
        })
        .collect();
    let reports = ctx.pool.run(jobs);

    let mut text = String::new();
    let mut rows = Vec::new();
    let mut sim_cycles = 0u64;
    let mut section = "";
    for (spec, r) in specs.iter().zip(&reports) {
        if spec.ablation != section {
            section = spec.ablation;
            let header = SECTION_HEADERS
                .iter()
                .find(|(name, _)| *name == section)
                .map(|(_, h)| *h)
                .unwrap_or(section);
            writeln!(text, "{header}").unwrap();
        }
        sim_cycles += r.total_cycles;
        let label = spec.benchmark.label();
        match spec.style {
            Style::Secondary => writeln!(
                text,
                "  {:<16} {:<12} {:>10} cycles, {:>9} failed, {:>4} secondary",
                label, spec.variant, r.total_cycles, r.breakdown.failed, r.violations.secondary
            ),
            Style::Victim => writeln!(
                text,
                "  {:<16} {:>4} entries {:>10} cycles, {:>4} overflow violations",
                label, spec.variant, r.total_cycles, r.violations.overflow
            ),
            Style::Exhaustion => writeln!(
                text,
                "  {:<16} {:<6} {:>10} cycles, {:>9} failed, {:>5} merges",
                label, spec.variant, r.total_cycles, r.breakdown.failed, r.subthread_merges
            ),
            Style::Predictor => writeln!(
                text,
                "  {:<16} {:<22} {:>10} cycles, {:>9} failed, {:>9} sync cyc, {:>4} stalled \
                 loads, {:>5} pred hits, {:>4} mispredicts",
                label,
                spec.variant,
                r.total_cycles,
                r.breakdown.failed,
                r.breakdown.sync,
                r.predictor_synchronizations,
                r.predicted_hits,
                r.value_mispredicts
            ),
            Style::L1 => writeln!(
                text,
                "  {:<16} aware={:<5} {:>10} cycles, {:>8} L1 invalidations, {:>8} L1 misses",
                label,
                spec.variant,
                r.total_cycles,
                r.l1.invalidations,
                r.l1.misses()
            ),
        }
        .unwrap();
        rows.push(Entry {
            ablation: spec.ablation,
            benchmark: label,
            variant: spec.variant.clone(),
            cycles: r.total_cycles,
            failed: r.breakdown.failed,
            violations_secondary: r.violations.secondary,
            violations_overflow: r.violations.overflow,
            predicted_hits: r.predicted_hits,
            value_mispredicts: r.value_mispredicts,
        });
    }
    PlanOutput { json: to_artifact_json(&rows), text, sim_cycles }
}
