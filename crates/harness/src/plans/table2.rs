//! The **Table 2** plan: benchmark statistics (sequential Mcycles, TLS
//! coverage, thread sizes, threads per transaction).

use crate::eval::instances;
use crate::plan::{to_artifact_json, Job, Plan, PlanCtx, PlanOutput};
use crate::store::TraceKey;
use serde::Serialize;
use std::fmt::Write as _;
use tls_core::experiment::ExperimentKind;
use tls_minidb::Transaction;

#[derive(Serialize)]
struct Row {
    benchmark: &'static str,
    exec_mcycles: f64,
    coverage_pct: f64,
    avg_thread_size: f64,
    spec_insts_per_thread: f64,
    threads_per_txn: f64,
}

/// The table2 plan.
pub fn plan() -> Plan {
    Plan { name: "table2", title: "Table 2 — benchmark statistics", traces, run }
}

fn traces(ctx: &PlanCtx) -> Vec<TraceKey> {
    Transaction::ALL.iter().map(|&txn| ctx.trace_key(txn)).collect()
}

fn run(ctx: &PlanCtx) -> PlanOutput {
    let jobs: Vec<Job<(Row, u64)>> = Transaction::ALL
        .iter()
        .map(|&txn| {
            let job: Job<(Row, u64)> = Box::new(move || {
                let count = instances(txn, ctx.scale);
                let progs = ctx.programs(txn);
                let stats = progs.tls.stats();
                let seq = ctx.experiment(ExperimentKind::Sequential, &progs);
                // "Spec. Insts per Thread": instructions a thread executes
                // speculatively — all of its instructions except those it
                // runs after becoming the oldest (non-speculative) thread.
                // We report the epoch body minus the spawn scaffolding.
                let spec_per_thread = stats.avg_epoch_ops() - tls_minidb::SPAWN_OVERHEAD_OPS as f64;
                let row = Row {
                    benchmark: txn.label(),
                    exec_mcycles: seq.total_cycles as f64 / 1e6,
                    coverage_pct: 100.0 * stats.coverage(),
                    avg_thread_size: stats.avg_epoch_ops(),
                    spec_insts_per_thread: spec_per_thread,
                    threads_per_txn: stats.epochs as f64 / count as f64,
                };
                (row, seq.total_cycles)
            });
            job
        })
        .collect();
    let results = ctx.pool.run(jobs);

    let mut text = String::new();
    writeln!(text, "Table 2. Benchmark statistics.").unwrap();
    writeln!(text, "{:=<100}", "").unwrap();
    writeln!(
        text,
        "{:<16} {:>12} {:>10} {:>14} {:>18} {:>12}",
        "Benchmark", "Exec (Mcyc)", "Coverage", "Thread size", "SpecInsts/thread", "Threads/txn"
    )
    .unwrap();
    let mut rows = Vec::new();
    let mut sim_cycles = 0u64;
    for (row, cycles) in results {
        sim_cycles += cycles;
        writeln!(
            text,
            "{:<16} {:>12.1} {:>9.0}% {:>13.0}k {:>17.0}k {:>12.1}",
            row.benchmark,
            row.exec_mcycles,
            row.coverage_pct,
            row.avg_thread_size / 1000.0,
            row.spec_insts_per_thread / 1000.0,
            row.threads_per_txn
        )
        .unwrap();
        rows.push(row);
    }
    PlanOutput { json: to_artifact_json(&rows), text, sim_cycles }
}
