//! The **tuning_curve** plan: the §3.2 iterative tuning process —
//! profile-guided removal of performance-critical dependences, one
//! NEW ORDER trace per cumulative optimization step.

use crate::eval::instances;
use crate::plan::{to_artifact_json, Job, Plan, PlanCtx, PlanOutput};
use crate::store::TraceKey;
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;
use tls_core::experiment::ExperimentKind;
use tls_core::SimReport;
use tls_minidb::{OptLevel, Transaction};

const TXN: Transaction = Transaction::NewOrder;

#[derive(Serialize)]
struct Step {
    step: &'static str,
    cycles: u64,
    speedup_vs_sequential: f64,
    failed_cpu_cycles: u64,
    latch_cpu_cycles: u64,
    violations: u64,
    top_dependences: Vec<String>,
}

/// The tuning_curve plan.
pub fn plan() -> Plan {
    Plan { name: "tuning_curve", title: "§3.2 — iterative profile-guided tuning", traces, run }
}

/// The snapshot key of the NEW ORDER trace recorded from an engine
/// built at `opts`.
fn step_key(ctx: &PlanCtx, opts: OptLevel) -> TraceKey {
    let mut cfg = ctx.scale.tpcc();
    cfg.opts = opts;
    TraceKey { cfg, txn: TXN, count: instances(TXN, ctx.scale) }
}

fn traces(ctx: &PlanCtx) -> Vec<TraceKey> {
    // The "unoptimized" step is OptLevel::none(), which doubles as the
    // sequential reference's key, so the list is already complete.
    OptLevel::tuning_steps().into_iter().map(|(_, opts)| step_key(ctx, opts)).collect()
}

fn run(ctx: &PlanCtx) -> PlanOutput {
    let steps = OptLevel::tuning_steps();
    let mut jobs: Vec<Job<Arc<SimReport>>> = Vec::new();
    // Job 0: the unmodified engine running sequentially (the reference):
    // the serialized plain trace under the SEQUENTIAL configuration.
    jobs.push(Box::new(move || {
        let progs = ctx.store.programs(&step_key(ctx, OptLevel::none()));
        ctx.sim(progs.serialized(false), &ExperimentKind::Sequential.configure(&ctx.machine))
    }));
    // Jobs 1..: one BASELINE run per cumulative optimization step.
    for (_, opts) in steps.clone() {
        jobs.push(Box::new(move || {
            let progs = ctx.store.programs(&step_key(ctx, opts));
            ctx.sim(&progs.tls, &ctx.machine)
        }));
    }
    let reports = ctx.pool.run(jobs);

    let seq = reports[0].total_cycles;
    let mut sim_cycles = seq;
    let mut text = String::new();
    writeln!(text, "NEW ORDER tuning curve (SEQUENTIAL = {seq} cycles)").unwrap();
    writeln!(text, "{:-<100}", "").unwrap();

    let mut rows = Vec::new();
    for ((name, _), r) in steps.iter().zip(&reports[1..]) {
        sim_cycles += r.total_cycles;
        let speedup = seq as f64 / r.total_cycles as f64;
        writeln!(
            text,
            "{:<28} {:>10} cycles  speedup {:>5.2}x  failed {:>9}  latch {:>8}  {:>3} violations",
            name,
            r.total_cycles,
            speedup,
            r.breakdown.failed,
            r.breakdown.latch,
            r.violations.total()
        )
        .unwrap();
        let top: Vec<String> = r
            .profile
            .iter()
            .take(3)
            .map(|e| {
                format!(
                    "load {} <- store {}: {} failed cycles ({} violations)",
                    e.load_pc.map(|p| p.to_string()).unwrap_or_else(|| "?".into()),
                    e.store_pc.map(|p| p.to_string()).unwrap_or_else(|| "?".into()),
                    e.failed_cycles,
                    e.violations
                )
            })
            .collect();
        for t in &top {
            writeln!(text, "        {t}").unwrap();
        }
        rows.push(Step {
            step: name,
            cycles: r.total_cycles,
            speedup_vs_sequential: speedup,
            failed_cpu_cycles: r.breakdown.failed,
            latch_cpu_cycles: r.breakdown.latch,
            violations: r.violations.total(),
            top_dependences: top,
        });
    }

    writeln!(text, "{:-<100}", "").unwrap();
    let first = rows.first().expect("steps");
    let last = rows.last().expect("steps");
    writeln!(
        text,
        "Tuning took NEW ORDER from {:.2}x to {:.2}x — the §3.2 iterative process.",
        first.speedup_vs_sequential, last.speedup_vs_sequential
    )
    .unwrap();
    PlanOutput { json: to_artifact_json(&rows), text, sim_cycles }
}
