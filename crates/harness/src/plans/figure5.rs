//! The **Figure 5** plan: execution-time breakdown of the seven
//! benchmarks across the five machine experiments, normalized to
//! SEQUENTIAL.

use crate::eval::{instances, render_stack};
use crate::plan::{to_artifact_json, Job, Plan, PlanCtx, PlanOutput};
use crate::store::TraceKey;
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;
use tls_core::experiment::ExperimentKind;
use tls_core::SimReport;
use tls_minidb::Transaction;

#[derive(Serialize)]
struct Bar {
    experiment: &'static str,
    total_cycles: u64,
    speedup_vs_sequential: f64,
    normalized_stack: Vec<(&'static str, f64)>,
    violations_primary: u64,
    violations_secondary: u64,
    violations_overflow: u64,
}

#[derive(Serialize)]
struct Panel {
    benchmark: &'static str,
    transactions: usize,
    bars: Vec<Bar>,
}

/// The figure5 plan.
pub fn plan() -> Plan {
    Plan {
        name: "figure5",
        title: "Figure 5 — execution-time breakdown, 7 benchmarks x 5 experiments",
        traces,
        run,
    }
}

fn traces(ctx: &PlanCtx) -> Vec<TraceKey> {
    Transaction::ALL.iter().map(|&txn| ctx.trace_key(txn)).collect()
}

fn run(ctx: &PlanCtx) -> PlanOutput {
    let mut jobs: Vec<Job<Arc<SimReport>>> = Vec::new();
    for &txn in &Transaction::ALL {
        let progs = ctx.programs(txn);
        for &kind in &ExperimentKind::ALL {
            let progs = progs.clone();
            jobs.push(Box::new(move || ctx.experiment(kind, &progs)));
        }
    }
    let reports = ctx.pool.run(jobs);

    let mut text = String::new();
    let mut panels = Vec::new();
    let mut sim_cycles = 0u64;
    for (b, &txn) in Transaction::ALL.iter().enumerate() {
        let count = instances(txn, ctx.scale);
        let per_bench =
            &reports[b * ExperimentKind::ALL.len()..(b + 1) * ExperimentKind::ALL.len()];
        let seq_cycles = per_bench[0].total_cycles; // ALL[0] is SEQUENTIAL
        writeln!(text, "\nFigure 5: {} ({} transactions)", txn.label(), count).unwrap();
        writeln!(text, "{:-<120}", "").unwrap();
        writeln!(
            text,
            "{:<15} {:>7} | {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} | {:>6}",
            "experiment", "speedup", "idle", "fail", "latch", "sync", "miss", "busy", "total"
        )
        .unwrap();
        let bars = ExperimentKind::ALL
            .iter()
            .zip(per_bench)
            .map(|(kind, r)| {
                sim_cycles += r.total_cycles;
                print_bar(&mut text, kind.label(), r, seq_cycles);
                Bar {
                    experiment: kind.label(),
                    total_cycles: r.total_cycles,
                    speedup_vs_sequential: seq_cycles as f64 / r.total_cycles.max(1) as f64,
                    normalized_stack: r.normalized_stack(seq_cycles),
                    violations_primary: r.violations.primary,
                    violations_secondary: r.violations.secondary,
                    violations_overflow: r.violations.overflow,
                }
            })
            .collect();
        panels.push(Panel { benchmark: txn.label(), transactions: count, bars });
    }

    writeln!(text, "\nSummary (speedup of BASELINE over SEQUENTIAL):").unwrap();
    for p in &panels {
        let s = p
            .bars
            .iter()
            .find(|b| b.experiment == "BASELINE")
            .map(|b| b.speedup_vs_sequential)
            .unwrap_or(0.0);
        writeln!(text, "  {:<16} {:.2}x", p.benchmark, s).unwrap();
    }
    PlanOutput { json: to_artifact_json(&panels), text, sim_cycles }
}

fn print_bar(text: &mut String, label: &str, r: &SimReport, seq: u64) {
    let stack = r.normalized_stack(seq);
    let v: Vec<f64> = stack.iter().map(|(_, x)| *x).collect();
    writeln!(
        text,
        "{:<15} {:>6.2}x | {:>6.3} {:>6.3} {:>6.3} {:>6.3} {:>6.3} {:>6.3} | {:>6.3}",
        label,
        seq as f64 / r.total_cycles.max(1) as f64,
        v[0],
        v[1],
        v[2],
        v[3],
        v[4],
        v[5],
        v.iter().sum::<f64>()
    )
    .unwrap();
    writeln!(text, "{:>24}{}", "", render_stack(&stack)).unwrap();
}
