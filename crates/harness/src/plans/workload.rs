//! The **workload** plan: run a declarative workload spec end to end —
//! record → simulate → report.
//!
//! The plan drives the checked-in example spec
//! (`crates/harness/specs/example.json`); the `suite workload
//! <spec.json>` verb routes any user spec through the same
//! [`run_spec`] engine. The spec compiles to a `(plain, tls)` trace
//! pair (scans speculatively parallelized), which is then simulated as
//! the SEQUENTIAL reference, the TLS baseline machine, and a small
//! sub-thread spacing sweep. At test scale the spec is shrunk with
//! [`WorkloadSpec::scaled_down`] so the fast path stays fast.

use crate::eval::Scale;
use crate::plan::{to_artifact_json, Job, Plan, PlanCtx, PlanOutput};
use crate::store::StoredPrograms;
use crate::workload::{compile, WorkloadSpec};
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;
use tls_core::experiment::{BenchmarkPrograms, ExperimentKind};
use tls_core::{SimReport, SpacingPolicy};

/// The checked-in example spec the plan runs (also exercised by CI's
/// suite-smoke workload leg).
pub const EXAMPLE_SPEC: &str = include_str!("../../specs/example.json");

/// Sub-thread spacings swept after the baseline machine.
const SPACINGS: [u64; 2] = [500, 8000];

#[derive(Serialize)]
struct Row {
    config: String,
    cycles: u64,
    speedup_vs_sequential: f64,
    violations: u64,
    committed_epochs: u64,
    scan_epochs: u64,
    scan_epoch_ops: u64,
    subthreads_started: u64,
}

#[derive(Serialize)]
struct Artifact {
    spec: WorkloadSpec,
    scan_transactions: usize,
    point_transactions: usize,
    program_ops: usize,
    rows: Vec<Row>,
}

/// The workload plan.
pub fn plan() -> Plan {
    Plan {
        name: "workload",
        title: "Extension — declarative workload specs through record/simulate/report",
        traces: |_| Vec::new(),
        run: |ctx| {
            let spec = WorkloadSpec::parse(EXAMPLE_SPEC).expect("checked-in example spec parses");
            run_spec(ctx, &spec)
        },
    }
}

/// Runs one spec through record → simulate → report. Shared by the plan
/// (example spec) and the `suite workload` verb (user specs). At test
/// scale the spec is scaled down first.
pub fn run_spec(ctx: &PlanCtx, spec: &WorkloadSpec) -> PlanOutput {
    let spec = match ctx.scale {
        Scale::Paper => spec.clone(),
        Scale::Test => spec.scaled_down(),
    };

    // Record (one pool job; pure function of the spec).
    let spec_for_job = spec.clone();
    let rec_jobs: Vec<Job<(Arc<StoredPrograms>, usize, usize)>> = vec![Box::new(move || {
        let c = compile(&spec_for_job);
        (
            Arc::new(StoredPrograms::new(BenchmarkPrograms { plain: c.plain, tls: c.tls })),
            c.scan_transactions,
            c.point_transactions,
        )
    })];
    let (progs, scan_txns, point_txns) = ctx.pool.run(rec_jobs).remove(0);

    // Simulate: SEQUENTIAL reference, TLS baseline, spacing sweep.
    let mut jobs: Vec<Job<Arc<SimReport>>> = Vec::new();
    {
        let progs = progs.clone();
        jobs.push(Box::new(move || ctx.experiment(ExperimentKind::Sequential, &progs)));
    }
    {
        let progs = progs.clone();
        jobs.push(Box::new(move || ctx.sim(&progs.tls, &ctx.machine)));
    }
    for &spacing in &SPACINGS {
        let progs = progs.clone();
        jobs.push(Box::new(move || {
            let mut cfg = ctx.machine;
            cfg.subthreads.spacing = SpacingPolicy::Every(spacing);
            ctx.sim(&progs.tls, &cfg)
        }));
    }
    let reports = ctx.pool.run(jobs);
    let labels: Vec<String> = std::iter::once("SEQUENTIAL".to_string())
        .chain(std::iter::once("TLS baseline".to_string()))
        .chain(SPACINGS.iter().map(|s| format!("TLS spacing {s}")))
        .collect();

    let seq = reports[0].total_cycles;
    let mut text = String::new();
    writeln!(
        text,
        "workload '{}': {} txns ({} scans, {} point), {} program ops",
        spec.name,
        spec.transactions,
        scan_txns,
        point_txns,
        progs.tls.total_ops()
    )
    .unwrap();
    writeln!(
        text,
        "{:<16} {:>12} {:>9} {:>6} {:>7} {:>7} {:>10} {:>6}",
        "config", "cycles", "speedup", "viol", "epochs", "scans", "scan_ops", "subs"
    )
    .unwrap();
    let mut rows = Vec::new();
    let mut sim_cycles = 0u64;
    for (label, r) in labels.into_iter().zip(&reports) {
        sim_cycles += r.total_cycles;
        let row = Row {
            config: label,
            cycles: r.total_cycles,
            speedup_vs_sequential: seq as f64 / r.total_cycles as f64,
            violations: r.violations.total(),
            committed_epochs: r.committed_epochs,
            scan_epochs: r.scan_epochs,
            scan_epoch_ops: r.scan_epoch_ops,
            subthreads_started: r.subthreads_started,
        };
        writeln!(
            text,
            "{:<16} {:>12} {:>8.2}x {:>6} {:>7} {:>7} {:>10} {:>6}",
            row.config,
            row.cycles,
            row.speedup_vs_sequential,
            row.violations,
            row.committed_epochs,
            row.scan_epochs,
            row.scan_epoch_ops,
            row.subthreads_started
        )
        .unwrap();
        rows.push(row);
    }
    let artifact = Artifact {
        spec,
        scan_transactions: scan_txns,
        point_transactions: point_txns,
        program_ops: progs.tls.total_ops(),
        rows,
    };
    PlanOutput { json: to_artifact_json(&artifact), text, sim_cycles }
}
