//! The **scalability** plan: CPU-count scaling (2/4/8) for the
//! TLS-profitable benchmarks, speedup over SEQUENTIAL.

use crate::plan::{to_artifact_json, Job, Plan, PlanCtx, PlanOutput};
use crate::store::TraceKey;
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;
use tls_core::experiment::ExperimentKind;
use tls_core::SimReport;
use tls_minidb::Transaction;

const CPUS: [usize; 3] = [2, 4, 8];
const BENCHMARKS: [Transaction; 4] = [
    Transaction::NewOrder,
    Transaction::NewOrder150,
    Transaction::DeliveryOuter,
    Transaction::StockLevel,
];

// Per benchmark: 1 SEQUENTIAL job, then one job per CPU count.
const JOBS_PER_BENCH: usize = 1 + CPUS.len();

#[derive(Serialize)]
struct Point {
    benchmark: &'static str,
    cpus: usize,
    cycles: u64,
    speedup: f64,
    idle_fraction: f64,
    failed_fraction: f64,
    violations: u64,
}

/// The scalability plan.
pub fn plan() -> Plan {
    Plan { name: "scalability", title: "Extension — CPU-count scaling (2/4/8)", traces, run }
}

fn traces(ctx: &PlanCtx) -> Vec<TraceKey> {
    BENCHMARKS.iter().map(|&txn| ctx.trace_key(txn)).collect()
}

fn run(ctx: &PlanCtx) -> PlanOutput {
    let mut jobs: Vec<Job<Arc<SimReport>>> = Vec::new();
    for &txn in &BENCHMARKS {
        let progs = ctx.programs(txn);
        {
            let progs = progs.clone();
            jobs.push(Box::new(move || ctx.experiment(ExperimentKind::Sequential, &progs)));
        }
        for &cpus in &CPUS {
            let progs = progs.clone();
            jobs.push(Box::new(move || {
                let mut cfg = ctx.machine;
                cfg.cpus = cpus;
                ctx.sim(&progs.tls, &cfg)
            }));
        }
    }
    let reports = ctx.pool.run(jobs);

    let mut text = String::new();
    writeln!(
        text,
        "{:<16} {:>6} {:>12} {:>9} {:>7} {:>7} {:>6}",
        "benchmark", "cpus", "cycles", "speedup", "idle", "failed", "viol"
    )
    .unwrap();
    let mut rows = Vec::new();
    let mut sim_cycles = 0u64;
    for (b, &txn) in BENCHMARKS.iter().enumerate() {
        let base = b * JOBS_PER_BENCH;
        let seq = reports[base].total_cycles;
        sim_cycles += seq;
        for (c, &cpus) in CPUS.iter().enumerate() {
            let r = &reports[base + 1 + c];
            sim_cycles += r.total_cycles;
            let total = r.breakdown.total().max(1) as f64;
            let p = Point {
                benchmark: txn.label(),
                cpus,
                cycles: r.total_cycles,
                speedup: seq as f64 / r.total_cycles as f64,
                idle_fraction: r.breakdown.idle as f64 / total,
                failed_fraction: r.breakdown.failed as f64 / total,
                violations: r.violations.total(),
            };
            writeln!(
                text,
                "{:<16} {:>6} {:>12} {:>8.2}x {:>6.1}% {:>6.1}% {:>6}",
                p.benchmark,
                p.cpus,
                p.cycles,
                p.speedup,
                100.0 * p.idle_fraction,
                100.0 * p.failed_fraction,
                p.violations
            )
            .unwrap();
            rows.push(p);
        }
    }
    PlanOutput { json: to_artifact_json(&rows), text, sim_cycles }
}
