//! The **pool_pressure** plan: how a disk-backed buffer pool interacts
//! with sub-thread spacing.
//!
//! NEW ORDER is re-recorded through the MiniDB pager at several pool
//! sizes. A tight pool makes transactions fault pages back in — misses,
//! evictions and writebacks all emit trace operations against the
//! shared frame directory, so paging pressure both lengthens epochs and
//! adds dependences, exactly the "internal database structures"
//! dynamics the paper blames for violations. For each pool the TLS
//! trace is then simulated across a sweep of sub-thread spacings,
//! against a SEQUENTIAL reference recorded through the *same* pool.
//!
//! Pool sizing: the first recording runs fully resident (one cold miss
//! per touched page, zero evictions), which measures the workload's
//! touched-page footprint and its pin high-water mark — the pool-size
//! hard floor, since a mini-transaction's pages are unevictable while
//! it runs. The pressure pools then keep fractions of the *evictable
//! headroom* between that floor and the full footprint, which stays
//! meaningful even when one transaction pins most of a small database.
//!
//! Paged recordings bypass the `TraceKey` snapshot cache (the key
//! cannot express a pool size); the recordings run as jobs in the pool
//! and results assemble positionally, so output stays byte-identical
//! for any `--jobs`. Simulations still flow through the
//! content-addressed report cache via [`KeyedProgram`] fingerprints.

use crate::plan::{to_artifact_json, Job, Plan, PlanCtx, PlanOutput};
use crate::store::{StoredPrograms, TraceKey};
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;
use tls_core::experiment::{BenchmarkPrograms, ExperimentKind};
use tls_core::{DiskFaultPlan, SimReport, SpacingPolicy};
use tls_minidb::{OptLevel, PagerCounters, Tpcc, Transaction};

const TXN: Transaction = Transaction::NewOrder;

/// Transactions recorded per pool — several times the benchmark's
/// normal instance count, so the workload genuinely cycles pages
/// through the pressure pools.
const COUNT_MULT: usize = 6;

/// The pressure pools, as fractions of the evictable headroom kept
/// (floor + headroom × num/den frames).
const PRESSURE_POOLS: [(&str, usize, usize); 2] = [("half", 1, 2), ("quarter", 1, 4)];

/// Frames added above the measured pin high-water mark when flooring a
/// pressure pool: room for the clock hand to find a victim.
const FLOOR_SLACK: usize = 4;

/// Sub-thread spacings (speculative instructions between checkpoints).
const SPACINGS: [u64; 3] = [500, 2000, 8000];

// Per pool: 1 SEQUENTIAL reference job, then one TLS job per spacing.
const JOBS_PER_POOL: usize = 1 + SPACINGS.len();

#[derive(Serialize)]
struct Point {
    pool: &'static str,
    frames: usize,
    touched_pages: usize,
    spacing: u64,
    cycles: u64,
    speedup_vs_sequential: f64,
    violations: u64,
    pager_hits: u64,
    pager_misses: u64,
    pager_evictions: u64,
    pager_flushes: u64,
}

/// The pool_pressure plan.
pub fn plan() -> Plan {
    Plan {
        name: "pool_pressure",
        title: "Extension — buffer-pool pressure × sub-thread spacing",
        traces,
        run,
    }
}

fn traces(_ctx: &PlanCtx) -> Vec<TraceKey> {
    // Paged recordings cannot live in the TraceKey snapshot cache;
    // nothing to pre-record.
    Vec::new()
}

type Recorded = (Arc<StoredPrograms>, PagerCounters, usize);

/// Records the `(plain, tls)` NEW ORDER pair through a pool of `frames`
/// frames (`None` = fully resident; no disk faults — chaos belongs to
/// the recovery oracle, this plan measures timing). Returns the pair
/// plus the TLS recording's pool counters and the frame count used.
fn record_paged(ctx: &PlanCtx, frames: Option<usize>) -> Recorded {
    let count = crate::eval::instances(TXN, ctx.scale) * COUNT_MULT;
    let record = |opts: OptLevel| {
        let mut cfg = ctx.scale.tpcc();
        cfg.opts = opts;
        let mut db = Tpcc::new(cfg);
        let pages = db.env.registered_pages();
        let frames = frames.unwrap_or(pages).min(pages);
        db.attach_pager(frames, DiskFaultPlan::default(), false);
        let program = if opts == OptLevel::none() {
            db.record_plain(TXN, count)
        } else {
            db.record(TXN, count)
        };
        (program, db.pager_counters().expect("paged"), frames)
    };
    let (plain, _, _) = record(OptLevel::none());
    let (tls, counters, frames) = record(ctx.scale.tpcc().opts);
    let pair = StoredPrograms::new(BenchmarkPrograms { plain, tls });
    (Arc::new(pair), counters, frames)
}

fn run(ctx: &PlanCtx) -> PlanOutput {
    // Phase 1: the resident recording measures the touched-page
    // footprint (cold misses = distinct pages touched, no evictions)
    // and the pin high-water mark (the pool-size hard floor).
    let resident = record_paged(ctx, None);
    let touched = resident.1.misses as usize;
    let floor = resident.1.max_pinned as usize + FLOOR_SLACK;
    let headroom = touched.saturating_sub(floor);

    // Phase 2: the pressure recordings, fanned across the pool (pure:
    // workload seed + pool size determine every byte).
    let rec_jobs: Vec<Job<Recorded>> = PRESSURE_POOLS
        .iter()
        .map(|&(_, num, den)| {
            let frames = floor + headroom * num / den;
            Box::new(move || record_paged(ctx, Some(frames))) as Job<Recorded>
        })
        .collect();
    let mut recorded = vec![resident];
    recorded.extend(ctx.pool.run(rec_jobs));
    for (_, counters, _) in &recorded {
        ctx.store.stats.record_pager(counters, 0);
    }

    // Phase 3: simulations, assembled positionally.
    let mut jobs: Vec<Job<Arc<SimReport>>> = Vec::new();
    for (progs, _, _) in &recorded {
        {
            let progs = progs.clone();
            jobs.push(Box::new(move || ctx.experiment(ExperimentKind::Sequential, &progs)));
        }
        for &spacing in &SPACINGS {
            let progs = progs.clone();
            jobs.push(Box::new(move || {
                let mut cfg = ctx.machine;
                cfg.subthreads.spacing = SpacingPolicy::Every(spacing);
                ctx.sim(&progs.tls, &cfg)
            }));
        }
    }
    let reports = ctx.pool.run(jobs);

    let pool_names: Vec<&'static str> =
        std::iter::once("resident").chain(PRESSURE_POOLS.iter().map(|&(n, _, _)| n)).collect();
    let mut text = String::new();
    writeln!(
        text,
        "{:<9} {:>7} {:>8} {:>8} {:>12} {:>9} {:>6} {:>9} {:>8} {:>7} {:>7}",
        "pool",
        "frames",
        "touched",
        "spacing",
        "cycles",
        "speedup",
        "viol",
        "hits",
        "misses",
        "evict",
        "flush"
    )
    .unwrap();
    let mut rows = Vec::new();
    let mut sim_cycles = 0u64;
    for (p, name) in pool_names.iter().enumerate() {
        let (_, counters, frames) = &recorded[p];
        let base = p * JOBS_PER_POOL;
        let seq = reports[base].total_cycles;
        sim_cycles += seq;
        for (s, &spacing) in SPACINGS.iter().enumerate() {
            let r = &reports[base + 1 + s];
            sim_cycles += r.total_cycles;
            let point = Point {
                pool: name,
                frames: *frames,
                touched_pages: touched,
                spacing,
                cycles: r.total_cycles,
                speedup_vs_sequential: seq as f64 / r.total_cycles as f64,
                violations: r.violations.total(),
                pager_hits: counters.hits,
                pager_misses: counters.misses,
                pager_evictions: counters.evictions,
                pager_flushes: counters.flushes,
            };
            writeln!(
                text,
                "{:<9} {:>7} {:>8} {:>8} {:>12} {:>8.2}x {:>6} {:>9} {:>8} {:>7} {:>7}",
                point.pool,
                point.frames,
                point.touched_pages,
                point.spacing,
                point.cycles,
                point.speedup_vs_sequential,
                point.violations,
                point.pager_hits,
                point.pager_misses,
                point.pager_evictions,
                point.pager_flushes
            )
            .unwrap();
            rows.push(point);
        }
    }
    PlanOutput { json: to_artifact_json(&rows), text, sim_cycles }
}
