//! The **Figure 1/2** plan: the sub-thread rewind microbenchmark — how
//! sub-threads change the payoff of removing a data dependence.

use crate::plan::{to_artifact_json, Job, Plan, PlanCtx, PlanOutput};
use crate::store::{KeyedProgram, TraceKey};
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;
use tls_core::{SimReport, SubThreadConfig};
use tls_trace::{Addr, OpSink, Pc, ProgramBuilder, TraceProgram};

const WORK: usize = 40_000;
const P: Addr = Addr(0x10_0000);
const Q: Addr = Addr(0x10_0040);

/// Builds the two-thread program; `with_p` keeps the early dependence.
fn program(with_p: bool) -> TraceProgram {
    let mut b = ProgramBuilder::new(if with_p { "fig2-with-p" } else { "fig2-without-p" });
    b.begin_parallel();
    // Thread 1: producer.
    b.begin_epoch();
    b.int_ops(Pc::new(1, 0), WORK / 5);
    b.store(Pc::new(1, 1), P, 8); // *p = ... at 20%
    b.int_ops(Pc::new(1, 2), WORK * 3 / 5);
    b.store(Pc::new(1, 3), Q, 8); // *q = ... at 80%
    b.int_ops(Pc::new(1, 4), WORK / 5);
    b.end_epoch();
    // Thread 2: consumer.
    b.begin_epoch();
    b.int_ops(Pc::new(2, 0), WORK / 10);
    if with_p {
        b.load(Pc::new(2, 1), P, 8); // ... = *p at 10%
    }
    b.int_ops(Pc::new(2, 2), WORK * 6 / 10);
    b.load(Pc::new(2, 3), Q, 8); // ... = *q at 70%
    b.int_ops(Pc::new(2, 4), WORK * 3 / 10);
    b.end_epoch();
    b.end_parallel();
    b.finish()
}

#[derive(Serialize)]
struct Row {
    config: String,
    cycles: u64,
    violations: u64,
    failed_cpu_cycles: u64,
}

/// The figure2 plan.
pub fn plan() -> Plan {
    Plan { name: "figure2", title: "Figure 1/2 — sub-thread rewind microbenchmark", traces, run }
}

fn traces(_ctx: &PlanCtx) -> Vec<TraceKey> {
    Vec::new() // synthetic programs, no TPC-C recording
}

fn run(ctx: &PlanCtx) -> PlanOutput {
    // Build and fingerprint the two synthetic programs once; the jobs
    // share them instead of regenerating per configuration.
    let with = KeyedProgram::new(program(true));
    let without = KeyedProgram::new(program(false));
    let mut jobs: Vec<Job<Arc<SimReport>>> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for (mode, subs) in [
        ("all-or-nothing", SubThreadConfig::disabled()),
        ("sub-threads", SubThreadConfig::baseline()),
    ] {
        for with_p in [true, false] {
            labels.push(format!(
                "{mode:<15} {}",
                if with_p { "with *p and *q" } else { "*p removed    " }
            ));
            let prog = if with_p { with.clone() } else { without.clone() };
            jobs.push(Box::new(move || {
                let mut cfg = ctx.machine;
                cfg.subthreads = subs;
                ctx.sim(&prog, &cfg)
            }));
        }
    }
    // Figure 2(c): idealized parallel execution.
    let prog = with.clone();
    jobs.push(Box::new(move || {
        let mut cfg = ctx.machine;
        cfg.track_dependences = false;
        ctx.sim(&prog, &cfg)
    }));
    let reports = ctx.pool.run(jobs);

    let mut text = String::new();
    writeln!(text, "Figure 2 microbenchmark ({} ops per thread)", WORK).unwrap();
    writeln!(text, "{:-<72}", "").unwrap();
    let mut rows = Vec::new();
    let mut sim_cycles = 0u64;
    for (label, r) in labels.iter().zip(&reports) {
        sim_cycles += r.total_cycles;
        writeln!(
            text,
            "{label}  {:>8} cycles  {:>2} violations  {:>8} failed",
            r.total_cycles,
            r.violations.total(),
            r.breakdown.failed
        )
        .unwrap();
        rows.push(Row {
            config: label.clone(),
            cycles: r.total_cycles,
            violations: r.violations.total(),
            failed_cpu_cycles: r.breakdown.failed,
        });
    }
    let ideal = reports.last().expect("no-speculation report");
    sim_cycles += ideal.total_cycles;
    writeln!(
        text,
        "{:<31}  {:>8} cycles (idealized, Figure 2c)",
        "no-speculation bound", ideal.total_cycles
    )
    .unwrap();
    rows.push(Row {
        config: "no-speculation bound".into(),
        cycles: ideal.total_cycles,
        violations: 0,
        failed_cpu_cycles: 0,
    });

    // The paper's qualitative claims, checked.
    let aon_with = rows[0].cycles;
    let aon_without = rows[1].cycles;
    let sub_with = rows[2].cycles;
    let sub_without = rows[3].cycles;
    writeln!(text, "{:-<72}", "").unwrap();
    writeln!(
        text,
        "all-or-nothing: removing *p changed {} -> {} cycles ({})",
        aon_with,
        aon_without,
        if aon_without >= aon_with { "no better, as Figure 2(a) warns" } else { "better" }
    )
    .unwrap();
    writeln!(
        text,
        "sub-threads:    removing *p changed {} -> {} cycles ({})",
        sub_with,
        sub_without,
        if sub_without <= sub_with { "improved, as Figure 2(b) promises" } else { "worse" }
    )
    .unwrap();
    PlanOutput { json: to_artifact_json(&rows), text, sim_cycles }
}
