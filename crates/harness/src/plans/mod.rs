//! The declarative plans behind every evaluation artifact.

pub mod ablations;
pub mod figure2;
pub mod figure5;
pub mod figure6;
pub mod memory_order;
pub mod pool_pressure;
pub mod prediction_frontier;
pub mod scalability;
pub mod scan_collision;
pub mod spec_contrast;
pub mod table2;
pub mod tuning_curve;
pub mod workload;
