//! The **spec_contrast** plan: why prior (SPEC-style) TLS work did not
//! need sub-threads — small/independent threads vs the paper's
//! large/dependent database threads, on the same machine.

use crate::plan::{to_artifact_json, Job, Plan, PlanCtx, PlanOutput};
use crate::store::{KeyedProgram, TraceKey};
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;
use tls_core::experiment::serialize_view;
use tls_core::synthetic::{shared_dependences, Dependence};
use tls_core::{SimReport, SubThreadConfig};

#[derive(Serialize)]
struct Row {
    regime: &'static str,
    threads: usize,
    ops_per_thread: usize,
    dependences: usize,
    all_or_nothing_speedup: f64,
    subthread_speedup: f64,
}

const CASES: [(&str, usize, usize, usize); 3] = [
    ("SPEC-like: small, independent", 32, 800, 0),
    ("SPEC-like: small, one dependence", 32, 800, 1),
    ("database-like: large, dependent", 8, 60_000, 6),
];

/// The spec_contrast plan.
pub fn plan() -> Plan {
    Plan {
        name: "spec_contrast",
        title: "Context — SPEC-style vs database-style threads",
        traces,
        run,
    }
}

fn traces(_ctx: &PlanCtx) -> Vec<TraceKey> {
    Vec::new() // synthetic programs, no TPC-C recording
}

/// Read-modify-write dependences spread through the thread body, as
/// database code has (each shared structure is read and written at the
/// same relative position in every thread).
fn deps(n: usize) -> Vec<Dependence> {
    (0..n)
        .map(|i| {
            let at = 0.3 + 0.6 * i as f64 / n.max(1) as f64;
            Dependence::new(at, at)
        })
        .collect()
}

fn run(ctx: &PlanCtx) -> PlanOutput {
    // Per case: sequential reference, all-or-nothing, sub-threads. The
    // synthetic program is generated and fingerprinted once per case and
    // shared by its three jobs.
    let mut jobs: Vec<Job<Arc<SimReport>>> = Vec::new();
    for &(_, threads, ops, ndeps) in &CASES {
        let p = KeyedProgram::new(shared_dependences(threads, ops, &deps(ndeps)));
        let ser = KeyedProgram::new(serialize_view(&p.view()));
        jobs.push(Box::new(move || ctx.sim(&ser, &ctx.machine)));
        let aon = p.clone();
        jobs.push(Box::new(move || {
            let mut cfg = ctx.machine;
            cfg.subthreads = SubThreadConfig::disabled();
            ctx.sim(&aon, &cfg)
        }));
        jobs.push(Box::new(move || ctx.sim(&p, &ctx.machine)));
    }
    let reports = ctx.pool.run(jobs);

    let mut text = String::new();
    writeln!(
        text,
        "{:<36} {:>8} {:>10} {:>6} {:>16} {:>13}",
        "regime", "threads", "ops/thread", "deps", "all-or-nothing", "sub-threads"
    )
    .unwrap();
    let mut rows = Vec::new();
    let mut sim_cycles = 0u64;
    for (i, &(name, threads, ops, ndeps)) in CASES.iter().enumerate() {
        let seq = &reports[3 * i];
        let aon_r = &reports[3 * i + 1];
        let sub_r = &reports[3 * i + 2];
        sim_cycles += seq.total_cycles + aon_r.total_cycles + sub_r.total_cycles;
        let aon = seq.total_cycles as f64 / aon_r.total_cycles as f64;
        let sub = seq.total_cycles as f64 / sub_r.total_cycles as f64;
        writeln!(text, "{name:<36} {threads:>8} {ops:>10} {ndeps:>6} {aon:>15.2}x {sub:>12.2}x")
            .unwrap();
        rows.push(Row {
            regime: name,
            threads,
            ops_per_thread: ops,
            dependences: ndeps,
            all_or_nothing_speedup: aon,
            subthread_speedup: sub,
        });
    }
    writeln!(
        text,
        "\nAll-or-nothing TLS suffices for the small/independent regime of prior\n\
         work; only the large/dependent regime (the paper's) needs sub-threads."
    )
    .unwrap();
    PlanOutput { json: to_artifact_json(&rows), text, sim_cycles }
}
