//! The **memory_order** plan: what does TSO's store-buffer relaxation
//! cost a sub-threaded TLS machine, and does buffer depth matter?
//!
//! The simulator's baseline memory model is sequentially consistent:
//! a store becomes visible to violation detection the cycle it issues.
//! Under [`MemoryModel::Tso`] each CPU instead retires stores into a
//! bounded FIFO buffer that drains at ordering points (full buffer,
//! same-address load-forwarding conflict, latch acquisition, the
//! pre-commit flush) — so RAW dependences are *detected later* and the
//! commit path pays explicit drain-stall cycles.
//!
//! The grid crosses buffer depth (SC, then 4/8/32-entry TSO) with
//! checkpoint spacing and the two checkpointing tolerance mechanisms
//! (sub-threads alone, value prediction + sub-threads) over a TPC-C
//! NEW ORDER transaction and the zipf-0.8 scan-collision workload.
//! Every point is normalized to its workload's SEQUENTIAL reference,
//! and every TSO point commits — by construction, checked by the
//! commit-serializability auditor and the differential oracle in
//! debug builds — the same logical state as its SC twin.

use crate::plan::{to_artifact_json, Job, Plan, PlanCtx, PlanOutput};
use crate::plans::scan_collision::collision_spec;
use crate::store::{StoredPrograms, TraceKey};
use crate::workload::compile;
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;
use tls_core::experiment::{BenchmarkPrograms, ExperimentKind};
use tls_core::{CmpConfig, MemoryModel, SimReport, SpacingPolicy, SubThreadConfig, VPredictConfig};
use tls_minidb::Transaction;

/// The TPC-C side of the grid.
const TXN: Transaction = Transaction::NewOrder;

/// Checkpoint spacings swept at every memory-model point.
const SPACINGS: [u64; 3] = [500, 2000, 8000];

/// The memory-model axis: the SC baseline, then TSO at three depths.
fn memory_models() -> [(&'static str, MemoryModel); 4] {
    [
        ("sc", MemoryModel::Sc),
        ("tso-4", MemoryModel::Tso { buffer_entries: 4 }),
        ("tso-8", MemoryModel::Tso { buffer_entries: 8 }),
        ("tso-32", MemoryModel::Tso { buffer_entries: 32 }),
    ]
}

/// A tolerance mechanism riding on top of the memory model.
struct Mechanism {
    name: &'static str,
    vpredict: VPredictConfig,
}

fn mechanisms() -> [Mechanism; 2] {
    [
        Mechanism { name: "sub-threads", vpredict: VPredictConfig::disabled() },
        Mechanism { name: "value+sub-threads", vpredict: VPredictConfig::prophet() },
    ]
}

fn configure(base: &CmpConfig, model: MemoryModel, m: &Mechanism, spacing: u64) -> CmpConfig {
    let mut cfg = *base;
    cfg.memory_model = model;
    cfg.subthreads =
        SubThreadConfig { spacing: SpacingPolicy::Every(spacing), ..SubThreadConfig::baseline() };
    cfg.vpredict = m.vpredict;
    cfg
}

#[derive(Serialize)]
struct Point {
    workload: &'static str,
    memory_model: &'static str,
    mechanism: &'static str,
    spacing: u64,
    cycles: u64,
    speedup_vs_sequential: f64,
    drain_stall_cycles: u64,
    buffered_stores: u64,
    forwarded_loads: u64,
    store_drains: u64,
    violations_primary: u64,
    value_mispredicts: u64,
    serializability_breaches: u64,
}

/// The memory_order plan.
pub fn plan() -> Plan {
    Plan {
        name: "memory_order",
        title: "Extension — TSO store buffers vs the SC baseline",
        traces,
        run,
    }
}

fn traces(ctx: &PlanCtx) -> Vec<TraceKey> {
    vec![ctx.trace_key(TXN)]
}

fn run(ctx: &PlanCtx) -> PlanOutput {
    // The scan-collision workload at the moderate (TPC-C-ish) skew.
    let compiled: Vec<Arc<StoredPrograms>> = ctx.pool.run(vec![Box::new(move || {
        let spec = collision_spec("zipf_080", 0.8, ctx.scale);
        let c = compile(&spec);
        Arc::new(StoredPrograms::new(BenchmarkPrograms { plain: c.plain, tls: c.tls }))
    }) as Job<Arc<StoredPrograms>>]);
    let scan_progs = compiled.into_iter().next().expect("one compile job");

    // Per workload: 1 SEQUENTIAL reference, then the full model grid.
    let workloads: [(&'static str, Arc<StoredPrograms>); 2] =
        [("neworder", ctx.programs(TXN)), ("scan_collision", scan_progs)];
    let mut jobs: Vec<Job<Arc<SimReport>>> = Vec::new();
    for (_, progs) in &workloads {
        {
            let progs = progs.clone();
            jobs.push(Box::new(move || ctx.experiment(ExperimentKind::Sequential, &progs)));
        }
        for (_, model) in memory_models() {
            for m in mechanisms() {
                for spacing in SPACINGS {
                    let progs = progs.clone();
                    let cfg = configure(&ctx.machine, model, &m, spacing);
                    jobs.push(Box::new(move || ctx.sim(&progs.tls, &cfg)));
                }
            }
        }
    }
    let reports = ctx.pool.run(jobs);

    let mut text = String::new();
    writeln!(
        text,
        "{:<15} {:<8} {:<18} {:>8} {:>12} {:>9} {:>9} {:>9} {:>8} {:>7} {:>6} {:>6}",
        "workload",
        "model",
        "mechanism",
        "spacing",
        "cycles",
        "speedup",
        "drain",
        "buffered",
        "forward",
        "drains",
        "raw",
        "breach"
    )
    .unwrap();
    let mut rows = Vec::new();
    let mut sim_cycles = 0u64;
    let mut cursor = 0usize;
    for (workload, _) in &workloads {
        let seq = reports[cursor].total_cycles;
        sim_cycles += seq;
        cursor += 1;
        for (model_name, _) in memory_models() {
            for m in mechanisms() {
                for spacing in SPACINGS {
                    let r = &reports[cursor];
                    cursor += 1;
                    sim_cycles += r.total_cycles;
                    let point = Point {
                        workload,
                        memory_model: model_name,
                        mechanism: m.name,
                        spacing,
                        cycles: r.total_cycles,
                        speedup_vs_sequential: seq as f64 / r.total_cycles as f64,
                        drain_stall_cycles: r.breakdown.drain_stall,
                        buffered_stores: r.buffered_stores,
                        forwarded_loads: r.forwarded_loads,
                        store_drains: r.store_drains,
                        violations_primary: r.violations.primary,
                        value_mispredicts: r.value_mispredicts,
                        serializability_breaches: r.serializability_breaches,
                    };
                    writeln!(
                        text,
                        "{:<15} {:<8} {:<18} {:>8} {:>12} {:>8.2}x {:>9} {:>9} {:>8} {:>7} {:>6} {:>6}",
                        point.workload,
                        point.memory_model,
                        point.mechanism,
                        point.spacing,
                        point.cycles,
                        point.speedup_vs_sequential,
                        point.drain_stall_cycles,
                        point.buffered_stores,
                        point.forwarded_loads,
                        point.store_drains,
                        point.violations_primary,
                        point.serializability_breaches
                    )
                    .unwrap();
                    rows.push(point);
                }
            }
        }
    }
    PlanOutput { json: to_artifact_json(&rows), text, sim_cycles }
}
