//! The **prediction_frontier** plan: the repo's four dependence-
//! tolerance mechanisms side by side, over both a TPC-C transaction and
//! the scan-collision workload.
//!
//! The paper's §1.2 argues that dependence *prediction* alone cannot
//! tolerate the dozens of unpredictable dependences in a DBMS thread,
//! and builds sub-threads instead; Prophet-style *value* prediction is
//! the third option — turn the violated load into a silent hit and
//! validate the guessed value at commit. This plan puts all of them on
//! one grid:
//!
//! * **sub-threads** — checkpoint/rewind only (the paper's mechanism),
//!   swept over checkpoint spacing;
//! * **sync-predictor** — all-or-nothing TLS plus an aggressive
//!   Moshovos-style synchronizing dependence predictor;
//! * **value-predictor** — all-or-nothing TLS plus the Prophet-style
//!   value predictor (a mispredict rewinds the whole thread);
//! * **value + sub-threads** — both mechanisms, swept over spacing (a
//!   mispredict rewinds only to the containing sub-thread).
//!
//! Each workload is normalized to its own SEQUENTIAL reference. Rows
//! report the suppression economy: predicted hits (RAW violations that
//! became silent hits) and value mispredicts (suppressions that failed
//! commit-time validation and rewound).

use crate::plan::{to_artifact_json, Job, Plan, PlanCtx, PlanOutput};
use crate::plans::scan_collision::collision_spec;
use crate::store::{StoredPrograms, TraceKey};
use crate::workload::compile;
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;
use tls_core::experiment::{BenchmarkPrograms, ExperimentKind};
use tls_core::{
    CmpConfig, PredictorConfig, SimReport, SpacingPolicy, SubThreadConfig, VPredictConfig,
};
use tls_minidb::Transaction;

/// The TPC-C side of the grid.
const TXN: Transaction = Transaction::NewOrder;

/// Checkpoint spacings swept for the mechanisms that take checkpoints.
const SPACINGS: [u64; 3] = [500, 2000, 8000];

/// A tolerance mechanism: which of the three hardware knobs are on.
struct Mechanism {
    name: &'static str,
    subthreads: bool,
    predictor: PredictorConfig,
    vpredict: VPredictConfig,
}

fn mechanisms() -> [Mechanism; 4] {
    [
        Mechanism {
            name: "sub-threads",
            subthreads: true,
            predictor: PredictorConfig::disabled(),
            vpredict: VPredictConfig::disabled(),
        },
        Mechanism {
            name: "sync-predictor",
            subthreads: false,
            predictor: PredictorConfig::aggressive(),
            vpredict: VPredictConfig::disabled(),
        },
        Mechanism {
            name: "value-predictor",
            subthreads: false,
            predictor: PredictorConfig::disabled(),
            vpredict: VPredictConfig::prophet(),
        },
        Mechanism {
            name: "value+sub-threads",
            subthreads: true,
            predictor: PredictorConfig::disabled(),
            vpredict: VPredictConfig::prophet(),
        },
    ]
}

/// One grid point's machine configuration. Spacing only reaches the
/// config when the mechanism checkpoints; spacing-less mechanisms run
/// all-or-nothing TLS (one context) so their single row is honest.
fn configure(base: &CmpConfig, m: &Mechanism, spacing: Option<u64>) -> CmpConfig {
    let mut cfg = *base;
    cfg.subthreads = match spacing {
        Some(s) if m.subthreads => {
            SubThreadConfig { spacing: SpacingPolicy::Every(s), ..SubThreadConfig::baseline() }
        }
        _ => SubThreadConfig::disabled(),
    };
    cfg.predictor = m.predictor;
    cfg.vpredict = m.vpredict;
    cfg
}

#[derive(Serialize)]
struct Point {
    workload: &'static str,
    mechanism: &'static str,
    /// Checkpoint spacing; 0 for mechanisms that never checkpoint.
    spacing: u64,
    cycles: u64,
    speedup_vs_sequential: f64,
    violations_primary: u64,
    predicted_hits: u64,
    value_mispredicts: u64,
    predictor_synchronizations: u64,
    subthreads_started: u64,
}

/// The prediction_frontier plan.
pub fn plan() -> Plan {
    Plan {
        name: "prediction_frontier",
        title: "Extension — sub-threads vs dependence vs value prediction",
        traces,
        run,
    }
}

fn traces(ctx: &PlanCtx) -> Vec<TraceKey> {
    vec![ctx.trace_key(TXN)]
}

/// The per-mechanism job count: one per spacing when checkpointing,
/// one flat run otherwise.
fn variants(m: &Mechanism) -> Vec<Option<u64>> {
    if m.subthreads {
        SPACINGS.iter().map(|&s| Some(s)).collect()
    } else {
        vec![None]
    }
}

fn run(ctx: &PlanCtx) -> PlanOutput {
    // The scan-collision workload at the moderate (TPC-C-ish) skew.
    let compiled: Vec<Arc<StoredPrograms>> = ctx.pool.run(vec![Box::new(move || {
        let spec = collision_spec("zipf_080", 0.8, ctx.scale);
        let c = compile(&spec);
        Arc::new(StoredPrograms::new(BenchmarkPrograms { plain: c.plain, tls: c.tls }))
    }) as Job<Arc<StoredPrograms>>]);
    let scan_progs = compiled.into_iter().next().expect("one compile job");

    // Per workload: 1 SEQUENTIAL reference, then every mechanism point.
    let workloads: [(&'static str, Arc<StoredPrograms>); 2] =
        [("neworder", ctx.programs(TXN)), ("scan_collision", scan_progs)];
    let mut jobs: Vec<Job<Arc<SimReport>>> = Vec::new();
    for (_, progs) in &workloads {
        {
            let progs = progs.clone();
            jobs.push(Box::new(move || ctx.experiment(ExperimentKind::Sequential, &progs)));
        }
        for m in mechanisms() {
            for spacing in variants(&m) {
                let progs = progs.clone();
                let cfg = configure(&ctx.machine, &m, spacing);
                jobs.push(Box::new(move || ctx.sim(&progs.tls, &cfg)));
            }
        }
    }
    let reports = ctx.pool.run(jobs);

    let mut text = String::new();
    writeln!(
        text,
        "{:<15} {:<18} {:>8} {:>12} {:>9} {:>6} {:>9} {:>10} {:>6} {:>6}",
        "workload",
        "mechanism",
        "spacing",
        "cycles",
        "speedup",
        "raw",
        "pred_hit",
        "mispredict",
        "sync",
        "subs"
    )
    .unwrap();
    let mut rows = Vec::new();
    let mut sim_cycles = 0u64;
    let mut cursor = 0usize;
    for (workload, _) in &workloads {
        let seq = reports[cursor].total_cycles;
        sim_cycles += seq;
        cursor += 1;
        for m in mechanisms() {
            for spacing in variants(&m) {
                let r = &reports[cursor];
                cursor += 1;
                sim_cycles += r.total_cycles;
                let point = Point {
                    workload,
                    mechanism: m.name,
                    spacing: spacing.unwrap_or(0),
                    cycles: r.total_cycles,
                    speedup_vs_sequential: seq as f64 / r.total_cycles as f64,
                    violations_primary: r.violations.primary,
                    predicted_hits: r.predicted_hits,
                    value_mispredicts: r.value_mispredicts,
                    predictor_synchronizations: r.predictor_synchronizations,
                    subthreads_started: r.subthreads_started,
                };
                writeln!(
                    text,
                    "{:<15} {:<18} {:>8} {:>12} {:>8.2}x {:>6} {:>9} {:>10} {:>6} {:>6}",
                    point.workload,
                    point.mechanism,
                    point.spacing,
                    point.cycles,
                    point.speedup_vs_sequential,
                    point.violations_primary,
                    point.predicted_hits,
                    point.value_mispredicts,
                    point.predictor_synchronizations,
                    point.subthreads_started
                )
                .unwrap();
                rows.push(point);
            }
        }
    }
    PlanOutput { json: to_artifact_json(&rows), text, sim_cycles }
}
