//! The **Figure 6** plan: sub-thread count × size sweep over the five
//! TLS-profitable benchmarks.

use crate::plan::{to_artifact_json, Job, Plan, PlanCtx, PlanOutput};
use crate::store::TraceKey;
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;
use tls_core::experiment::ExperimentKind;
use tls_core::{ExhaustionPolicy, SimReport, SpacingPolicy, SubThreadConfig};
use tls_minidb::Transaction;

const SPACINGS: [u64; 6] = [1000, 2500, 5000, 10_000, 25_000, 50_000];
const CONTEXTS: [u8; 3] = [2, 4, 8];

/// The five TLS-profitable benchmarks shown in Figure 6 (a)–(e).
const BENCHMARKS: [Transaction; 5] = [
    Transaction::NewOrder,
    Transaction::NewOrder150,
    Transaction::Delivery,
    Transaction::DeliveryOuter,
    Transaction::StockLevel,
];

#[derive(Serialize)]
struct Point {
    contexts: u8,
    spacing: u64,
    total_cycles: u64,
    failed_cpu_cycles: u64,
    violations: u64,
    subthreads_started: u64,
}

#[derive(Serialize)]
struct Panel {
    benchmark: &'static str,
    sequential_cycles: u64,
    points: Vec<Point>,
    even_division: Vec<Point>,
}

/// The figure6 plan.
pub fn plan() -> Plan {
    Plan { name: "figure6", title: "Figure 6 — sub-thread count x size sweep", traces, run }
}

fn traces(ctx: &PlanCtx) -> Vec<TraceKey> {
    BENCHMARKS.iter().map(|&txn| ctx.trace_key(txn)).collect()
}

// Per benchmark: 1 SEQUENTIAL job, then per context row 6 spacing jobs
// followed by 1 even-division job.
const JOBS_PER_ROW: usize = SPACINGS.len() + 1;
const JOBS_PER_BENCH: usize = 1 + CONTEXTS.len() * JOBS_PER_ROW;

fn point(contexts: u8, spacing: u64, r: &SimReport) -> Point {
    Point {
        contexts,
        spacing,
        total_cycles: r.total_cycles,
        failed_cpu_cycles: r.breakdown.failed,
        violations: r.violations.total(),
        subthreads_started: r.subthreads_started,
    }
}

fn run(ctx: &PlanCtx) -> PlanOutput {
    let mut jobs: Vec<Job<Arc<SimReport>>> = Vec::new();
    for &txn in &BENCHMARKS {
        let progs = ctx.programs(txn);
        {
            let progs = progs.clone();
            jobs.push(Box::new(move || ctx.experiment(ExperimentKind::Sequential, &progs)));
        }
        for &contexts in &CONTEXTS {
            for &spacing in &SPACINGS {
                let progs = progs.clone();
                jobs.push(Box::new(move || {
                    let mut cfg = ctx.machine;
                    cfg.subthreads = SubThreadConfig {
                        contexts,
                        spacing: SpacingPolicy::Every(spacing),
                        exhaustion: ExhaustionPolicy::Merge,
                    };
                    ctx.sim(&progs.tls, &cfg)
                }));
            }
            let progs = progs.clone();
            jobs.push(Box::new(move || {
                let mut cfg = ctx.machine;
                cfg.subthreads = SubThreadConfig {
                    contexts,
                    spacing: SpacingPolicy::EvenDivision,
                    exhaustion: ExhaustionPolicy::Merge,
                };
                ctx.sim(&progs.tls, &cfg)
            }));
        }
    }
    let reports = ctx.pool.run(jobs);

    let mut text = String::new();
    let mut panels = Vec::new();
    let mut sim_cycles = 0u64;
    for (b, &txn) in BENCHMARKS.iter().enumerate() {
        let base = b * JOBS_PER_BENCH;
        let seq = reports[base].total_cycles;
        sim_cycles += seq;
        writeln!(text, "\nFigure 6: {} (SEQUENTIAL = {} cycles)", txn.label(), seq).unwrap();
        writeln!(
            text,
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "contexts", "1000", "2500", "5000", "10000", "25000", "50000", "even"
        )
        .unwrap();
        let mut points = Vec::new();
        let mut even = Vec::new();
        for (c, &contexts) in CONTEXTS.iter().enumerate() {
            let row_base = base + 1 + c * JOBS_PER_ROW;
            let mut row = format!("{contexts:<10}");
            for (s, &spacing) in SPACINGS.iter().enumerate() {
                let r = &reports[row_base + s];
                sim_cycles += r.total_cycles;
                row.push_str(&format!(" {:>8.2}x", seq as f64 / r.total_cycles as f64));
                points.push(point(contexts, spacing, r));
            }
            let r = &reports[row_base + SPACINGS.len()];
            sim_cycles += r.total_cycles;
            row.push_str(&format!(" {:>8.2}x", seq as f64 / r.total_cycles as f64));
            even.push(point(contexts, 0, r));
            writeln!(text, "{row}").unwrap();
        }
        panels.push(Panel {
            benchmark: txn.label(),
            sequential_cycles: seq,
            points,
            even_division: even,
        });
    }
    PlanOutput { json: to_artifact_json(&panels), text, sim_cycles }
}
