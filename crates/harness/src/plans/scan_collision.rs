//! The **scan_collision** plan: long speculative range scans colliding
//! with Zipfian point updates, swept over key skew × sub-thread spacing.
//!
//! Each point of the sweep compiles a scan-heavy [`WorkloadSpec`] whose
//! scan epochs read a chunk of the key range *and* fire point updates at
//! Zipfian-drawn keys; updates that cross a category boundary also
//! rewrite the secondary-index pages sibling epochs probe. The skew
//! sweep moves the collision mass around: uniform updates sprinkle
//! conflicts across every sibling chunk, while rising skew concentrates
//! both the updates and the scan windows (whose starts are Zipfian-drawn
//! too) onto a hot set — colliding heavily when the hot set sits under a
//! scan window and hardly at all when it does not. That is the
//! scan-vs-OLTP interference the paper's sub-threads are built to
//! tolerate. Every skew level is simulated against its own SEQUENTIAL
//! reference across a sweep of sub-thread spacings.
//!
//! Compiled workloads bypass the `TraceKey` snapshot cache (the key
//! cannot express a spec); compilations run as jobs in the pool and
//! results assemble positionally, so output is byte-identical for any
//! `--jobs`. Simulations flow through the content-addressed report cache
//! via `KeyedProgram` fingerprints, exactly like `pool_pressure`.

use crate::eval::Scale;
use crate::plan::{to_artifact_json, Job, Plan, PlanCtx, PlanOutput};
use crate::store::StoredPrograms;
use crate::workload::{compile, MixWeights, WorkloadSpec};
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;
use tls_core::experiment::{BenchmarkPrograms, ExperimentKind};
use tls_core::{SimReport, SpacingPolicy};
use tls_trace::SCAN_LOOP_MODULE;

/// The skew sweep: uniform, the TPC-C-ish moderate skew, and a hot-key
/// regime.
const THETAS: [(&str, f64); 3] = [("uniform", 0.0), ("zipf_080", 0.8), ("zipf_099", 0.99)];

/// Sub-thread spacings (speculative instructions between checkpoints).
const SPACINGS: [u64; 3] = [500, 2000, 8000];

// Per theta: 1 SEQUENTIAL reference job, then one TLS job per spacing.
const JOBS_PER_THETA: usize = 1 + SPACINGS.len();

#[derive(Serialize)]
struct Point {
    skew: &'static str,
    zipf_theta: f64,
    spacing: u64,
    cycles: u64,
    speedup_vs_sequential: f64,
    violations: u64,
    scan_epochs: u64,
    scan_epoch_ops: u64,
    subthreads_started: u64,
}

/// The scan_collision plan.
pub fn plan() -> Plan {
    Plan {
        name: "scan_collision",
        title: "Extension — scan/update collisions × key skew × sub-thread spacing",
        traces: |_| Vec::new(),
        run,
    }
}

/// The swept spec: scans only, with the colliders doing all the writing
/// (point transactions would dilute the parallel coverage). Shared with
/// the `prediction_frontier` plan so both measure the same workload.
pub(crate) fn collision_spec(name: &str, theta: f64, scale: Scale) -> WorkloadSpec {
    let mut spec = WorkloadSpec::example();
    spec.name = name.to_string();
    spec.zipf_theta = theta;
    spec.mix = MixWeights { point_read: 1, point_update: 2, range_scan: 5 };
    spec.colliders_per_epoch = 4;
    if scale == Scale::Test {
        spec = spec.scaled_down();
    }
    spec.validate("").expect("swept spec is valid");
    spec
}

fn run(ctx: &PlanCtx) -> PlanOutput {
    // Phase 1: compile one workload per skew level, fanned across the
    // pool (pure: the spec determines every byte).
    let comp_jobs: Vec<Job<Arc<StoredPrograms>>> = THETAS
        .iter()
        .map(|&(name, theta)| {
            let spec = collision_spec(name, theta, ctx.scale);
            Box::new(move || {
                let c = compile(&spec);
                Arc::new(StoredPrograms::new(BenchmarkPrograms { plain: c.plain, tls: c.tls }))
            }) as Job<Arc<StoredPrograms>>
        })
        .collect();
    let compiled = ctx.pool.run(comp_jobs);

    // Phase 2: simulations, assembled positionally.
    let mut jobs: Vec<Job<Arc<SimReport>>> = Vec::new();
    for progs in &compiled {
        {
            let progs = progs.clone();
            jobs.push(Box::new(move || ctx.experiment(ExperimentKind::Sequential, &progs)));
        }
        for &spacing in &SPACINGS {
            let progs = progs.clone();
            jobs.push(Box::new(move || {
                let mut cfg = ctx.machine;
                cfg.subthreads.spacing = SpacingPolicy::Every(spacing);
                ctx.sim(&progs.tls, &cfg)
            }));
        }
    }
    let reports = ctx.pool.run(jobs);

    let mut text = String::new();
    writeln!(
        text,
        "{:<10} {:>6} {:>8} {:>12} {:>9} {:>6} {:>7} {:>10} {:>6}",
        "skew", "theta", "spacing", "cycles", "speedup", "viol", "scans", "scan_ops", "subs"
    )
    .unwrap();
    let mut rows = Vec::new();
    let mut sim_cycles = 0u64;
    for (t, &(name, theta)) in THETAS.iter().enumerate() {
        let scan_static = compiled[t].tls.epochs_of_module(SCAN_LOOP_MODULE);
        let base = t * JOBS_PER_THETA;
        let seq = reports[base].total_cycles;
        sim_cycles += seq;
        for (s, &spacing) in SPACINGS.iter().enumerate() {
            let r = &reports[base + 1 + s];
            sim_cycles += r.total_cycles;
            // The simulator attributes scan epochs from the program, so
            // the report must agree with the static count.
            assert_eq!(
                (r.scan_epochs, r.scan_epoch_ops),
                scan_static,
                "scan-epoch accounting must match the compiled program"
            );
            let point = Point {
                skew: name,
                zipf_theta: theta,
                spacing,
                cycles: r.total_cycles,
                speedup_vs_sequential: seq as f64 / r.total_cycles as f64,
                violations: r.violations.total(),
                scan_epochs: r.scan_epochs,
                scan_epoch_ops: r.scan_epoch_ops,
                subthreads_started: r.subthreads_started,
            };
            writeln!(
                text,
                "{:<10} {:>6.2} {:>8} {:>12} {:>8.2}x {:>6} {:>7} {:>10} {:>6}",
                point.skew,
                point.zipf_theta,
                point.spacing,
                point.cycles,
                point.speedup_vs_sequential,
                point.violations,
                point.scan_epochs,
                point.scan_epoch_ops,
                point.subthreads_started
            )
            .unwrap();
            rows.push(point);
        }
    }
    PlanOutput { json: to_artifact_json(&rows), text, sim_cycles }
}
