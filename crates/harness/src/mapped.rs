//! Zero-copy, memory-mapped trace snapshots.
//!
//! The simulator's warm path used to re-read and re-decode every op of a
//! cached trace pair into owned buffers on each suite invocation — for
//! the full-scale TPC-C traces, hundreds of megabytes of copying before
//! the first simulated cycle. The version-2 container (see
//! [`crate::codec`]) stores its op records as an aligned little-endian
//! bank whose byte layout *is* `TraceOp`'s in-memory layout, so this
//! module maps the file and serves `&[TraceOp]` straight from the page
//! cache:
//!
//! 1. [`Mapping`] — a read-only `mmap(2)` of the snapshot file (with an
//!    aligned heap fallback for non-unix hosts), `munmap`ed on drop.
//! 2. [`TraceView::open`] — verifies the container framing + checksum
//!    and validates every record **once per map**, then hands out
//!    borrowed [`ProgramView`]s for the pair; no op bytes are ever
//!    copied after that single integrity pass.
//!
//! Outcomes a caller must handle (see [`MapOutcome`]): a legacy
//! version-1 container decodes by the owned path (the store transparently
//! rewrites it as version 2), a big-endian host falls back to the owned
//! decoder (records are stored little-endian), and a corrupt file is a
//! typed error for the store's quarantine-and-heal machinery — never a
//! panic, never a misdecode.
//!
//! # Safety
//!
//! This is one of two places in the workspace that contain `unsafe`
//! (the other is the `zerocopy` shim's cast functions). The invariants:
//!
//! * The mapping is `PROT_READ`/`MAP_PRIVATE`: the kernel hands us an
//!   immutable page-aligned view; nothing in this process writes it.
//! * `Mapping` owns the pointer and unmaps in `Drop`; the `&[u8]` it
//!   exposes borrows from `self`, so the borrow checker pins the pages
//!   for as long as any [`TraceView`] (and any [`ProgramView`] borrowed
//!   from it) is alive.
//! * `Send + Sync` are sound because the memory is read-only for the
//!   mapping's whole lifetime.
//!
//! A file mutated *externally* mid-run could in principle change under a
//! shared map; `MAP_PRIVATE` gives copy-on-write isolation from later
//! writes on Linux, and the store's atomic rename-into-place discipline
//! means snapshot files are never modified in place anyway.

use crate::codec::{
    self, cast_bank, fingerprint_view, parse_pair_layout, validate_bank, PairLayout, SnapshotError,
    KIND_TRACE_PAIR, LEGACY_VERSION,
};
use std::path::Path;
use tls_core::experiment::BenchmarkPrograms;
use tls_trace::{ProgramView, TraceOp};

const HEADER_LEN: usize = 24;
const CHECKSUM_LEN: usize = 8;

// ---------------------------------------------------------------------------
// Mapping: read-only bytes, page-aligned, unmapped on drop.
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    /// A read-only private memory map of one whole file.
    #[derive(Debug)]
    pub struct RawMap {
        ptr: *mut u8,
        len: usize,
    }

    impl RawMap {
        pub fn of(file: &File, len: usize) -> io::Result<Self> {
            debug_assert!(len > 0, "mmap of an empty file is EINVAL");
            // SAFETY: requesting a fresh PROT_READ | MAP_PRIVATE mapping
            // of `len` bytes at offset 0 of an open fd; the kernel picks
            // the address. MAP_FAILED is (size_t)-1.
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as usize == usize::MAX {
                return Err(io::Error::last_os_error());
            }
            Ok(RawMap { ptr, len })
        }

        pub fn bytes(&self) -> &[u8] {
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; the returned slice borrows self, so Drop cannot run
            // while it is in use.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for RawMap {
        fn drop(&mut self) {
            // SAFETY: exactly the pointer and length mmap returned.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }

    // SAFETY: the mapping is read-only for its whole lifetime; shared
    // references to immutable memory are safe to send and share.
    unsafe impl Send for RawMap {}
    unsafe impl Sync for RawMap {}
}

/// The backing storage of a mapped snapshot: a real memory map on unix,
/// an aligned heap buffer elsewhere (or for empty files, which `mmap`
/// rejects).
#[derive(Debug)]
enum Backing {
    #[cfg(unix)]
    Mapped(sys::RawMap),
    /// `Vec<u128>` guarantees 16-byte alignment, matching the container's
    /// bank-alignment invariant so the zerocopy cast still succeeds.
    Heap { buf: Vec<u128>, len: usize },
}

/// Read-only bytes of one snapshot file, served without copying where
/// the platform allows.
#[derive(Debug)]
pub struct Mapping {
    backing: Backing,
}

impl Mapping {
    /// Maps (or, off unix, reads into an aligned buffer) the whole file.
    pub fn open(path: &Path) -> std::io::Result<Mapping> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len() as usize;
        #[cfg(unix)]
        {
            if len > 0 {
                return Ok(Mapping { backing: Backing::Mapped(sys::RawMap::of(&file, len)?) });
            }
        }
        Self::read_aligned(path, len)
    }

    fn read_aligned(path: &Path, cap: usize) -> std::io::Result<Mapping> {
        let bytes = std::fs::read(path)?;
        let len = cap.min(bytes.len());
        let mut buf = vec![0u128; bytes.len().div_ceil(16)];
        for (i, chunk) in bytes.chunks(16).enumerate() {
            let mut word = [0u8; 16];
            word[..chunk.len()].copy_from_slice(chunk);
            // Native-endian words: the raw reinterpretation below gives
            // back exactly the file's bytes on every host.
            buf[i] = u128::from_ne_bytes(word);
        }
        Ok(Mapping { backing: Backing::Heap { buf, len } })
    }

    /// The file's bytes. 16-byte aligned at offset 0 in every backing.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped(m) => m.bytes(),
            Backing::Heap { buf, len } => {
                // SAFETY: u128 has no padding or invalid bit patterns;
                // viewing its storage as bytes is always defined, and
                // the slice borrows self (keeping the buffer alive).
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len) }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TraceView: a validated, borrowable pair of programs over a Mapping.
// ---------------------------------------------------------------------------

/// A trace pair served in place from a mapped version-2 snapshot.
///
/// Construction performs the *single* integrity pass — container
/// framing, checksum, layout validation, and per-record validation — so
/// the `view()` accessors afterwards are pure pointer arithmetic. Both
/// content fingerprints are computed here too (streamed over the mapped
/// bank, no allocation), because every consumer of a program needs its
/// fingerprint for report-cache keys.
#[derive(Debug)]
pub struct TraceView {
    map: Mapping,
    layout: PairLayout,
    /// Byte offset of the (validated) bank within the whole file.
    bank_at: usize,
    /// Content fingerprint of the plain program (canonical v1 stream).
    pub plain_fingerprint: u64,
    /// Content fingerprint of the TLS program.
    pub tls_fingerprint: u64,
}

impl TraceView {
    /// The mapped op bank as records. Infallible after construction's
    /// validation pass (alignment and record validity already checked).
    fn bank(&self) -> &[TraceOp] {
        cast_bank(self.bank_bytes()).expect("bank alignment and size verified at open")
    }

    /// The bank's bytes: after the container header + layout prefix,
    /// before the trailing checksum.
    fn bank_bytes(&self) -> &[u8] {
        let bytes = self.map.bytes();
        &bytes[self.bank_at..bytes.len() - CHECKSUM_LEN]
    }

    /// Borrowed view of the unmodified execution's program.
    pub fn plain(&self) -> ProgramView<'_> {
        self.layout.plain.view(self.bank())
    }

    /// Borrowed view of the TLS-transformed execution's program.
    pub fn tls(&self) -> ProgramView<'_> {
        self.layout.tls.view(self.bank())
    }

    /// Total records in the shared bank (both programs).
    pub fn total_ops(&self) -> usize {
        self.layout.total_ops
    }

    /// The unmodified execution's benchmark name.
    pub fn plain_name(&self) -> &str {
        &self.layout.plain.name
    }

    /// The TLS-transformed execution's benchmark name.
    pub fn tls_name(&self) -> &str {
        &self.layout.tls.name
    }

    /// The mapped file size in bytes.
    pub fn file_len(&self) -> usize {
        self.map.bytes().len()
    }

    /// Materializes an owned pair (the healing / re-encode path).
    pub fn to_pair(&self) -> BenchmarkPrograms {
        BenchmarkPrograms { plain: self.plain().to_program(), tls: self.tls().to_program() }
    }

    /// Opens, verifies and maps the snapshot at `path` for `key_hash`.
    pub fn open(path: &Path, key_hash: u64) -> MapOutcome {
        let map = match Mapping::open(path) {
            Ok(m) => m,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return MapOutcome::Missing,
            Err(e) => return MapOutcome::Io(e.to_string()),
        };
        let bytes = map.bytes();
        let payload = match codec::decode_container(bytes, KIND_TRACE_PAIR, key_hash) {
            Ok(p) => p,
            Err(e) => return MapOutcome::Bad(e),
        };
        if codec::container_version(bytes) == LEGACY_VERSION {
            // Inline-record format: no bank to map. Decode owned; the
            // store rewrites it as version 2 so the next open maps.
            return match codec::decode_pair_v1(payload) {
                Ok(pair) => MapOutcome::Legacy(Box::new(pair)),
                Err(e) => MapOutcome::Bad(e),
            };
        }
        let layout = match parse_pair_layout(payload) {
            Ok(l) => l,
            Err(e) => return MapOutcome::Bad(e),
        };
        if cfg!(not(target_endian = "little")) {
            // Records are stored little-endian; this host cannot serve
            // them in place. Decode owned (endian-correct) instead.
            return match codec::decode_pair(payload) {
                Ok(pair) => MapOutcome::Unsupported(Box::new(pair)),
                Err(e) => MapOutcome::Bad(e),
            };
        }
        let bank_at = HEADER_LEN + layout.bank_offset;
        let bank_bytes = &bytes[bank_at..bytes.len() - CHECKSUM_LEN];
        if let Err(e) = validate_bank(bank_bytes) {
            return MapOutcome::Bad(e);
        }
        if let Err(e) = cast_bank(bank_bytes) {
            // Unreachable for a real mmap (page-aligned) or the aligned
            // heap fallback; kept as a typed rejection, not an assert.
            return MapOutcome::Bad(e);
        }
        // cast_bank above checked the slice ending before the checksum;
        // rebuild the view's notion of the bank to exclude it.
        let view = TraceView { map, layout, bank_at, plain_fingerprint: 0, tls_fingerprint: 0 };
        let plain_fp = fingerprint_view(&view.plain());
        let tls_fp = fingerprint_view(&view.tls());
        MapOutcome::Mapped(Box::new(TraceView {
            plain_fingerprint: plain_fp,
            tls_fingerprint: tls_fp,
            ..view
        }))
    }
}

/// What opening a snapshot for mapping produced.
#[derive(Debug)]
pub enum MapOutcome {
    /// A verified version-2 snapshot, served in place.
    Mapped(Box<TraceView>),
    /// No snapshot on disk (a cold cache, not an error).
    Missing,
    /// A verified *version-1* snapshot, decoded owned; the caller should
    /// rewrite it in the current format so the next open maps.
    Legacy(Box<BenchmarkPrograms>),
    /// A verified snapshot this host cannot serve in place (big-endian),
    /// decoded owned. Do **not** rewrite — the bytes are fine.
    Unsupported(Box<BenchmarkPrograms>),
    /// A corrupt or mismatched snapshot: quarantine and re-record.
    Bad(SnapshotError),
    /// The file exists but could not be read or mapped.
    Io(String),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode_pair_file, fnv1a, program_bytes};
    use tls_trace::{Addr, OpSink, Pc, ProgramBuilder};

    fn sample_pair() -> BenchmarkPrograms {
        let mut plain = ProgramBuilder::new("plain");
        plain.int_ops(Pc::new(0, 0), 64);
        let plain = plain.finish();
        let mut tls = ProgramBuilder::new("tls");
        tls.begin_parallel();
        for i in 0..4u64 {
            tls.begin_epoch();
            tls.load(Pc::new(1, 0), Addr(0x100 + 8 * i), 8);
            tls.int_ops(Pc::new(1, 1), 30);
            tls.store(Pc::new(1, 2), Addr(0x200 + 8 * i), 8);
            tls.end_epoch();
        }
        tls.end_parallel();
        let tls = tls.finish();
        BenchmarkPrograms { plain, tls }
    }

    fn write_v2(dir: &Path, pair: &BenchmarkPrograms, key: u64) -> std::path::PathBuf {
        let path = dir.join("pair.tlsnap");
        std::fs::write(&path, encode_pair_file(key, pair)).unwrap();
        path
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tls-mapped-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mapped_view_equals_owned_decode() {
        let dir = tmpdir("eq");
        let pair = sample_pair();
        let path = write_v2(&dir, &pair, 42);
        let view = match TraceView::open(&path, 42) {
            MapOutcome::Mapped(v) => v,
            other => panic!("expected Mapped, got {other:?}"),
        };
        assert_eq!(view.total_ops(), pair.plain.total_ops() + pair.tls.total_ops());
        let owned_plain = view.plain().to_program();
        let owned_tls = view.tls().to_program();
        assert_eq!(owned_plain.name, pair.plain.name);
        assert!(pair.plain.iter_ops().eq(owned_plain.iter_ops()));
        assert!(pair.tls.iter_ops().eq(owned_tls.iter_ops()));
        assert_eq!(view.plain_fingerprint, fnv1a(&program_bytes(&pair.plain)));
        assert_eq!(view.tls_fingerprint, fnv1a(&program_bytes(&pair.tls)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_corrupt_files_are_distinct_outcomes() {
        let dir = tmpdir("bad");
        assert!(matches!(TraceView::open(&dir.join("absent"), 1), MapOutcome::Missing));
        let pair = sample_pair();
        let path = write_v2(&dir, &pair, 7);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(TraceView::open(&path, 7), MapOutcome::Bad(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_is_bad() {
        let dir = tmpdir("key");
        let path = write_v2(&dir, &sample_pair(), 7);
        assert!(matches!(
            TraceView::open(&path, 8),
            MapOutcome::Bad(SnapshotError::KeyMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heap_fallback_is_aligned_and_identical() {
        let dir = tmpdir("heap");
        let pair = sample_pair();
        let path = write_v2(&dir, &pair, 3);
        let map = Mapping::read_aligned(&path, usize::MAX).unwrap();
        let direct = std::fs::read(&path).unwrap();
        assert_eq!(map.bytes(), &direct[..]);
        assert_eq!(map.bytes().as_ptr() as usize % 16, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
