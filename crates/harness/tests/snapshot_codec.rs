//! Property tests for the snapshot codec: round-tripping arbitrary
//! programs, plus rejection of corrupted and truncated containers.

use proptest::collection::vec;
use proptest::prelude::*;
use tls_core::experiment::BenchmarkPrograms;
use tls_harness::codec::{decode_pair_file, encode_pair_file, program_bytes};
use tls_trace::{Addr, LatchId, OpSink, Pc, ProgramBuilder, TraceOp, TraceProgram};

/// A generated op: `(class, module, site, arg, addr, dep)`.
type OpDesc = (u8, u16, u16, u8, u64, u16);

fn op(d: OpDesc) -> TraceOp {
    let (class, module, site, arg, addr, dep) = d;
    let pc = Pc::new(module, site);
    let op = match class % 7 {
        0 => TraceOp::int_alu(pc, arg),
        1 => TraceOp::fp_alu(pc, arg),
        2 => TraceOp::load(pc, Addr(addr), arg % 8 + 1),
        3 => TraceOp::store(pc, Addr(addr), arg % 8 + 1),
        4 => TraceOp::branch(pc, arg & 1 == 1),
        5 => TraceOp::latch_acquire(pc, LatchId((addr & 0xFFFF) as u16)),
        _ => TraceOp::latch_release(pc, LatchId((addr & 0xFFFF) as u16)),
    };
    op.with_dep(dep)
}

fn op_desc() -> impl Strategy<Value = OpDesc> {
    (any::<u8>(), any::<u16>(), any::<u16>(), any::<u8>(), any::<u64>(), any::<u16>())
}

/// Assembles `(prefix, epochs, suffix)` into a program: an optional
/// sequential region, an optional parallel region, and an optional
/// trailing sequential region — every shape the builder can produce.
fn program(
    name: &str,
    prefix: &[OpDesc],
    epochs: &[Vec<OpDesc>],
    suffix: &[OpDesc],
) -> TraceProgram {
    let mut b = ProgramBuilder::new(name);
    for &d in prefix {
        b.emit(op(d));
    }
    if !epochs.is_empty() {
        b.begin_parallel();
        for epoch in epochs {
            b.begin_epoch();
            for &d in epoch {
                b.emit(op(d));
            }
            b.end_epoch();
        }
        b.end_parallel();
    }
    for &d in suffix {
        b.emit(op(d));
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn arbitrary_pairs_round_trip(
        prefix in vec(op_desc(), 0..12),
        epochs in vec(vec(op_desc(), 0..16), 0..5),
        suffix in vec(op_desc(), 0..12),
        key in any::<u64>(),
    ) {
        let pair = BenchmarkPrograms {
            plain: program("plain-prog", &prefix, &[], &suffix),
            tls: program("tls-prog", &prefix, &epochs, &suffix),
        };
        let bytes = encode_pair_file(key, &pair);
        let decoded = decode_pair_file(&bytes, key).expect("round trip");
        prop_assert_eq!(&decoded.plain.name, &pair.plain.name);
        prop_assert_eq!(&decoded.tls.name, &pair.tls.name);
        prop_assert_eq!(program_bytes(&decoded.plain), program_bytes(&pair.plain));
        prop_assert_eq!(program_bytes(&decoded.tls), program_bytes(&pair.tls));
        // Re-encoding the decode is bit-identical: the format is canonical.
        prop_assert_eq!(encode_pair_file(key, &decoded), bytes);
    }

    fn corrupt_bytes_never_decode_to_different_data(
        epochs in vec(vec(op_desc(), 0..12), 1..4),
        key in any::<u64>(),
        pos_seed in any::<u64>(),
        mask in 1u8..255,
    ) {
        let pair = BenchmarkPrograms {
            plain: program("p", &[], &[], &[]),
            tls: program("t", &[], &epochs, &[]),
        };
        let good = encode_pair_file(key, &pair);
        let mut bad = good.clone();
        let pos = (pos_seed % bad.len() as u64) as usize;
        bad[pos] ^= mask;
        match decode_pair_file(&bad, key) {
            // The expected outcome: the container is rejected.
            Err(_) => {}
            // A checksum collision would have to reproduce the exact
            // original data to be accepted silently.
            Ok(decoded) => {
                prop_assert_eq!(encode_pair_file(key, &decoded), good);
            }
        }
    }

    fn truncations_are_always_rejected(
        epochs in vec(vec(op_desc(), 0..12), 1..4),
        key in any::<u64>(),
        len_seed in any::<u64>(),
    ) {
        let pair = BenchmarkPrograms {
            plain: program("p", &[], &[], &[]),
            tls: program("t", &[], &epochs, &[]),
        };
        let good = encode_pair_file(key, &pair);
        let cut = (len_seed % good.len() as u64) as usize;
        prop_assert!(decode_pair_file(&good[..cut], key).is_err(), "cut at {}", cut);
    }

    fn wrong_keys_are_always_rejected(
        epochs in vec(vec(op_desc(), 0..8), 1..3),
        key in any::<u64>(),
        other in any::<u64>(),
    ) {
        let pair = BenchmarkPrograms {
            plain: program("p", &[], &[], &[]),
            tls: program("t", &[], &epochs, &[]),
        };
        let bytes = encode_pair_file(key, &pair);
        if key != other {
            prop_assert!(decode_pair_file(&bytes, other).is_err());
        }
    }
}
