//! End-to-end determinism guarantees of the harness:
//!
//! * any `--jobs` value produces byte-identical artifacts;
//! * a cache-cold run and a cache-warm (disk snapshot) run produce
//!   byte-identical artifacts;
//! * the suite driver's baseline comparison accepts its own output.
//!
//! Runs a representative subset of plans at test scale (debug-build
//! simulation is slow; the full matrix runs in CI via
//! `suite --scale test`).

use std::collections::BTreeMap;
use std::path::PathBuf;
use tls_harness::eval::{paper_machine, Scale};
use tls_harness::plan::{find_plan, PlanCtx};
use tls_harness::runner::JobPool;
use tls_harness::store::HarnessStore;

const PLANS: [&str; 3] = ["figure2", "table2", "tuning_curve"];

fn run_plans(store: &HarnessStore, jobs: usize) -> BTreeMap<&'static str, (String, String)> {
    let pool = JobPool::new(jobs);
    let ctx = PlanCtx { scale: Scale::Test, machine: paper_machine(), store, pool: &pool };
    PLANS
        .iter()
        .map(|&name| {
            let plan = find_plan(name).expect("plan exists");
            let out = (plan.run)(&ctx);
            (name, (out.json, out.text))
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tls-suite-{tag}-{}", std::process::id()))
}

#[test]
fn jobs_1_and_jobs_8_are_byte_identical() {
    let store = HarnessStore::new(None, true);
    let serial = run_plans(&store, 1);
    let parallel = run_plans(&store, 8);
    for name in PLANS {
        assert_eq!(serial[name].0, parallel[name].0, "{name} JSON differs across --jobs");
        assert_eq!(serial[name].1, parallel[name].1, "{name} text differs across --jobs");
    }
}

#[test]
fn cold_and_warm_caches_are_byte_identical() {
    let dir = temp_dir("coldwarm");
    let _ = std::fs::remove_dir_all(&dir);

    let cold_store = HarnessStore::new(Some(dir.clone()), true);
    let cold = run_plans(&cold_store, 2);
    assert!(cold_store.stats.snapshot()[2] > 0, "cold run must record traces");

    let warm_store = HarnessStore::new(Some(dir.clone()), true);
    let warm = run_plans(&warm_store, 2);
    assert_eq!(warm_store.stats.snapshot()[2], 0, "warm run must not re-record");
    assert!(
        warm_store.stats.snapshot()[1] + warm_store.stats.snapshot()[4] > 0,
        "warm run must hit the disk cache"
    );

    for name in PLANS {
        assert_eq!(cold[name].0, warm[name].0, "{name} JSON differs cold vs warm");
        assert_eq!(cold[name].1, warm[name].1, "{name} text differs cold vs warm");
    }

    // An uncached from-scratch run agrees too: the cache is transparent.
    let uncached = run_plans(&HarnessStore::uncached(), 1);
    for name in PLANS {
        assert_eq!(cold[name].0, uncached[name].0, "{name} JSON differs vs uncached");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn suite_driver_round_trips_through_its_own_baseline() {
    let out_a = temp_dir("suite-a");
    let out_b = temp_dir("suite-b");
    let traces = temp_dir("suite-traces");
    for d in [&out_a, &out_b, &traces] {
        let _ = std::fs::remove_dir_all(d);
    }

    let args: Vec<String> = [
        "--scale",
        "test",
        "--filter",
        "figure2,table2",
        "--quiet",
        "--no-compare-serial",
        "--traces",
        traces.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut opts = tls_harness::suite::SuiteOptions::parse(&args).expect("parse");
    opts.out_dir = out_a.clone();
    opts.bench_path = out_a.join("BENCH_suite.json");
    assert_eq!(tls_harness::suite::run_suite(&opts), 0, "first run succeeds");
    assert!(out_a.join("figure2.json").is_file());
    assert!(out_a.join("BENCH_suite.json").is_file());

    // Second run, compared against the first: no drift.
    let mut opts = tls_harness::suite::SuiteOptions::parse(&args).expect("parse");
    opts.out_dir = out_b.clone();
    opts.bench_path = out_b.join("BENCH_suite.json");
    opts.baseline = Some(out_a.clone());
    assert_eq!(tls_harness::suite::run_suite(&opts), 0, "no drift against own baseline");

    // Tamper with a cycle count in the baseline: the comparison fails.
    let path = out_a.join("table2.json");
    let json = std::fs::read_to_string(&path).expect("read artifact");
    let tampered = json.replacen("\"exec_mcycles\":", "\"exec_mcycles_renamed\":", 1);
    assert_ne!(json, tampered, "tamper must change the artifact");
    std::fs::write(&path, tampered).expect("rewrite");
    let mut opts = tls_harness::suite::SuiteOptions::parse(&args).expect("parse");
    opts.out_dir = out_b.clone();
    opts.bench_path = out_b.join("BENCH_suite.json");
    opts.baseline = Some(out_a.clone());
    assert_eq!(tls_harness::suite::run_suite(&opts), 1, "drift must fail the run");

    for d in [&out_a, &out_b, &traces] {
        let _ = std::fs::remove_dir_all(d);
    }
}
