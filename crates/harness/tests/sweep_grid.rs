//! End-to-end properties of the batched sweep engine:
//!
//! 1. **Worker-count neutrality** — the JSONL row stream and the summary
//!    artifact are byte-identical at `--jobs 1` and `--jobs 4`.
//! 2. **Batching is an optimization, not a semantic** — every sampled
//!    row equals a from-scratch individual simulation of the same
//!    (seed, machine) point, down to the embedded report JSON.
//! 3. **Crash resume** — truncating the row file mid-line (what a
//!    `kill -9` leaves behind) and re-running with `--resume` converges
//!    on the byte-identical full artifact without re-running the intact
//!    prefix.

use std::path::{Path, PathBuf};
use tls_core::{CmpSimulator, RunOptions};
use tls_harness::store::HarnessStore;
use tls_harness::sweep::{run_sweep, SweepOptions, SweepPlan, SweepSpec};
use tls_harness::Scale;

const GRID: &str = r#"{
    "name": "itest",
    "benchmark": "payment",
    "count": 1,
    "seeds": [11, 12],
    "spacings": [1500, 4000],
    "contexts": [2, 4],
    "mem_latencies": [50, 100]
}"#;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tls-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn options(tag: &str, traces: &Path, jobs: usize) -> SweepOptions {
    SweepOptions {
        spec_path: PathBuf::new(),
        scale: Scale::Test,
        jobs,
        out_dir: fresh_dir(tag),
        trace_dir: Some(traces.to_path_buf()),
        filter: None,
        resume: false,
        bench_path: fresh_dir(tag).join("BENCH.json"),
        baseline_sample: 0,
        quiet: true,
    }
}

#[test]
fn sweep_rows_are_worker_count_neutral_and_match_individual_sims() {
    let traces = fresh_dir("traces");
    let plan = SweepPlan::new(SweepSpec::parse(GRID).expect("grid parses"), Scale::Test);
    assert_eq!(plan.spec.total_points(), 16);

    let serial = options("serial", &traces, 1);
    let wide = options("wide", &traces, 4);
    let a = run_sweep(&plan, &serial).expect("serial sweep");
    let b = run_sweep(&plan, &wide).expect("wide sweep");
    assert_eq!(a.executed_points, 16);
    assert_eq!(b.executed_points, 16);

    let rows_a = std::fs::read(&a.rows_path).expect("serial rows");
    let rows_b = std::fs::read(&b.rows_path).expect("wide rows");
    assert_eq!(rows_a, rows_b, "row stream depends on worker count");
    let sum_a = std::fs::read(&a.summary_path).expect("serial summary");
    let sum_b = std::fs::read(&b.summary_path).expect("wide summary");
    assert_eq!(sum_a, sum_b, "summary depends on worker count");

    // Re-simulate a sample of points individually — cold store, no
    // report cache — and check each row embeds exactly that report.
    let text = String::from_utf8(rows_a).expect("utf8 rows");
    let rows: Vec<&str> = text.lines().collect();
    assert_eq!(rows.len(), 16);
    let selected = plan.selected(None);
    let store = HarnessStore::new(Some(traces.clone()), false);
    for idx in [0usize, 5, 10, 15] {
        let (ci, point) = selected[idx];
        let (cfg, _) = plan.config(ci);
        let programs = store.programs(&plan.trace_key(point.seed));
        let report = CmpSimulator::new(*cfg).run_view(
            &programs.tls.view(),
            RunOptions::checked_default(),
            None,
        );
        let expected_tail =
            format!("\"report\":{}}}", serde_json::to_string(&report).expect("serialize"));
        assert!(
            rows[idx].ends_with(&expected_tail),
            "row {idx} ({}) does not embed the individually-computed report",
            point.key()
        );
        assert!(rows[idx].contains(&format!("\"point\":\"{}\"", point.key())));
    }

    for dir in [&serial.out_dir, &wide.out_dir, &traces] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn torn_row_file_resumes_to_the_byte_identical_artifact() {
    let traces = fresh_dir("rtraces");
    let plan = SweepPlan::new(SweepSpec::parse(GRID).expect("grid parses"), Scale::Test);

    let full_opts = options("rfull", &traces, 2);
    let full = run_sweep(&plan, &full_opts).expect("full sweep");
    let full_rows = std::fs::read(&full.rows_path).expect("full rows");

    // Leave a torn prefix: 7 whole rows plus half of the 8th.
    let torn_opts = {
        let mut o = options("rtorn", &traces, 2);
        o.resume = true;
        o
    };
    std::fs::create_dir_all(&torn_opts.out_dir).expect("mkdir");
    let torn_path = torn_opts.out_dir.join("sweep_itest.jsonl");
    let text = String::from_utf8(full_rows.clone()).expect("utf8");
    let offsets: Vec<usize> = text.match_indices('\n').map(|(i, _)| i + 1).collect();
    assert!(offsets.len() >= 8);
    let cut = offsets[6] + (offsets[7] - offsets[6]) / 2;
    std::fs::write(&torn_path, &full_rows[..cut]).expect("write torn prefix");

    let resumed = run_sweep(&plan, &torn_opts).expect("resumed sweep");
    assert_eq!(resumed.resumed_points, 7, "intact rows are not re-run");
    assert_eq!(resumed.executed_points, 9, "torn + missing rows are re-run");
    let resumed_rows = std::fs::read(&resumed.rows_path).expect("resumed rows");
    assert_eq!(resumed_rows, full_rows, "resume converges on the full artifact");
    let resumed_summary = std::fs::read(&resumed.summary_path).expect("resumed summary");
    let full_summary = std::fs::read(&full.summary_path).expect("full summary");
    assert_eq!(resumed_summary, full_summary, "aggregates fold resumed rows in");

    for dir in [&full_opts.out_dir, &torn_opts.out_dir, &traces] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
