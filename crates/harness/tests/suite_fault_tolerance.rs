//! Fault-tolerant suite runtime, end to end: a forced plan panic plus a
//! pre-corrupted snapshot must not stop the campaign (both quarantined,
//! remaining plans complete, exit non-zero with a structured summary),
//! and a suite killed with SIGKILL mid-run must resume to artifacts
//! byte-identical to an uninterrupted run.

use std::path::{Path, PathBuf};
use std::process::Command;
use tls_harness::suite::{run_suite, SuiteOptions};

const PLANS: &str = "figure2,table2";
const ARTIFACTS: [&str; 4] = ["figure2.json", "figure2.txt", "table2.json", "table2.txt"];

fn fresh_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tls-suite-ft-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn opts(out: &Path, traces: &Path, bench: &Path) -> SuiteOptions {
    SuiteOptions {
        scale: tls_harness::Scale::Test,
        jobs: 2,
        filter: Some(PLANS.to_string()),
        out_dir: out.to_path_buf(),
        trace_dir: Some(traces.to_path_buf()),
        bench_path: bench.to_path_buf(),
        compare_serial: Some(false),
        quiet: true,
        ..SuiteOptions::default()
    }
}

#[test]
fn forced_panic_and_corrupt_snapshot_quarantine_without_stopping_the_suite() {
    let base = fresh_base("quarantine");
    let traces = base.join("traces");

    // Healthy reference run: populates the snapshot cache and the
    // artifacts the degraded run must still match for healthy plans.
    let reference = opts(&base.join("ref"), &traces, &base.join("bench_ref.json"));
    assert_eq!(run_suite(&reference), 0, "reference run must pass");

    // Corrupt every trace snapshot the suite just wrote.
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&traces).expect("traces dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "trace") {
            let mut bytes = std::fs::read(&path).expect("read snapshot");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, &bytes).expect("corrupt snapshot");
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "the reference run should have cached trace snapshots");

    // Degraded run: one plan forced to panic, every snapshot corrupt.
    let mut degraded = opts(&base.join("out"), &traces, &base.join("bench.json"));
    degraded.force_panic = Some("table2".to_string());
    assert_eq!(run_suite(&degraded), 1, "a quarantined plan means a non-zero exit");

    // The healthy plan still completed, byte-identical to the reference.
    let healthy = std::fs::read(base.join("out/figure2.json")).expect("healthy plan artifact");
    assert_eq!(healthy, std::fs::read(base.join("ref/figure2.json")).unwrap());
    assert!(!base.join("out/table2.json").exists(), "quarantined plan writes no artifact");

    // Structured failure summary in the bench report.
    let bench = std::fs::read_to_string(base.join("bench.json")).expect("bench report");
    assert!(bench.contains("\"failures\""), "bench has a failures section: {bench}");
    assert!(bench.contains("table2") && bench.contains("panicked"), "{bench}");
    assert!(bench.contains("forced panic via --force-panic"), "{bench}");

    // Every corrupt snapshot was quarantined (with evidence) and healed.
    let bench_json = serde::parse(&bench).expect("bench report is JSON");
    let field = |obj: &serde::Value, name: &str| -> serde::Value {
        obj.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == name))
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("bench report missing '{name}': {bench}"))
    };
    let quarantined = match field(&field(&bench_json, "cache"), "snapshots_quarantined") {
        serde::Value::Int(n) => n as u64,
        other => panic!("snapshots_quarantined is not a number: {other:?}"),
    };
    assert_eq!(quarantined, corrupted, "every corrupt snapshot healed");
    assert!(traces.join("quarantine").is_dir(), "quarantine dir holds the evidence");

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn kill_minus_nine_then_resume_produces_byte_identical_artifacts() {
    let base = fresh_base("resume");
    let suite = env!("CARGO_BIN_EXE_suite");
    let traces = base.join("traces");
    let args = |out: &Path, bench: &str| -> Vec<String> {
        [
            "--scale",
            "test",
            "--filter",
            PLANS,
            "--out",
            out.to_str().unwrap(),
            "--traces",
            traces.to_str().unwrap(),
            "--bench",
            base.join(bench).to_str().unwrap(),
            "--no-compare-serial",
            "--quiet",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    };

    // Uninterrupted reference run.
    let cold = base.join("cold");
    let status = Command::new(suite).args(args(&cold, "bench_cold.json")).status().unwrap();
    assert!(status.success(), "cold run failed");

    // Victim run: SIGKILL lands wherever it lands — possibly before the
    // first plan, possibly after the last. Every landing point must
    // resume to the same bytes.
    let warm = base.join("warm");
    let mut victim =
        Command::new(suite).args(args(&warm, "bench_victim.json")).spawn().expect("spawn victim");
    std::thread::sleep(std::time::Duration::from_millis(300));
    let _ = victim.kill(); // SIGKILL on unix; already-exited is fine
    let _ = victim.wait();

    let mut resume_args = args(&warm, "bench_resume.json");
    resume_args.push("--resume".to_string());
    let status = Command::new(suite).args(resume_args).status().unwrap();
    assert!(status.success(), "resumed run failed");

    for name in ARTIFACTS {
        let a = std::fs::read(cold.join(name)).unwrap_or_else(|e| panic!("cold {name}: {e}"));
        let b = std::fs::read(warm.join(name)).unwrap_or_else(|e| panic!("warm {name}: {e}"));
        assert_eq!(a, b, "{name} differs between cold and killed+resumed runs");
    }
    assert!(warm.join(".run_manifest.jsonl").is_file(), "manifest records completions");

    let _ = std::fs::remove_dir_all(&base);
}
