//! Property tests for the declarative-workload front end: Zipfian
//! sampler determinism and distribution sanity, spec round-tripping, and
//! parse robustness (arbitrary input must yield a typed error, never a
//! panic).

use proptest::prelude::*;
use tls_harness::workload::{WorkloadSpec, Zipf};

/// Draws `count` samples and returns the fraction that landed in the
/// lowest-ranked tenth of the key space.
fn head_mass(n: u64, theta: f64, seed: u64, count: usize) -> f64 {
    let mut z = Zipf::new(n, theta, seed);
    let head = (n / 10).max(1);
    let hits = (0..count).filter(|_| z.next() < head).count();
    hits as f64 / count as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same `(n, theta, seed)` → the same sequence, draw for draw.
    #[test]
    fn zipf_is_deterministic(
        n in 1u64..4096,
        theta in 0.0f64..0.99,
        seed in any::<u64>(),
    ) {
        let mut a = Zipf::new(n, theta, seed);
        let mut b = Zipf::new(n, theta, seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next(), b.next());
        }
    }

    /// Every draw stays inside `0..n` across the full parameter space.
    #[test]
    fn zipf_stays_in_range(
        n in 1u64..4096,
        theta in 0.0f64..0.99,
        seed in any::<u64>(),
    ) {
        let mut z = Zipf::new(n, theta, seed);
        for _ in 0..256 {
            prop_assert!(z.next() < n);
        }
    }

    /// Skewed draws concentrate on low ranks: with `theta >= 0.6` the
    /// lowest tenth of the key space receives at least twice the uniform
    /// share of the mass (analytically it gets ~4x at theta 0.6; the
    /// slack absorbs sampling noise over 2000 draws).
    #[test]
    fn zipf_skews_towards_low_ranks(
        n in 256u64..4096,
        theta in 0.6f64..0.99,
        seed in any::<u64>(),
    ) {
        let skewed = head_mass(n, theta, seed, 2000);
        prop_assert!(skewed > 0.2, "head mass {skewed} too small for theta {theta}");
        let uniform = head_mass(n, 0.0, seed, 2000);
        prop_assert!(
            skewed > 1.5 * uniform,
            "skewed head mass {skewed} not above uniform {uniform}"
        );
    }

    /// A valid spec survives serialize → parse unchanged, and scaling it
    /// down for test runs keeps it valid.
    #[test]
    fn specs_round_trip_and_scale_down(
        seed in any::<u64>(),
        rows in 16u64..10_000,
        transactions in 1usize..50,
        theta in 0.0f64..0.99,
        think_ops in 0u32..64,
    ) {
        let mut spec = WorkloadSpec::example();
        spec.seed = seed;
        spec.rows = rows;
        spec.transactions = transactions;
        spec.zipf_theta = theta;
        spec.think_ops = think_ops;
        spec.scan_len = spec.scan_len.min(rows);
        spec.rows_per_epoch = spec.rows_per_epoch.min(spec.scan_len);
        spec.validate("").expect("constructed spec is valid");

        let json = serde_json::to_string_pretty(&spec).expect("spec serializes");
        let parsed = WorkloadSpec::parse(&json).expect("round trip");
        prop_assert_eq!(&parsed, &spec);
        parsed.scaled_down().validate("").expect("scaled-down spec stays valid");
    }

    /// Arbitrary input — valid JSON or not — produces `Ok` or a typed
    /// `SpecError`, never a panic.
    #[test]
    fn parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = WorkloadSpec::parse(&src);
    }

    /// An unknown field is always reported by name.
    #[test]
    fn unknown_fields_are_named(n in any::<u16>()) {
        // `nope_<n>` can never collide with a valid field name.
        let name = format!("nope_{n}");
        prop_assert!(!WorkloadSpec::valid_fields().iter().any(|(f, _)| *f == name));
        let src = format!("{{\"{name}\": 1}}");
        let e = WorkloadSpec::parse(&src).expect_err("unknown field must error");
        prop_assert_eq!(e.field.as_deref(), Some(name.as_str()));
    }
}
