//! Zero-copy read-path properties: a memory-mapped [`TraceView`] must be
//! observationally identical to an owned decode of the same snapshot,
//! and every malformed container must be rejected with a *typed* error
//! before any op is served in place.

use proptest::collection::vec;
use proptest::prelude::*;
use std::path::PathBuf;
use tls_core::experiment::BenchmarkPrograms;
use tls_harness::codec::{
    self, encode_pair_file, fingerprint_view, fnv1a, program_bytes, CHECKSUM_LEN, HEADER_LEN,
};
use tls_harness::mapped::{MapOutcome, TraceView};
use tls_trace::{Addr, LatchId, OpSink, Pc, ProgramBuilder, TraceOp, TraceProgram};

/// A generated op: `(class, module, site, arg, addr, dep)`.
type OpDesc = (u8, u16, u16, u8, u64, u16);

fn op(d: OpDesc) -> TraceOp {
    let (class, module, site, arg, addr, dep) = d;
    let pc = Pc::new(module, site);
    let op = match class % 7 {
        0 => TraceOp::int_alu(pc, arg),
        1 => TraceOp::fp_alu(pc, arg),
        2 => TraceOp::load(pc, Addr(addr), arg % 8 + 1),
        3 => TraceOp::store(pc, Addr(addr), arg % 8 + 1),
        4 => TraceOp::branch(pc, arg & 1 == 1),
        5 => TraceOp::latch_acquire(pc, LatchId((addr & 0xFFFF) as u16)),
        _ => TraceOp::latch_release(pc, LatchId((addr & 0xFFFF) as u16)),
    };
    op.with_dep(dep)
}

fn program(name: &str, prefix: &[OpDesc], epochs: &[Vec<OpDesc>]) -> TraceProgram {
    let mut b = ProgramBuilder::new(name);
    for &d in prefix {
        b.emit(op(d));
    }
    if !epochs.is_empty() {
        b.begin_parallel();
        for epoch in epochs {
            b.begin_epoch();
            for &d in epoch {
                b.emit(op(d));
            }
            b.end_epoch();
        }
        b.end_parallel();
    }
    b.finish()
}

fn temp_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tls-mapped-{tag}-{}.trace", std::process::id()))
}

/// Writes `bytes` under `tag` and opens the file as a mapped view.
fn open_bytes(tag: &str, bytes: &[u8], key: u64) -> MapOutcome {
    let path = temp_file(tag);
    std::fs::write(&path, bytes).expect("write snapshot");
    let outcome = TraceView::open(&path, key);
    let _ = std::fs::remove_file(&path);
    outcome
}

/// Recomputes the trailing container checksum after a deliberate tamper,
/// so the tampered field itself — not the checksum — is what the decoder
/// trips over.
fn reseal(bytes: &mut [u8]) {
    let n = bytes.len() - CHECKSUM_LEN;
    let sum = fnv1a(&bytes[..n]).to_le_bytes();
    bytes[n..].copy_from_slice(&sum);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The mapped view and the owned decode of the same snapshot agree
    /// on every observable: canonical bytes, fingerprints, op counts.
    #[test]
    fn mapped_view_equals_owned_decode(
        prefix in vec((any::<u8>(), any::<u16>(), any::<u16>(), any::<u8>(), any::<u64>(), any::<u16>()), 0..10),
        epochs in vec(vec((any::<u8>(), any::<u16>(), any::<u16>(), any::<u8>(), any::<u64>(), any::<u16>()), 0..12), 0..4),
        key in any::<u64>(),
    ) {
        let pair = BenchmarkPrograms {
            plain: program("plain-prog", &prefix, &[]),
            tls: program("tls-prog", &prefix, &epochs),
        };
        let bytes = encode_pair_file(key, &pair);
        let owned = codec::decode_pair_file(&bytes, key).expect("owned decode");
        let MapOutcome::Mapped(view) = open_bytes("eq", &bytes, key) else {
            panic!("fresh v2 snapshot must map");
        };
        prop_assert_eq!(
            program_bytes(&view.plain().to_program()),
            program_bytes(&owned.plain)
        );
        prop_assert_eq!(program_bytes(&view.tls().to_program()), program_bytes(&owned.tls));
        prop_assert_eq!(view.plain().total_ops(), owned.plain.view().total_ops());
        prop_assert_eq!(view.tls().total_ops(), owned.tls.view().total_ops());
        // The map-time fingerprints are the canonical content hashes.
        prop_assert_eq!(view.plain_fingerprint, fnv1a(&program_bytes(&owned.plain)));
        prop_assert_eq!(view.tls_fingerprint, fnv1a(&program_bytes(&owned.tls)));
        prop_assert_eq!(view.plain_fingerprint, fingerprint_view(&view.plain()));
    }

    /// Every byte-boundary truncation is rejected by the mapped opener —
    /// never served, never a panic. (Zero-length files read as missing:
    /// an empty mapping carries no container at all.)
    #[test]
    fn truncations_never_map(cut_seed in any::<u64>()) {
        let pair = BenchmarkPrograms {
            plain: program("p", &[(0, 1, 1, 1, 0, 0)], &[]),
            tls: program("t", &[], &[vec![(2, 1, 2, 1, 64, 0)]]),
        };
        let bytes = encode_pair_file(7, &pair);
        let cut = 1 + (cut_seed % (bytes.len() as u64 - 1)) as usize;
        match open_bytes("cut", &bytes[..cut], 7) {
            MapOutcome::Bad(_) => {}
            other => prop_assert!(false, "a {cut}-byte prefix produced {other:?}"),
        }
    }
}

#[test]
fn foreign_endian_snapshots_are_rejected_with_a_typed_error() {
    let pair = BenchmarkPrograms {
        plain: program("p", &[(0, 1, 1, 1, 0, 0)], &[]),
        tls: program("t", &[], &[vec![(2, 1, 2, 1, 64, 0)]]),
    };
    let mut bytes = encode_pair_file(9, &pair);
    // The endianness stamp is the first payload field; byte-swap it as a
    // big-endian writer would have, and reseal the checksum so the stamp
    // itself is what the opener rejects.
    bytes.swap(HEADER_LEN, HEADER_LEN + 1);
    reseal(&mut bytes);
    match open_bytes("endian", &bytes, 9) {
        MapOutcome::Bad(e) => assert_eq!(e.code(), "foreign-endian", "{e}"),
        other => panic!("foreign-endian snapshot produced {other:?}"),
    }
    // The owned decoder agrees (no path serves swapped records).
    let err = codec::decode_pair_file(&bytes, 9).expect_err("owned decode rejects too");
    assert_eq!(err.code(), "foreign-endian");
}

#[test]
fn wrong_record_size_is_rejected_with_a_typed_error() {
    let pair = BenchmarkPrograms {
        plain: program("p", &[(0, 1, 1, 1, 0, 0)], &[]),
        tls: program("t", &[], &[vec![(2, 1, 2, 1, 64, 0)]]),
    };
    let mut bytes = encode_pair_file(11, &pair);
    // The declared record size (payload offset 2) guards layout drift: a
    // snapshot written by a build with a different `TraceOp` must not be
    // reinterpreted.
    bytes[HEADER_LEN + 2] = 24;
    reseal(&mut bytes);
    match open_bytes("recsize", &bytes, 11) {
        MapOutcome::Bad(e) => assert_eq!(e.code(), "bad-record-size", "{e}"),
        other => panic!("wrong-record-size snapshot produced {other:?}"),
    }
}

#[test]
fn declared_op_count_must_match_the_structure() {
    let pair = BenchmarkPrograms {
        plain: program("p", &[(0, 1, 1, 1, 0, 0)], &[]),
        tls: program("t", &[], &[vec![(2, 1, 2, 1, 64, 0)]]),
    };
    let mut bytes = encode_pair_file(13, &pair);
    // total_ops lives at payload offset 8; inflating it desynchronizes
    // the bank from the structure section.
    let at = HEADER_LEN + 8;
    let declared = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    bytes[at..at + 8].copy_from_slice(&(declared + 1).to_le_bytes());
    reseal(&mut bytes);
    match open_bytes("opcount", &bytes, 13) {
        // Depending on where the mismatch is caught the code differs,
        // but it must be a structured rejection.
        MapOutcome::Bad(e) => assert!(
            matches!(e.code(), "op-count-mismatch" | "length-mismatch" | "truncated"),
            "unexpected code {} ({e})",
            e.code()
        ),
        other => panic!("op-count-tampered snapshot produced {other:?}"),
    }
}
