//! Execution-time accounting — the stacked categories of Figures 5 and 6.
//!
//! Every CPU is in exactly one [`CycleCategory`] each cycle. Cycles accrue
//! into the *current sub-thread's* ledger bucket; when a violation rewinds
//! sub-threads `k..`, everything those buckets accumulated is
//! re-classified as **Failed** ("includes all time spent executing failed
//! code"), exactly as the paper attributes it.

use crate::chaos::FaultClass;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// What a CPU spent one cycle doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CycleCategory {
    /// Executing instructions that were ultimately kept.
    Busy,
    /// Stalled with the oldest instruction waiting on the memory
    /// hierarchy.
    CacheMiss,
    /// Blocked acquiring a latch held by another CPU (escaped
    /// synchronization).
    Latch,
    /// Finished executing, waiting for the homefree token to commit.
    Sync,
    /// Stalled waiting for the TSO store buffer to drain (a full buffer
    /// on store dispatch, a partially-covering forward on load, or a
    /// flush at one of the protocol's ordering points). Always zero
    /// under [`crate::MemoryModel::Sc`].
    DrainStall,
    /// No speculative thread available to run.
    Idle,
    /// Work later undone by a violation (assigned retroactively).
    Failed,
}

/// All categories, in the order Figure 5's legend lists them (the
/// TSO-only [`CycleCategory::DrainStall`] slots in beside the other
/// ordering stalls).
pub const ALL_CATEGORIES: [CycleCategory; 7] = [
    CycleCategory::Idle,
    CycleCategory::Failed,
    CycleCategory::Latch,
    CycleCategory::Sync,
    CycleCategory::DrainStall,
    CycleCategory::CacheMiss,
    CycleCategory::Busy,
];

impl fmt::Display for CycleCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CycleCategory::Busy => "Busy",
            CycleCategory::CacheMiss => "Cache Miss",
            CycleCategory::Latch => "Latch Stall",
            CycleCategory::Sync => "Sync",
            CycleCategory::DrainStall => "Drain Stall",
            CycleCategory::Idle => "Idle",
            CycleCategory::Failed => "Failed",
        };
        f.write_str(s)
    }
}

/// CPU-cycles per category. For an `n`-CPU run of `c` cycles,
/// [`Breakdown::total`] equals `n * c`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Cycles spent executing retained work.
    pub busy: u64,
    /// Cycles stalled on the memory hierarchy.
    pub cache_miss: u64,
    /// Cycles blocked on latches.
    pub latch: u64,
    /// Cycles waiting to commit.
    pub sync: u64,
    /// Cycles stalled on TSO store-buffer drains (zero under SC).
    pub drain_stall: u64,
    /// Cycles with no thread to run.
    pub idle: u64,
    /// Cycles of work that was rewound.
    pub failed: u64,
}

impl Breakdown {
    /// Adds one cycle of `category`.
    pub fn add(&mut self, category: CycleCategory, cycles: u64) {
        *self.slot_mut(category) += cycles;
    }

    /// Cycles recorded under `category`.
    pub fn get(&self, category: CycleCategory) -> u64 {
        match category {
            CycleCategory::Busy => self.busy,
            CycleCategory::CacheMiss => self.cache_miss,
            CycleCategory::Latch => self.latch,
            CycleCategory::Sync => self.sync,
            CycleCategory::DrainStall => self.drain_stall,
            CycleCategory::Idle => self.idle,
            CycleCategory::Failed => self.failed,
        }
    }

    fn slot_mut(&mut self, category: CycleCategory) -> &mut u64 {
        match category {
            CycleCategory::Busy => &mut self.busy,
            CycleCategory::CacheMiss => &mut self.cache_miss,
            CycleCategory::Latch => &mut self.latch,
            CycleCategory::Sync => &mut self.sync,
            CycleCategory::DrainStall => &mut self.drain_stall,
            CycleCategory::Idle => &mut self.idle,
            CycleCategory::Failed => &mut self.failed,
        }
    }

    /// Sum over all categories.
    pub fn total(&self) -> u64 {
        self.busy
            + self.cache_miss
            + self.latch
            + self.sync
            + self.drain_stall
            + self.idle
            + self.failed
    }

    /// Collapses every non-idle category into `failed` and returns the
    /// result (used when a whole ledger bucket is rewound).
    #[must_use]
    pub fn into_failed(self) -> Breakdown {
        Breakdown { failed: self.total(), ..Breakdown::default() }
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.busy += rhs.busy;
        self.cache_miss += rhs.cache_miss;
        self.latch += rhs.latch;
        self.sync += rhs.sync;
        self.drain_stall += rhs.drain_stall;
        self.idle += rhs.idle;
        self.failed += rhs.failed;
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.total().max(1) as f64;
        for c in ALL_CATEGORIES {
            write!(f, "{}: {:.1}%  ", c, 100.0 * self.get(c) as f64 / t)?;
        }
        Ok(())
    }
}

/// Per-sub-thread cycle ledger of one running epoch.
///
/// Bucket `k` holds the cycles accrued since sub-thread `k` began (and
/// after sub-thread `k + 1` began, bucket `k + 1` takes over). A rewind to
/// sub-thread `k` converts buckets `k..` wholly into Failed time.
#[derive(Debug, Clone, Default)]
pub struct SubThreadLedger {
    buckets: Vec<Breakdown>,
}

impl SubThreadLedger {
    /// A ledger with the initial sub-thread's bucket open.
    pub fn new() -> Self {
        SubThreadLedger { buckets: vec![Breakdown::default()] }
    }

    /// Opens the bucket for the next sub-thread.
    pub fn push_subthread(&mut self) {
        self.buckets.push(Breakdown::default());
    }

    /// Index of the newest bucket.
    pub fn current(&self) -> usize {
        self.buckets.len() - 1
    }

    /// Adds one cycle of `category` to the newest bucket.
    pub fn record(&mut self, category: CycleCategory) {
        self.record_n(category, 1);
    }

    /// Adds `cycles` cycles of `category` to the newest bucket in one
    /// step — the bulk form used when the simulator fast-forwards over a
    /// stretch of provably identical stall cycles.
    pub fn record_n(&mut self, category: CycleCategory, cycles: u64) {
        let last = self.buckets.last_mut().expect("ledger always has a bucket");
        last.add(category, cycles);
    }

    /// Merges bucket `m` into bucket `m-1` (sub-thread context
    /// recycling): the cycles stay attributed, under the surviving
    /// checkpoint.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= m < buckets`.
    pub fn merge_bucket(&mut self, m: usize) {
        assert!(m >= 1 && m < self.buckets.len(), "cannot merge bucket {m}");
        let b = self.buckets.remove(m);
        self.buckets[m - 1] += b;
    }

    /// Rewinds to sub-thread `k`: buckets `k..` become Failed time, which
    /// is returned; bucket `k` is re-opened empty.
    ///
    /// # Panics
    ///
    /// Panics if `k` is beyond the newest bucket.
    pub fn rewind_to(&mut self, k: usize) -> Breakdown {
        assert!(k < self.buckets.len(), "rewind to unstarted sub-thread {k}");
        let mut failed = Breakdown::default();
        for b in self.buckets.drain(k..) {
            failed += b.into_failed();
        }
        self.buckets.push(Breakdown::default());
        failed
    }

    /// Closes the ledger (epoch committed), returning the summed kept
    /// time.
    pub fn commit(self) -> Breakdown {
        let mut sum = Breakdown::default();
        for b in self.buckets {
            sum += b;
        }
        sum
    }

    /// Total cycles currently in buckets `k..` — the amount of execution a
    /// rewind to `k` would discard (used for profile attribution).
    pub fn cycles_since(&self, k: usize) -> u64 {
        self.buckets.iter().skip(k).map(Breakdown::total).sum()
    }
}

/// Per-class counters for the chaos harness: how many faults of each
/// class were actually applied, how many found no eligible target, and
/// how many recoverable protocol errors the machine absorbed.
///
/// All zero on a fault-free run, so the struct rides along in every
/// [`crate::report::SimReport`] at no cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Applied [`FaultClass::SpuriousPrimary`] events.
    pub spurious_primary: u64,
    /// Applied [`FaultClass::SpuriousSecondary`] events.
    pub spurious_secondary: u64,
    /// Applied [`FaultClass::VictimSqueeze`] events.
    pub victim_squeeze: u64,
    /// Applied [`FaultClass::ForcedMerge`] events.
    pub forced_merge: u64,
    /// Applied [`FaultClass::DelayedToken`] events.
    pub delayed_token: u64,
    /// Applied [`FaultClass::LatchHazard`] events.
    pub latch_hazard: u64,
    /// Applied [`FaultClass::StuckDrain`] events.
    pub stuck_drain: u64,
    /// Applied [`FaultClass::ReorderedDrain`] events.
    pub reordered_drain: u64,
    /// Applied [`FaultClass::DroppedEntry`] events.
    pub dropped_entry: u64,
    /// Events that fired with no eligible target (e.g. a merge when no
    /// epoch had two checkpoints) and were dropped.
    pub skipped: u64,
    /// Recoverable protocol errors absorbed during the run (see
    /// [`crate::report::SimReport::protocol_errors`]).
    pub protocol_errors: u64,
}

impl FaultStats {
    /// Counts one applied fault of `class`.
    pub fn record(&mut self, class: FaultClass) {
        *self.slot_mut(class) += 1;
    }

    /// Applied-fault count for `class`.
    pub fn get(&self, class: FaultClass) -> u64 {
        match class {
            FaultClass::SpuriousPrimary => self.spurious_primary,
            FaultClass::SpuriousSecondary => self.spurious_secondary,
            FaultClass::VictimSqueeze => self.victim_squeeze,
            FaultClass::ForcedMerge => self.forced_merge,
            FaultClass::DelayedToken => self.delayed_token,
            FaultClass::LatchHazard => self.latch_hazard,
            FaultClass::StuckDrain => self.stuck_drain,
            FaultClass::ReorderedDrain => self.reordered_drain,
            FaultClass::DroppedEntry => self.dropped_entry,
        }
    }

    /// Total faults applied, across every class.
    pub fn applied(&self) -> u64 {
        crate::chaos::ALL_FAULT_CLASSES.iter().map(|&c| self.get(c)).sum()
    }

    fn slot_mut(&mut self, class: FaultClass) -> &mut u64 {
        match class {
            FaultClass::SpuriousPrimary => &mut self.spurious_primary,
            FaultClass::SpuriousSecondary => &mut self.spurious_secondary,
            FaultClass::VictimSqueeze => &mut self.victim_squeeze,
            FaultClass::ForcedMerge => &mut self.forced_merge,
            FaultClass::DelayedToken => &mut self.delayed_token,
            FaultClass::LatchHazard => &mut self.latch_hazard,
            FaultClass::StuckDrain => &mut self.stuck_drain,
            FaultClass::ReorderedDrain => &mut self.reordered_drain,
            FaultClass::DroppedEntry => &mut self.dropped_entry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut b = Breakdown::default();
        b.add(CycleCategory::Busy, 10);
        b.add(CycleCategory::Idle, 5);
        assert_eq!(b.total(), 15);
        assert_eq!(b.get(CycleCategory::Busy), 10);
    }

    #[test]
    fn into_failed_collapses() {
        let mut b = Breakdown::default();
        b.add(CycleCategory::Busy, 7);
        b.add(CycleCategory::CacheMiss, 3);
        let f = b.into_failed();
        assert_eq!(f.failed, 10);
        assert_eq!(f.busy, 0);
    }

    #[test]
    fn ledger_rewind_reclassifies_tail_buckets() {
        let mut l = SubThreadLedger::new();
        l.record(CycleCategory::Busy); // sub 0
        l.push_subthread();
        l.record(CycleCategory::Busy); // sub 1
        l.record(CycleCategory::CacheMiss); // sub 1
        l.push_subthread();
        l.record(CycleCategory::Busy); // sub 2
        assert_eq!(l.current(), 2);
        assert_eq!(l.cycles_since(1), 3);

        let failed = l.rewind_to(1);
        assert_eq!(failed.failed, 3);
        assert_eq!(l.current(), 1); // bucket 1 re-opened

        l.record(CycleCategory::Busy);
        let kept = l.commit();
        assert_eq!(kept.busy, 2); // sub 0 + replayed sub 1
        assert_eq!(kept.failed, 0); // failed time was extracted, not kept
    }

    #[test]
    fn ledger_commit_sums_buckets() {
        let mut l = SubThreadLedger::new();
        l.record(CycleCategory::Sync);
        l.push_subthread();
        l.record(CycleCategory::Busy);
        let b = l.commit();
        assert_eq!(b.sync, 1);
        assert_eq!(b.busy, 1);
        assert_eq!(b.total(), 2);
    }

    #[test]
    fn merge_bucket_folds_cycles_down() {
        let mut l = SubThreadLedger::new();
        l.record(CycleCategory::Busy); // sub 0
        l.push_subthread();
        l.record(CycleCategory::CacheMiss); // sub 1
        l.push_subthread();
        l.record(CycleCategory::Sync); // sub 2
        l.merge_bucket(1);
        assert_eq!(l.current(), 1);
        let kept = l.commit();
        assert_eq!((kept.busy, kept.cache_miss, kept.sync), (1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "cannot merge bucket")]
    fn merge_bucket_zero_panics() {
        let mut l = SubThreadLedger::new();
        l.push_subthread();
        l.merge_bucket(0);
    }

    #[test]
    #[should_panic(expected = "unstarted sub-thread")]
    fn rewind_past_end_panics() {
        let mut l = SubThreadLedger::new();
        let _ = l.rewind_to(3);
    }

    #[test]
    fn fault_stats_record_and_sum() {
        let mut s = FaultStats::default();
        s.record(FaultClass::ForcedMerge);
        s.record(FaultClass::ForcedMerge);
        s.record(FaultClass::LatchHazard);
        s.skipped += 1;
        assert_eq!(s.get(FaultClass::ForcedMerge), 2);
        assert_eq!(s.get(FaultClass::LatchHazard), 1);
        assert_eq!(s.applied(), 3, "skipped events are not applied");
    }

    #[test]
    fn display_covers_all_categories() {
        let mut b = Breakdown::default();
        b.add(CycleCategory::Failed, 1);
        let s = format!("{b}");
        for c in ALL_CATEGORIES {
            assert!(s.contains(&format!("{c}")), "missing {c} in {s}");
        }
    }
}
