//! Machine configuration.

use crate::predictor::PredictorConfig;
use crate::vpredict::VPredictConfig;
use serde::{Deserialize, Serialize};
use tls_cache::{CacheParams, MemParams};
use tls_cpu::CpuConfig;

/// Maximum CPUs per chip supported by the speculative-state encoding.
pub const MAX_CPUS: usize = 8;
/// Maximum sub-thread contexts per speculative thread.
pub const MAX_SUBTHREADS: usize = 8;

/// The memory-consistency model the simulated CPUs obey.
///
/// Everything before PR 10 assumed sequential consistency; TSO is the
/// relaxed model real DBMS hardware (x86) actually runs, specified —
/// following *Taming Weak Memory Models* — as bounded per-CPU FIFO
/// store buffering with same-address store-to-load forwarding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryModel {
    /// Sequential consistency: a store reaches the (speculative) memory
    /// system the cycle it retires. The default; byte-identical to the
    /// pre-TSO simulator.
    Sc,
    /// Total store order: retiring stores enter a bounded FIFO store
    /// buffer and drain — oldest first, one per cycle — at the
    /// protocol's ordering points (sync ops, latch acquisition, the
    /// homefree-token handoff, epoch commit) or when the buffer fills.
    /// Loads forward from the youngest covering buffered store.
    Tso {
        /// Store-buffer entries per CPU (Table 1-style geometry knob).
        buffer_entries: usize,
    },
}

impl MemoryModel {
    /// True for [`MemoryModel::Tso`].
    pub fn is_tso(&self) -> bool {
        matches!(self, MemoryModel::Tso { .. })
    }

    /// Store-buffer entries per CPU; 0 under [`MemoryModel::Sc`].
    pub fn buffer_entries(&self) -> usize {
        match *self {
            MemoryModel::Sc => 0,
            MemoryModel::Tso { buffer_entries } => buffer_entries,
        }
    }
}

/// When to start a new sub-thread within a speculative thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpacingPolicy {
    /// Start a new sub-thread every `n` speculative instructions — the
    /// paper's strategy ("a simple strategy that works well in practice",
    /// §5.1), with n = 5000 in the baseline.
    Every(u64),
    /// Divide each thread evenly across the available contexts, the
    /// refinement §5.1 suggests ("customize the sub-thread size such that
    /// the average thread size ... would be divided evenly").
    EvenDivision,
}

impl SpacingPolicy {
    /// The spacing, in speculative instructions, for a thread of
    /// `epoch_ops` dynamic instructions with `contexts` sub-thread
    /// contexts.
    pub fn spacing_for(&self, epoch_ops: usize, contexts: u8) -> u64 {
        match *self {
            SpacingPolicy::Every(n) => n.max(1),
            SpacingPolicy::EvenDivision => (epoch_ops as u64 / contexts.max(1) as u64).max(1),
        }
    }
}

/// What happens when a thread wants a new sub-thread but all of its
/// hardware contexts are in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExhaustionPolicy {
    /// Recycle a context by merging the two adjacent sub-threads with the
    /// smallest combined span (their speculative state unions — a pair of
    /// ORs over the L2's per-context bit columns — and the newer register
    /// checkpoint is discarded). Checkpoints therefore *trail* execution:
    /// even a 490k-instruction DELIVERY OUTER thread always has a recent
    /// checkpoint, which is what lets Figure 6 report that more
    /// sub-threads "increase the fraction of the thread which is covered".
    /// This is a reconstruction — see DESIGN.md §5 — of a detail the
    /// paper leaves open.
    Merge,
    /// Stop creating sub-threads once the contexts are consumed (a
    /// literal reading of §2.2); the rest of the thread runs in the last
    /// context, so any violation there rewinds to the last checkpoint.
    Stop,
}

/// Sub-thread support configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubThreadConfig {
    /// Hardware sub-thread contexts per thread, *including* the initial
    /// one. `1` disables sub-threads (all-or-nothing TLS).
    pub contexts: u8,
    /// When new sub-threads begin.
    pub spacing: SpacingPolicy,
    /// Context-recycling policy once all contexts are in use.
    pub exhaustion: ExhaustionPolicy,
}

impl SubThreadConfig {
    /// The paper's baseline: 8 contexts, a new sub-thread every 5000
    /// speculative instructions, contexts recycled by merging.
    pub fn baseline() -> Self {
        SubThreadConfig {
            contexts: 8,
            spacing: SpacingPolicy::Every(5000),
            exhaustion: ExhaustionPolicy::Merge,
        }
    }

    /// All-or-nothing TLS (the NO SUB-THREAD experiment).
    pub fn disabled() -> Self {
        SubThreadConfig {
            contexts: 1,
            spacing: SpacingPolicy::Every(u64::MAX),
            exhaustion: ExhaustionPolicy::Stop,
        }
    }
}

/// How secondary violations pick the restart point of logically-later
/// threads (Figure 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SecondaryPolicy {
    /// Consult each later thread's sub-thread start table and restart only
    /// the sub-threads that could have consumed violated data —
    /// Figure 4(b), the paper's design.
    StartTable,
    /// Restart later threads from their beginning — Figure 4(a), the
    /// ablation.
    RestartAll,
}

/// Full configuration of the simulated chip multiprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CmpConfig {
    /// Number of CPUs on the chip (the paper evaluates 4).
    pub cpus: usize,
    /// Per-core pipeline parameters.
    pub cpu: CpuConfig,
    /// Private L1 data-cache geometry.
    pub l1: CacheParams,
    /// Shared L2 geometry.
    pub l2: CacheParams,
    /// L2/memory timing and contention parameters.
    pub mem: MemParams,
    /// Speculative victim-cache entries (Table 1: 64).
    pub victim_entries: usize,
    /// Sub-thread support.
    pub subthreads: SubThreadConfig,
    /// Secondary-violation selectivity.
    pub secondary: SecondaryPolicy,
    /// When false, dependence tracking is disabled entirely: loads set no
    /// speculative state and stores violate nothing. This is the paper's
    /// NO SPECULATION upper bound ("incorrectly treating all speculative
    /// memory accesses as non-speculative").
    pub track_dependences: bool,
    /// Entries in each CPU's direct-mapped exposed-load table (§3.1).
    pub exposed_load_entries: usize,
    /// The §1.2 alternative mechanism: a PC-indexed dependence predictor
    /// that synchronizes predicted-violating loads. Off in the paper's
    /// design (they found it ineffective; sub-threads subsume it).
    pub predictor: PredictorConfig,
    /// The Prophet alternative: a PC-indexed value predictor on exposed
    /// speculative loads — a correct prediction suppresses the RAW
    /// violation (validated at commit time), a wrong one rewinds. Off by
    /// default; measured by the `prediction_frontier` plan.
    pub vpredict: VPredictConfig,
    /// Extend the L1 to track sub-threads so violation recovery
    /// invalidates only lines the rewind could have dirtied. The paper
    /// evaluated this and found it "not worthwhile" (§2.2); off by
    /// default, measured by the `ablations` harness.
    pub l1_subthread_aware: bool,
    /// Memory-consistency model of the CPUs. [`MemoryModel::Sc`] (the
    /// default) is the pre-PR-10 machine; [`MemoryModel::Tso`] adds
    /// per-CPU store buffers with drain-stall accounting and arms the
    /// commit-serializability auditor's store-flow invariant.
    pub memory_model: MemoryModel,
    /// Safety valve: abort simulation after this many cycles (0 = no
    /// limit). A run that exceeds it panics — useful in tests.
    pub max_cycles: u64,
}

impl CmpConfig {
    /// The paper's evaluated machine: Table 1 plus the baseline sub-thread
    /// configuration (8 sub-threads of 5000 instructions, start-table
    /// secondary violations).
    pub fn paper_default() -> Self {
        CmpConfig {
            cpus: 4,
            cpu: CpuConfig::paper_default(),
            l1: CacheParams::paper_l1(),
            l2: CacheParams::paper_l2(),
            mem: MemParams::paper_default(),
            victim_entries: 64,
            subthreads: SubThreadConfig::baseline(),
            secondary: SecondaryPolicy::StartTable,
            track_dependences: true,
            exposed_load_entries: 4096,
            predictor: PredictorConfig::disabled(),
            vpredict: VPredictConfig::disabled(),
            l1_subthread_aware: false,
            memory_model: MemoryModel::Sc,
            max_cycles: 0,
        }
    }

    /// A small, fast machine for unit tests: 2 KB L1 / 16 KB L2, scalar
    /// latencies kept, 4 CPUs.
    pub fn test_small() -> Self {
        CmpConfig {
            cpus: 4,
            cpu: CpuConfig::paper_default(),
            l1: CacheParams::new(2 * 1024, 2, 32),
            l2: CacheParams::new(16 * 1024, 4, 32),
            mem: MemParams::paper_default(),
            victim_entries: 16,
            subthreads: SubThreadConfig {
                contexts: 4,
                spacing: SpacingPolicy::Every(500),
                exhaustion: ExhaustionPolicy::Merge,
            },
            secondary: SecondaryPolicy::StartTable,
            track_dependences: true,
            exposed_load_entries: 256,
            predictor: PredictorConfig::disabled(),
            vpredict: VPredictConfig::disabled(),
            l1_subthread_aware: false,
            memory_model: MemoryModel::Sc,
            max_cycles: 50_000_000,
        }
    }

    /// Validates cross-field invariants.
    ///
    /// # Panics
    ///
    /// Panics if the CPU count or sub-thread contexts exceed the encoding
    /// limits ([`MAX_CPUS`], [`MAX_SUBTHREADS`]), or if the sub-thread
    /// context count is zero.
    pub fn validate(&self) {
        assert!(
            (1..=MAX_CPUS).contains(&self.cpus),
            "cpus must be 1..={MAX_CPUS}, got {}",
            self.cpus
        );
        assert!(
            (1..=MAX_SUBTHREADS as u8).contains(&self.subthreads.contexts),
            "sub-thread contexts must be 1..={MAX_SUBTHREADS}, got {}",
            self.subthreads.contexts
        );
        assert!(self.exposed_load_entries.is_power_of_two(), "exposed-load table size");
        assert!(
            self.predictor.entries.is_power_of_two() && self.predictor.entries > 0,
            "predictor table size"
        );
        assert!(
            self.vpredict.entries.is_power_of_two() && self.vpredict.entries > 0,
            "value-predictor table size"
        );
        assert_eq!(self.l1.line_bytes, self.l2.line_bytes, "L1/L2 line sizes must match");
        if let MemoryModel::Tso { buffer_entries } = self.memory_model {
            assert!(
                (1..=256).contains(&buffer_entries),
                "TSO store buffer must have 1..=256 entries, got {buffer_entries}"
            );
        }
    }

    /// Bits-per-line of L2 speculative storage this configuration costs
    /// (the paper: "2 bits of storage per cache line per sub-thread
    /// tracked" per thread — 64 bits for 4 CPUs × 8 sub-threads).
    pub fn spec_bits_per_line(&self) -> u32 {
        2 * self.cpus as u32 * self.subthreads.contexts as u32
    }
}

impl Default for CmpConfig {
    fn default() -> Self {
        CmpConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        let c = CmpConfig::paper_default();
        c.validate();
        assert_eq!(c.cpus, 4);
        assert_eq!(c.subthreads.contexts, 8);
        assert_eq!(c.victim_entries, 64);
        assert_eq!(c.spec_bits_per_line(), 64);
    }

    #[test]
    fn spacing_every_is_constant() {
        let p = SpacingPolicy::Every(5000);
        assert_eq!(p.spacing_for(1_000_000, 8), 5000);
        assert_eq!(p.spacing_for(10, 8), 5000);
    }

    #[test]
    fn spacing_even_division_scales_with_thread() {
        let p = SpacingPolicy::EvenDivision;
        assert_eq!(p.spacing_for(80_000, 8), 10_000);
        assert_eq!(p.spacing_for(7, 8), 1); // never zero
    }

    #[test]
    #[should_panic(expected = "sub-thread contexts")]
    fn zero_contexts_rejected() {
        let mut c = CmpConfig::paper_default();
        c.subthreads.contexts = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "cpus")]
    fn too_many_cpus_rejected() {
        let mut c = CmpConfig::paper_default();
        c.cpus = 64;
        c.validate();
    }

    #[test]
    fn disabled_subthreads_is_one_context() {
        assert_eq!(SubThreadConfig::disabled().contexts, 1);
    }

    #[test]
    fn default_memory_model_is_sc() {
        let c = CmpConfig::paper_default();
        assert_eq!(c.memory_model, MemoryModel::Sc);
        assert!(!c.memory_model.is_tso());
        assert_eq!(c.memory_model.buffer_entries(), 0);
    }

    #[test]
    fn tso_validates_with_sane_buffer_geometry() {
        let mut c = CmpConfig::paper_default();
        c.memory_model = MemoryModel::Tso { buffer_entries: 8 };
        c.validate();
        assert!(c.memory_model.is_tso());
        assert_eq!(c.memory_model.buffer_entries(), 8);
    }

    #[test]
    #[should_panic(expected = "TSO store buffer")]
    fn zero_entry_store_buffer_rejected() {
        let mut c = CmpConfig::paper_default();
        c.memory_model = MemoryModel::Tso { buffer_entries: 0 };
        c.validate();
    }

    #[test]
    fn memory_model_round_trips_through_json() {
        for m in [MemoryModel::Sc, MemoryModel::Tso { buffer_entries: 16 }] {
            let s = serde_json::to_string(&m).expect("serialize");
            let q: MemoryModel = serde_json::from_str(&s).expect("deserialize");
            assert_eq!(m, q);
        }
    }
}
