//! Thread-level speculation with **sub-thread checkpointing** — the
//! contribution of Colohan, Ailamaki, Steffan and Mowry, *"Tolerating
//! Dependences Between Large Speculative Threads Via Sub-Threads"*
//! (ISCA 2006) — together with the chip-multiprocessor simulator that
//! evaluates it.
//!
//! # The problem
//!
//! Classic TLS hardware is *all-or-nothing*: a single violated read-after-
//! write dependence restarts the whole speculative thread. That is fine
//! for the few-hundred-instruction, mostly-independent threads of SPEC
//! loops, but database transactions decompose into threads of 7k–490k
//! dynamic instructions with dozens of unpredictable dependences buried in
//! the DBMS — and all-or-nothing TLS gains nothing there.
//!
//! # The mechanism
//!
//! A **sub-thread** is a lightweight checkpoint of a speculative thread.
//! The shared L2 keeps speculative state per *(thread, sub-thread)*
//! context: a speculatively-loaded bit per cache line and speculatively-
//! modified bits per word. When a dependence violation is detected, the
//! thread rewinds only to the sub-thread containing the dependent load
//! ([`SpecL2::write`] reports the earliest reading sub-thread), and logically-later threads rewind
//! to the sub-thread recorded in their [`start table`](StartTable) — the
//! *selective* secondary violations of Figure 4(b).
//!
//! # Crate layout
//!
//! * [`CmpConfig`] and friends — machine configuration (Table 1 defaults).
//! * [`SpecL2`] — the multi-versioned shared L2 with speculative state,
//!   violation detection and the speculative victim cache.
//! * [`CmpSimulator`] — the cycle-stepped 4-CPU simulator; takes a
//!   [`TraceProgram`](tls_trace::TraceProgram), returns a [`SimReport`]
//!   with the Figure-5 execution-time breakdown.
//! * [`DependenceProfiler`] — the hardware profiling support of §3.1
//!   (exposed-load table, failed-cycle attribution to load/store PC
//!   pairs).
//! * [`experiment`] — the named experiment configurations of the
//!   evaluation (SEQUENTIAL, TLS-SEQ, NO SUB-THREAD, BASELINE,
//!   NO SPECULATION) and parameter-sweep helpers.
//!
//! # Example
//!
//! ```
//! use tls_core::{CmpConfig, CmpSimulator};
//! use tls_trace::{Addr, OpSink, Pc, ProgramBuilder};
//!
//! // Two epochs with a cross-thread RAW dependence through 0x100.
//! let mut b = ProgramBuilder::new("raw");
//! b.begin_parallel();
//! b.begin_epoch();
//! b.int_ops(Pc::new(1, 0), 2000);
//! b.store(Pc::new(1, 1), Addr(0x100), 8);
//! b.end_epoch();
//! b.begin_epoch();
//! b.load(Pc::new(2, 0), Addr(0x100), 8); // reads too early -> violated
//! b.int_ops(Pc::new(2, 1), 2000);
//! b.end_epoch();
//! b.end_parallel();
//! let program = b.finish();
//!
//! let report = CmpSimulator::new(CmpConfig::paper_default()).run(&program);
//! assert_eq!(report.violations.primary, 1);
//! assert!(report.breakdown.failed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
pub mod chaos;
mod config;
pub mod experiment;
mod l2spec;
mod latch;
mod linemap;
mod membuf;
mod predictor;
mod profile;
mod report;
mod simulator;
pub mod synthetic;
mod vpredict;

pub use accounting::{Breakdown, CycleCategory, FaultStats, SubThreadLedger};
pub use chaos::{
    DiskFaultClass, DiskFaultEvent, DiskFaultPlan, FaultClass, FaultEvent, FaultInjector,
    FaultPlan, RunOptions, ALL_DISK_FAULT_CLASSES, ALL_FAULT_CLASSES, STORE_BUFFER_FAULT_CLASSES,
};
pub use config::{
    CmpConfig, ExhaustionPolicy, MemoryModel, SecondaryPolicy, SpacingPolicy, SubThreadConfig,
    MAX_CPUS, MAX_SUBTHREADS,
};
pub use experiment::ExperimentKind;
pub use l2spec::{AccessCtx, L2Outcome, PendingViolation, SpecL2, ViolationKind};
pub use latch::{LatchError, LatchTable};
pub use membuf::{BufferedStore, ForwardOutcome, HbAuditor, StoreBuffer};
pub use predictor::{DependencePredictor, PredictorConfig};
pub use profile::{DependenceProfiler, ProfileEntry};
pub use report::{LivelockReport, ProtocolError, SimReport, ViolationCounts};
pub use simulator::{CmpSimulator, StartTable};
pub use vpredict::{value_model, VPredictConfig, ValuePredictor};

/// The observability layer (re-exported from [`tls_obs`]): passive event
/// sink, sampled metrics and the Perfetto exporter. Pass an
/// [`Observer`](tls_obs::Observer) to
/// [`CmpSimulator::run_observed`] to capture a run's timeline without
/// perturbing it.
pub use tls_obs as obs;
pub use tls_obs::Observer;
