//! Escaped synchronization: latches.
//!
//! The database workload acquires short-term latches on shared DBMS
//! structures (log tail, tree roots, …). Under TLS these operations
//! *escape* speculation — they execute non-speculatively and are never
//! rolled back — so a speculative thread blocking on a latch held by
//! another CPU accrues the "Latch Stall" time visible in Figure 5.

use std::collections::HashMap;
use std::fmt;
use tls_trace::LatchId;

/// A latch-protocol error: a release that does not pair with a held
/// acquisition. Recoverable — the machine records it and keeps running
/// (the table is simply left unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatchError {
    /// The CPU that issued the bad release.
    pub cpu: usize,
    /// The latch it tried to release.
    pub latch: LatchId,
    /// Who actually holds the latch (`None` if it is free).
    pub owner: Option<usize>,
}

impl fmt::Display for LatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.owner {
            Some(o) => {
                write!(f, "cpu {} released latch {:?} held by cpu {}", self.cpu, self.latch, o)
            }
            None => write!(f, "cpu {} released latch {:?} it does not hold", self.cpu, self.latch),
        }
    }
}

impl std::error::Error for LatchError {}

/// Ownership state of every latch in the machine.
///
/// Latches are re-entrant per CPU: re-acquiring a held latch increments a
/// count, releases decrement it. Violation recovery force-releases
/// everything a CPU holds (the critical section is replayed).
#[derive(Debug, Clone, Default)]
pub struct LatchTable {
    owners: HashMap<LatchId, (usize, u32)>,
    acquisitions: u64,
    contended: u64,
}

impl LatchTable {
    /// An empty table; latches spring into existence on first use.
    pub fn new() -> Self {
        LatchTable::default()
    }

    /// Attempts to acquire `latch` for `cpu`. Returns true on success
    /// (free, or already held by `cpu`).
    pub fn try_acquire(&mut self, cpu: usize, latch: LatchId) -> bool {
        match self.owners.get_mut(&latch) {
            None => {
                self.owners.insert(latch, (cpu, 1));
                self.acquisitions += 1;
                true
            }
            Some((owner, count)) if *owner == cpu => {
                *count += 1;
                self.acquisitions += 1;
                true
            }
            Some(_) => {
                self.contended += 1;
                false
            }
        }
    }

    /// Releases one acquisition of `latch` by `cpu`.
    ///
    /// Releases must pair with acquires in the recorded trace; an
    /// unpaired release (possible after a chaos-injected latch hazard)
    /// returns a [`LatchError`] and leaves the table unchanged.
    pub fn release(&mut self, cpu: usize, latch: LatchId) -> Result<(), LatchError> {
        match self.owners.get_mut(&latch) {
            Some((owner, count)) if *owner == cpu => {
                *count -= 1;
                if *count == 0 {
                    self.owners.remove(&latch);
                }
                Ok(())
            }
            other => {
                let owner = other.map(|&mut (o, _)| o);
                Err(LatchError { cpu, latch, owner })
            }
        }
    }

    /// Forcibly releases `latch` no matter who holds it, returning the
    /// previous owner. Chaos-harness hook ([`crate::chaos::FaultClass::LatchHazard`]):
    /// the owner's own release will then surface as a [`LatchError`].
    pub fn force_release(&mut self, latch: LatchId) -> Option<usize> {
        self.owners.remove(&latch).map(|(o, _)| o)
    }

    /// Every latch currently held, sorted for determinism.
    pub fn held(&self) -> Vec<LatchId> {
        let mut v: Vec<LatchId> = self.owners.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The CPU currently holding `latch`, if any.
    pub fn owner(&self, latch: LatchId) -> Option<usize> {
        self.owners.get(&latch).map(|(o, _)| *o)
    }

    /// Force-releases everything `cpu` holds (violation recovery).
    /// Returns how many distinct latches were released.
    pub fn release_all(&mut self, cpu: usize) -> usize {
        let before = self.owners.len();
        self.owners.retain(|_, (owner, _)| *owner != cpu);
        before - self.owners.len()
    }

    /// Successful acquisitions so far.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Failed (contended) acquisition attempts so far.
    pub fn contended_attempts(&self) -> u64 {
        self.contended
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LatchId = LatchId(1);

    #[test]
    fn acquire_release_cycle() {
        let mut t = LatchTable::new();
        assert!(t.try_acquire(0, L));
        assert_eq!(t.owner(L), Some(0));
        assert!(!t.try_acquire(1, L));
        t.release(0, L).expect("paired release");
        assert_eq!(t.owner(L), None);
        assert!(t.try_acquire(1, L));
        assert_eq!(t.acquisitions(), 2);
        assert_eq!(t.contended_attempts(), 1);
    }

    #[test]
    fn reentrant_acquire_counts() {
        let mut t = LatchTable::new();
        assert!(t.try_acquire(0, L));
        assert!(t.try_acquire(0, L));
        t.release(0, L).expect("paired release");
        assert_eq!(t.owner(L), Some(0)); // one acquisition remains
        t.release(0, L).expect("paired release");
        assert_eq!(t.owner(L), None);
    }

    #[test]
    fn release_all_frees_only_that_cpu() {
        let mut t = LatchTable::new();
        t.try_acquire(0, LatchId(1));
        t.try_acquire(0, LatchId(2));
        t.try_acquire(1, LatchId(3));
        assert_eq!(t.release_all(0), 2);
        assert_eq!(t.owner(LatchId(3)), Some(1));
        assert_eq!(t.owner(LatchId(1)), None);
    }

    #[test]
    fn releasing_unheld_latch_is_a_recoverable_error() {
        let mut t = LatchTable::new();
        let e = t.release(0, L).expect_err("latch is free");
        assert_eq!(e, LatchError { cpu: 0, latch: L, owner: None });
        assert!(format!("{e}").contains("does not hold"));

        t.try_acquire(1, L);
        let e = t.release(0, L).expect_err("held by someone else");
        assert_eq!(e.owner, Some(1));
        assert_eq!(t.owner(L), Some(1), "failed release leaves the table unchanged");
    }

    #[test]
    fn force_release_evicts_the_owner() {
        let mut t = LatchTable::new();
        t.try_acquire(0, L);
        assert_eq!(t.held(), vec![L]);
        assert_eq!(t.force_release(L), Some(0));
        assert_eq!(t.force_release(L), None);
        assert!(t.held().is_empty());
        // The original owner's paired release now errors but recovers.
        assert!(t.release(0, L).is_err());
    }
}
