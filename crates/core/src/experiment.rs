//! The named experiments of the paper's evaluation (Figures 5 and 6).
//!
//! Figure 5 compares, per benchmark, five machine/software configurations
//! normalized to SEQUENTIAL:
//!
//! | experiment | trace | machine |
//! |---|---|---|
//! | SEQUENTIAL | unmodified program | 1 busy CPU, 3 idle |
//! | TLS-SEQ | TLS-transformed program | epochs serialized on 1 CPU |
//! | NO SUB-THREAD | TLS-transformed | 4 CPUs, 1 sub-thread context |
//! | BASELINE | TLS-transformed | 4 CPUs, 8 × 5000-instruction sub-threads |
//! | NO SPECULATION | TLS-transformed | 4 CPUs, dependence tracking off |
//!
//! The *trace* difference (whether the workload ran with its TLS software
//! transformations) is the workload generator's concern; this module
//! handles the machine configuration and the epoch serialization.

use crate::{CmpConfig, CmpSimulator, SimReport, SubThreadConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use tls_trace::{Epoch, ProgramView, Region, RegionView, TraceProgram};

/// One bar of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExperimentKind {
    /// The unmodified program on one CPU of the machine.
    Sequential,
    /// The TLS-transformed program, epochs serialized on one CPU
    /// (measures TLS software overhead).
    TlsSeq,
    /// All-or-nothing TLS: violations restart whole threads.
    NoSubThread,
    /// The paper's design: 8 sub-threads of 5000 instructions.
    Baseline,
    /// Upper bound: all speculative accesses treated as non-speculative.
    NoSpeculation,
}

impl ExperimentKind {
    /// All five experiments, in Figure 5's bar order.
    pub const ALL: [ExperimentKind; 5] = [
        ExperimentKind::Sequential,
        ExperimentKind::TlsSeq,
        ExperimentKind::NoSubThread,
        ExperimentKind::Baseline,
        ExperimentKind::NoSpeculation,
    ];

    /// The paper's label for this bar.
    pub fn label(&self) -> &'static str {
        match self {
            ExperimentKind::Sequential => "SEQUENTIAL",
            ExperimentKind::TlsSeq => "TLS-SEQ",
            ExperimentKind::NoSubThread => "NO SUB-THREAD",
            ExperimentKind::Baseline => "BASELINE",
            ExperimentKind::NoSpeculation => "NO SPECULATION",
        }
    }

    /// Whether this experiment runs the TLS-transformed trace (all but
    /// SEQUENTIAL).
    pub fn uses_tls_trace(&self) -> bool {
        !matches!(self, ExperimentKind::Sequential)
    }

    /// Whether epochs are serialized onto one CPU.
    pub fn serialized(&self) -> bool {
        matches!(self, ExperimentKind::Sequential | ExperimentKind::TlsSeq)
    }

    /// The machine configuration for this experiment, derived from `base`
    /// (which supplies cache/core/sub-thread parameters).
    pub fn configure(&self, base: &CmpConfig) -> CmpConfig {
        let mut cfg = *base;
        match self {
            ExperimentKind::Sequential | ExperimentKind::TlsSeq => {
                // Dependence machinery is moot for a serialized run.
                cfg.track_dependences = false;
            }
            ExperimentKind::NoSubThread => {
                cfg.subthreads = SubThreadConfig::disabled();
            }
            ExperimentKind::Baseline => {}
            ExperimentKind::NoSpeculation => {
                cfg.track_dependences = false;
            }
        }
        cfg
    }
}

impl fmt::Display for ExperimentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Rewrites a program so every region is sequential (epochs concatenated
/// in order): the TLS-SEQ and SEQUENTIAL executions.
pub fn serialize_program(program: &TraceProgram) -> TraceProgram {
    serialize_view(&program.view())
}

/// As [`serialize_program`], from a borrowed view — the form the
/// memory-mapped trace store serves, where no owned source program
/// exists to clone from.
pub fn serialize_view(view: &ProgramView<'_>) -> TraceProgram {
    let regions = view
        .regions
        .iter()
        .map(|r| match r {
            RegionView::Sequential(e) => Region::Sequential(Epoch::new(e.to_vec())),
            RegionView::Parallel(es) => {
                let ops = es.iter().flat_map(|e| e.iter().copied()).collect();
                Region::Sequential(Epoch::new(ops))
            }
        })
        .collect();
    TraceProgram::new(view.name, regions)
}

/// The two recorded traces of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkPrograms {
    /// The unmodified execution (no TLS software transformations).
    pub plain: TraceProgram,
    /// The TLS-transformed execution (parallel markers + overhead).
    pub tls: TraceProgram,
}

/// Runs one experiment of Figure 5 on a benchmark.
pub fn run_experiment(
    kind: ExperimentKind,
    base: &CmpConfig,
    programs: &BenchmarkPrograms,
) -> SimReport {
    let cfg = kind.configure(base);
    let sim = CmpSimulator::new(cfg);
    let program = if kind.uses_tls_trace() { &programs.tls } else { &programs.plain };
    if kind.serialized() {
        let serialized = serialize_program(program);
        let mut report = sim.run(&serialized);
        report.name = format!("{} [{}]", program.name, kind.label());
        report
    } else {
        let mut report = sim.run(program);
        report.name = format!("{} [{}]", program.name, kind.label());
        report
    }
}

/// Runs all five Figure-5 experiments on a benchmark.
pub fn run_benchmark(
    base: &CmpConfig,
    programs: &BenchmarkPrograms,
) -> Vec<(ExperimentKind, SimReport)> {
    ExperimentKind::ALL.iter().map(|&k| (k, run_experiment(k, base, programs))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tls_trace::{Addr, OpSink, Pc, ProgramBuilder};

    fn programs() -> BenchmarkPrograms {
        let mut plain = ProgramBuilder::new("bench");
        plain.int_ops(Pc::new(0, 0), 8000);
        let plain = plain.finish();

        let mut tls = ProgramBuilder::new("bench");
        tls.int_ops(Pc::new(0, 9), 100); // TLS software overhead
        tls.begin_parallel();
        for i in 0..4u64 {
            tls.begin_epoch();
            tls.int_ops(Pc::new(0, 0), 2000);
            tls.store(Pc::new(0, 1), Addr(0x100 + 64 * i), 8);
            tls.end_epoch();
        }
        tls.end_parallel();
        let tls = tls.finish();
        BenchmarkPrograms { plain, tls }
    }

    #[test]
    fn serialize_flattens_parallel_regions() {
        let p = programs().tls;
        let s = serialize_program(&p);
        assert_eq!(s.total_ops(), p.total_ops());
        assert!(s.regions.iter().all(|r| matches!(r, Region::Sequential(_))));
        assert_eq!(s.stats().epochs, 0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            ExperimentKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn figure5_bar_order_holds_for_a_parallel_benchmark() {
        let base = crate::CmpConfig::test_small();
        let progs = programs();
        let results = run_benchmark(&base, &progs);
        assert_eq!(results.len(), 5);
        let get = |k: ExperimentKind| {
            results.iter().find(|(kk, _)| *kk == k).map(|(_, r)| r.total_cycles).unwrap()
        };
        let seq = get(ExperimentKind::Sequential);
        let tls_seq = get(ExperimentKind::TlsSeq);
        let baseline = get(ExperimentKind::Baseline);
        let no_spec = get(ExperimentKind::NoSpeculation);
        // TLS-SEQ pays the software overhead relative to SEQUENTIAL.
        assert!(tls_seq >= seq, "tls-seq {tls_seq} vs seq {seq}");
        // This benchmark has no cross-epoch dependences: baseline should
        // parallelize well and approach the no-speculation bound.
        assert!(baseline < seq, "baseline {baseline} vs seq {seq}");
        assert!(no_spec <= baseline);
    }

    #[test]
    fn sequential_experiment_reports_renamed() {
        let base = crate::CmpConfig::test_small();
        let r = run_experiment(ExperimentKind::Sequential, &base, &programs());
        assert!(r.name.contains("SEQUENTIAL"));
        assert_eq!(r.violations.total(), 0);
    }
}
