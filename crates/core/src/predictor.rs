//! Dependence prediction and synchronization — the prior-art alternative
//! to sub-threads (paper §1.2, after Moshovos et al. and Steffan et al.).
//!
//! The idea: remember the PCs of loads that caused violations and, next
//! time one is fetched in a speculative thread, *synchronize* — stall the
//! load until the thread is no longer speculative, so the dependence is
//! satisfied in order instead of violated.
//!
//! The paper reports trying "an aggressive dependence predictor like
//! proposed by Moshovos" and finding that "only one of several dynamic
//! instances of the same load PC caused the dependence — predicting which
//! instance of a load PC is more difficult, since you need to consider
//! the outer calling context". This module reproduces that trade-off: a
//! PC-indexed predictor with saturating confidence, whose synchronization
//! over-serializes exactly when a hot PC (a B-tree header read, a shared
//! counter) has mostly-independent dynamic instances. The `ablations`
//! harness measures it against sub-threads.

use serde::{Deserialize, Serialize};
use tls_trace::Pc;

/// Configuration of the synchronizing dependence predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Enable prediction + synchronization.
    pub enabled: bool,
    /// Entries in the PC-indexed table (power of two).
    pub entries: usize,
    /// Confidence threshold (in trained violations) at which a load PC
    /// starts synchronizing; saturates at 3.
    pub threshold: u8,
}

impl PredictorConfig {
    /// Disabled (the paper's evaluated design relies on sub-threads).
    pub fn disabled() -> Self {
        PredictorConfig { enabled: false, entries: 1024, threshold: 2 }
    }

    /// An aggressive Moshovos-style predictor: synchronize after a single
    /// observed violation.
    pub fn aggressive() -> Self {
        PredictorConfig { enabled: true, entries: 1024, threshold: 1 }
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig::disabled()
    }
}

/// A direct-mapped, PC-indexed violation predictor with 2-bit confidence
/// counters.
#[derive(Debug, Clone)]
pub struct DependencePredictor {
    table: Vec<(u32, u8)>,
    mask: usize,
    threshold: u8,
    trainings: u64,
    synchronizations: u64,
}

impl DependencePredictor {
    /// A predictor per `config`.
    ///
    /// # Panics
    ///
    /// Panics unless `config.entries` is a nonzero power of two.
    pub fn new(config: &PredictorConfig) -> Self {
        assert!(
            config.entries > 0 && config.entries.is_power_of_two(),
            "predictor table must be a power of two"
        );
        DependencePredictor {
            table: vec![(0, 0); config.entries],
            mask: config.entries - 1,
            threshold: config.threshold.clamp(1, 3),
            trainings: 0,
            synchronizations: 0,
        }
    }

    fn index(&self, pc: Pc) -> usize {
        // Mix the module bits down so B-tree sites from different tables
        // do not all collide.
        let h = pc.0 ^ (pc.0 >> 13);
        h as usize & self.mask
    }

    /// Trains on a violated load.
    pub fn train(&mut self, load_pc: Pc) {
        let i = self.index(load_pc);
        let (tag, conf) = &mut self.table[i];
        if *tag == load_pc.0 {
            *conf = (*conf + 1).min(3);
        } else {
            // Direct-mapped displacement: take over the entry.
            *tag = load_pc.0;
            *conf = 1;
        }
        self.trainings += 1;
    }

    /// Should the load at `pc` synchronize (stall until non-speculative)?
    pub fn predicts_violation(&self, pc: Pc) -> bool {
        let (tag, conf) = self.table[self.index(pc)];
        tag == pc.0 && conf >= self.threshold
    }

    /// Records that a load was actually stalled for synchronization.
    pub fn note_synchronization(&mut self) {
        self.synchronizations += 1;
    }

    /// Violations trained on.
    pub fn trainings(&self) -> u64 {
        self.trainings
    }

    /// Loads stalled by prediction.
    pub fn synchronizations(&self) -> u64 {
        self.synchronizations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor(threshold: u8) -> DependencePredictor {
        DependencePredictor::new(&PredictorConfig { enabled: true, entries: 64, threshold })
    }

    #[test]
    fn trains_to_threshold() {
        let mut p = predictor(2);
        let pc = Pc::new(3, 7);
        assert!(!p.predicts_violation(pc));
        p.train(pc);
        assert!(!p.predicts_violation(pc), "below threshold");
        p.train(pc);
        assert!(p.predicts_violation(pc));
        assert_eq!(p.trainings(), 2);
    }

    #[test]
    fn aggressive_threshold_fires_after_one() {
        let mut p = predictor(1);
        let pc = Pc::new(1, 1);
        p.train(pc);
        assert!(p.predicts_violation(pc));
    }

    #[test]
    fn displacement_resets_confidence() {
        let mut p = predictor(1);
        let a = Pc::new(0, 0);
        p.train(a);
        assert!(p.predicts_violation(a));
        // Find a colliding PC (same index, different tag).
        let mut b = None;
        for m in 0..64u16 {
            for s in 0..64u16 {
                let cand = Pc::new(m, s);
                if cand != a && p.index(cand) == p.index(a) {
                    b = Some(cand);
                    break;
                }
            }
            if b.is_some() {
                break;
            }
        }
        let b = b.expect("collision exists in a 64-entry table");
        p.train(b);
        assert!(!p.predicts_violation(a), "displaced");
        assert!(p.predicts_violation(b));
    }

    #[test]
    fn confidence_saturates() {
        let mut p = predictor(3);
        let pc = Pc::new(2, 2);
        for _ in 0..10 {
            p.train(pc);
        }
        assert!(p.predicts_violation(pc));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_table_size_panics() {
        let _ =
            DependencePredictor::new(&PredictorConfig { enabled: true, entries: 48, threshold: 1 });
    }
}
