//! Value prediction on exposed speculative loads — the *Prophet*
//! alternative to stalling or rewinding (ROADMAP item 2a).
//!
//! Where the synchronizing [`DependencePredictor`](crate::predictor)
//! avoids a violation by *waiting* for the homefree thread, a value
//! predictor avoids it by *guessing*: when a speculative thread performs
//! an exposed load (one that creates a cross-thread RAW hazard), the
//! predictor supplies the value it expects the logically-earlier thread
//! to produce. If a conflicting store later arrives for that line, the
//! violation is **suppressed** — the speculative thread keeps running on
//! the predicted value — and the guess is settled at commit time, when
//! the thread is next-to-commit and every older store is architecturally
//! visible. A correct guess turns the would-be RAW violation into a
//! silent hit ([`SimReport::predicted_hits`](crate::SimReport)); a wrong
//! one routes through the ordinary sub-thread rewind path
//! ([`SimReport::value_mispredicts`](crate::SimReport)), so correctness
//! never depends on prediction accuracy.
//!
//! Two predictors share a PC-indexed, direct-mapped table, as in
//! Prophet: **last-value** (the next instance repeats the previous
//! committed value) and **stride** (it differs by a constant delta).
//! Stride wins when both are confident, last-value otherwise, and below
//! both confidence thresholds the load is not covered at all — an
//! uncovered exposed load violates exactly as it does today.
//!
//! ## The synthetic value model
//!
//! Trace records carry no data values (a [`tls_trace::TraceOp`] is 16
//! bytes of PC/kind/address), so the machine needs a deterministic stand
//! -in for "the value at `addr`". [`value_model`] defines it as a pure
//! function of the address and the number of *committed* stores to that
//! address so far — exposed loads by definition consume values produced
//! by logically-earlier threads, and at validation time (next-to-commit)
//! exactly the committed stores are visible. Address-hash classes give
//! the sweep realistic texture: about half of all addresses hold
//! constants (last-value predictable), a quarter walk a fixed stride
//! (stride predictable), and a quarter are noisy (every write changes
//! the value unpredictably, so covering loads *will* mispredict and
//! exercise the rewind fallback). The model is shared by the simulator's
//! trainer and validator, and by the kernel microbenchmark.

use serde::{Deserialize, Serialize};
use tls_trace::{Addr, Pc};

/// Configuration of the value predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VPredictConfig {
    /// Enable value prediction on exposed speculative loads.
    pub enabled: bool,
    /// Entries in the PC-indexed table (power of two).
    pub entries: usize,
    /// Confidence (in consecutive confirmations) at which a predictor
    /// starts covering loads; saturates at 3.
    pub threshold: u8,
}

impl VPredictConfig {
    /// Disabled — the default everywhere; the machine behaves (and its
    /// reports serialize) exactly as it did before the subsystem landed.
    pub fn disabled() -> Self {
        VPredictConfig { enabled: false, entries: 1024, threshold: 2 }
    }

    /// The Prophet-style baseline: a 1024-entry table that covers a load
    /// after two consecutive confirmations.
    pub fn prophet() -> Self {
        VPredictConfig { enabled: true, entries: 1024, threshold: 2 }
    }
}

impl Default for VPredictConfig {
    fn default() -> Self {
        VPredictConfig::disabled()
    }
}

/// One direct-mapped table entry: last committed value plus the delta to
/// the one before it, each with its own saturating confidence.
#[derive(Debug, Clone, Copy, Default)]
struct VEntry {
    tag: u32,
    last: u64,
    stride: u64,
    conf_last: u8,
    conf_stride: u8,
}

/// A combined last-value/stride value predictor, PC-indexed and
/// direct-mapped (displacement takes over the entry, as in the
/// [`DependencePredictor`](crate::predictor::DependencePredictor)).
#[derive(Debug, Clone)]
pub struct ValuePredictor {
    table: Vec<VEntry>,
    mask: usize,
    threshold: u8,
    trainings: u64,
    probes: u64,
    covered: u64,
}

impl ValuePredictor {
    /// A predictor per `config`.
    ///
    /// # Panics
    ///
    /// Panics unless `config.entries` is a nonzero power of two.
    pub fn new(config: &VPredictConfig) -> Self {
        assert!(
            config.entries > 0 && config.entries.is_power_of_two(),
            "value-predictor table must be a power of two"
        );
        ValuePredictor {
            table: vec![VEntry::default(); config.entries],
            mask: config.entries - 1,
            threshold: config.threshold.clamp(1, 3),
            trainings: 0,
            probes: 0,
            covered: 0,
        }
    }

    fn index(&self, pc: Pc) -> usize {
        // Same module-bit mixing as the dependence predictor.
        let h = pc.0 ^ (pc.0 >> 13);
        h as usize & self.mask
    }

    /// The value predicted for the load at `pc`, or `None` when the
    /// entry is cold, displaced, or below both confidence thresholds
    /// (an uncovered load violates exactly as without prediction).
    pub fn probe(&mut self, pc: Pc) -> Option<u64> {
        self.probes += 1;
        let e = self.table[self.index(pc)];
        if e.tag != pc.0 {
            return None;
        }
        let v = if e.conf_stride >= self.threshold {
            Some(e.last.wrapping_add(e.stride))
        } else if e.conf_last >= self.threshold {
            Some(e.last)
        } else {
            None
        };
        if v.is_some() {
            self.covered += 1;
        }
        v
    }

    /// Trains on the value an exposed load actually consumed, observed
    /// at the owning epoch's commit (the only point where the value is
    /// architecturally settled).
    pub fn train(&mut self, pc: Pc, value: u64) {
        self.trainings += 1;
        let i = self.index(pc);
        let e = &mut self.table[i];
        if e.tag == pc.0 {
            let delta = value.wrapping_sub(e.last);
            if delta == e.stride {
                e.conf_stride = (e.conf_stride + 1).min(3);
            } else {
                e.stride = delta;
                e.conf_stride = 1;
            }
            if value == e.last {
                e.conf_last = (e.conf_last + 1).min(3);
            } else {
                e.conf_last = 1;
            }
            e.last = value;
        } else {
            // Direct-mapped displacement: take over the entry cold.
            *e = VEntry { tag: pc.0, last: value, stride: 0, conf_last: 1, conf_stride: 0 };
        }
    }

    /// Commit-time trainings performed.
    pub fn trainings(&self) -> u64 {
        self.trainings
    }

    /// Exposed loads probed.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Probes that produced a prediction.
    pub fn covered(&self) -> u64 {
        self.covered
    }
}

/// SplitMix64 finalizer — a cheap, well-distributed 64-bit mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic synthetic value at `addr` after `k` committed
/// stores to it (see the module doc). Address-hash classes:
/// `h % 4 ∈ {0, 1}` → constant, `2` → stride walk, `3` → noisy.
pub fn value_model(addr: Addr, k: u64) -> u64 {
    let h = mix(addr.0);
    match h % 4 {
        0 | 1 => h,
        2 => h.wrapping_add(k.wrapping_mul(8)),
        _ => mix(h ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor(threshold: u8) -> ValuePredictor {
        ValuePredictor::new(&VPredictConfig { enabled: true, entries: 64, threshold })
    }

    #[test]
    fn cold_table_predicts_nothing() {
        let mut p = predictor(1);
        assert_eq!(p.probe(Pc::new(1, 1)), None);
        assert_eq!(p.covered(), 0);
        assert_eq!(p.probes(), 1);
    }

    #[test]
    fn last_value_repeats_after_threshold() {
        let mut p = predictor(2);
        let pc = Pc::new(3, 7);
        p.train(pc, 42);
        assert_eq!(p.probe(pc), None, "one confirmation is below threshold");
        p.train(pc, 42);
        assert_eq!(p.probe(pc), Some(42));
        assert_eq!(p.trainings(), 2);
    }

    #[test]
    fn stride_walk_is_extrapolated() {
        let mut p = predictor(2);
        let pc = Pc::new(5, 5);
        p.train(pc, 100);
        p.train(pc, 108); // stride 8, conf 1
        p.train(pc, 116); // stride 8, conf 2 → covered
        assert_eq!(p.probe(pc), Some(124));
        p.train(pc, 124);
        assert_eq!(p.probe(pc), Some(132));
    }

    #[test]
    fn stride_beats_last_value_when_both_confident() {
        let mut p = predictor(1);
        let pc = Pc::new(2, 2);
        p.train(pc, 10);
        p.train(pc, 20);
        p.train(pc, 30);
        // conf_last is 1 from the takeover but the stride is confirmed:
        // the prediction must extrapolate, not repeat.
        assert_eq!(p.probe(pc), Some(40));
    }

    #[test]
    fn changing_values_drop_coverage() {
        let mut p = predictor(2);
        let pc = Pc::new(4, 4);
        p.train(pc, 7);
        p.train(pc, 7);
        assert_eq!(p.probe(pc), Some(7));
        p.train(pc, 1234); // breaks both the constant and any stride
        assert_eq!(p.probe(pc), None, "one disagreement resets confidence");
    }

    #[test]
    fn displacement_takes_over_cold() {
        let mut p = predictor(1);
        // A nonzero PC: the all-zero tag doubles as "empty", exactly as
        // in the dependence predictor's table.
        let a = Pc::new(1, 0);
        p.train(a, 5);
        p.train(a, 5);
        assert_eq!(p.probe(a), Some(5));
        // Find a colliding PC (same index, different tag).
        let mut b = None;
        'outer: for m in 0..64u16 {
            for s in 0..64u16 {
                let cand = Pc::new(m, s);
                if cand != a && cand.0 != 0 && p.index(cand) == p.index(a) {
                    b = Some(cand);
                    break 'outer;
                }
            }
        }
        let b = b.expect("collision exists in a 64-entry table");
        p.train(b, 9);
        assert_eq!(p.probe(a), None, "displaced");
        assert_eq!(p.probe(b), Some(9));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_table_size_panics() {
        let _ = ValuePredictor::new(&VPredictConfig { enabled: true, entries: 48, threshold: 1 });
    }

    #[test]
    fn value_model_is_deterministic_and_classed() {
        // Pure function: same inputs, same outputs.
        assert_eq!(value_model(Addr(0x4000), 3), value_model(Addr(0x4000), 3));
        // Find one address of each class in a small pool.
        let (mut constant, mut stride, mut noisy) = (None, None, None);
        for i in 0..64u64 {
            let a = Addr(0x4000 + 8 * i);
            let h = mix(a.0);
            match h % 4 {
                0 | 1 => constant = constant.or(Some(a)),
                2 => stride = stride.or(Some(a)),
                _ => noisy = noisy.or(Some(a)),
            }
        }
        let c = constant.expect("constant class present");
        assert_eq!(value_model(c, 0), value_model(c, 17));
        let s = stride.expect("stride class present");
        assert_eq!(value_model(s, 5).wrapping_sub(value_model(s, 4)), 8);
        let n = noisy.expect("noisy class present");
        assert_ne!(value_model(n, 0), value_model(n, 1));
    }

    #[test]
    fn last_value_predictor_learns_the_constant_class() {
        // End-to-end: training on the value model's constant class makes
        // the predictor's guess match the model for any store count.
        let mut p = predictor(2);
        let pc = Pc::new(9, 1);
        let addr = (0..64u64)
            .map(|i| Addr(0x7000 + 8 * i))
            .find(|a| mix(a.0) % 4 <= 1)
            .expect("constant class present");
        p.train(pc, value_model(addr, 0));
        p.train(pc, value_model(addr, 1));
        assert_eq!(p.probe(pc), Some(value_model(addr, 99)));
    }
}
