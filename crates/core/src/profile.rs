//! Hardware support for profiling violated inter-thread dependences
//! (paper §3.1).
//!
//! Two pieces:
//!
//! * an **exposed-load table** per CPU — "a moderate-sized direct-mapped
//!   table of PCs, indexed by cache tag, which is updated with the PC of
//!   every speculative load which is exposed";
//! * a chip-wide list of *(load PC, store PC)* pairs with "the total
//!   failed speculation cycles attributed to each", with least-cycles
//!   reclamation when the list overflows.
//!
//! The programmer sorts this list by failed cycles to find which
//! dependence to eliminate next — the iterative tuning loop of §3.2.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tls_trace::{Addr, Pc};

/// One CPU's direct-mapped exposed-load table.
#[derive(Debug, Clone)]
pub struct ExposedLoadTable {
    entries: Vec<Option<(u64, Pc)>>,
    mask: u64,
    line_shift: u32,
}

impl ExposedLoadTable {
    /// A table with `entries` slots (power of two) for lines of
    /// `1 << line_shift` bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a nonzero power of two.
    pub fn new(entries: usize, line_shift: u32) -> Self {
        assert!(entries > 0 && entries.is_power_of_two(), "table size must be a power of two");
        ExposedLoadTable { entries: vec![None; entries], mask: entries as u64 - 1, line_shift }
    }

    fn index(&self, addr: Addr) -> usize {
        ((addr.0 >> self.line_shift) & self.mask) as usize
    }

    /// Records that the exposed load at `pc` read `addr`.
    pub fn record(&mut self, addr: Addr, pc: Pc) {
        let line = addr.0 >> self.line_shift << self.line_shift;
        let i = self.index(addr);
        self.entries[i] = Some((line, pc));
    }

    /// Looks up the PC of the exposed load covering `addr`, if the entry
    /// has not been displaced by a conflicting line.
    pub fn lookup(&self, addr: Addr) -> Option<Pc> {
        let line = addr.0 >> self.line_shift << self.line_shift;
        match self.entries[self.index(addr)] {
            Some((l, pc)) if l == line => Some(pc),
            _ => None,
        }
    }

    /// Forgets everything (used on epoch boundaries).
    pub fn clear(&mut self) {
        self.entries.fill(None);
    }
}

/// One entry of the profiler's report: a dependence, ranked by damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// PC of the consuming (exposed) load, if the exposed-load table still
    /// held it when the violation fired.
    pub load_pc: Option<Pc>,
    /// PC of the producing store.
    pub store_pc: Option<Pc>,
    /// Total failed-speculation cycles this dependence caused.
    pub failed_cycles: u64,
    /// Number of violations attributed to it.
    pub violations: u64,
}

/// The chip-wide violation profiler.
#[derive(Debug, Clone)]
pub struct DependenceProfiler {
    pairs: HashMap<(Option<Pc>, Option<Pc>), (u64, u64)>,
    capacity: usize,
}

impl DependenceProfiler {
    /// A profiler holding at most `capacity` load/store pairs (least
    /// failed-cycles entries are reclaimed beyond that).
    pub fn new(capacity: usize) -> Self {
        DependenceProfiler { pairs: HashMap::new(), capacity: capacity.max(1) }
    }

    /// Attributes `failed_cycles` of rewound execution to the dependence
    /// `(load_pc, store_pc)`.
    pub fn attribute(&mut self, load_pc: Option<Pc>, store_pc: Option<Pc>, failed_cycles: u64) {
        if self.pairs.len() >= self.capacity && !self.pairs.contains_key(&(load_pc, store_pc)) {
            // Reclaim the entry with the least total cycles (paper §3.1).
            if let Some((&k, _)) =
                self.pairs.iter().min_by_key(|(k, (c, _))| (*c, k.0.map(|p| p.0), k.1.map(|p| p.0)))
            {
                self.pairs.remove(&k);
            }
        }
        let e = self.pairs.entry((load_pc, store_pc)).or_insert((0, 0));
        e.0 += failed_cycles;
        e.1 += 1;
    }

    /// The profile, most-damaging dependence first.
    pub fn report(&self) -> Vec<ProfileEntry> {
        let mut out: Vec<ProfileEntry> = self
            .pairs
            .iter()
            .map(|(&(load_pc, store_pc), &(failed_cycles, violations))| ProfileEntry {
                load_pc,
                store_pc,
                failed_cycles,
                violations,
            })
            .collect();
        out.sort_by_key(|e| {
            (std::cmp::Reverse(e.failed_cycles), e.load_pc.map(|p| p.0), e.store_pc.map(|p| p.0))
        });
        out
    }

    /// Number of distinct dependences currently tracked.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no violations have been attributed.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trips_pcs() {
        let mut t = ExposedLoadTable::new(16, 5);
        t.record(Addr(0x1000), Pc::new(1, 1));
        assert_eq!(t.lookup(Addr(0x1008)), Some(Pc::new(1, 1))); // same line
        assert_eq!(t.lookup(Addr(0x2000)), None);
    }

    #[test]
    fn conflicting_lines_displace() {
        let mut t = ExposedLoadTable::new(4, 5);
        t.record(Addr(0x0), Pc::new(1, 1));
        // 4 entries * 32B = 128B stride conflicts.
        t.record(Addr(128), Pc::new(2, 2));
        assert_eq!(t.lookup(Addr(0x0)), None);
        assert_eq!(t.lookup(Addr(128)), Some(Pc::new(2, 2)));
    }

    #[test]
    fn clear_forgets() {
        let mut t = ExposedLoadTable::new(4, 5);
        t.record(Addr(0x0), Pc::new(1, 1));
        t.clear();
        assert_eq!(t.lookup(Addr(0x0)), None);
    }

    #[test]
    fn profiler_ranks_by_failed_cycles() {
        let mut p = DependenceProfiler::new(16);
        let a = (Some(Pc::new(1, 0)), Some(Pc::new(1, 1)));
        let b = (Some(Pc::new(2, 0)), Some(Pc::new(2, 1)));
        p.attribute(a.0, a.1, 100);
        p.attribute(b.0, b.1, 50);
        p.attribute(b.0, b.1, 200);
        let r = p.report();
        assert_eq!(r[0].load_pc, b.0);
        assert_eq!(r[0].failed_cycles, 250);
        assert_eq!(r[0].violations, 2);
        assert_eq!(r[1].failed_cycles, 100);
    }

    #[test]
    fn overflow_reclaims_least_cycles() {
        let mut p = DependenceProfiler::new(2);
        p.attribute(Some(Pc::new(1, 0)), None, 100);
        p.attribute(Some(Pc::new(2, 0)), None, 10);
        p.attribute(Some(Pc::new(3, 0)), None, 50);
        assert_eq!(p.len(), 2);
        let r = p.report();
        assert_eq!(r[0].failed_cycles, 100);
        assert_eq!(r[1].failed_cycles, 50);
    }

    #[test]
    fn unknown_pcs_are_tracked_too() {
        let mut p = DependenceProfiler::new(4);
        p.attribute(None, Some(Pc::new(9, 9)), 42);
        let r = p.report();
        assert_eq!(r[0].load_pc, None);
        assert_eq!(r[0].failed_cycles, 42);
    }
}
