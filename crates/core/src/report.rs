//! Simulation results.

use crate::accounting::{Breakdown, FaultStats, ALL_CATEGORIES};
use crate::profile::ProfileEntry;
use serde::{Deserialize, Serialize};
use std::fmt;
use tls_cache::CacheStats;
use tls_cpu::CoreStats;

/// Violation counters by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationCounts {
    /// Direct read-after-write violations.
    pub primary: u64,
    /// Restarts of logically-later threads caused by a primary violation.
    pub secondary: u64,
    /// Speculative-state overflow restarts.
    pub overflow: u64,
}

impl ViolationCounts {
    /// All violations.
    pub fn total(&self) -> u64 {
        self.primary + self.secondary + self.overflow
    }
}

/// A recoverable protocol error the machine absorbed instead of
/// crashing on — e.g. a latch release that no longer pairs with an
/// acquire after a chaos-injected [`crate::chaos::FaultClass::LatchHazard`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolError {
    /// Cycle at which the error surfaced.
    pub cycle: u64,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}: {}", self.cycle, self.message)
    }
}

/// One violation storm flagged by the forward-progress watchdog: an
/// epoch rewound [`crate::chaos::RunOptions::livelock_threshold`] or
/// more consecutive times without any epoch committing in between. The
/// homefree token only guarantees progress for the *oldest* epoch;
/// younger epochs can storm indefinitely, and this is the record of it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LivelockReport {
    /// Logical order of the storming epoch.
    pub epoch: u32,
    /// Cycle at which the storm crossed the threshold.
    pub detected_at_cycle: u64,
    /// Consecutive commit-free rewinds observed (grows while the storm
    /// continues past detection).
    pub storm_len: u64,
    /// PCs implicated in the storm's RAW violations (loads and stores,
    /// deduplicated, capped; empty when the storm was not RAW-driven).
    pub violation_pcs: Vec<u32>,
    /// Whether [`crate::chaos::RunOptions::progress_fallback`] kicked
    /// in and serialized the epoch (stalled it until homefree).
    pub serialized: bool,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Name of the simulated program.
    pub name: String,
    /// Wall-clock cycles of the run.
    pub total_cycles: u64,
    /// CPUs simulated.
    pub cpus: usize,
    /// CPU-cycles by category; `breakdown.total() == total_cycles * cpus`.
    pub breakdown: Breakdown,
    /// Violation counters.
    pub violations: ViolationCounts,
    /// Epochs committed (equals the number of epochs in the program).
    pub committed_epochs: u64,
    /// Sub-threads started beyond each thread's initial one.
    pub subthreads_started: u64,
    /// Sub-thread context merges (recycling events).
    pub subthread_merges: u64,
    /// Committed epochs spawned by a declarative scan loop (first-op PC
    /// module is [`tls_trace::SCAN_LOOP_MODULE`]); zero for programs
    /// without compiled scan regions.
    pub scan_epochs: u64,
    /// Dynamic instructions inside scan-loop epochs (each counted once).
    pub scan_epoch_ops: u64,
    /// Dynamic instructions dispatched, including re-executions.
    pub dispatched_ops: u64,
    /// Dynamic instructions in the program (each counted once).
    pub program_ops: u64,
    /// Aggregated L1 statistics across CPUs.
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// Victim-cache statistics.
    pub victim: CacheStats,
    /// Main-memory accesses.
    pub mem_accesses: u64,
    /// Aggregated core counters.
    pub core: CoreStats,
    /// Latch acquisitions performed.
    pub latch_acquisitions: u64,
    /// Loads stalled by the dependence predictor (§1.2 mechanism).
    pub predictor_synchronizations: u64,
    /// RAW violations suppressed by a value prediction that validated
    /// correct at commit time (the Prophet mechanism; zero unless
    /// [`crate::VPredictConfig`] is enabled).
    pub predicted_hits: u64,
    /// Value predictions that validated *wrong* at commit time and
    /// rewound through the sub-thread path instead.
    pub value_mispredicts: u64,
    /// Stores that entered a TSO store buffer (zero under SC).
    pub buffered_stores: u64,
    /// Loads satisfied by TSO store-to-load forwarding from the CPU's
    /// own buffer (zero under SC).
    pub forwarded_loads: u64,
    /// Buffered stores drained into the memory system (zero under SC;
    /// on a healthy run equals `buffered_stores` minus entries rewound
    /// away before draining).
    pub store_drains: u64,
    /// Happens-before cycles and store-flow violations found by the
    /// commit-serializability auditor. Always zero on a healthy run;
    /// details land in [`SimReport::protocol_errors`].
    pub serializability_breaches: u64,
    /// The dependence profile, most damaging first (§3.1).
    pub profile: Vec<ProfileEntry>,
    /// Chaos-fault counters (all zero unless a plan was injected).
    pub faults: FaultStats,
    /// Recoverable protocol errors absorbed during the run (first 32;
    /// `faults.protocol_errors` has the full count).
    pub protocol_errors: Vec<ProtocolError>,
    /// Invariant-audit failures. Empty on a healthy run; non-empty only
    /// when auditing ran with `panic_on_audit_failure` disabled.
    pub audit_failures: Vec<String>,
    /// Violation storms flagged by the forward-progress watchdog
    /// (empty on a healthy run).
    pub livelocks: Vec<LivelockReport>,
}

impl SimReport {
    /// Speedup of this run relative to `baseline` (`>1` is faster).
    pub fn speedup_vs(&self, baseline: &SimReport) -> f64 {
        baseline.total_cycles as f64 / self.total_cycles.max(1) as f64
    }

    /// The Figure-5 stacked bar: per-category CPU-cycles normalized so
    /// that `reference_cycles` (usually the SEQUENTIAL run's cycles) is
    /// 1.0 per CPU.
    pub fn normalized_stack(&self, reference_cycles: u64) -> Vec<(&'static str, f64)> {
        let denom = (reference_cycles.max(1) * self.cpus as u64) as f64;
        ALL_CATEGORIES
            .iter()
            .map(|&c| {
                let name = match c {
                    crate::CycleCategory::Busy => "Busy",
                    crate::CycleCategory::CacheMiss => "Cache Miss",
                    crate::CycleCategory::Latch => "Latch Stall",
                    crate::CycleCategory::Sync => "Sync",
                    crate::CycleCategory::DrainStall => "Drain Stall",
                    crate::CycleCategory::Idle => "Idle",
                    crate::CycleCategory::Failed => "Failed",
                };
                (name, self.breakdown.get(c) as f64 / denom)
            })
            .collect()
    }

    /// Fraction of dispatched instructions that were squashed and
    /// re-executed.
    pub fn wasted_work_ratio(&self) -> f64 {
        if self.dispatched_ops == 0 {
            0.0
        } else {
            1.0 - (self.program_ops.min(self.dispatched_ops) as f64 / self.dispatched_ops as f64)
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} cycles on {} CPUs ({} epochs, {} violations: {}p/{}s/{}o)",
            self.name,
            self.total_cycles,
            self.cpus,
            self.committed_epochs,
            self.violations.total(),
            self.violations.primary,
            self.violations.secondary,
            self.violations.overflow,
        )?;
        write!(f, "  {}", self.breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64) -> SimReport {
        SimReport {
            name: "t".into(),
            total_cycles: cycles,
            cpus: 4,
            breakdown: Breakdown { busy: cycles * 4, ..Default::default() },
            violations: ViolationCounts::default(),
            committed_epochs: 1,
            subthreads_started: 0,
            subthread_merges: 0,
            scan_epochs: 0,
            scan_epoch_ops: 0,
            dispatched_ops: 100,
            program_ops: 80,
            l1: CacheStats::default(),
            l2: CacheStats::default(),
            victim: CacheStats::default(),
            mem_accesses: 0,
            core: CoreStats::default(),
            latch_acquisitions: 0,
            predictor_synchronizations: 0,
            predicted_hits: 0,
            value_mispredicts: 0,
            buffered_stores: 0,
            forwarded_loads: 0,
            store_drains: 0,
            serializability_breaches: 0,
            profile: Vec::new(),
            faults: FaultStats::default(),
            protocol_errors: Vec::new(),
            audit_failures: Vec::new(),
            livelocks: Vec::new(),
        }
    }

    #[test]
    fn speedup_is_ratio_of_cycles() {
        let base = report(1000);
        let fast = report(500);
        assert!((fast.speedup_vs(&base) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_stack_sums_to_one_for_reference() {
        let r = report(100);
        let stack = r.normalized_stack(100);
        let total: f64 = stack.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wasted_work_ratio() {
        let r = report(10);
        assert!((r.wasted_work_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn display_contains_name_and_cycles() {
        let r = report(123);
        let s = format!("{r}");
        assert!(s.contains("123 cycles"));
    }
}
