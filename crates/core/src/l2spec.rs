//! The shared L2 cache extended with speculative state — the hardware
//! substrate of sub-threads (paper §2.1–2.2).
//!
//! Per 32-byte line the L2 tracks, for every *(CPU, sub-thread)* context:
//!
//! * a **speculatively-loaded** bit, at cache-line granularity, and
//! * **speculatively-modified** bits, at word granularity,
//!
//! i.e. the paper's "2 bits of storage per cache line per sub-thread".
//! Multiple speculative *versions* of a line — one per modifying thread —
//! coexist in the ways of one set ("we allow the L2 cache to manage
//! multiple versions of each cache line by using the different ways of
//! each associative set"), and a small fully-associative victim cache
//! catches speculative lines displaced by conflict misses.
//!
//! Violation detection: every store (write-through from the L1s) looks up
//! the line's speculatively-loaded bits; each logically-later thread with
//! the bit set is reported together with the *earliest* sub-thread that
//! loaded the line, which is where that thread must rewind to.

use crate::config::{MAX_CPUS, MAX_SUBTHREADS};
use crate::linemap::LineMap;
use serde::{Deserialize, Serialize};
use tls_cache::{
    BankArray, CacheParams, CacheStats, Inserted, MemBus, MemParams, SetAssoc, VictimBuffer,
};
use tls_trace::{Addr, Pc};

/// Maximum 8-byte words per line supported by the bit-packing.
const MAX_WORDS: usize = 8;

/// Identifies the issuing context of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessCtx {
    /// Issuing CPU.
    pub cpu: usize,
    /// Its current sub-thread index.
    pub sub: u8,
    /// Whether the access is speculative (false for the oldest thread and
    /// for sequential regions — their accesses commit directly).
    pub speculative: bool,
}

/// Why a thread must rewind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ViolationKind {
    /// A read-after-write dependence was violated by a store from a
    /// logically-earlier thread.
    Raw,
    /// Logically-later thread rewound because an earlier thread it may
    /// have consumed data from was itself rewound.
    Secondary,
    /// Speculative state overflowed the L2 + victim cache.
    Overflow,
    /// A spurious violation injected by the chaos harness
    /// ([`crate::chaos::FaultClass`]); exercises the recovery machinery
    /// but is counted separately from genuine dependences.
    Injected,
    /// A value prediction that suppressed a RAW violation turned out
    /// wrong at commit-time validation; the epoch rewinds to the
    /// earliest sub-thread that consumed the mispredicted value.
    ValueMispredict,
}

/// A violation detected by the memory system, to be applied by the
/// simulator at the end of the cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingViolation {
    /// The CPU whose thread must rewind.
    pub cpu: usize,
    /// The sub-thread to rewind to.
    pub sub: u8,
    /// Logical order of the targeted epoch at detection time; the
    /// violation is stale (and ignored) if the CPU runs a different epoch
    /// when it is applied.
    pub order: u32,
    /// Classification for statistics and profiling.
    pub kind: ViolationKind,
    /// The line whose dependence was violated (RAW/overflow).
    pub line: Addr,
    /// PC of the offending store, when known (RAW only).
    pub store_pc: Option<Pc>,
}

/// Outcome of an L2 read.
#[derive(Debug, Clone, Default)]
pub struct L2Outcome {
    /// Cycle the requested data is available to the core.
    pub completion: u64,
    /// Whether the access hit in the L2 (or its victim cache).
    pub hit: bool,
    /// For loads: the load was *exposed* — not preceded by a store from
    /// the same thread to the same word(s) — and therefore had its
    /// speculatively-loaded bit recorded.
    pub exposed: bool,
    /// Threads whose speculative state was displaced beyond recovery by
    /// this access (speculative overflow).
    pub overflow_victims: Vec<(usize, u8)>,
    /// For stores: `(cpu, earliest sub-thread)` of every *other* thread
    /// that speculatively loaded this line. The simulator filters these to
    /// logically-later threads and raises RAW violations.
    pub readers: Vec<(usize, u8)>,
}

/// Per-line speculative metadata: one bit per context slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct LineMeta {
    /// Speculatively-loaded, line granularity: bit `slot`.
    sl: u64,
    /// Speculatively-modified, word granularity: `sm[word]` bit `slot`.
    sm: [u64; MAX_WORDS],
    /// Which CPUs' `touched` work lists contain this line (bit `cpu`).
    /// Appends to the lists are gated on this mask, so a line enters each
    /// list at most once no matter how often the epoch re-accesses it.
    touched: u8,
}

impl LineMeta {
    /// No speculative bits for any context. Deliberately ignores
    /// `touched`: a line that is merely on a work list behaves exactly
    /// like one with no metadata at all.
    fn is_clear(&self) -> bool {
        self.sl == 0 && self.sm.iter().all(|&w| w == 0)
    }

    fn sm_any(&self) -> u64 {
        self.sm.iter().fold(0, |a, &w| a | w)
    }
}

/// A resident L2 entry: one version of one line.
///
/// `owner == None` is the committed (architectural) version; `Some(cpu)`
/// a speculative version created by that CPU's stores.
type VersionKey = (u64, Option<u8>);

/// The shared L2 with speculative-state extensions and its victim cache.
#[derive(Debug)]
pub struct SpecL2 {
    params: CacheParams,
    entries: SetAssoc<VersionKey, ()>,
    victim: VictimBuffer<VersionKey, ()>,
    meta: LineMap<LineMeta>,
    banks: BankArray,
    bus: MemBus,
    stats: CacheStats,
    mem_cfg: MemParams,
    max_subs: u8,
    cpus: usize,
    track: bool,
    /// Lines touched speculatively, per CPU (duplicate-free — appends
    /// are gated on [`LineMeta::touched`]): the work lists for commit
    /// and rewind.
    touched: Vec<Vec<u64>>,
    /// Reusable buffer for overflow victims discarded on the
    /// victim-cache reinstall path (see [`SpecL2::line_resident`]).
    lr_scratch: Vec<(usize, u8)>,
    /// Count of speculatively-loaded bits recorded (diagnostics).
    sl_recorded: u64,
    /// Lines displaced from a set into the victim cache over the whole
    /// run (monotonic; the observer diffs it to emit spill events).
    victim_inserts: u64,
}

impl SpecL2 {
    /// A new speculative L2.
    ///
    /// # Panics
    ///
    /// Panics if the geometry exceeds the slot-packing limits
    /// (`cpus * max_subs > 64`, more 8-byte words per line than the
    /// bit-packing supports).
    pub fn new(
        params: CacheParams,
        mem: MemParams,
        victim_entries: usize,
        cpus: usize,
        max_subs: u8,
        track: bool,
    ) -> Self {
        assert!(cpus <= MAX_CPUS && max_subs as usize <= MAX_SUBTHREADS);
        assert!(cpus * max_subs as usize <= 64, "too many context slots");
        assert!(params.words_per_line() as usize <= MAX_WORDS, "line too long");
        // The `LineMeta::touched` CPU mask is a u8.
        const _: () = assert!(MAX_CPUS <= 8);
        SpecL2 {
            entries: SetAssoc::new(params.sets() as usize, params.ways as usize),
            victim: VictimBuffer::new(victim_entries),
            meta: LineMap::new(),
            banks: BankArray::new(&mem, params.line_shift()),
            bus: MemBus::new(&mem),
            stats: CacheStats::default(),
            mem_cfg: mem,
            max_subs,
            cpus,
            track,
            touched: vec![Vec::new(); cpus],
            lr_scratch: Vec::new(),
            sl_recorded: 0,
            victim_inserts: 0,
            params,
        }
    }

    fn slot(&self, cpu: usize, sub: u8) -> u32 {
        debug_assert!(cpu < self.cpus && sub < self.max_subs);
        (cpu as u32) * self.max_subs as u32 + sub as u32
    }

    fn cpu_mask(&self, cpu: usize) -> u64 {
        (((1u128 << self.max_subs) - 1) as u64) << (cpu as u32 * self.max_subs as u32)
    }

    /// Mask of slots `(cpu, sub)` for `sub >= from`.
    fn cpu_mask_from(&self, cpu: usize, from: u8) -> u64 {
        let per_cpu = ((1u128 << self.max_subs) - 1) as u64;
        let tail = per_cpu & !((1u64 << from) - 1);
        tail << (cpu as u32 * self.max_subs as u32)
    }

    fn min_sub_in(&self, bits: u64, cpu: usize) -> Option<u8> {
        let m = (bits & self.cpu_mask(cpu)) >> (cpu as u32 * self.max_subs as u32);
        if m == 0 {
            None
        } else {
            Some(m.trailing_zeros() as u8)
        }
    }

    /// Words of the line covered by an access of `size` bytes at `addr`.
    /// Accesses never span lines in the recorded traces; if one did, the
    /// spill-over words would be attributed to the first line
    /// (conservative for exposure, harmless for modification tracking).
    fn words_of(&self, addr: Addr, size: u8) -> (u32, u32) {
        let first = self.params.word_in_line(addr);
        let last = self.params.word_in_line(Addr(addr.0 + size as u64 - 1)).max(first);
        (first, last)
    }

    /// True if `line` (any version) must not be silently dropped.
    fn line_is_spec(&self, line: u64) -> bool {
        self.meta.get(line).is_some_and(|m| !m.is_clear())
    }

    /// Is any version of `line` resident (set or victim cache)?
    fn line_resident(&mut self, line: u64) -> Option<VersionKey> {
        let set = self.params.set_index(Addr(line));
        // One scan finds the version and refreshes its LRU recency.
        if let Some(key) = self.entries.touch_where(set, |k| k.0 == line) {
            return Some(key);
        }
        // Victim hit: swap the version back into the set. Overflow from
        // the reinstall is dropped, as it always has been (the displaced
        // version lands back in the just-vacated victim slot).
        if let Some((key, ())) = self.victim.take_where(|k| k.0 == line) {
            let mut scratch = std::mem::take(&mut self.lr_scratch);
            scratch.clear();
            self.install_into(key, &mut scratch);
            self.lr_scratch = scratch;
            return Some(key);
        }
        None
    }

    /// Installs a version entry, routing displaced speculative versions to
    /// the victim cache and appending overflow victims to `overflow`.
    fn install_into(&mut self, key: VersionKey, overflow: &mut Vec<(usize, u8)>) {
        let set = self.params.set_index(Addr(key.0));
        if self.entries.peek(set, key).is_some() {
            return;
        }
        let meta = &self.meta;
        let spec = |k: &VersionKey| k.1.is_some() || meta.get(k.0).is_some_and(|m| !m.is_clear());
        let outcome = self.entries.insert_with(set, key, (), |k, _| !spec(k));
        let displaced = match outcome {
            Inserted::Placed => None,
            Inserted::Evicted(k, ()) => {
                self.stats.evictions += 1;
                Some(k)
            }
            Inserted::SetFull => {
                // Every way holds speculative state: evict the LRU
                // speculative version into the victim cache.
                match self.entries.insert(set, key, ()) {
                    Inserted::Evicted(k, ()) => {
                        self.stats.evictions += 1;
                        Some(k)
                    }
                    _ => unreachable!("full set must evict"),
                }
            }
        };
        if let Some(victim_key) = displaced {
            if victim_key.1.is_some() || self.line_is_spec(victim_key.0) {
                self.victim_inserts += 1;
                if let Some((lost, ())) = self.victim.insert(victim_key, ()) {
                    self.overflow_victims_into(lost, overflow);
                }
            }
            // Non-speculative displaced lines are silently written back.
        }
    }

    /// Appends the threads whose state is unrecoverable once `lost` is
    /// dropped.
    fn overflow_victims_into(&self, lost: VersionKey, victims: &mut Vec<(usize, u8)>) {
        let Some(meta) = self.meta.get(lost.0) else { return };
        match lost.1 {
            Some(cpu) => {
                // A speculative version died: its owner cannot commit.
                if let Some(sub) = self.min_sub_in(meta.sm_any(), cpu as usize) {
                    victims.push((cpu as usize, sub));
                } else {
                    victims.push((cpu as usize, 0));
                }
            }
            None => {
                // The base copy of a line with recorded speculative loads
                // died: every reader loses its dependence tracking.
                for cpu in 0..self.cpus {
                    if let Some(sub) = self.min_sub_in(meta.sl, cpu) {
                        victims.push((cpu, sub));
                    }
                }
            }
        }
    }

    /// Records the speculatively-loaded bit for a load that *hit in the
    /// L1* (the notification travels off the critical path; no bank time).
    /// Returns whether the load was exposed.
    pub fn note_l1_load(&mut self, addr: Addr, size: u8, ctx: AccessCtx) -> bool {
        if !self.track || !ctx.speculative {
            return true;
        }
        let line = self.params.line_addr(addr).0;
        self.record_load(line, addr, size, ctx)
    }

    fn record_load(&mut self, line: u64, addr: Addr, size: u8, ctx: AccessCtx) -> bool {
        let slot = self.slot(ctx.cpu, ctx.sub);
        let own = self.cpu_mask(ctx.cpu);
        let (w0, w1) = self.words_of(addr, size);
        let meta = self.meta.entry_or_default(line);
        let exposed = (w0..=w1).any(|w| meta.sm[w as usize] & own == 0);
        if exposed {
            meta.sl |= 1 << slot;
            if meta.touched & (1 << ctx.cpu) == 0 {
                meta.touched |= 1 << ctx.cpu;
                self.touched[ctx.cpu].push(line);
            }
            self.sl_recorded += 1;
        }
        exposed
    }

    /// An L1 read miss arriving at the L2 at `arrival` (allocating
    /// convenience wrapper over [`read_into`](Self::read_into)).
    pub fn read(&mut self, arrival: u64, addr: Addr, size: u8, ctx: AccessCtx) -> L2Outcome {
        let mut out = L2Outcome::default();
        self.read_into(arrival, addr, size, ctx, &mut out);
        out
    }

    /// An L1 read miss arriving at the L2 at `arrival`. The outcome is
    /// written into the caller-provided `out` (its buffers are cleared
    /// first), so a caller that reuses one `L2Outcome` never allocates.
    pub fn read_into(
        &mut self,
        arrival: u64,
        addr: Addr,
        size: u8,
        ctx: AccessCtx,
        out: &mut L2Outcome,
    ) {
        out.overflow_victims.clear();
        out.readers.clear();
        let line = self.params.line_addr(addr).0;
        let bank_start = self.banks.book(addr, arrival);
        let resident = self.line_resident(line);
        self.stats.record(resident.is_some());
        out.completion = match resident {
            Some(_) => bank_start + self.mem_cfg.l2_min_latency - 1,
            None => {
                let mem_start = self.bus.book(bank_start);
                self.install_into((line, None), &mut out.overflow_victims);
                mem_start + self.mem_cfg.mem_min_latency - 1
            }
        };
        out.hit = resident.is_some();
        out.exposed = if self.track && ctx.speculative {
            self.record_load(line, addr, size, ctx)
        } else {
            true
        };
    }

    /// A write-through store arriving at the L2 at `arrival` (allocating
    /// convenience wrapper over [`write_into`](Self::write_into)).
    pub fn write(&mut self, arrival: u64, addr: Addr, size: u8, ctx: AccessCtx) -> L2Outcome {
        let mut out = L2Outcome::default();
        self.write_into(arrival, addr, size, ctx, &mut out);
        out
    }

    /// A write-through store arriving at the L2 at `arrival`.
    ///
    /// Creates/updates this thread's version of the line, records
    /// word-granularity speculatively-modified bits, and reports every
    /// other thread whose speculatively-loaded bit is set on the line.
    /// Results are written into the caller-provided `out`.
    pub fn write_into(
        &mut self,
        arrival: u64,
        addr: Addr,
        size: u8,
        ctx: AccessCtx,
        out: &mut L2Outcome,
    ) {
        out.overflow_victims.clear();
        out.readers.clear();
        let line = self.params.line_addr(addr).0;
        self.banks.book(addr, arrival);
        let owner = if ctx.speculative { Some(ctx.cpu as u8) } else { None };
        // Fetch-on-write if no version of the line is resident at all.
        if self.line_resident(line).is_none() {
            self.bus.book(arrival);
        }
        let key = (line, owner);
        let set = self.params.set_index(Addr(line));
        if self.entries.peek(set, key).is_none() {
            let _ = self.victim.take_where(|k| *k == key);
            self.install_into(key, &mut out.overflow_victims);
        } else {
            let _ = self.entries.probe(set, key);
        }
        if self.track {
            if ctx.speculative {
                let slot = self.slot(ctx.cpu, ctx.sub);
                let (w0, w1) = self.words_of(addr, size);
                let meta = self.meta.entry_or_default(line);
                for w in w0..=w1 {
                    meta.sm[w as usize] |= 1 << slot;
                }
                if meta.touched & (1 << ctx.cpu) == 0 {
                    meta.touched |= 1 << ctx.cpu;
                    self.touched[ctx.cpu].push(line);
                }
            }
            if let Some(meta) = self.meta.get(line) {
                for cpu in 0..self.cpus {
                    if cpu == ctx.cpu {
                        continue;
                    }
                    if let Some(sub) = self.min_sub_in(meta.sl, cpu) {
                        out.readers.push((cpu, sub));
                    }
                }
            }
        }
        out.completion = arrival; // stores drain through the store buffer
        out.hit = true;
        out.exposed = false;
    }

    /// Sub-thread context recycling: merges `cpu`'s sub-thread column `m`
    /// into `m-1` and shifts the higher columns down by one. In hardware
    /// this is a pair of ORs and a shift over the per-context bit columns
    /// of each line the thread touched.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= m < max_subs`.
    pub fn merge_subthread(&mut self, cpu: usize, m: u8) {
        assert!(m >= 1 && m < self.max_subs, "cannot merge sub-thread column {m}");
        let base = cpu as u32 * self.max_subs as u32;
        let s = self.max_subs as u32;
        // The work list is duplicate-free by construction; it is sorted
        // so downstream set/victim operations happen in a canonical
        // line order regardless of access order.
        let mut lines = std::mem::take(&mut self.touched[cpu]);
        lines.sort_unstable();
        for line in &lines {
            if let Some(meta) = self.meta.get_mut(*line) {
                meta.sl = merge_column(meta.sl, base, s, m as u32);
                for w in meta.sm.iter_mut() {
                    *w = merge_column(*w, base, s, m as u32);
                }
            }
        }
        self.touched[cpu] = lines;
    }

    /// Violation recovery for `cpu`: discards speculative-loaded and
    /// speculative-modified state of sub-threads `from_sub..`, and drops
    /// this CPU's version of any line it no longer modifies.
    pub fn rewind(&mut self, cpu: usize, from_sub: u8) {
        let mask = self.cpu_mask_from(cpu, from_sub);
        let full = self.cpu_mask(cpu);
        let own_touch = 1u8 << cpu;
        let mut lines = std::mem::take(&mut self.touched[cpu]);
        lines.sort_unstable();
        let SpecL2 { meta, entries, victim, params, .. } = &mut *self;
        // Lines with surviving (sub < from_sub) state stay on the work
        // list for the eventual commit/rewind-to-0; dropped lines leave
        // the per-line touched mask so a later access can re-append.
        lines.retain(|&line| {
            let Some(m) = meta.get_mut(line) else { return false };
            m.sl &= !mask;
            let mut still_modifies = false;
            for w in m.sm.iter_mut() {
                *w &= !mask;
                still_modifies |= *w & full != 0;
            }
            if !still_modifies {
                let set = params.set_index(Addr(line));
                let key = (line, Some(cpu as u8));
                let _ = entries.remove(set, key);
                let _ = victim.take_where(|k| *k == key);
            }
            if (m.sl | m.sm_any()) & full != 0 {
                return true;
            }
            m.touched &= !own_touch;
            let dead = m.is_clear() && m.touched == 0;
            if dead {
                meta.remove(line);
            }
            false
        });
        self.touched[cpu] = lines;
    }

    /// Commits `cpu`'s speculative state: clears its loaded/modified bits
    /// and converts its versions into the architectural copy of each line.
    /// Returns threads whose state was displaced by the re-keying
    /// (allocating convenience wrapper over
    /// [`commit_into`](Self::commit_into)).
    pub fn commit(&mut self, cpu: usize) -> Vec<(usize, u8)> {
        let mut overflow = Vec::new();
        self.commit_into(cpu, &mut overflow);
        overflow
    }

    /// Commits `cpu`'s speculative state, appending displaced threads to
    /// the caller-provided `overflow` buffer.
    pub fn commit_into(&mut self, cpu: usize, overflow: &mut Vec<(usize, u8)>) {
        let full = self.cpu_mask(cpu);
        let own_touch = 1u8 << cpu;
        let mut lines = std::mem::take(&mut self.touched[cpu]);
        lines.sort_unstable();
        for &line in &lines {
            let Some(meta) = self.meta.get_mut(line) else { continue };
            meta.sl &= !full;
            let mut modified = false;
            for w in meta.sm.iter_mut() {
                modified |= *w & full != 0;
                *w &= !full;
            }
            meta.touched &= !own_touch;
            let dead = meta.is_clear() && meta.touched == 0;
            if dead {
                self.meta.remove(line);
            }
            if modified {
                let set = self.params.set_index(Addr(line));
                let key = (line, Some(cpu as u8));
                let in_set = self.entries.remove(set, key).is_some();
                let in_victim = !in_set && self.victim.take(key).is_some();
                if in_set && self.entries.peek(set, (line, None)).is_none() {
                    self.install_into((line, None), overflow);
                }
                // A committed version found only in the victim cache is
                // treated as written back to memory.
                let _ = in_victim;
            }
        }
        // The drained work list's capacity is kept for the next epoch.
        lines.clear();
        self.touched[cpu] = lines;
    }

    /// L2 access statistics (reads).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Victim-cache statistics.
    pub fn victim_stats(&self) -> CacheStats {
        self.victim.stats()
    }

    /// Main-memory accesses issued.
    pub fn mem_accesses(&self) -> u64 {
        self.bus.accesses()
    }

    /// Cycles requests spent queued on busy banks.
    pub fn bank_queueing(&self) -> u64 {
        self.banks.queueing_cycles()
    }

    /// Lines currently carrying speculative metadata (for tests and
    /// capacity reporting).
    pub fn spec_lines(&self) -> usize {
        self.meta.len()
    }

    /// Count of loaded-bit recordings (for tests).
    pub fn sl_recordings(&self) -> u64 {
        self.sl_recorded
    }

    /// Lines currently buffered in the victim cache (occupancy gauge).
    pub fn victim_len(&self) -> usize {
        self.victim.len()
    }

    /// Monotonic count of lines displaced into the victim cache; the
    /// observer diffs successive readings to emit spill events.
    pub fn victim_inserts(&self) -> u64 {
        self.victim_inserts
    }

    /// Current victim-cache capacity.
    pub fn victim_capacity(&self) -> usize {
        self.victim.capacity()
    }

    /// Resizes the victim cache (chaos-harness hook). Shrinking may
    /// displace buffered versions; displaced *speculative* versions are
    /// overflow events, and the affected `(cpu, sub)` pairs are returned
    /// for the simulator to rewind — exactly the paper's "speculation
    /// fails when even the victim cache overflows" path.
    pub fn set_victim_capacity(&mut self, capacity: usize) -> Vec<(usize, u8)> {
        let mut overflow = Vec::new();
        for (key, ()) in self.victim.set_capacity(capacity) {
            if key.1.is_some() {
                self.overflow_victims_into(key, &mut overflow);
            } else if self.meta.get(key.0).is_some_and(|m| m.sl != 0) {
                // A base copy with recorded speculative loads died.
                self.overflow_victims_into(key, &mut overflow);
            }
        }
        overflow.sort_unstable();
        overflow.dedup();
        overflow
    }

    /// Audit: lines still carrying speculative bits for `cpu`'s
    /// sub-threads `from..` — must be empty right after a rewind to
    /// `from` (only meaningful when dependence tracking is on).
    pub fn audit_subthread_residue(&self, cpu: usize, from: u8) -> Vec<String> {
        let mask = self.cpu_mask_from(cpu, from);
        let mut v: Vec<String> = self
            .meta
            .iter()
            .filter(|(_, m)| (m.sl | m.sm_any()) & mask != 0)
            .map(|(line, _)| {
                format!("line {line:#x} keeps spec bits for cpu {cpu} sub-threads {from}..")
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// Audit: after `cpu` commits, no speculative bit and no version it
    /// owns may remain anywhere in the L2 or the victim cache.
    pub fn audit_cpu_clear(&self, cpu: usize) -> Vec<String> {
        let mut v = self.audit_subthread_residue(cpu, 0);
        for (_, key, _) in self.entries.iter() {
            if key.1 == Some(cpu as u8) {
                v.push(format!(
                    "L2 still holds a speculative version of line {:#x} owned by cpu {cpu}",
                    key.0
                ));
            }
        }
        if self.victim.contains_where(|k| k.1 == Some(cpu as u8)) {
            v.push(format!("victim cache still holds a speculative version owned by cpu {cpu}"));
        }
        v
    }

    /// Audit: with every epoch committed, no speculative metadata or
    /// version may survive anywhere.
    pub fn audit_quiescent(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .meta
            .iter()
            .filter(|(_, m)| !m.is_clear())
            .map(|(line, _)| format!("line {line:#x} keeps spec metadata after full commit"))
            .collect();
        for (_, key, _) in self.entries.iter() {
            if let Some(cpu) = key.1 {
                v.push(format!(
                    "L2 keeps a speculative version of line {:#x} (cpu {cpu}) after full commit",
                    key.0
                ));
            }
        }
        if self.victim.contains_where(|k| k.1.is_some()) {
            v.push("victim cache keeps a speculative version after full commit".into());
        }
        v.sort_unstable();
        v
    }
}

/// Within the `s`-bit column group starting at `base`, ORs bit `m` into
/// bit `m-1` and shifts bits `m+1..s` down by one.
fn merge_column(x: u64, base: u32, s: u32, m: u32) -> u64 {
    let mask = (((1u128 << s) - 1) as u64) << base;
    let v = (x & mask) >> base;
    let keep = v & ((1u64 << (m - 1)) - 1);
    let merged = ((v >> (m - 1)) & 1) | ((v >> m) & 1);
    let high = v >> (m + 1);
    let nv = keep | (merged << (m - 1)) | (high << m);
    (x & !mask) | (nv << base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_column_bit_mechanics() {
        // 8-bit group at base 8; merge column 2 into 1.
        // bits: 0b_0110_0101 -> keep bit0 (1), bit1 := b1|b2 = 0|1 = 1,
        // bits 2.. := old 3.. = 0b01100 >> ... old v = 0b01100101:
        // keep=0b1, merged=1, high=0b01100 -> 0b0110011.
        let x = 0b0110_0101u64 << 8;
        let got = merge_column(x, 8, 8, 2);
        assert_eq!(got >> 8, 0b011_0011);
        // Other groups untouched.
        let noise = 0xFFu64 | (0xABu64 << 16);
        assert_eq!(merge_column(x | noise, 8, 8, 2), (0b011_0011 << 8) | noise);
    }

    fn l2(victim: usize, track: bool) -> SpecL2 {
        SpecL2::new(
            CacheParams::new(16 * 1024, 4, 32),
            MemParams::paper_default(),
            victim,
            4,
            8,
            track,
        )
    }

    fn spec(cpu: usize, sub: u8) -> AccessCtx {
        AccessCtx { cpu, sub, speculative: true }
    }

    fn nonspec(cpu: usize) -> AccessCtx {
        AccessCtx { cpu, sub: 0, speculative: false }
    }

    #[test]
    fn read_miss_then_hit_timing() {
        let mut c = l2(16, true);
        let miss = c.read(10, Addr(0x1000), 8, nonspec(0));
        assert!(!miss.hit);
        assert_eq!(miss.completion, 10 + 75 - 1);
        let hit = c.read(100, Addr(0x1000), 8, nonspec(0));
        assert!(hit.hit);
        assert_eq!(hit.completion, 100 + 10 - 1);
    }

    #[test]
    fn store_reports_spec_readers_with_earliest_subthread() {
        let mut c = l2(16, true);
        // CPU 1 loads the line in sub-threads 2 then 4 (earliest wins).
        c.read(0, Addr(0x2000), 8, spec(1, 2));
        c.read(10, Addr(0x2008), 8, spec(1, 4));
        // CPU 2 loads it too, in sub-thread 0.
        c.read(20, Addr(0x2000), 8, spec(2, 0));
        // CPU 0 stores to it.
        let out = c.write(30, Addr(0x2000), 8, spec(0, 1));
        assert_eq!(out.readers, vec![(1, 2), (2, 0)]);
    }

    #[test]
    fn own_loads_are_not_readers() {
        let mut c = l2(16, true);
        c.read(0, Addr(0x2000), 8, spec(0, 0));
        let out = c.write(10, Addr(0x2000), 8, spec(0, 1));
        assert!(out.readers.is_empty());
    }

    #[test]
    fn forwarded_loads_are_not_exposed() {
        let mut c = l2(16, true);
        // CPU 0 stores word 0, then loads it back: not exposed.
        c.write(0, Addr(0x3000), 8, spec(0, 0));
        let out = c.read(10, Addr(0x3000), 8, spec(0, 0));
        assert!(!out.exposed);
        // A load of a *different* word of the same line is exposed.
        let out2 = c.read(20, Addr(0x3008), 8, spec(0, 0));
        assert!(out2.exposed);
        // And the exposed load is visible to a later store's reader scan.
        let store = c.write(30, Addr(0x3008), 8, spec(1, 0));
        assert_eq!(store.readers, vec![(0, 0)]);
    }

    #[test]
    fn tracking_disabled_reports_nothing() {
        let mut c = l2(16, false);
        c.read(0, Addr(0x2000), 8, spec(1, 0));
        let out = c.write(10, Addr(0x2000), 8, spec(0, 0));
        assert!(out.readers.is_empty());
        assert_eq!(c.spec_lines(), 0);
    }

    #[test]
    fn rewind_clears_only_later_subthreads() {
        let mut c = l2(16, true);
        c.read(0, Addr(0x1000), 8, spec(1, 1));
        c.read(0, Addr(0x2000), 8, spec(1, 3));
        c.rewind(1, 2); // discard sub-threads 2..
        let out1 = c.write(10, Addr(0x1000), 8, spec(0, 0));
        assert_eq!(out1.readers, vec![(1, 1)], "sub-1 state survives");
        let out2 = c.write(20, Addr(0x2000), 8, spec(0, 0));
        assert!(out2.readers.is_empty(), "sub-3 state was rewound");
    }

    #[test]
    fn rewind_drops_versions_no_longer_modified() {
        let mut c = l2(16, true);
        c.write(0, Addr(0x1000), 8, spec(1, 2));
        assert_eq!(c.spec_lines(), 1);
        c.rewind(1, 0);
        assert_eq!(c.spec_lines(), 0);
        // Store from another CPU sees no readers/owners.
        let out = c.write(10, Addr(0x1000), 8, spec(0, 0));
        assert!(out.readers.is_empty());
    }

    #[test]
    fn commit_clears_state_and_keeps_line_resident() {
        let mut c = l2(16, true);
        c.write(0, Addr(0x1000), 8, spec(1, 0));
        c.read(0, Addr(0x1000), 8, spec(1, 0));
        let overflow = c.commit(1);
        assert!(overflow.is_empty());
        assert_eq!(c.spec_lines(), 0);
        // The committed data is still an L2 hit.
        let out = c.read(100, Addr(0x1000), 8, nonspec(0));
        assert!(out.hit);
        // And no stale readers are reported.
        let store = c.write(200, Addr(0x1000), 8, spec(2, 0));
        assert!(store.readers.is_empty());
    }

    #[test]
    fn versions_occupy_distinct_ways() {
        let mut c = l2(16, true);
        // Three CPUs store to the same line: base + 3 versions.
        c.read(0, Addr(0x4000), 8, nonspec(0)); // base fill
        c.write(1, Addr(0x4000), 8, spec(0, 0));
        c.write(2, Addr(0x4000), 8, spec(1, 0));
        c.write(3, Addr(0x4000), 8, spec(2, 0));
        // All still resident: a read hits.
        assert!(c.read(10, Addr(0x4000), 8, nonspec(3)).hit);
    }

    #[test]
    fn conflict_evictions_spill_to_victim_cache_not_overflow() {
        let mut c = l2(4, true);
        // 16KB, 4-way, 32B lines -> 128 sets; stride of 128*32 bytes maps
        // to one set. Fill the set with 4 speculative versions, then push
        // 2 more lines: displaced versions must land in the victim cache.
        let stride = 128 * 32;
        for i in 0..6u64 {
            let out = c.write(i, Addr(0x8000 + i * stride), 8, spec(0, 0));
            assert!(out.overflow_victims.is_empty(), "victim cache absorbs");
        }
        // All six lines still violate a later reader correctly: their SM
        // state survived.
        c.rewind(0, 0);
        assert_eq!(c.spec_lines(), 0);
    }

    #[test]
    fn victim_cache_overflow_violates_owner() {
        let mut c = l2(1, true);
        let stride = 128 * 32;
        let mut victims = Vec::new();
        // 4 ways + 1 victim entry = 5 speculative lines fit; the 7th
        // insertion displaces a line irrecoverably.
        for i in 0..8u64 {
            let out = c.write(i, Addr(0x8000 + i * stride), 8, spec(3, 2));
            victims.extend(out.overflow_victims);
        }
        assert!(victims.contains(&(3, 2)), "owner thread must be violated: {victims:?}");
    }

    #[test]
    fn merge_subthread_folds_reader_state_down() {
        let mut c = l2(16, true);
        c.read(0, Addr(0x1000), 8, spec(1, 2));
        c.read(0, Addr(0x2000), 8, spec(1, 5));
        // Merge column 3 into 2: the sub-2 reader stays at 2, sub-5
        // becomes sub-4.
        c.merge_subthread(1, 3);
        let a = c.write(10, Addr(0x1000), 8, spec(0, 0));
        assert_eq!(a.readers, vec![(1, 2)]);
        let b = c.write(20, Addr(0x2000), 8, spec(0, 0));
        assert_eq!(b.readers, vec![(1, 4)]);
        // Merge column 2 into 1: sub-2 state moves to sub-1.
        c.merge_subthread(1, 2);
        let a2 = c.write(30, Addr(0x1000), 8, spec(2, 0));
        assert_eq!(a2.readers, vec![(1, 1)]);
    }

    #[test]
    fn nonspec_store_still_sees_readers() {
        let mut c = l2(16, true);
        c.read(0, Addr(0x5000), 8, spec(2, 1));
        let out = c.write(10, Addr(0x5000), 8, nonspec(0));
        assert_eq!(out.readers, vec![(2, 1)]);
    }

    #[test]
    fn l1_hit_notification_records_sl() {
        let mut c = l2(16, true);
        assert!(c.note_l1_load(Addr(0x6000), 8, spec(1, 0)));
        let out = c.write(10, Addr(0x6000), 8, spec(0, 0));
        assert_eq!(out.readers, vec![(1, 0)]);
    }

    #[test]
    fn word_granularity_sm_tracks_partial_lines() {
        let mut c = l2(16, true);
        // CPU 0 stores word 0 of the line; its load of word 1 is exposed.
        c.write(0, Addr(0x7000), 8, spec(0, 0));
        assert!(c.read(1, Addr(0x7008), 8, spec(0, 0)).exposed);
        assert!(!c.read(2, Addr(0x7000), 4, spec(0, 0)).exposed);
    }

    #[test]
    fn bank_contention_delays_back_to_back_reads() {
        let mut c = l2(16, true);
        c.read(0, Addr(0x1000), 8, nonspec(0));
        c.read(500, Addr(0x1000), 8, nonspec(0)); // warm; hit
        let a = c.read(1000, Addr(0x1000), 8, nonspec(0));
        let b = c.read(1000, Addr(0x1000), 8, nonspec(1)); // same bank
        assert!(b.completion > a.completion);
    }
}
