//! Synthetic speculative workloads.
//!
//! Hand-built trace programs with precisely placed dependences — the
//! fastest way to explore how TLS and sub-threads react to a dependence
//! *shape* without recording a full database workload. Used by the
//! Figure 1/2 microbenchmark, the Criterion benches, and the test suite;
//! exported because the paper's closing recommendation is to apply
//! sub-threads "in other application domains as well", and these
//! generators are the template for modeling such a domain.

use tls_trace::{Addr, LatchId, OpSink, Pc, ProgramBuilder, TraceProgram};

/// Where, within a thread, a dependence endpoint sits (fraction of the
/// thread's instructions, `0.0..=1.0`).
pub type Position = f64;

/// A producer/consumer dependence between consecutive threads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dependence {
    /// Position of the producing store within each thread.
    pub store_at: Position,
    /// Position of the consuming load within each (later) thread.
    pub load_at: Position,
}

impl Dependence {
    /// A dependence with the load at `load_at` and the store at
    /// `store_at`.
    pub fn new(load_at: Position, store_at: Position) -> Self {
        Dependence { store_at, load_at }
    }
}

/// Builds `threads` speculative threads of `ops` instructions each, all
/// sharing one location per [`Dependence`]: every thread stores to it at
/// `store_at` and every thread loads it at `load_at` (reading the
/// logically-previous thread's value).
///
/// ```
/// use tls_core::synthetic::{shared_dependences, Dependence};
/// let p = shared_dependences(4, 10_000, &[Dependence::new(0.5, 0.9)]);
/// assert_eq!(p.stats().epochs, 4);
/// ```
pub fn shared_dependences(threads: usize, ops: usize, deps: &[Dependence]) -> TraceProgram {
    let mut b = ProgramBuilder::new("synthetic-shared");
    b.begin_parallel();
    for t in 0..threads {
        b.begin_epoch();
        // Emit work with dependence endpoints interleaved at their
        // positions.
        let mut events: Vec<(usize, usize, bool)> = Vec::new(); // (op idx, dep idx, is_store)
        for (i, d) in deps.iter().enumerate() {
            events.push(((d.load_at.clamp(0.0, 1.0) * ops as f64) as usize, i, false));
            events.push(((d.store_at.clamp(0.0, 1.0) * ops as f64) as usize, i, true));
        }
        events.sort_by_key(|&(at, i, s)| (at, i, s));
        let mut cursor = 0;
        for (at, dep, is_store) in events {
            let at = at.min(ops);
            if at > cursor {
                b.int_ops(Pc::new(t as u16, 0), at - cursor);
                cursor = at;
            }
            let addr = Addr(0x8_0000 + 64 * dep as u64);
            if is_store {
                b.store(Pc::new(0x100 + dep as u16, 1), addr, 8);
            } else {
                b.load(Pc::new(0x100 + dep as u16, 0), addr, 8);
            }
        }
        if cursor < ops {
            b.int_ops(Pc::new(t as u16, 0), ops - cursor);
        }
        b.end_epoch();
    }
    b.end_parallel();
    b.finish()
}

/// Builds `threads` threads of `ops` instructions passing a value down a
/// pipeline: thread *t* stores location *t+1* at `store_at` and loads
/// location *t* at `load_at` (thread 0 loads nothing).
pub fn pipeline(threads: usize, ops: usize, load_at: Position, store_at: Position) -> TraceProgram {
    let mut b = ProgramBuilder::new("synthetic-pipeline");
    b.begin_parallel();
    for t in 0..threads {
        b.begin_epoch();
        let load_idx = (load_at.clamp(0.0, 1.0) * ops as f64) as usize;
        let store_idx = (store_at.clamp(0.0, 1.0) * ops as f64) as usize;
        let (first, second) =
            if load_idx <= store_idx { (load_idx, store_idx) } else { (store_idx, load_idx) };
        b.int_ops(Pc::new(t as u16, 0), first);
        let emit = |b: &mut ProgramBuilder, idx: usize| {
            if idx == load_idx && t > 0 {
                b.load(Pc::new(0x200, 0), Addr(0x9_0000 + 64 * t as u64), 8);
            }
            if idx == store_idx {
                b.store(Pc::new(0x200, 1), Addr(0x9_0000 + 64 * (t as u64 + 1)), 8);
            }
        };
        emit(&mut b, first);
        b.int_ops(Pc::new(t as u16, 1), second - first);
        if second != first {
            emit(&mut b, second);
        }
        b.int_ops(Pc::new(t as u16, 2), ops - second);
        b.end_epoch();
    }
    b.end_parallel();
    b.finish()
}

/// Builds `threads` independent threads of `ops` instructions each — the
/// embarrassingly-parallel upper bound.
pub fn independent(threads: usize, ops: usize) -> TraceProgram {
    let mut b = ProgramBuilder::new("synthetic-independent");
    b.begin_parallel();
    for t in 0..threads {
        b.begin_epoch();
        for i in 0..ops {
            let pc = Pc::new(t as u16, (i % 32) as u16);
            match i % 6 {
                0 => b.load(pc, Addr(0xA_0000 + t as u64 * 0x2000 + (i as u64 % 64) * 8), 8),
                1 => b.branch(pc, i % 3 == 0),
                _ => b.int_alu(pc),
            }
        }
        b.end_epoch();
    }
    b.end_parallel();
    b.finish()
}

/// Builds threads that each enter a latch-protected critical section
/// around a shared read-modify-write — escaped synchronization plus a
/// real dependence, the combination that exercises checkpoint placement.
pub fn latched_rmw(threads: usize, ops: usize, rmw_at: Position) -> TraceProgram {
    let mut b = ProgramBuilder::new("synthetic-latched-rmw");
    b.begin_parallel();
    for t in 0..threads {
        b.begin_epoch();
        let at = (rmw_at.clamp(0.0, 1.0) * ops as f64) as usize;
        b.int_ops(Pc::new(t as u16, 0), at);
        b.latch_acquire(Pc::new(0x300, 0), LatchId(9));
        b.load(Pc::new(0x300, 1), Addr(0xB_0000), 8);
        b.int_ops(Pc::new(0x300, 2), 4);
        b.store(Pc::new(0x300, 3), Addr(0xB_0000), 8);
        b.latch_release(Pc::new(0x300, 4), LatchId(9));
        b.int_ops(Pc::new(t as u16, 1), ops - at);
        b.end_epoch();
    }
    b.end_parallel();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpConfig, CmpSimulator, SpacingPolicy, SubThreadConfig};

    fn machine() -> CmpConfig {
        let mut c = CmpConfig::test_small();
        c.subthreads.spacing = SpacingPolicy::Every(500);
        c
    }

    #[test]
    fn shared_dependence_counts_and_sizes() {
        let p = shared_dependences(4, 5000, &[Dependence::new(0.2, 0.8)]);
        let s = p.stats();
        assert_eq!(s.epochs, 4);
        assert_eq!(s.spec_loads, 4);
        assert_eq!(s.spec_stores, 4);
        assert!((s.avg_epoch_ops() - 5002.0).abs() < 2.0);
    }

    #[test]
    fn independent_threads_scale_cleanly() {
        // Long enough that per-CPU cold-start (instruction and data
        // cache warming, replicated on every core) amortizes.
        let p = independent(4, 20_000);
        let r = CmpSimulator::new(machine()).run(&p);
        assert_eq!(r.violations.total(), 0);
        let serial = crate::experiment::serialize_program(&p);
        let rs = CmpSimulator::new(machine()).run(&serial);
        let speedup = rs.total_cycles as f64 / r.total_cycles as f64;
        assert!(speedup > 3.0, "speedup {speedup}");
    }

    #[test]
    fn pipeline_late_load_benefits_from_subthreads() {
        let p = pipeline(4, 20_000, 0.85, 0.90);
        let mut aon = machine();
        aon.subthreads = SubThreadConfig::disabled();
        let r_sub = CmpSimulator::new(machine()).run(&p);
        let r_aon = CmpSimulator::new(aon).run(&p);
        assert!(r_sub.breakdown.failed < r_aon.breakdown.failed);
        assert!(r_sub.total_cycles <= r_aon.total_cycles);
    }

    #[test]
    fn latched_rmw_regression_checkpoints_avoid_critical_sections() {
        // Regression test: a violation rewinding into a *completed*
        // critical section used to replay an unbalanced latch release.
        // Tiny spacing maximizes the chance of a checkpoint landing
        // inside the section if the guard were missing.
        let p = latched_rmw(6, 3000, 0.5);
        let mut cfg = machine();
        cfg.subthreads = SubThreadConfig {
            contexts: 8,
            spacing: SpacingPolicy::Every(3),
            exhaustion: crate::ExhaustionPolicy::Merge,
        };
        let r = CmpSimulator::new(cfg).run(&p);
        assert_eq!(r.committed_epochs, 6);
        assert!(r.latch_acquisitions >= 6, "every epoch entered its critical section");
    }

    #[test]
    fn latched_rmw_under_all_policies() {
        let p = latched_rmw(5, 2000, 0.7);
        for contexts in [1u8, 4, 8] {
            for exhaustion in [crate::ExhaustionPolicy::Merge, crate::ExhaustionPolicy::Stop] {
                let mut cfg = machine();
                cfg.subthreads =
                    SubThreadConfig { contexts, spacing: SpacingPolicy::Every(7), exhaustion };
                let r = CmpSimulator::new(cfg).run(&p);
                assert_eq!(r.committed_epochs, 5, "contexts={contexts} {exhaustion:?}");
            }
        }
    }
}
