//! Deterministic chaos harness: seeded fault plans for the TLS protocol.
//!
//! A [`FaultPlan`] is a seeded, reproducible schedule of protocol-level
//! perturbations — spurious violations, victim-cache squeezes, forced
//! sub-thread merges, a delayed homefree token, latch hazards — that the
//! simulator applies at exact cycle points. Because the whole machine is
//! deterministic, a (program, config, plan) triple replays bit-for-bit,
//! which is what lets the differential oracle and the invariant auditor
//! turn "the protocol survived" into a checkable property rather than a
//! hope. See `DESIGN.md` §7 for the fault model and the invariants each
//! class is meant to stress.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The classes of protocol-level faults the harness can inject.
///
/// Each class exercises one recovery path of the sub-threaded TLS
/// protocol; none of them models a data error — faults perturb *when*
/// the protocol machinery runs, never *what* the program computes, so
/// the sequential oracle must still match afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// A spurious primary (RAW-like) violation against the oldest
    /// speculative epoch, rewinding it to its newest checkpoint and
    /// cascading secondary violations through the start tables.
    SpuriousPrimary,
    /// A spurious violation against the youngest speculative epoch at
    /// sub-thread 0 — a full epoch restart, the pre-sub-thread penalty.
    SpuriousSecondary,
    /// The victim cache is squeezed to capacity zero for the fault's
    /// duration, forcing displaced speculative versions through the
    /// L2 overflow path.
    VictimSqueeze,
    /// One sub-thread context of a running speculative epoch is merged
    /// away, as if the context supply had been exhausted early.
    ForcedMerge,
    /// The homefree token is withheld for the fault's duration: no
    /// epoch may commit until the token is released again.
    DelayedToken,
    /// A held latch is forcibly released out from under its owner; the
    /// owner's own release must then surface as a recoverable
    /// [`crate::report::ProtocolError`], not a crash.
    LatchHazard,
    /// One CPU's TSO store buffer refuses to drain for the fault's
    /// duration: drain points stall (as DrainStall cycles) until the
    /// window closes. Requires [`crate::MemoryModel::Tso`] and a
    /// non-empty buffer; must be *survived* — timing changes, the
    /// committed state does not.
    StuckDrain,
    /// The two oldest entries of one CPU's store buffer are swapped, so
    /// the next drains apply them out of program order. The versioned
    /// L2 keys speculative state by epoch, not arrival time, so this
    /// too must be *survived*.
    ReorderedDrain,
    /// The oldest entry of one CPU's store buffer is silently discarded
    /// — the store never reaches the memory system. The
    /// serializability auditor's store-flow invariant must *detect*
    /// this as a structured protocol error at the next commit or
    /// rewind; surviving it silently is the failure mode this class
    /// exists to preclude.
    DroppedEntry,
}

/// Every fault class, in a fixed order (stable across runs and useful
/// for sweeps and report tables).
pub const ALL_FAULT_CLASSES: [FaultClass; 9] = [
    FaultClass::SpuriousPrimary,
    FaultClass::SpuriousSecondary,
    FaultClass::VictimSqueeze,
    FaultClass::ForcedMerge,
    FaultClass::DelayedToken,
    FaultClass::LatchHazard,
    FaultClass::StuckDrain,
    FaultClass::ReorderedDrain,
    FaultClass::DroppedEntry,
];

/// The store-buffer fault classes (the PR 10 additions), in matrix
/// order: the first two are survivable, the third must be detected.
pub const STORE_BUFFER_FAULT_CLASSES: [FaultClass; 3] =
    [FaultClass::StuckDrain, FaultClass::ReorderedDrain, FaultClass::DroppedEntry];

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultClass::SpuriousPrimary => "spurious-primary",
            FaultClass::SpuriousSecondary => "spurious-secondary",
            FaultClass::VictimSqueeze => "victim-squeeze",
            FaultClass::ForcedMerge => "forced-merge",
            FaultClass::DelayedToken => "delayed-token",
            FaultClass::LatchHazard => "latch-hazard",
            FaultClass::StuckDrain => "stuck-drain",
            FaultClass::ReorderedDrain => "reordered-drain",
            FaultClass::DroppedEntry => "dropped-entry",
        };
        f.write_str(name)
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Cycle at which the fault fires (start of the cycle, before any
    /// CPU executes).
    pub at_cycle: u64,
    /// What kind of perturbation to apply.
    pub class: FaultClass,
    /// How long the perturbation lasts, for the classes with an extent
    /// ([`FaultClass::VictimSqueeze`], [`FaultClass::DelayedToken`]).
    /// For instantaneous classes this is instead the *arming window*:
    /// the fault stays pending for this many cycles past `at_cycle`,
    /// firing at the first cycle with an eligible target, and is skipped
    /// only if the window closes without one.
    pub duration: u64,
}

/// A seeded, reproducible schedule of faults.
///
/// Plans are data: they serialize, compare, and replay. The same seed,
/// class set, horizon and count always generate the same plan.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// Scheduled faults, sorted by [`FaultEvent::at_cycle`].
    pub events: Vec<FaultEvent>,
}

/// SplitMix64 step: the plan generator's own tiny RNG, kept inline so
/// `tls-core` needs no runtime RNG dependency and plans stay stable no
/// matter what the workspace's `rand` resolves to.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Generates a plan of `count` faults drawn from `classes`, spread
    /// over cycles `1..horizon`, with durations of roughly 100-500
    /// cycles for the classes that have one. The target-seeking
    /// store-buffer saboteurs ([`FaultClass::ReorderedDrain`] and
    /// [`FaultClass::DroppedEntry`]) instead stay armed to the end of
    /// the horizon: on store-sparse programs a narrow window would skip
    /// most of the time, and a drop that never fires detects nothing.
    ///
    /// Panics if `classes` is empty.
    pub fn generate(seed: u64, classes: &[FaultClass], horizon: u64, count: usize) -> FaultPlan {
        assert!(!classes.is_empty(), "fault plan needs at least one class");
        let horizon = horizon.max(2);
        let mut state = seed ^ 0xC4A0_5D1E_C4A0_5D1E;
        // Warm the stream so nearby seeds diverge immediately.
        let _ = splitmix64(&mut state);
        let mut events: Vec<FaultEvent> = (0..count)
            .map(|_| {
                let class = classes[(splitmix64(&mut state) % classes.len() as u64) as usize];
                let at_cycle = 1 + splitmix64(&mut state) % (horizon - 1);
                // Always draw, so the stream stays identical for plans
                // that never pick a target-seeking class.
                let drawn = 100 + splitmix64(&mut state) % 400;
                let duration = match class {
                    FaultClass::ReorderedDrain | FaultClass::DroppedEntry => horizon,
                    _ => drawn,
                };
                FaultEvent { at_cycle, class, duration }
            })
            .collect();
        events.sort_by_key(|e| e.at_cycle);
        FaultPlan { seed, events }
    }

    /// A plan with a single fault — handy for targeted tests.
    pub fn single(class: FaultClass, at_cycle: u64, duration: u64) -> FaultPlan {
        FaultPlan { seed: 0, events: vec![FaultEvent { at_cycle, class, duration }] }
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The classes of storage-level faults the disk chaos harness injects.
///
/// Unlike [`FaultClass`], these *do* corrupt data — they model the
/// failure modes of a physical disk under power loss — so the recovery
/// path (checksum detection plus WAL REDO) is what restores the "the
/// sequential oracle must still match" guarantee after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiskFaultClass {
    /// A page write is torn at an arbitrary byte boundary: the prefix of
    /// the new envelope lands, the suffix keeps the old on-disk bytes.
    /// The page checksum must reject every such mix.
    TornWrite,
    /// A page write is silently dropped: the old envelope stays on disk,
    /// checksum-valid but stale. REDO must roll it forward from its
    /// page LSN.
    LostWrite,
    /// One bit of the written envelope flips. The page checksum must
    /// detect it.
    BitFlip,
}

/// Every disk fault class, in a fixed order.
pub const ALL_DISK_FAULT_CLASSES: [DiskFaultClass; 3] =
    [DiskFaultClass::TornWrite, DiskFaultClass::LostWrite, DiskFaultClass::BitFlip];

impl fmt::Display for DiskFaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DiskFaultClass::TornWrite => "torn-write",
            DiskFaultClass::LostWrite => "lost-write",
            DiskFaultClass::BitFlip => "bit-flip",
        };
        f.write_str(name)
    }
}

/// One scheduled disk fault, addressed by *write index*: the Nth page
/// write the pager issues after its initial checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskFaultEvent {
    /// Zero-based index of the disk write this fault corrupts.
    pub at_write: u64,
    /// What kind of corruption to apply.
    pub class: DiskFaultClass,
    /// Class-specific argument: the tear's byte boundary within the
    /// envelope ([`DiskFaultClass::TornWrite`]) or the bit index to flip
    /// ([`DiskFaultClass::BitFlip`]); unused for lost writes. Consumers
    /// reduce it modulo the envelope size, so any `u64` is valid.
    pub arg: u64,
}

/// A seeded, reproducible schedule of disk faults.
///
/// Same contract as [`FaultPlan`]: plans are data, and the same seed,
/// class set, horizon and count always generate the same plan.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DiskFaultPlan {
    /// The seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// Scheduled faults, sorted by [`DiskFaultEvent::at_write`], at most
    /// one per write index.
    pub events: Vec<DiskFaultEvent>,
}

impl DiskFaultPlan {
    /// Generates a plan of up to `count` faults drawn from `classes`,
    /// spread over write indices `0..horizon` (duplicate indices are
    /// dropped, so dense plans may come out slightly short).
    ///
    /// Panics if `classes` is empty.
    pub fn generate(
        seed: u64,
        classes: &[DiskFaultClass],
        horizon: u64,
        count: usize,
    ) -> DiskFaultPlan {
        assert!(!classes.is_empty(), "disk fault plan needs at least one class");
        let horizon = horizon.max(1);
        let mut state = seed ^ 0xD15C_FA17_D15C_FA17;
        let _ = splitmix64(&mut state);
        let mut events: Vec<DiskFaultEvent> = (0..count)
            .map(|_| {
                let class = classes[(splitmix64(&mut state) % classes.len() as u64) as usize];
                let at_write = splitmix64(&mut state) % horizon;
                let arg = splitmix64(&mut state);
                DiskFaultEvent { at_write, class, arg }
            })
            .collect();
        events.sort_by_key(|e| e.at_write);
        events.dedup_by_key(|e| e.at_write);
        DiskFaultPlan { seed, events }
    }

    /// A plan with a single fault — handy for targeted tests.
    pub fn single(class: DiskFaultClass, at_write: u64, arg: u64) -> DiskFaultPlan {
        DiskFaultPlan { seed: 0, events: vec![DiskFaultEvent { at_write, class, arg }] }
    }

    /// The fault scheduled for write index `idx`, if any.
    pub fn for_write(&self, idx: u64) -> Option<DiskFaultEvent> {
        self.events.binary_search_by_key(&idx, |e| e.at_write).ok().map(|i| self.events[i])
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Cursor over a plan's events during one run.
///
/// The simulator drains due events at the top of each cycle; the
/// injector just tracks how far into the (sorted) schedule the run has
/// advanced.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    events: Vec<FaultEvent>,
    next: usize,
}

impl FaultInjector {
    /// Builds an injector over `plan` (events re-sorted defensively so
    /// hand-built plans behave like generated ones).
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        let mut events = plan.events.clone();
        events.sort_by_key(|e| e.at_cycle);
        FaultInjector { events, next: 0 }
    }

    /// Returns every event scheduled at or before `cycle` that has not
    /// fired yet.
    pub fn due(&mut self, cycle: u64) -> Vec<FaultEvent> {
        let start = self.next;
        while self.next < self.events.len() && self.events[self.next].at_cycle <= cycle {
            self.next += 1;
        }
        self.events[start..self.next].to_vec()
    }

    /// True once every scheduled event has fired.
    pub fn exhausted(&self) -> bool {
        self.next >= self.events.len()
    }

    /// Events that have not come due yet (a run ending early never
    /// delivers them; they count as skipped).
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }

    /// Cycle of the next scheduled event, if any — the injector's
    /// wake-up candidate for an event-driven caller.
    pub fn next_due(&self) -> Option<u64> {
        self.events.get(self.next).map(|e| e.at_cycle)
    }
}

/// Options for [`crate::CmpSimulator::run_with`]: which fault plan to
/// apply and how strictly to check the run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Faults to inject, if any.
    pub plan: Option<FaultPlan>,
    /// Run the invariant auditor after every rewind and commit.
    pub audit: bool,
    /// Track committed stores and compare the final memory image
    /// against a sequential replay of the program.
    pub oracle: bool,
    /// Panic on the first audit failure (the default: tests fail loud).
    /// When false the run aborts cleanly and failures are reported in
    /// [`crate::report::SimReport::audit_failures`].
    pub panic_on_audit_failure: bool,
    /// Test-only sabotage: skip the speculative-L2 cleanup on rewind,
    /// to prove the auditor catches a broken recovery path.
    pub sabotage_rewind: bool,
    /// Skip runs of provably event-free cycles instead of stepping
    /// through them one by one. Cycle-exact — every report field is
    /// identical either way (see `tests/fastforward_equivalence.rs`) —
    /// so this is on by default; the switch exists for that equivalence
    /// test and for debugging.
    pub fast_forward: bool,
    /// Forward-progress watchdog threshold: an epoch that rewinds this
    /// many consecutive times without *any* epoch committing in between
    /// is flagged as a violation storm and recorded in
    /// [`crate::report::SimReport::livelocks`]. Detection is passive —
    /// it never changes timing — and `0` disables it entirely.
    pub livelock_threshold: u64,
    /// When a storm is flagged, degrade the storming epoch to serial
    /// execution: it stalls (as Sync) until it holds the homefree token
    /// and then runs non-speculatively, which forecloses further
    /// violations — the way a real TLS runtime would bound retries.
    /// Off by default because it *does* change timing.
    pub progress_fallback: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            plan: None,
            audit: true,
            oracle: true,
            panic_on_audit_failure: true,
            sabotage_rewind: false,
            fast_forward: true,
            livelock_threshold: 64,
            progress_fallback: false,
        }
    }
}

impl RunOptions {
    /// Options for a chaos sweep: faults in, audits and oracle on, and
    /// failures collected in the report instead of panicking.
    pub fn chaos(plan: FaultPlan) -> RunOptions {
        RunOptions { plan: Some(plan), panic_on_audit_failure: false, ..RunOptions::default() }
    }

    /// The options [`crate::CmpSimulator::run`] uses: the invariant
    /// auditor and the differential oracle are on in debug builds and
    /// **off in release builds**, so the optimized hot path performs no
    /// auditing work (asserted by `release_defaults_do_no_auditing`).
    pub fn checked_default() -> RunOptions {
        let checked = cfg!(debug_assertions);
        RunOptions { audit: checked, oracle: checked, ..RunOptions::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = FaultPlan::generate(7, &ALL_FAULT_CLASSES, 10_000, 16);
        let b = FaultPlan::generate(7, &ALL_FAULT_CLASSES, 10_000, 16);
        let c = FaultPlan::generate(8, &ALL_FAULT_CLASSES, 10_000, 16);
        assert_eq!(a, b);
        assert_ne!(a, c, "nearby seeds should produce different plans");
    }

    #[test]
    fn events_are_sorted_and_inside_the_horizon() {
        let p = FaultPlan::generate(3, &ALL_FAULT_CLASSES, 5_000, 32);
        assert_eq!(p.len(), 32);
        assert!(p.events.windows(2).all(|w| w[0].at_cycle <= w[1].at_cycle));
        assert!(p.events.iter().all(|e| e.at_cycle >= 1 && e.at_cycle < 5_000));
        let seeks_target =
            |c: FaultClass| matches!(c, FaultClass::ReorderedDrain | FaultClass::DroppedEntry);
        assert!(p
            .events
            .iter()
            .filter(|e| !seeks_target(e.class))
            .all(|e| (100..500).contains(&e.duration)));
        // Target-seeking saboteurs stay armed to the horizon.
        assert!(p.events.iter().filter(|e| seeks_target(e.class)).all(|e| e.duration == 5_000));
        assert!(p.events.iter().any(|e| seeks_target(e.class)), "grid should draw a saboteur");
    }

    #[test]
    fn single_class_plans_only_draw_that_class() {
        let p = FaultPlan::generate(11, &[FaultClass::DelayedToken], 1_000, 8);
        assert!(p.events.iter().all(|e| e.class == FaultClass::DelayedToken));
    }

    #[test]
    fn injector_drains_in_order() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent { at_cycle: 10, class: FaultClass::ForcedMerge, duration: 0 },
                FaultEvent { at_cycle: 10, class: FaultClass::DelayedToken, duration: 50 },
                FaultEvent { at_cycle: 40, class: FaultClass::LatchHazard, duration: 0 },
            ],
        };
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.due(5).is_empty());
        assert_eq!(inj.due(10).len(), 2);
        assert!(inj.due(20).is_empty());
        assert!(!inj.exhausted());
        assert_eq!(inj.due(1_000).len(), 1);
        assert!(inj.exhausted());
    }

    #[test]
    fn injector_reports_next_due_cycle() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent { at_cycle: 10, class: FaultClass::ForcedMerge, duration: 0 },
                FaultEvent { at_cycle: 40, class: FaultClass::LatchHazard, duration: 0 },
            ],
        };
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.next_due(), Some(10));
        let _ = inj.due(10);
        assert_eq!(inj.next_due(), Some(40));
        let _ = inj.due(100);
        assert_eq!(inj.next_due(), None);
    }

    /// The release-build guarantee behind the fast path: the defaults
    /// `CmpSimulator::run` uses must not enable the auditor or the
    /// oracle outside debug builds, so release runs pay nothing for the
    /// chaos-harness checks.
    #[test]
    fn release_defaults_do_no_auditing() {
        let opts = RunOptions::checked_default();
        if cfg!(debug_assertions) {
            assert!(opts.audit && opts.oracle, "debug builds keep the checks on");
        } else {
            assert!(!opts.audit, "release hot path must not run the auditor");
            assert!(!opts.oracle, "release hot path must not track the oracle");
        }
        assert!(opts.fast_forward, "the fast path is the default");
    }

    #[test]
    fn plan_round_trips_through_json() {
        let p = FaultPlan::generate(5, &ALL_FAULT_CLASSES, 2_000, 6);
        let s = serde_json::to_string(&p).expect("serialize");
        let q: FaultPlan = serde_json::from_str(&s).expect("deserialize");
        assert_eq!(p, q);
    }

    #[test]
    fn disk_plan_generation_is_deterministic_per_seed() {
        let a = DiskFaultPlan::generate(7, &ALL_DISK_FAULT_CLASSES, 500, 16);
        let b = DiskFaultPlan::generate(7, &ALL_DISK_FAULT_CLASSES, 500, 16);
        let c = DiskFaultPlan::generate(8, &ALL_DISK_FAULT_CLASSES, 500, 16);
        assert_eq!(a, b);
        assert_ne!(a, c, "nearby seeds should produce different plans");
    }

    #[test]
    fn disk_plan_indexes_at_most_one_fault_per_write() {
        let p = DiskFaultPlan::generate(3, &ALL_DISK_FAULT_CLASSES, 40, 64);
        assert!(p.events.windows(2).all(|w| w[0].at_write < w[1].at_write));
        assert!(p.events.iter().all(|e| e.at_write < 40));
        for e in &p.events {
            assert_eq!(p.for_write(e.at_write), Some(*e));
        }
        assert_eq!(p.for_write(40), None);
    }

    #[test]
    fn disk_plan_round_trips_through_json() {
        let p = DiskFaultPlan::generate(5, &[DiskFaultClass::TornWrite], 100, 6);
        let s = serde_json::to_string(&p).expect("serialize");
        let q: DiskFaultPlan = serde_json::from_str(&s).expect("deserialize");
        assert_eq!(p, q);
        assert!(p.events.iter().all(|e| e.class == DiskFaultClass::TornWrite));
    }
}
