//! The cycle-stepped chip-multiprocessor simulator.
//!
//! Each simulated cycle proceeds in four phases:
//!
//! 1. **Execute** — every CPU retires completed instructions and
//!    dispatches new ones from its epoch's trace. Loads and stores flow
//!    through the private L1 into the shared [`SpecL2`], which records
//!    speculative state and reports dependence readers; the phase also
//!    classifies the cycle into a [`CycleCategory`] bucket of the epoch's
//!    sub-thread ledger.
//! 2. **Violations** — read-after-write and overflow violations detected
//!    during execution are applied: the violated thread rewinds to the
//!    reported sub-thread, and logically-later threads receive secondary
//!    violations routed through their [`StartTable`]s (Figure 4b).
//! 3. **Commit** — the oldest epoch, once finished and drained, commits
//!    its speculative state and passes the homefree token.
//! 4. **Schedule** — free CPUs pick up the next epochs of the current
//!    region; a region barrier separates regions.

use crate::accounting::{Breakdown, CycleCategory, FaultStats, SubThreadLedger};
use crate::chaos::{FaultClass, FaultEvent, FaultInjector, RunOptions};
use crate::config::{
    CmpConfig, ExhaustionPolicy, MemoryModel, SecondaryPolicy, MAX_CPUS, MAX_SUBTHREADS,
};
use crate::l2spec::{AccessCtx, L2Outcome, PendingViolation, SpecL2, ViolationKind};
use crate::latch::{LatchError, LatchTable};
use crate::membuf::{BufferedStore, ForwardOutcome, HbAuditor, StoreBuffer};
use crate::predictor::DependencePredictor;
use crate::profile::{DependenceProfiler, ExposedLoadTable};
use crate::report::{LivelockReport, ProtocolError, SimReport, ViolationCounts};
use crate::vpredict::{value_model, ValuePredictor};
use std::collections::{HashMap, VecDeque};
use tls_cache::{CacheStats, L1Data, MshrFile};
use tls_cpu::{Core, CoreStats, HeadStall, MemKind};
use tls_obs::{CycleClass, Event, EventKind, Observer};
use tls_trace::{Addr, LatchId, OpKind, Pc, ProgramView, RegionView, TraceOp, TraceProgram};

/// Maps an accounting category onto the observer's dispatch-time cycle
/// class. `Failed` never appears at dispatch time — rewinds reclassify
/// retroactively, which the observer learns via `note_failed`.
fn cycle_class(cat: CycleCategory) -> CycleClass {
    match cat {
        CycleCategory::Busy | CycleCategory::Failed => CycleClass::Busy,
        CycleCategory::CacheMiss => CycleClass::CacheMiss,
        CycleCategory::Latch => CycleClass::Latch,
        CycleCategory::Sync => CycleClass::Sync,
        // The observer's sample schema predates the TSO model; a drain
        // stall is a commit-ordering wait, so it reads as Sync there
        // (the full-resolution category still lands in the breakdown).
        CycleCategory::DrainStall => CycleClass::Sync,
        CycleCategory::Idle => CycleClass::Idle,
    }
}

/// Emits one event into the attached observer, if any. A macro rather
/// than a method so call sites holding disjoint field borrows (the
/// core, the current run) still compile; the disabled path is the one
/// `Option` discriminant test.
macro_rules! emit {
    ($self:ident, $kind:expr, $cpu:expr, $epoch:expr, $sub:expr, $a:expr, $b:expr) => {
        if let Some(o) = $self.obs.as_deref_mut() {
            let cycle = $self.cycle;
            o.events.push(Event {
                cycle,
                a: $a,
                b: $b,
                epoch: $epoch,
                kind: $kind,
                cpu: $cpu as u8,
                sub: $sub,
            });
        }
    };
}

/// Sentinel for an absent [`StartTable`] cell.
const NO_ENTRY: u8 = u8::MAX;

/// One thread's record of when other threads' sub-threads began,
/// relative to its own sub-threads (paper §2.2).
///
/// "When a sub-thread begins, it sends a `subthreadstart` message to all
/// logically-later threads. On receipt ... each thread records the
/// identifier of its currently-executing sub-thread in the table-entry for
/// the sub-thread that sent the message."
///
/// Stored as a flat `MAX_CPUS × MAX_SUBTHREADS` byte grid (64 bytes, no
/// hashing): the table is consulted on every secondary violation and
/// written on every sub-thread broadcast, and hashing each `(cpu, sub)`
/// key cost more than the lookup itself.
#[derive(Debug, Clone)]
pub struct StartTable {
    entries: [[u8; MAX_SUBTHREADS]; MAX_CPUS],
}

impl Default for StartTable {
    fn default() -> Self {
        StartTable { entries: [[NO_ENTRY; MAX_SUBTHREADS]; MAX_CPUS] }
    }
}

impl StartTable {
    /// An empty table (a fresh epoch).
    pub fn new() -> Self {
        StartTable::default()
    }

    /// Records that `(cpu, sub)` started while this thread was executing
    /// its sub-thread `local_sub`.
    pub fn record(&mut self, cpu: usize, sub: u8, local_sub: u8) {
        debug_assert!(local_sub != NO_ENTRY, "local sub-thread id collides with the sentinel");
        self.entries[cpu][sub as usize] = local_sub;
    }

    /// The sub-thread this thread must rewind to when `(cpu, sub)` is
    /// restarted. A missing entry means this thread began after that
    /// sub-thread did, so *all* of its work is suspect: rewind to 0.
    pub fn restart_point(&self, cpu: usize, sub: u8) -> u8 {
        match self.entries[cpu][sub as usize] {
            NO_ENTRY => 0,
            local => local,
        }
    }

    /// Forgets entries for `cpu` (its epoch committed).
    pub fn forget_cpu(&mut self, cpu: usize) {
        self.entries[cpu] = [NO_ENTRY; MAX_SUBTHREADS];
    }

    /// Remaps keys after `cpu` merged its sub-thread `m` into `m-1`:
    /// entries for `(cpu, m)` fold into `(cpu, m-1)` (keeping the earlier
    /// local restart point — the conservative choice) and higher
    /// sub-thread keys shift down.
    pub fn remap_keys_for(&mut self, cpu: usize, m: u8) {
        debug_assert!(m >= 1, "sub-thread 0 cannot merge downward");
        let m = m as usize;
        let row = &mut self.entries[cpu];
        row[m - 1] = match (row[m - 1], row[m]) {
            (NO_ENTRY, v) | (v, NO_ENTRY) => v,
            (a, b) => a.min(b),
        };
        for s in m..MAX_SUBTHREADS - 1 {
            row[s] = row[s + 1];
        }
        row[MAX_SUBTHREADS - 1] = NO_ENTRY;
    }

    /// Remaps recorded local sub-threads after this thread merged its own
    /// sub-thread `m` into `m-1`.
    pub fn remap_values(&mut self, m: u8) {
        for row in &mut self.entries {
            for local in row {
                if *local != NO_ENTRY && *local >= m {
                    *local -= 1;
                }
            }
        }
    }

    /// All entries `((sender_cpu, sender_sub), local_sub)` — for the
    /// invariant auditor's consistency checks.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, u8), u8)> + '_ {
        self.entries.iter().enumerate().flat_map(|(cpu, row)| {
            row.iter()
                .enumerate()
                .filter(|&(_, &local)| local != NO_ENTRY)
                .map(move |(sub, &local)| ((cpu, sub as u8), local))
        })
    }
}

/// The execution state of one epoch on one CPU.
#[derive(Debug)]
struct EpochRun<'p> {
    /// Global logical order (commit order).
    order: u32,
    ops: &'p [TraceOp],
    /// Next op to dispatch.
    cursor: usize,
    /// Op index where each started sub-thread began; `checkpoints.len()-1`
    /// is the current sub-thread.
    checkpoints: Vec<usize>,
    /// Instructions between sub-thread starts for this epoch.
    spacing: u64,
    ledger: SubThreadLedger,
    start_table: StartTable,
    waiting_latch: bool,
    /// Latches held, with the op index of each acquisition (so a partial
    /// rewind releases only acquisitions made after the rewind point —
    /// escaped critical sections that completed are never reopened).
    held_latches: Vec<(LatchId, usize)>,
    /// Stalled by the dependence predictor this cycle.
    waiting_sync: bool,
    /// Cursor of the last predictor stall already counted.
    last_sync_cursor: Option<usize>,
    /// Cursor reached the end and the core drained; awaiting the token.
    finished: bool,
    /// Differential-oracle write log: `(op cursor, addr, size)` of every
    /// store dispatched and not yet undone by a rewind. Sorted by cursor;
    /// populated when the oracle is enabled, and also when value
    /// prediction is on (the commit-time store counts drive the
    /// synthetic value model).
    stores: Vec<(usize, Addr, u8)>,
    /// Exposed speculative loads tracked for value prediction, sorted by
    /// cursor and truncated on rewind exactly like `stores`. Empty
    /// unless [`crate::VPredictConfig`] is enabled.
    vloads: Vec<VLoad>,
    /// TSO drain mirror of `stores`: `(op cursor, addr, size)` of every
    /// buffered store already retired into the memory system. The
    /// store-flow invariant — `stores` equals `drained` plus the live
    /// buffer contents — is what catches a chaos-dropped buffer entry.
    /// Populated under the same condition as `stores`; always empty
    /// under SC. Not cursor-sorted (a reordered-drain fault permutes it).
    drained: Vec<(usize, Addr, u8)>,
    /// Consecutive rewinds of this epoch with no intervening commit by
    /// *any* epoch (forward-progress watchdog input).
    rewind_streak: u64,
    /// PCs implicated in the current streak's RAW violations
    /// (deduplicated, capped at [`STORM_PC_CAP`]).
    storm_pcs: Vec<u32>,
    /// Packed load/store PCs of the streak's most recent RAW violation
    /// (event payload for [`EventKind::Livelock`]).
    last_raw_pcs: u64,
    /// Index into `Machine::livelocks` once this streak crossed the
    /// threshold, so continued storming updates `storm_len` in place.
    livelock_idx: Option<usize>,
    /// Progress fallback engaged: run serially — stall while speculative
    /// (outside any held critical section) until homefree.
    serialized: bool,
}

/// Bound on per-streak PC collection ([`EpochRun::storm_pcs`]).
const STORM_PC_CAP: usize = 16;

/// One exposed speculative load tracked by the value predictor: where
/// it happened, what was predicted for it, and whether a conflicting
/// store arrived (so the prediction is actually load-bearing and must
/// validate at commit).
#[derive(Debug, Clone, Copy)]
struct VLoad {
    /// Op index of the load within its epoch.
    cursor: usize,
    /// The load's L2 line (violations report lines, not byte addresses).
    line: Addr,
    /// The exact byte address — the value model's key.
    addr: Addr,
    /// The load's PC (commit-time training key).
    pc: Pc,
    /// The predicted value, or `None` when the predictor declined.
    predicted: Option<u64>,
    /// A logically-earlier store hit this line after the load: the RAW
    /// violation was suppressed on the strength of the prediction.
    conflicted: bool,
}

impl<'p> EpochRun<'p> {
    fn new(order: u32, ops: &'p [TraceOp], spacing: u64) -> Self {
        EpochRun {
            order,
            ops,
            cursor: 0,
            checkpoints: vec![0],
            spacing,
            ledger: SubThreadLedger::new(),
            start_table: StartTable::new(),
            waiting_latch: false,
            held_latches: Vec::new(),
            waiting_sync: false,
            last_sync_cursor: None,
            finished: false,
            stores: Vec::new(),
            vloads: Vec::new(),
            drained: Vec::new(),
            rewind_streak: 0,
            storm_pcs: Vec::new(),
            last_raw_pcs: Event::pack_pcs(None, None),
            livelock_idx: None,
            serialized: false,
        }
    }

    fn cur_sub(&self) -> u8 {
        (self.checkpoints.len() - 1) as u8
    }
}

/// The memory side of the machine: everything a load/store touches.
struct MemSystem {
    l1s: Vec<L1Data>,
    l2: SpecL2,
    mshrs: Vec<MshrFile>,
    exposed: Vec<ExposedLoadTable>,
    pending: Vec<PendingViolation>,
    /// Reused L2-outcome buffer: accesses are serviced one at a time, so
    /// a single buffer keeps the victim/reader vectors' capacity across
    /// the whole run instead of allocating per access.
    scratch: L2Outcome,
    /// Track sub-threads in the L1 (the §2.2 extension, off by default).
    l1_subthread_aware: bool,
    /// Whether the most recent access was an exposure-recorded load
    /// (read by the value predictor's tracking hook right after the
    /// dispatch callback returns; accesses are serviced one at a time).
    last_exposed: bool,
}

impl MemSystem {
    /// Services one access; returns its completion cycle. Violations and
    /// overflow events are queued on `pending`.
    fn access(
        &mut self,
        op: &TraceOp,
        ctx: AccessCtx,
        orders: &[Option<u32>],
        start: u64,
        kind: MemKind,
    ) -> u64 {
        let (addr, size) = match op.kind() {
            OpKind::Load { addr, size } | OpKind::Store { addr, size } => (addr, size),
            _ => unreachable!("memory callback on a non-memory op"),
        };
        self.last_exposed = false;
        match kind {
            MemKind::Load => {
                let l1 = self.l1s[ctx.cpu].read_sub(addr, ctx.speculative, ctx.sub);
                if l1.hit {
                    if l1.newly_spec_loaded && self.l2.note_l1_load(addr, size, ctx) {
                        self.exposed[ctx.cpu].record(addr, op.pc());
                        self.last_exposed = true;
                    }
                    return start + 1;
                }
                let mut out = std::mem::take(&mut self.scratch);
                self.l2.read_into(start + 1, addr, size, ctx, &mut out);
                if ctx.speculative && out.exposed {
                    self.exposed[ctx.cpu].record(addr, op.pc());
                    self.last_exposed = true;
                }
                self.queue_overflow(&out.overflow_victims, addr, orders);
                self.l1s[ctx.cpu].fill_sub(addr, ctx.speculative, ctx.sub);
                self.mshrs[ctx.cpu].add(out.completion);
                let completion = out.completion;
                self.scratch = out;
                completion
            }
            MemKind::Store => {
                self.l1s[ctx.cpu].write_sub(addr, ctx.speculative, ctx.sub);
                let mut out = std::mem::take(&mut self.scratch);
                self.l2.write_into(start + 1, addr, size, ctx, &mut out);
                self.queue_overflow(&out.overflow_victims, addr, orders);
                // RAW violations: only logically-later readers.
                let my_order = orders[ctx.cpu].expect("storer is running");
                for &(cpu, sub) in &out.readers {
                    if let Some(o) = orders[cpu] {
                        if o > my_order {
                            self.pending.push(PendingViolation {
                                cpu,
                                sub,
                                order: o,
                                kind: ViolationKind::Raw,
                                line: addr,
                                store_pc: Some(op.pc()),
                            });
                        }
                    }
                }
                self.scratch = out;
                // Aggressive update propagation: other L1 copies of the
                // line are invalidated so later loads re-fetch from the L2.
                for (i, l1) in self.l1s.iter_mut().enumerate() {
                    if i != ctx.cpu {
                        l1.invalidate_line(addr.align_down(l1.params().line_shift()));
                    }
                }
                start + 1
            }
        }
    }

    /// Retires one TSO store-buffer entry into the memory hierarchy —
    /// the store arm of [`MemSystem::access`], replayed at drain time
    /// with the entry's captured context. Dependence readers are judged
    /// against the *current* epoch orders: a violation targets whoever
    /// is logically later at the moment the store becomes visible.
    fn drain_store(&mut self, e: &BufferedStore, cpu: usize, orders: &[Option<u32>], now: u64) {
        let ctx = AccessCtx { cpu, sub: e.sub, speculative: e.speculative };
        self.l1s[cpu].write_sub(e.addr, ctx.speculative, ctx.sub);
        let mut out = std::mem::take(&mut self.scratch);
        self.l2.write_into(now + 1, e.addr, e.size, ctx, &mut out);
        self.queue_overflow(&out.overflow_victims, e.addr, orders);
        let my_order = orders[cpu].expect("draining CPU's epoch is running");
        for &(rcpu, sub) in &out.readers {
            if let Some(o) = orders[rcpu] {
                if o > my_order {
                    self.pending.push(PendingViolation {
                        cpu: rcpu,
                        sub,
                        order: o,
                        kind: ViolationKind::Raw,
                        line: e.addr,
                        store_pc: Some(e.pc),
                    });
                }
            }
        }
        self.scratch = out;
        for (i, l1) in self.l1s.iter_mut().enumerate() {
            if i != cpu {
                l1.invalidate_line(e.addr.align_down(l1.params().line_shift()));
            }
        }
    }

    fn queue_overflow(&mut self, victims: &[(usize, u8)], line: Addr, orders: &[Option<u32>]) {
        for &(cpu, sub) in victims {
            if let Some(order) = orders[cpu] {
                self.pending.push(PendingViolation {
                    cpu,
                    sub,
                    order,
                    kind: ViolationKind::Overflow,
                    line,
                    store_pc: None,
                });
            }
        }
    }
}

/// The chip-multiprocessor simulator.
///
/// Construct once with a [`CmpConfig`]; each [`run`](CmpSimulator::run)
/// simulates one [`TraceProgram`](tls_trace::TraceProgram) from scratch
/// and is deterministic: the same program and configuration always
/// produce the same report.
#[derive(Debug, Clone)]
pub struct CmpSimulator {
    config: CmpConfig,
}

impl CmpSimulator {
    /// A simulator for the given machine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`CmpConfig::validate`]).
    pub fn new(config: CmpConfig) -> Self {
        config.validate();
        CmpSimulator { config }
    }

    /// The machine configuration.
    pub fn config(&self) -> &CmpConfig {
        &self.config
    }

    /// Simulates `program` and returns the report.
    ///
    /// In debug builds (i.e. every test) the invariant auditor and the
    /// sequential differential oracle run alongside the simulation and
    /// panic on any protocol breakage; release builds skip both so the
    /// paper's experiments pay nothing for them.
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds `config.max_cycles` (when nonzero) — the
    /// safety valve for misbehaving workloads — or, in debug builds, if
    /// an invariant audit fails.
    pub fn run(&self, program: &TraceProgram) -> SimReport {
        self.run_with(program, RunOptions::checked_default())
    }

    /// Simulates `program` under explicit chaos/audit options: an
    /// optional seeded [`crate::chaos::FaultPlan`], the invariant
    /// auditor, and the sequential differential oracle.
    ///
    /// # Panics
    ///
    /// Panics on `max_cycles` overrun, and on audit failure when
    /// `opts.panic_on_audit_failure` is set; with it clear, audit
    /// failures abort the run and are reported in
    /// [`SimReport::audit_failures`].
    pub fn run_with(&self, program: &TraceProgram, opts: RunOptions) -> SimReport {
        self.run_observed(program, opts, None)
    }

    /// Simulates `program` with an optional [`Observer`] attached: the
    /// observer's event ring and metrics recorder fill as the run
    /// proceeds, ready for Perfetto export and time-series plotting.
    ///
    /// Observation is strictly passive — the returned report is
    /// byte-identical to an unobserved run's (enforced by
    /// `tests/observation_neutrality.rs`), idle-cycle fast-forward stays
    /// effective (each skipped span is recorded as one synthetic
    /// [`tls_obs::EventKind::IdleSpan`] event), and passing `None` costs
    /// a single predictable branch per hook.
    ///
    /// # Panics
    ///
    /// As [`run_with`](CmpSimulator::run_with).
    pub fn run_observed(
        &self,
        program: &TraceProgram,
        opts: RunOptions,
        obs: Option<&mut Observer>,
    ) -> SimReport {
        self.run_view(&program.view(), opts, obs)
    }

    /// Simulates a borrowed [`ProgramView`] — the entry point every other
    /// `run*` method funnels into. Views cost nothing to build from an
    /// owned program and are also what the harness's memory-mapped trace
    /// store serves, so a multi-gigabyte trace corpus can be simulated
    /// without ever materializing an owned `TraceProgram`.
    ///
    /// # Panics
    ///
    /// As [`run_with`](CmpSimulator::run_with).
    pub fn run_view(
        &self,
        view: &ProgramView<'_>,
        opts: RunOptions,
        obs: Option<&mut Observer>,
    ) -> SimReport {
        Machine::new(&self.config, view, opts, obs).run()
    }
}

/// Scheduling state of one CPU.
///
/// `Running` is kept inline rather than boxed: there are at most
/// [`MAX_CPUS`] slots and `execute_cpu` moves the run in and out every
/// cycle, so the indirection would cost more than the enum's size.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Slot<'p> {
    Free,
    Running(EpochRun<'p>),
}

/// Per-cycle op-examination budget per CPU (latch ops and sub-thread
/// boundaries bypass the core's issue-width accounting, so bound them
/// separately).
const OPS_PER_CYCLE_CAP: usize = 64;

struct Machine<'p> {
    cfg: &'p CmpConfig,
    program: &'p ProgramView<'p>,
    cores: Vec<Core>,
    mem: MemSystem,
    latches: LatchTable,
    slots: Vec<Slot<'p>>,
    latch_retry: Vec<Option<LatchId>>,
    /// Epochs of the current region not yet started, as contiguous op
    /// runs (borrowed straight from the view — owned or memory-mapped).
    region_queue: VecDeque<&'p [TraceOp]>,
    region_index: usize,
    next_order: u32,
    next_commit: u32,
    cycle: u64,
    // --- results ---
    acct: Breakdown,
    violations: ViolationCounts,
    committed: u64,
    subthreads_started: u64,
    subthread_merges: u64,
    profiler: DependenceProfiler,
    predictor: DependencePredictor,
    /// The Prophet value predictor (inert unless `cfg.vpredict.enabled`).
    vpredict: ValuePredictor,
    /// Committed stores per exact byte address — the synthetic value
    /// model's clock (populated only when value prediction is on).
    commit_counts: HashMap<u64, u64>,
    /// Suppressed RAW violations whose predictions validated correct.
    predicted_hits: u64,
    /// Predictions that validated wrong and rewound instead.
    value_mispredicts: u64,
    // --- TSO memory model ---
    /// Per-CPU store buffers; empty under [`MemoryModel::Sc`] (the
    /// one-test `tso` flag every hook branches on).
    membufs: Vec<StoreBuffer>,
    /// Per-CPU cycle before which drains are frozen (stuck-drain fault).
    drain_stuck_until: [u64; MAX_CPUS],
    /// Per-CPU flag: inside a drain-stall episode (the event is emitted
    /// once at episode start, not per stalled cycle).
    drain_episode: [bool; MAX_CPUS],
    /// Commit-serializability auditor (audit runs only).
    hb: HbAuditor,
    /// Stores that entered a store buffer.
    buffered_stores: u64,
    /// Loads satisfied by same-address store-to-load forwarding.
    forwarded_loads: u64,
    /// Buffered stores retired into the memory system.
    store_drains: u64,
    /// Happens-before cycles and store-flow violations detected.
    serializability_breaches: u64,
    // --- chaos harness ---
    opts: RunOptions,
    injector: FaultInjector,
    /// Due events still waiting for an eligible target; each stays armed
    /// until its window (`at_cycle + duration`) closes, then is skipped.
    armed: Vec<FaultEvent>,
    faults: FaultStats,
    protocol_errors: Vec<ProtocolError>,
    audit_failures: Vec<String>,
    /// Violation storms flagged by the forward-progress watchdog.
    livelocks: Vec<LivelockReport>,
    /// An audit failed (non-panicking mode): finish the current step,
    /// then stop.
    audit_aborted: bool,
    /// A latch hazard was injected, so latch-consistency audits and the
    /// unexpected-release check are suspended for the rest of the run.
    latch_hazard_active: bool,
    /// The homefree token is withheld until this cycle (delayed-token
    /// fault).
    commit_block_until: u64,
    /// Restore the victim cache to this capacity at this cycle
    /// (victim-squeeze fault).
    victim_restore: Option<(u64, usize)>,
    /// Cycle category each CPU's epoch recorded in the last step; a quiet
    /// streak repeats it, so fast-forward replays it for skipped cycles.
    last_category: [CycleCategory; MAX_CPUS],
    /// Reused violation/secondary/commit-overflow buffers so stepping
    /// allocates nothing once their capacities warm up.
    pending_scratch: Vec<PendingViolation>,
    later_scratch: Vec<(u32, u8)>,
    overflow_scratch: Vec<(usize, u8)>,
    /// Sequential op-index base of each epoch by logical order, matching
    /// [`TraceProgram::iter_ops`] — the oracle's token space.
    epoch_base: Vec<u64>,
    /// Committed symbolic memory image: byte address → global index of
    /// the last committed store writing it (oracle only).
    image: HashMap<u64, u64>,
    /// Attached observer (event ring + metrics), or `None` for a plain
    /// run. Observation is passive: every hook only reads machine state
    /// and appends to the observer's own buffers.
    obs: Option<&'p mut Observer>,
    /// Last-seen value of the L2's victim-insert counter (observer
    /// bookkeeping; diffed per CPU per cycle to emit spill events).
    victim_inserts_seen: u64,
}

impl<'p> Machine<'p> {
    fn new(
        cfg: &'p CmpConfig,
        program: &'p ProgramView<'p>,
        opts: RunOptions,
        obs: Option<&'p mut Observer>,
    ) -> Self {
        let n = cfg.cpus;
        let injector = opts.plan.as_ref().map(FaultInjector::new).unwrap_or_default();
        let mut epoch_base = Vec::new();
        let mut base = 0u64;
        for region in &program.regions {
            match region {
                RegionView::Sequential(e) => {
                    epoch_base.push(base);
                    base += e.len() as u64;
                }
                RegionView::Parallel(es) => {
                    for e in es {
                        epoch_base.push(base);
                        base += e.len() as u64;
                    }
                }
            }
        }
        Machine {
            cfg,
            program,
            cores: (0..n).map(|_| Core::new(cfg.cpu)).collect(),
            mem: MemSystem {
                l1s: (0..n).map(|_| L1Data::new(cfg.l1)).collect(),
                l2: SpecL2::new(
                    cfg.l2,
                    cfg.mem,
                    cfg.victim_entries,
                    n,
                    cfg.subthreads.contexts,
                    cfg.track_dependences,
                ),
                mshrs: (0..n).map(|_| MshrFile::new(cfg.mem.data_mshrs)).collect(),
                exposed: (0..n)
                    .map(|_| ExposedLoadTable::new(cfg.exposed_load_entries, cfg.l2.line_shift()))
                    .collect(),
                pending: Vec::new(),
                scratch: L2Outcome::default(),
                l1_subthread_aware: cfg.l1_subthread_aware,
                last_exposed: false,
            },
            latches: LatchTable::new(),
            slots: (0..n).map(|_| Slot::Free).collect(),
            latch_retry: vec![None; n],
            region_queue: VecDeque::new(),
            region_index: 0,
            next_order: 0,
            next_commit: 0,
            cycle: 0,
            acct: Breakdown::default(),
            violations: ViolationCounts::default(),
            committed: 0,
            subthreads_started: 0,
            subthread_merges: 0,
            profiler: DependenceProfiler::new(1024),
            predictor: DependencePredictor::new(&cfg.predictor),
            vpredict: ValuePredictor::new(&cfg.vpredict),
            commit_counts: HashMap::new(),
            predicted_hits: 0,
            value_mispredicts: 0,
            membufs: match cfg.memory_model {
                MemoryModel::Sc => Vec::new(),
                MemoryModel::Tso { buffer_entries } => {
                    (0..n).map(|_| StoreBuffer::new(buffer_entries)).collect()
                }
            },
            drain_stuck_until: [0; MAX_CPUS],
            drain_episode: [false; MAX_CPUS],
            hb: HbAuditor::new(),
            buffered_stores: 0,
            forwarded_loads: 0,
            store_drains: 0,
            serializability_breaches: 0,
            opts,
            injector,
            armed: Vec::new(),
            faults: FaultStats::default(),
            protocol_errors: Vec::new(),
            audit_failures: Vec::new(),
            livelocks: Vec::new(),
            audit_aborted: false,
            latch_hazard_active: false,
            commit_block_until: 0,
            victim_restore: None,
            last_category: [CycleCategory::Busy; MAX_CPUS],
            pending_scratch: Vec::new(),
            later_scratch: Vec::new(),
            overflow_scratch: Vec::new(),
            epoch_base,
            image: HashMap::new(),
            obs,
            victim_inserts_seen: 0,
        }
    }

    fn run(mut self) -> SimReport {
        let program_ops = self.program.total_ops() as u64;
        self.schedule();
        while !self.done() {
            let quiet = !self.step();
            self.cycle += 1;
            if self.audit_aborted {
                break;
            }
            if self.cfg.max_cycles > 0 && self.cycle > self.cfg.max_cycles {
                panic!(
                    "simulation of '{}' exceeded {} cycles (region {}, {} committed)",
                    self.program.name, self.cfg.max_cycles, self.region_index, self.committed
                );
            }
            if quiet && self.opts.fast_forward && !self.done() {
                self.fast_forward();
                if self.cfg.max_cycles > 0 && self.cycle > self.cfg.max_cycles {
                    panic!(
                        "simulation of '{}' exceeded {} cycles (region {}, {} committed)",
                        self.program.name, self.cfg.max_cycles, self.region_index, self.committed
                    );
                }
            }
            if self.obs.is_some() {
                self.sample_metrics();
            }
        }
        if self.audit_aborted {
            // Partial run: fold the cycles of still-running epochs into
            // the global accounting so the identity holds even here.
            for s in &mut self.slots {
                if let Slot::Running(r) = std::mem::replace(s, Slot::Free) {
                    self.acct += r.ledger.commit();
                }
            }
        } else {
            self.audit_end();
            self.check_oracle();
        }
        // Faults still armed (or never due) when the run ends were never
        // delivered: count them skipped so applied + skipped == plan len.
        self.faults.skipped += (self.armed.len() + self.injector.remaining()) as u64;
        self.armed.clear();
        self.finish(program_ops)
    }

    fn done(&self) -> bool {
        self.region_index >= self.program.regions.len()
            && self.region_queue.is_empty()
            && self.slots.iter().all(|s| matches!(s, Slot::Free))
    }

    /// One simulated cycle. Returns whether anything *happened*: a fault
    /// touched the machine, a CPU retired/dispatched/advanced, a
    /// violation was pending, an epoch committed, or the scheduler placed
    /// work. A `false` return certifies the machine is quiescent — every
    /// subsequent cycle will be identical until the next timed event — so
    /// the caller may [`fast_forward`](Machine::fast_forward).
    fn step(&mut self) -> bool {
        let mut active = self.apply_due_faults();
        let orders = self.orders_snapshot();
        for cpu in 0..self.cfg.cpus {
            active |= self.execute_cpu(cpu, &orders);
            if self.obs.is_some() {
                self.note_victim_spills(cpu, &orders);
            }
        }
        active |= !self.mem.pending.is_empty();
        self.apply_violations();
        let committed = self.committed;
        self.commit_ready();
        let scheduled = (self.next_order, self.region_index);
        self.schedule();
        active || self.committed != committed || (self.next_order, self.region_index) != scheduled
    }

    /// Emits a victim-spill event when `cpu`'s just-executed accesses
    /// displaced speculative lines into the victim cache (observer
    /// attached only; the L2's monotonic insert counter is diffed so
    /// the protocol engine needs no observer plumbing of its own).
    fn note_victim_spills(&mut self, cpu: usize, orders: &[Option<u32>]) {
        let total = self.mem.l2.victim_inserts();
        let delta = total - self.victim_inserts_seen;
        self.victim_inserts_seen = total;
        if delta > 0 {
            let epoch = orders[cpu].unwrap_or(u32::MAX);
            emit!(self, EventKind::VictimSpill, cpu, epoch, 0, delta, 0);
        }
    }

    /// Takes a due metrics sample (observer attached only): cumulative
    /// per-CPU cycle classes plus point-in-time occupancy gauges.
    fn sample_metrics(&mut self) {
        let Some(o) = self.obs.as_deref_mut() else { return };
        if !o.metrics.due(self.cycle) {
            return;
        }
        let rob: Vec<u64> = self.cores.iter().map(|c| c.rob_occupancy() as u64).collect();
        let spec_lines = self.mem.l2.spec_lines() as u64;
        let victim_lines = self.mem.l2.victim_len() as u64;
        let mshr: u64 = self.mem.mshrs.iter().map(|m| m.outstanding() as u64).sum();
        o.metrics.sample(self.cycle, rob, spec_lines, victim_lines, mshr);
    }

    fn orders_snapshot(&self) -> [Option<u32>; MAX_CPUS] {
        let mut orders = [None; MAX_CPUS];
        for (cpu, s) in self.slots.iter().enumerate() {
            if let Slot::Running(r) = s {
                orders[cpu] = Some(r.order);
            }
        }
        orders
    }

    /// The next cycle at which a quiescent machine can change state: the
    /// earliest of every core's ROB-head completion and fetch-stall
    /// expiry, every MSHR fill, the homefree-token release, and the
    /// chaos injector's next due event. `None` means no timed event is
    /// pending (the machine would spin to `max_cycles`).
    ///
    /// L2 banks, the memory bus, and FU ports are deliberately absent:
    /// they book `max(now, next_free)`, so arriving late at them is
    /// indistinguishable from having waited.
    fn next_event_cycle(&self) -> Option<u64> {
        // The last *stepped* cycle is `self.cycle - 1` (the caller has
        // already advanced the counter). Any event strictly after it —
        // including one at `self.cycle` itself, which forbids skipping —
        // can change the machine's answer.
        let prev = self.cycle - 1;
        let mut next = u64::MAX;
        let mut consider = |at: u64| {
            if at > prev && at < next {
                next = at;
            }
        };
        for core in &self.cores {
            if let Some(at) = core.next_retire_cycle() {
                consider(at);
            }
            consider(core.fetch_resume_cycle());
        }
        for mshr in &self.mem.mshrs {
            if let Some(at) = mshr.next_completion_after(prev) {
                consider(at);
            }
        }
        consider(self.commit_block_until);
        if let Some(at) = self.injector.next_due() {
            consider(at);
        }
        if let Some((at, _)) = self.victim_restore {
            consider(at);
        }
        (next != u64::MAX).then_some(next)
    }

    /// Jumps over cycles in which provably nothing can happen.
    ///
    /// Called only after a quiescent [`step`](Machine::step): no CPU
    /// could retire, dispatch, or move its cursor, no violation was
    /// pending, and neither commit nor schedule had work. Every input
    /// that could change that answer is time-gated and enumerated by
    /// [`next_event_cycle`](Machine::next_event_cycle), so the cycles in
    /// between are byte-for-byte repeats of the one just simulated: each
    /// CPU re-records the same category, and nothing else moves. They are
    /// accounted in bulk and skipped.
    fn fast_forward(&mut self) {
        // Armed faults probe for an eligible target every cycle — their
        // eligibility is state- not time-gated, so never skip past them.
        // A non-empty store buffer drains one entry per stalled cycle,
        // so those cycles are not repeats either.
        if !self.armed.is_empty()
            || !self.mem.pending.is_empty()
            || self.membufs.iter().any(|b| !b.is_empty())
        {
            return;
        }
        let Some(target) = self.next_event_cycle() else { return };
        // The overrun panic must fire at the same cycle count it would
        // have without fast-forward (its message carries no cycle value,
        // and a quiet streak changes no other reported state).
        let target =
            if self.cfg.max_cycles > 0 { target.min(self.cfg.max_cycles + 1) } else { target };
        if target <= self.cycle {
            return;
        }
        let skipped = target - self.cycle;
        for cpu in 0..self.cfg.cpus {
            let category = match &mut self.slots[cpu] {
                Slot::Free => {
                    self.acct.add(CycleCategory::Idle, skipped);
                    CycleCategory::Idle
                }
                Slot::Running(r) => {
                    let c = self.last_category[cpu];
                    r.ledger.record_n(c, skipped);
                    c
                }
            };
            if let Some(o) = self.obs.as_deref_mut() {
                o.metrics.tick_n(cpu, cycle_class(category), skipped);
            }
        }
        // One synthetic record keeps the timeline truthful across the
        // skip: every CPU repeated its category for [cycle, target).
        emit!(self, EventKind::IdleSpan, Event::NO_CPU, u32::MAX, 0, target, 0);
        self.cycle = target;
    }

    /// Chaos phase (cycle start): expire timed faults and apply every
    /// event the plan schedules at or before this cycle. Returns whether
    /// anything touched the machine (fast-forward must not skip it).
    fn apply_due_faults(&mut self) -> bool {
        let mut active = false;
        if let Some((at, cap)) = self.victim_restore {
            if self.cycle >= at {
                self.victim_restore = None;
                let displaced = self.mem.l2.set_victim_capacity(cap);
                debug_assert!(displaced.is_empty(), "growing the victim cache displaces nothing");
                active = true;
            }
        }
        if !self.injector.exhausted() {
            let before = self.armed.len();
            self.armed.extend(self.injector.due(self.cycle));
            active |= self.armed.len() != before;
        }
        if self.armed.is_empty() {
            return active;
        }
        // Each armed fault fires at the first cycle in its window with an
        // eligible target; a window that closes without one is skipped.
        let mut still_armed = Vec::new();
        for ev in std::mem::take(&mut self.armed) {
            if self.apply_fault(ev) {
                self.faults.record(ev.class);
                active = true;
            } else if self.cycle >= ev.at_cycle + ev.duration.max(1) {
                self.faults.skipped += 1;
                active = true;
            } else {
                still_armed.push(ev);
            }
        }
        self.armed = still_armed;
        active
    }

    /// Attempts one fault; returns whether it found a target and applied.
    fn apply_fault(&mut self, ev: FaultEvent) -> bool {
        match ev.class {
            FaultClass::SpuriousPrimary => self.inject_violation(false),
            FaultClass::SpuriousSecondary => self.inject_violation(true),
            FaultClass::VictimSqueeze => {
                if self.victim_restore.is_some() {
                    false // a squeeze is already in flight
                } else {
                    let cap = self.mem.l2.victim_capacity();
                    self.victim_restore = Some((self.cycle + ev.duration.max(1), cap));
                    let orders = self.orders_snapshot();
                    let victims = self.mem.l2.set_victim_capacity(0);
                    self.mem.queue_overflow(&victims, Addr(0), &orders);
                    true
                }
            }
            FaultClass::ForcedMerge => self.force_merge(),
            FaultClass::DelayedToken => {
                self.commit_block_until =
                    self.commit_block_until.max(self.cycle + ev.duration.max(1));
                true
            }
            FaultClass::LatchHazard => match self.latches.held().first() {
                Some(&latch) => {
                    // Latch audits are best-effort from here on: the
                    // owner's bookkeeping is deliberately desynchronized.
                    self.latch_hazard_active = true;
                    self.latches.force_release(latch);
                    true
                }
                None => false,
            },
            // Store-buffer chaos: every class needs a TSO machine with
            // at least one buffered store — on an SC machine (or with
            // every buffer drained) the event stays armed until its
            // window closes and is counted skipped.
            FaultClass::StuckDrain => {
                match (0..self.membufs.len()).find(|&c| !self.membufs[c].is_empty()) {
                    Some(cpu) => {
                        self.drain_stuck_until[cpu] =
                            self.drain_stuck_until[cpu].max(self.cycle + ev.duration.max(1));
                        true
                    }
                    None => false,
                }
            }
            FaultClass::ReorderedDrain => self.membufs.iter_mut().any(|b| b.swap_oldest_pair()),
            // Silently lose the oldest buffered store of the first CPU
            // that has one: the machine must *not* survive this — the
            // commit-time store-flow audit reports the hole.
            FaultClass::DroppedEntry => self.membufs.iter_mut().any(|b| b.drop_oldest().is_some()),
        }
    }

    /// Queues a spurious violation. `full_restart` picks the youngest
    /// speculative epoch and rewinds it to sub-thread 0 (the worst case);
    /// otherwise the oldest speculative epoch rewinds to its current
    /// sub-thread, which also drives secondary violations through every
    /// later thread's start table.
    fn inject_violation(&mut self, full_restart: bool) -> bool {
        let candidates = self.slots.iter().filter_map(|s| match s {
            Slot::Running(r) if r.order > self.next_commit => Some((r.order, r.cur_sub())),
            _ => None,
        });
        let target = if full_restart {
            candidates.max_by_key(|&(order, _)| order)
        } else {
            candidates.min_by_key(|&(order, _)| order)
        };
        let Some((order, cur_sub)) = target else { return false };
        let Some(cpu) = self.cpu_running(order) else { return false };
        let sub = if full_restart { 0 } else { cur_sub };
        self.mem.pending.push(PendingViolation {
            cpu,
            sub,
            order,
            kind: ViolationKind::Injected,
            line: Addr(0),
            store_pc: None,
        });
        true
    }

    /// Forces a sub-thread context merge on the first speculative epoch
    /// that has one to give — as if its context supply were exhausted.
    fn force_merge(&mut self) -> bool {
        for cpu in 0..self.cfg.cpus {
            let mut run = match std::mem::replace(&mut self.slots[cpu], Slot::Free) {
                Slot::Running(r) => r,
                Slot::Free => continue,
            };
            let eligible = run.order > self.next_commit && run.checkpoints.len() >= 2;
            if eligible {
                Self::merge_one_context(
                    &mut self.mem,
                    &mut self.slots,
                    &mut self.membufs,
                    &mut self.subthread_merges,
                    cpu,
                    &mut run,
                );
                emit!(self, EventKind::SubThreadMerge, cpu, run.order, run.cur_sub(), 0, 0);
            }
            self.slots[cpu] = Slot::Running(run);
            if eligible {
                return true;
            }
        }
        false
    }

    /// Recycles one sub-thread context of `cpu`'s running epoch (taken
    /// out of its slot) by merging the adjacent checkpoint pair with the
    /// smallest combined span. Shared by the Merge exhaustion policy and
    /// the chaos harness's forced-merge fault. Takes the disjoint pieces
    /// of the machine it needs so callers may hold other borrows.
    fn merge_one_context(
        mem: &mut MemSystem,
        slots: &mut [Slot<'p>],
        membufs: &mut [StoreBuffer],
        subthread_merges: &mut u64,
        cpu: usize,
        run: &mut EpochRun<'p>,
    ) {
        let m = (1..run.checkpoints.len())
            .min_by_key(|&k| {
                let end = run.checkpoints.get(k + 1).copied().unwrap_or(run.cursor);
                end - run.checkpoints[k - 1]
            })
            .expect("at least two checkpoints");
        run.checkpoints.remove(m);
        run.ledger.merge_bucket(m);
        run.start_table.remap_values(m as u8);
        mem.l2.merge_subthread(cpu, m as u8);
        for s in slots.iter_mut() {
            if let Slot::Running(o) = s {
                o.start_table.remap_keys_for(cpu, m as u8);
            }
        }
        for v in &mut mem.pending {
            if v.cpu == cpu && v.sub >= m as u8 {
                v.sub = (v.sub - 1).max(m as u8 - 1);
            }
        }
        // TSO: buffered (not yet drained) stores carry the context id
        // they will replay under; remap them with everything else.
        if let Some(buf) = membufs.get_mut(cpu) {
            buf.remap_merged_sub(m as u8);
        }
        *subthread_merges += 1;
    }

    /// Records a recoverable protocol error; an unexpected one (no latch
    /// hazard was injected) is also an invariant-audit failure.
    fn latch_release_error(&mut self, e: LatchError) {
        let message = e.to_string();
        if self.opts.audit && !self.latch_hazard_active {
            self.audit_fail(format!("unexpected latch protocol error: {message}"));
        }
        self.faults.protocol_errors += 1;
        if self.protocol_errors.len() < 32 {
            self.protocol_errors.push(ProtocolError { cycle: self.cycle, message });
        }
    }

    /// TSO store-flow identity: every store the epoch logged must be
    /// accounted for — drained into the memory system or still sitting
    /// in the CPU's buffer. Compared as op-cursor multisets (a
    /// reordered drain permutes the mirror, which is legal; a *missing*
    /// cursor is a lost store). Returns the first imbalance found.
    fn store_flow_breach(
        stores: &[(usize, Addr, u8)],
        drained: &[(usize, Addr, u8)],
        buf: &StoreBuffer,
    ) -> Option<String> {
        let mut seen: Vec<usize> =
            drained.iter().map(|&(c, _, _)| c).chain(buf.iter().map(|e| e.cursor)).collect();
        seen.sort_unstable();
        let logged: Vec<usize> = stores.iter().map(|&(c, _, _)| c).collect();
        if logged == seen {
            return None;
        }
        let missing = logged.iter().find(|c| !seen.contains(c));
        Some(format!(
            "store-flow violation: epoch logged {} stores but {} drained and {} are buffered{}",
            logged.len(),
            drained.len(),
            buf.len(),
            missing.map(|c| format!(" (first lost store: op cursor {c})")).unwrap_or_default()
        ))
    }

    /// Records a serializability breach found by the commit-time
    /// auditor: a structured, recoverable [`ProtocolError`] plus an
    /// observer event — never a panic, even in audit runs, so the
    /// chaos grid proves *detection* rather than a crash.
    fn serializability_breach(&mut self, cpu: usize, epoch: u32, message: String) {
        self.serializability_breaches += 1;
        emit!(
            self,
            EventKind::SerializabilityBreach,
            cpu,
            epoch,
            0,
            0,
            self.serializability_breaches
        );
        self.faults.protocol_errors += 1;
        if self.protocol_errors.len() < 32 {
            self.protocol_errors.push(ProtocolError { cycle: self.cycle, message });
        }
    }

    /// Registers an invariant-audit failure: panic when configured to
    /// (the test default), otherwise collect it and stop the run after
    /// the current step completes.
    fn audit_fail(&mut self, msg: String) {
        if self.opts.panic_on_audit_failure {
            panic!("invariant audit failed at cycle {}: {msg}", self.cycle);
        }
        if self.audit_failures.len() < 32 {
            self.audit_failures.push(format!("cycle {}: {msg}", self.cycle));
        }
        self.audit_aborted = true;
    }

    /// Audits run after every rewind: the rewound sub-threads must leave
    /// no speculative residue in the L2, and the structural invariants of
    /// every running epoch must hold.
    fn audit_after_rewind(&mut self, cpu: usize, sub: u8) {
        if !self.opts.audit {
            return;
        }
        if self.cfg.track_dependences {
            for msg in self.mem.l2.audit_subthread_residue(cpu, sub) {
                self.audit_fail(format!("post-rewind: {msg}"));
            }
        }
        self.audit_slots();
    }

    /// Audits run as each epoch commits: commits happen in logical order
    /// and the committing CPU leaves nothing speculative behind.
    fn audit_after_commit(&mut self, cpu: usize, order: u32) {
        if !self.opts.audit {
            return;
        }
        if order != self.next_commit {
            self.audit_fail(format!(
                "out-of-order commit: epoch {order} committed while the token was at {}",
                self.next_commit
            ));
        }
        if self.cfg.track_dependences {
            for msg in self.mem.l2.audit_cpu_clear(cpu) {
                self.audit_fail(format!("post-commit: {msg}"));
            }
        }
        self.audit_slots();
    }

    /// Structural invariants of every running epoch: strictly increasing
    /// checkpoints, ledger buckets in lockstep with checkpoints, sane
    /// start-table entries, and latch bookkeeping consistent with the
    /// global table.
    fn audit_slots(&mut self) {
        let mut failures: Vec<String> = Vec::new();
        let contexts = self.cfg.subthreads.contexts;
        for (cpu, s) in self.slots.iter().enumerate() {
            let Slot::Running(run) = s else { continue };
            if !run.checkpoints.windows(2).all(|w| w[0] < w[1]) {
                failures.push(format!(
                    "cpu {cpu}: checkpoints not strictly increasing: {:?}",
                    run.checkpoints
                ));
            }
            if run.checkpoints.len() > contexts.max(1) as usize {
                failures.push(format!(
                    "cpu {cpu}: {} live sub-threads exceed {contexts} contexts",
                    run.checkpoints.len()
                ));
            }
            if run.ledger.current() + 1 != run.checkpoints.len() {
                failures.push(format!(
                    "cpu {cpu}: {} ledger buckets for {} checkpoints",
                    run.ledger.current() + 1,
                    run.checkpoints.len()
                ));
            }
            for ((sender, sub), local) in run.start_table.iter() {
                // `local` may legitimately exceed the *current* sub-thread
                // after a rewind (restart_point guards with `target > cur`),
                // but every recorded value must be a valid context id from
                // a real, different CPU.
                if sender == cpu || sender >= self.cfg.cpus || sub >= contexts || local >= contexts
                {
                    failures.push(format!(
                        "cpu {cpu}: corrupt start-table entry ({sender},{sub})->{local}"
                    ));
                }
            }
            if !self.latch_hazard_active {
                for &(latch, _) in &run.held_latches {
                    if self.latches.owner(latch) != Some(cpu) {
                        failures.push(format!(
                            "cpu {cpu}: held latch {latch:?} is not owned in the latch table"
                        ));
                    }
                }
            }
        }
        for f in failures {
            self.audit_fail(f);
        }
    }

    /// End-of-run audit: with every epoch committed there must be no
    /// speculative metadata or versions left anywhere in the hierarchy.
    fn audit_end(&mut self) {
        if !self.opts.audit || !self.cfg.track_dependences {
            return;
        }
        for msg in self.mem.l2.audit_quiescent() {
            self.audit_fail(format!("end-of-run: {msg}"));
        }
    }

    /// Differential oracle: replay the program sequentially as a symbolic
    /// last-writer image and compare with what the speculative machine
    /// committed. The simulator models no data values, so two runs agree
    /// exactly when every byte's last writer (in logical order) agrees.
    fn check_oracle(&mut self) {
        if !self.opts.oracle {
            return;
        }
        let mut expected: HashMap<u64, u64> = HashMap::new();
        for (i, op) in self.program.iter_ops().enumerate() {
            if let OpKind::Store { addr, size } = op.kind() {
                for b in 0..size as u64 {
                    expected.insert(addr.0 + b, i as u64);
                }
            }
        }
        if expected != self.image {
            let mut diffs: Vec<u64> = expected
                .keys()
                .chain(self.image.keys())
                .filter(|a| expected.get(*a) != self.image.get(*a))
                .copied()
                .collect();
            diffs.sort_unstable();
            diffs.dedup();
            let shown: Vec<String> = diffs.iter().take(4).map(|a| format!("{a:#x}")).collect();
            self.audit_fail(format!(
                "oracle divergence: committed image disagrees with the sequential replay \
                 at {} bytes (first: {shown:?})",
                diffs.len()
            ));
        }
    }

    /// One CPU's execute phase. Returns whether the epoch made progress
    /// — retired, dispatched, moved its cursor, started or merged a
    /// sub-thread, finished, or hit a latch error. A no-progress cycle
    /// recomputes exactly the state it inherited, which is what licenses
    /// fast-forwarding streaks of them.
    fn execute_cpu(&mut self, cpu: usize, orders: &[Option<u32>]) -> bool {
        let mut run = match std::mem::replace(&mut self.slots[cpu], Slot::Free) {
            Slot::Free => {
                self.acct.add(CycleCategory::Idle, 1);
                if let Some(o) = self.obs.as_deref_mut() {
                    o.metrics.tick(cpu, CycleClass::Idle);
                }
                return false;
            }
            Slot::Running(r) => r,
        };
        let cursor_in = run.cursor;
        let checkpoints_in = run.checkpoints.len();
        let finished_in = run.finished;
        let started_in = self.subthreads_started;
        let merges_in = self.subthread_merges;
        let core = &mut self.cores[cpu];
        core.begin_cycle(self.cycle);
        let retired = core.retire();
        let speculative = run.order > self.next_commit;
        let mut dispatched = 0usize;
        let mut examined = 0usize;
        let mut latch_errors: Vec<LatchError> = Vec::new();
        run.waiting_latch = false;
        run.waiting_sync = false;
        // TSO bookkeeping for this cycle. `drain_stall` carries the
        // cause code when the CPU hit an explicit ordering point (1 =
        // full buffer, 2 = forwarding conflict, 3 = ordering-point
        // flush); the write log mirrors additionally feed the
        // store-flow audit whenever auditing is armed.
        let tso = !self.membufs.is_empty();
        let log_stores = self.opts.oracle || self.cfg.vpredict.enabled || (self.opts.audit && tso);
        let mut drain_stall: Option<u64> = None;

        // Retry a latch we blocked on last cycle.
        if let Some(latch) = self.latch_retry[cpu] {
            if self.latches.try_acquire(cpu, latch) {
                self.latch_retry[cpu] = None;
                run.held_latches.push((latch, run.cursor));
                run.cursor += 1;
            } else {
                run.waiting_latch = true;
            }
        }

        while !run.waiting_latch && run.cursor < run.ops.len() && examined < OPS_PER_CYCLE_CAP {
            examined += 1;
            // Progress fallback: a serialized (livelock-degraded) epoch
            // dispatches nothing while speculative — it waits, as Sync,
            // for the homefree token, then runs non-speculatively so no
            // further violation can touch it. Inside an escaped critical
            // section it keeps running: stalling while holding a latch an
            // older epoch needs would deadlock the machine.
            if run.serialized && speculative && run.held_latches.is_empty() {
                run.waiting_sync = true;
                break;
            }
            // Sub-thread boundary: checkpoint and broadcast.
            let since = (run.cursor - *run.checkpoints.last().expect("nonempty")) as u64;
            let contexts = self.cfg.subthreads.contexts;
            // Checkpoints are never placed inside an escaped critical
            // section: escaped operations are not rolled back, so a
            // rewind target between a latch acquire and its release
            // would replay an unbalanced half of the section. The
            // boundary is simply deferred a few instructions until the
            // latches are released.
            let may_checkpoint = run.held_latches.is_empty();
            if speculative
                && may_checkpoint
                && since >= run.spacing
                && contexts >= 2
                && (run.checkpoints.len() as u8) == contexts
                && self.cfg.subthreads.exhaustion == ExhaustionPolicy::Merge
            {
                // Recycle a context: merge the adjacent checkpoint pair
                // with the smallest combined span.
                Self::merge_one_context(
                    &mut self.mem,
                    &mut self.slots,
                    &mut self.membufs,
                    &mut self.subthread_merges,
                    cpu,
                    &mut run,
                );
                emit!(self, EventKind::SubThreadMerge, cpu, run.order, run.cur_sub(), 0, 0);
            }
            if speculative
                && may_checkpoint
                && since >= run.spacing
                && (run.checkpoints.len() as u8) < self.cfg.subthreads.contexts
            {
                run.checkpoints.push(run.cursor);
                run.ledger.push_subthread();
                self.subthreads_started += 1;
                let new_sub = run.cur_sub();
                emit!(
                    self,
                    EventKind::SubThreadStart,
                    cpu,
                    run.order,
                    new_sub,
                    run.cursor as u64,
                    0
                );
                for (other, order) in orders.iter().enumerate() {
                    if other != cpu && order.is_some_and(|o| o > run.order) {
                        if let Slot::Running(o) = &mut self.slots[other] {
                            let local = o.cur_sub();
                            o.start_table.record(cpu, new_sub, local);
                        }
                    }
                }
                continue;
            }
            let op = &run.ops[run.cursor];
            match op.kind() {
                OpKind::LatchAcquire(latch) => {
                    // TSO ordering point: older stores must be visible
                    // before the critical section opens, so the buffer
                    // drains fully before the acquire is attempted.
                    if tso && !self.membufs[cpu].is_empty() {
                        drain_stall = Some(3);
                        break;
                    }
                    if self.latches.try_acquire(cpu, latch) {
                        run.held_latches.push((latch, run.cursor));
                        run.cursor += 1;
                    } else {
                        self.latch_retry[cpu] = Some(latch);
                        run.waiting_latch = true;
                        emit!(
                            self,
                            EventKind::LatchStall,
                            cpu,
                            run.order,
                            run.cur_sub(),
                            latch.0 as u64,
                            0
                        );
                    }
                }
                OpKind::LatchRelease(latch) => {
                    if let Err(e) = self.latches.release(cpu, latch) {
                        latch_errors.push(e);
                    }
                    if let Some(i) = run.held_latches.iter().rposition(|(l, _)| *l == latch) {
                        run.held_latches.remove(i);
                    }
                    run.cursor += 1;
                }
                kind => {
                    if !core.can_dispatch() {
                        break;
                    }
                    // TSO: a store enters this CPU's bounded buffer
                    // (reaching the caches only when it drains) and a
                    // load probes the buffer youngest-first for
                    // same-address forwarding. Either bypass completes
                    // locally in one cycle — exactly a store's SC
                    // latency — so TSO's timing delta comes entirely
                    // from drain stalls, never from the bypass itself.
                    let mut bypass = false;
                    if tso {
                        match kind {
                            OpKind::Store { addr, size } => {
                                if self.membufs[cpu].is_full() {
                                    drain_stall = Some(1);
                                    break;
                                }
                                self.membufs[cpu].push(BufferedStore {
                                    cursor: run.cursor,
                                    addr,
                                    size,
                                    pc: op.pc(),
                                    sub: run.cur_sub(),
                                    speculative,
                                });
                                self.buffered_stores += 1;
                                bypass = true;
                            }
                            OpKind::Load { addr, size } => {
                                match self.membufs[cpu].forward(addr, size) {
                                    ForwardOutcome::Hit => {
                                        self.forwarded_loads += 1;
                                        bypass = true;
                                    }
                                    ForwardOutcome::Conflict => {
                                        drain_stall = Some(2);
                                        break;
                                    }
                                    ForwardOutcome::Miss => {}
                                }
                            }
                            _ => {}
                        }
                    }
                    if !bypass && matches!(kind, OpKind::Load { .. }) {
                        if !self.mem.mshrs[cpu].can_accept(self.cycle) {
                            break;
                        }
                        // §1.2 alternative: synchronize predicted-violating
                        // loads until this thread is the oldest. Never
                        // inside an escaped critical section: the thread
                        // holds a latch the older threads may need, and
                        // escaped operations are not speculative anyway.
                        if self.cfg.predictor.enabled
                            && speculative
                            && run.held_latches.is_empty()
                            && self.predictor.predicts_violation(op.pc())
                        {
                            if run.last_sync_cursor != Some(run.cursor) {
                                run.last_sync_cursor = Some(run.cursor);
                                self.predictor.note_synchronization();
                            }
                            run.waiting_sync = true;
                            break;
                        }
                    }
                    if log_stores {
                        if let OpKind::Store { addr, size } = kind {
                            run.stores.push((run.cursor, addr, size));
                        }
                    }
                    if bypass {
                        core.dispatch(op, |start, _, _| start + 1);
                    } else {
                        let ctx = AccessCtx { cpu, sub: run.cur_sub(), speculative };
                        let mem = &mut self.mem;
                        core.dispatch(op, |start, _, mk| mem.access(op, ctx, orders, start, mk));
                        // Value prediction covers exposed speculative loads:
                        // the access callback (synchronous) just flagged
                        // whether this load recorded an exposure. Tracking is
                        // timing-passive — the probe neither stalls nor
                        // accelerates the load. (A forwarded load consumes
                        // this CPU's own buffered value: no exposure, no
                        // prediction to track.)
                        if self.cfg.vpredict.enabled && speculative && self.mem.last_exposed {
                            if let OpKind::Load { addr, .. } = kind {
                                run.vloads.push(VLoad {
                                    cursor: run.cursor,
                                    line: addr.align_down(self.cfg.l2.line_shift()),
                                    addr,
                                    pc: op.pc(),
                                    predicted: self.vpredict.probe(op.pc()),
                                    conflicted: false,
                                });
                            }
                        }
                    }
                    run.cursor += 1;
                    dispatched += 1;
                }
            }
        }

        if run.cursor == run.ops.len() && core.is_drained() && self.latch_retry[cpu].is_none() {
            run.finished = true;
        }

        // TSO drain engine: one entry per cycle leaves the buffer
        // whenever the CPU is stalled — at an explicit ordering point
        // (full buffer, forwarding conflict, latch acquire, the
        // pre-commit flush of a finished epoch) or opportunistically
        // while it waits on anything else. A stuck-drain fault freezes
        // drains until its window closes; the buffer simply holds.
        let mut drained_one = false;
        if tso {
            if run.finished && !self.membufs[cpu].is_empty() && drain_stall.is_none() {
                drain_stall = Some(3);
            }
            let frozen = self.cycle < self.drain_stuck_until[cpu];
            let stalled = drain_stall.is_some() || (dispatched == 0 && retired.retired == 0);
            if !frozen && stalled {
                if let Some(e) = self.membufs[cpu].pop_oldest() {
                    self.mem.drain_store(&e, cpu, orders, self.cycle);
                    self.store_drains += 1;
                    if log_stores {
                        run.drained.push((e.cursor, e.addr, e.size));
                    }
                    drained_one = true;
                }
            }
        }

        let category = if retired.retired > 0 || dispatched > 0 {
            CycleCategory::Busy
        } else if drain_stall.is_some() {
            CycleCategory::DrainStall
        } else if run.waiting_latch {
            CycleCategory::Latch
        } else if run.waiting_sync || run.finished {
            CycleCategory::Sync
        } else if retired.head_stall == HeadStall::Memory {
            CycleCategory::CacheMiss
        } else {
            CycleCategory::Busy
        };
        run.ledger.record(category);
        self.last_category[cpu] = category;
        if category == CycleCategory::DrainStall {
            // One event per stall episode, at its start.
            if !self.drain_episode[cpu] {
                self.drain_episode[cpu] = true;
                let buffered = self.membufs[cpu].len() as u64 + drained_one as u64;
                let cause = drain_stall.unwrap_or(0);
                emit!(self, EventKind::DrainStall, cpu, run.order, run.cur_sub(), buffered, cause);
            }
        } else {
            self.drain_episode[cpu] = false;
        }
        if let Some(o) = self.obs.as_deref_mut() {
            o.metrics.tick(cpu, cycle_class(category));
        }
        let progress = retired.retired > 0
            || dispatched > 0
            || drained_one
            || run.cursor != cursor_in
            || run.checkpoints.len() != checkpoints_in
            || run.finished != finished_in
            || self.subthreads_started != started_in
            || self.subthread_merges != merges_in
            || !latch_errors.is_empty();
        self.slots[cpu] = Slot::Running(run);
        for e in latch_errors {
            self.latch_release_error(e);
        }
        progress
    }

    fn apply_violations(&mut self) {
        if self.mem.pending.is_empty() {
            return;
        }
        // Swap the queue with a reused scratch vector so draining it
        // (and anything queued while we work) never reallocates.
        let mut pending = std::mem::take(&mut self.pending_scratch);
        std::mem::swap(&mut pending, &mut self.mem.pending);
        for v in pending.drain(..) {
            let (order, cur_sub) = match &self.slots[v.cpu] {
                Slot::Running(r) => (r.order, r.cur_sub()),
                Slot::Free => continue, // epoch committed before detection
            };
            // Stale if the slot was recycled or the state already rewound.
            if order != v.order || v.sub > cur_sub {
                continue;
            }
            // Looked up once (the table read is side-effect free) and
            // shared by the event stream, predictor and profiler.
            let raw_load_pc: Option<Pc> =
                if matches!(v.kind, ViolationKind::Raw | ViolationKind::ValueMispredict) {
                    self.mem.exposed[v.cpu].lookup(v.line)
                } else {
                    None
                };
            // Value prediction: a RAW violation whose line was consumed
            // only through predicted loads is suppressed — the victim
            // keeps running on the predicted values, and the guess is
            // settled at commit time. One unpredicted load on the line
            // and the violation stands (the thread consumed a value
            // nobody vouched for).
            if v.kind == ViolationKind::Raw && self.cfg.vpredict.enabled {
                let suppressed = match &mut self.slots[v.cpu] {
                    Slot::Running(r) => {
                        let line = v.line.align_down(self.cfg.l2.line_shift());
                        let mut on_line = 0usize;
                        let mut covered = 0usize;
                        for vl in r.vloads.iter().filter(|vl| vl.line == line) {
                            on_line += 1;
                            covered += vl.predicted.is_some() as usize;
                        }
                        if on_line > 0 && covered == on_line {
                            for vl in r.vloads.iter_mut().filter(|vl| vl.line == line) {
                                vl.conflicted = true;
                            }
                            true
                        } else {
                            false
                        }
                    }
                    Slot::Free => false,
                };
                if suppressed {
                    let pcs = Event::pack_pcs(raw_load_pc.map(|p| p.0), v.store_pc.map(|p| p.0));
                    emit!(self, EventKind::ValuePredicted, v.cpu, order, v.sub, v.line.0, pcs);
                    continue;
                }
            }
            match v.kind {
                ViolationKind::Raw => {
                    self.violations.primary += 1;
                    let pcs = Event::pack_pcs(raw_load_pc.map(|p| p.0), v.store_pc.map(|p| p.0));
                    emit!(self, EventKind::ViolationRaw, v.cpu, order, v.sub, v.line.0, pcs);
                    // Feed the forward-progress watchdog: remember the
                    // PCs implicated in the victim's current storm.
                    if let Slot::Running(r) = &mut self.slots[v.cpu] {
                        r.last_raw_pcs = pcs;
                        for pc in [raw_load_pc, v.store_pc].into_iter().flatten() {
                            if r.storm_pcs.len() < STORM_PC_CAP && !r.storm_pcs.contains(&pc.0) {
                                r.storm_pcs.push(pc.0);
                            }
                        }
                    }
                }
                ViolationKind::Overflow => {
                    self.violations.overflow += 1;
                    emit!(self, EventKind::ViolationOverflow, v.cpu, order, v.sub, v.line.0, 0);
                }
                ViolationKind::Secondary => {
                    self.violations.secondary += 1;
                    emit!(self, EventKind::ViolationSecondary, v.cpu, order, v.sub, 0, 0);
                }
                // Chaos injections are counted in FaultStats, not in the
                // machine's dependence statistics (the secondaries they
                // cascade into are real protocol work and still count).
                ViolationKind::Injected => {
                    emit!(self, EventKind::ViolationInjected, v.cpu, order, v.sub, 0, 0);
                }
                // A suppressed RAW whose prediction failed commit-time
                // validation: the deferred rewind lands here, through
                // the same sub-thread machinery as a direct violation.
                ViolationKind::ValueMispredict => {
                    self.value_mispredicts += 1;
                    let pcs = Event::pack_pcs(raw_load_pc.map(|p| p.0), None);
                    emit!(self, EventKind::ValueMispredict, v.cpu, order, v.sub, v.line.0, pcs);
                }
            }
            // Attribute the about-to-be-discarded cycles to the dependence
            // (§3.1: the exposed-load table provides the load PC).
            if matches!(v.kind, ViolationKind::Raw | ViolationKind::ValueMispredict) {
                let cycles = match &self.slots[v.cpu] {
                    Slot::Running(r) => r.ledger.cycles_since(v.sub as usize),
                    Slot::Free => 0,
                };
                if let Some(pc) = raw_load_pc {
                    self.predictor.train(pc);
                }
                self.profiler.attribute(raw_load_pc, v.store_pc, cycles);
            }
            self.rewind(v.cpu, v.sub);
            // Secondary violations for logically-later threads.
            let mut later = std::mem::take(&mut self.later_scratch);
            later.extend(self.slots.iter().filter_map(|s| match s {
                Slot::Running(r) if r.order > order => {
                    let target = match self.cfg.secondary {
                        SecondaryPolicy::StartTable => r.start_table.restart_point(v.cpu, v.sub),
                        SecondaryPolicy::RestartAll => 0,
                    };
                    Some((r.order, target))
                }
                _ => None,
            }));
            for &(victim_order, target) in &later {
                let Some(cpu) = self.cpu_running(victim_order) else { continue };
                let cur = match &self.slots[cpu] {
                    Slot::Running(r) => r.cur_sub(),
                    Slot::Free => continue,
                };
                if target > cur {
                    continue;
                }
                self.violations.secondary += 1;
                emit!(
                    self,
                    EventKind::ViolationSecondary,
                    cpu,
                    victim_order,
                    target,
                    order as u64,
                    0
                );
                self.rewind(cpu, target);
            }
            later.clear();
            self.later_scratch = later;
        }
        self.pending_scratch = pending;
    }

    fn cpu_running(&self, order: u32) -> Option<usize> {
        self.slots.iter().position(|s| matches!(s, Slot::Running(r) if r.order == order))
    }

    /// Rewinds `cpu` to sub-thread `sub`: discards speculative state,
    /// flushes the pipeline and re-classifies the discarded cycles as
    /// Failed.
    fn rewind(&mut self, cpu: usize, sub: u8) {
        let mut latch_errors: Vec<LatchError> = Vec::new();
        let mut flow_breach: Option<(u32, String)> = None;
        {
            let run = match &mut self.slots[cpu] {
                Slot::Running(r) => r,
                Slot::Free => return,
            };
            debug_assert!((sub as usize) < run.checkpoints.len());
            let failed = run.ledger.rewind_to(sub as usize);
            self.acct += failed;
            let discarded = failed.total();
            let ops_rewound = (run.cursor - run.checkpoints[sub as usize]) as u64;
            emit!(self, EventKind::Rewind, cpu, run.order, sub, discarded, ops_rewound);
            if let Some(o) = self.obs.as_deref_mut() {
                o.metrics.note_failed(cpu, discarded);
            }
            run.cursor = run.checkpoints[sub as usize];
            run.checkpoints.truncate(sub as usize + 1);
            run.finished = false;
            run.waiting_latch = false;
            self.latch_retry[cpu] = None;
            self.cores[cpu].flush();
            self.mem.mshrs[cpu].clear();
            if self.mem.l1_subthread_aware {
                self.mem.l1s[cpu].invalidate_speculative_from(sub);
            } else {
                self.mem.l1s[cpu].invalidate_speculative();
            }
            if !self.opts.sabotage_rewind {
                self.mem.l2.rewind(cpu, sub);
            }
            // Escaped synchronization: only acquisitions the rewind undoes
            // are released; critical sections that completed (or that the
            // rewind target sits inside) keep their latches, so the replay's
            // re-entrant acquires and the eventual releases stay balanced.
            let rewound_to = run.cursor;
            let latches = &mut self.latches;
            run.held_latches.retain(|&(latch, at)| {
                if at >= rewound_to {
                    if let Err(e) = latches.release(cpu, latch) {
                        latch_errors.push(e);
                    }
                    return false;
                }
                true
            });
            // TSO: the store-flow identity — logged stores equal
            // drained plus still-buffered — is audited on the
            // pre-rewind state (truncation must not mask a
            // chaos-dropped entry), then the buffer and the drain
            // mirror forget the rewound suffix alongside the write log.
            if !self.membufs.is_empty() {
                if self.opts.audit {
                    flow_breach =
                        Self::store_flow_breach(&run.stores, &run.drained, &self.membufs[cpu])
                            .map(|msg| (run.order, msg));
                }
                self.membufs[cpu].truncate_from(rewound_to);
                run.drained.retain(|&(c, _, _)| c < rewound_to);
            }
            // The oracle's write log forgets the stores the rewind undid;
            // re-execution re-records them, keeping commit exactly-once.
            let keep = run.stores.partition_point(|&(c, _, _)| c < rewound_to);
            run.stores.truncate(keep);
            // Tracked value-predicted loads past the rewind point are
            // discarded the same way (their predictions were never
            // consumed by anything that survives).
            let keep = run.vloads.partition_point(|vl| vl.cursor < rewound_to);
            run.vloads.truncate(keep);
            // Forward-progress watchdog: commit-free consecutive rewinds
            // of one epoch past the threshold are a violation storm. The
            // homefree token only protects the oldest epoch; this is the
            // detector for everyone younger.
            run.rewind_streak += 1;
            let threshold = self.opts.livelock_threshold;
            if threshold > 0 && run.rewind_streak >= threshold {
                match run.livelock_idx {
                    // Storm already flagged: track how long it grows.
                    Some(i) => self.livelocks[i].storm_len = run.rewind_streak,
                    None => {
                        emit!(
                            self,
                            EventKind::Livelock,
                            cpu,
                            run.order,
                            sub,
                            run.rewind_streak,
                            run.last_raw_pcs
                        );
                        if self.opts.progress_fallback {
                            run.serialized = true;
                        }
                        run.livelock_idx = Some(self.livelocks.len());
                        self.livelocks.push(LivelockReport {
                            epoch: run.order,
                            detected_at_cycle: self.cycle,
                            storm_len: run.rewind_streak,
                            violation_pcs: run.storm_pcs.clone(),
                            serialized: self.opts.progress_fallback,
                        });
                    }
                }
            }
        }
        if let Some((epoch, msg)) = flow_breach {
            self.serializability_breach(cpu, epoch, msg);
        }
        for e in latch_errors {
            self.latch_release_error(e);
        }
        self.audit_after_rewind(cpu, sub);
    }

    /// Checks `cpu`'s (next-to-commit, finished) epoch's load-bearing
    /// value predictions against the synthetic value model. Returns the
    /// deferred violation for the *earliest* wrong one, targeting the
    /// sub-thread that performed the load — everything before it
    /// consumed validated values and survives the rewind.
    fn validate_predictions(&self, cpu: usize) -> Option<PendingViolation> {
        let run = match &self.slots[cpu] {
            Slot::Running(r) => r,
            Slot::Free => return None,
        };
        for vl in &run.vloads {
            if !vl.conflicted {
                continue; // no conflicting store arrived: nothing consumed the guess
            }
            let predicted = vl.predicted.expect("conflicted implies predicted");
            let k = self.commit_counts.get(&vl.addr.0).copied().unwrap_or(0);
            if predicted != value_model(vl.addr, k) {
                let sub = (run.checkpoints.partition_point(|&c| c <= vl.cursor) - 1) as u8;
                return Some(PendingViolation {
                    cpu,
                    sub,
                    order: run.order,
                    kind: ViolationKind::ValueMispredict,
                    line: vl.line,
                    store_pc: None,
                });
            }
        }
        None
    }

    fn commit_ready(&mut self) {
        // Delayed-token fault: the homefree token is withheld; finished
        // epochs accrue Sync time until it is released.
        if self.cycle < self.commit_block_until {
            return;
        }
        loop {
            let ready = self.slots.iter().position(
                |s| matches!(s, Slot::Running(r) if r.finished && r.order == self.next_commit),
            );
            let Some(cpu) = ready else { break };
            // TSO: the homefree handoff is an ordering point — the
            // committing epoch's buffer must fully drain (one entry
            // per stalled cycle in `execute_cpu`, accounted as
            // DrainStall) before its state becomes architectural.
            if !self.membufs.is_empty() && !self.membufs[cpu].is_empty() {
                break;
            }
            // Value-prediction settlement: the epoch is next-to-commit,
            // so every older store is architecturally visible and the
            // synthetic value model is exact. A prediction that carried
            // a suppressed violation and turns out wrong becomes a
            // deferred violation through the ordinary rewind path — the
            // commit is withheld this cycle and the epoch re-executes
            // from the implicated sub-thread (non-speculatively, since
            // it holds the token, so the replay cannot mispredict again).
            if self.cfg.vpredict.enabled {
                if let Some(v) = self.validate_predictions(cpu) {
                    self.mem.pending.push(v);
                    break;
                }
            }
            let run = match std::mem::replace(&mut self.slots[cpu], Slot::Free) {
                Slot::Running(r) => r,
                Slot::Free => unreachable!(),
            };
            let order = run.order;
            // Commit-time serializability audits (armed with the
            // invariant auditor). Both failures surface as structured
            // protocol errors — never panics — so a chaos run asserts
            // on the evidence: (1) the TSO store-flow identity, where
            // a dropped buffer entry leaves a hole between the write
            // log and the drain mirror; (2) the happens-before order
            // of the committed write-set (commit-order edges plus
            // per-line write-write edges).
            if self.opts.audit {
                if !self.membufs.is_empty() {
                    if let Some(msg) =
                        Self::store_flow_breach(&run.stores, &run.drained, &self.membufs[cpu])
                    {
                        self.serializability_breach(cpu, order, msg);
                    }
                }
                let shift = self.cfg.l2.line_shift();
                let mut lines: Vec<u64> =
                    run.stores.iter().map(|&(_, a, _)| a.align_down(shift).0).collect();
                lines.sort_unstable();
                lines.dedup();
                if let Some(msg) = self.hb.commit_epoch(order, lines) {
                    self.serializability_breach(cpu, order, msg);
                }
            }
            if self.cfg.vpredict.enabled {
                // Every conflicted prediction validated correct: the
                // would-be RAW violations are now silent hits. Train on
                // all tracked loads (hits and untaken predictions alike)
                // and advance the value model's per-address store counts.
                for vl in &run.vloads {
                    let k = self.commit_counts.get(&vl.addr.0).copied().unwrap_or(0);
                    let actual = value_model(vl.addr, k);
                    self.vpredict.train(vl.pc, actual);
                    if vl.conflicted {
                        self.predicted_hits += 1;
                    }
                }
                for &(_, addr, _) in &run.stores {
                    *self.commit_counts.entry(addr.0).or_insert(0) += 1;
                }
            }
            emit!(self, EventKind::Commit, cpu, order, run.cur_sub(), run.ops.len() as u64, 0);
            if self.opts.oracle {
                // The epoch's surviving write log becomes the committed
                // image; tokens are global op indices, so the image can be
                // compared byte-for-byte with a sequential replay.
                let base = self.epoch_base[order as usize];
                for &(cursor, addr, size) in &run.stores {
                    let token = base + cursor as u64;
                    for b in 0..size as u64 {
                        self.image.insert(addr.0 + b, token);
                    }
                }
            }
            self.acct += run.ledger.commit();
            let orders = self.orders_snapshot();
            let mut overflow = std::mem::take(&mut self.overflow_scratch);
            overflow.clear();
            self.mem.l2.commit_into(cpu, &mut overflow);
            self.mem.queue_overflow(&overflow, Addr(0), &orders);
            self.overflow_scratch = overflow;
            self.mem.l1s[cpu].clear_speculative_marks();
            self.mem.exposed[cpu].clear();
            self.drain_episode[cpu] = false;
            self.latches.release_all(cpu);
            for s in &mut self.slots {
                if let Slot::Running(r) = s {
                    r.start_table.forget_cpu(cpu);
                    // A commit is forward progress: every surviving
                    // epoch's watchdog streak restarts. (`serialized`
                    // survives — a degraded epoch stays serial until it
                    // commits.)
                    r.rewind_streak = 0;
                    r.storm_pcs.clear();
                    r.livelock_idx = None;
                }
            }
            self.audit_after_commit(cpu, order);
            self.committed += 1;
            self.next_commit += 1;
            // The homefree token moves to the next-oldest epoch.
            emit!(self, EventKind::TokenHandoff, cpu, self.next_commit, 0, self.committed, 0);
        }
    }

    fn schedule(&mut self) {
        // Region barrier: advance only when everything committed.
        while self.region_queue.is_empty()
            && self.slots.iter().all(|s| matches!(s, Slot::Free))
            && self.region_index < self.program.regions.len()
        {
            match &self.program.regions[self.region_index] {
                RegionView::Sequential(e) => self.region_queue.push_back(*e),
                RegionView::Parallel(es) => self.region_queue.extend(es.iter().copied()),
            }
            self.region_index += 1;
            if !self.region_queue.is_empty() {
                break;
            }
        }
        for cpu in 0..self.cfg.cpus {
            if matches!(self.slots[cpu], Slot::Free) {
                let Some(epoch) = self.region_queue.pop_front() else { break };
                let spacing = self
                    .cfg
                    .subthreads
                    .spacing
                    .spacing_for(epoch.len(), self.cfg.subthreads.contexts);
                let order = self.next_order;
                self.next_order += 1;
                emit!(self, EventKind::EpochStart, cpu, order, 0, epoch.len() as u64, 0);
                self.slots[cpu] = Slot::Running(EpochRun::new(order, epoch, spacing));
            }
        }
    }

    fn finish(self, program_ops: u64) -> SimReport {
        let mut l1 = CacheStats::default();
        for c in &self.mem.l1s {
            l1 += c.stats();
        }
        let mut core = CoreStats::default();
        for c in &self.cores {
            let s = c.stats();
            core.dispatched += s.dispatched;
            core.retired += s.retired;
            core.branches += s.branches;
            core.mispredicts += s.mispredicts;
            core.loads += s.loads;
            core.stores += s.stores;
            core.flushes += s.flushes;
            core.icache_misses += s.icache_misses;
        }
        debug_assert_eq!(
            self.acct.total(),
            self.cycle * self.cfg.cpus as u64,
            "accounting identity: every CPU-cycle is categorized exactly once"
        );
        // Scan-epoch accounting: every epoch commits by the end of the
        // run, so the committed scan epochs are exactly the program's
        // scan-module epochs.
        let (scan_epochs, scan_epoch_ops) =
            self.program.epochs_of_module(tls_trace::SCAN_LOOP_MODULE);
        SimReport {
            name: self.program.name.to_string(),
            total_cycles: self.cycle,
            cpus: self.cfg.cpus,
            breakdown: self.acct,
            violations: self.violations,
            committed_epochs: self.committed,
            subthreads_started: self.subthreads_started,
            subthread_merges: self.subthread_merges,
            scan_epochs,
            scan_epoch_ops,
            dispatched_ops: core.dispatched,
            program_ops,
            l1,
            l2: self.mem.l2.stats(),
            victim: self.mem.l2.victim_stats(),
            mem_accesses: self.mem.l2.mem_accesses(),
            core,
            latch_acquisitions: self.latches.acquisitions(),
            predictor_synchronizations: self.predictor.synchronizations(),
            predicted_hits: self.predicted_hits,
            value_mispredicts: self.value_mispredicts,
            buffered_stores: self.buffered_stores,
            forwarded_loads: self.forwarded_loads,
            store_drains: self.store_drains,
            serializability_breaches: self.serializability_breaches,
            profile: self.profiler.report(),
            faults: self.faults,
            protocol_errors: self.protocol_errors,
            audit_failures: self.audit_failures,
            livelocks: self.livelocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SpacingPolicy, SubThreadConfig};
    use tls_trace::{OpSink, ProgramBuilder};

    fn cfg() -> CmpConfig {
        CmpConfig::test_small()
    }

    fn run_with(config: CmpConfig, p: &TraceProgram) -> SimReport {
        CmpSimulator::new(config).run(p)
    }

    #[test]
    fn empty_program_takes_zero_cycles() {
        let p = TraceProgram::new("empty", vec![]);
        let r = run_with(cfg(), &p);
        assert_eq!(r.total_cycles, 0);
        assert_eq!(r.breakdown.total(), 0);
        assert_eq!(r.committed_epochs, 0);
    }

    #[test]
    fn sequential_program_idles_three_cpus() {
        let mut b = ProgramBuilder::new("seq");
        b.int_ops(Pc::new(0, 0), 4000);
        let p = b.finish();
        let r = run_with(cfg(), &p);
        assert_eq!(r.committed_epochs, 1);
        assert_eq!(r.violations.primary, 0);
        // 3 of 4 CPUs idle the whole run.
        let idle_frac = r.breakdown.idle as f64 / r.breakdown.total() as f64;
        assert!(idle_frac > 0.70, "idle fraction {idle_frac}");
        assert_eq!(r.breakdown.total(), r.total_cycles * 4);
    }

    #[test]
    fn independent_epochs_run_in_parallel() {
        // Sequential version as reference.
        let mut seq = ProgramBuilder::new("seq");
        seq.int_ops(Pc::new(0, 0), 16_000);
        let seq = seq.finish();

        let mut par = ProgramBuilder::new("par");
        par.begin_parallel();
        for _ in 0..4 {
            par.begin_epoch();
            par.int_ops(Pc::new(0, 0), 4000);
            par.end_epoch();
        }
        par.end_parallel();
        let par = par.finish();

        let rs = run_with(cfg(), &seq);
        let rp = run_with(cfg(), &par);
        assert_eq!(rp.committed_epochs, 4);
        assert_eq!(rp.violations.total(), 0);
        let speedup = rp.speedup_vs(&rs);
        assert!(speedup > 3.0, "speedup {speedup}");
    }

    /// Epoch 0 stores late; epoch 1 loads that address mid-way.
    fn raw_program(work: usize, load_at: usize) -> TraceProgram {
        let mut b = ProgramBuilder::new("raw");
        b.begin_parallel();
        b.begin_epoch();
        b.int_ops(Pc::new(1, 0), work);
        b.store(Pc::new(1, 1), Addr(0x8000), 8);
        b.end_epoch();
        b.begin_epoch();
        b.int_ops(Pc::new(2, 0), load_at);
        b.load(Pc::new(2, 1), Addr(0x8000), 8);
        b.int_ops(Pc::new(2, 2), work - load_at);
        b.end_epoch();
        b.end_parallel();
        b.finish()
    }

    #[test]
    fn raw_dependence_is_detected_and_rewound() {
        let p = raw_program(4000, 100);
        let r = run_with(cfg(), &p);
        assert!(r.violations.primary >= 1, "violations: {:?}", r.violations);
        assert!(r.breakdown.failed > 0);
        assert_eq!(r.committed_epochs, 2);
        // The profiler attributes the failure to the right PC pair.
        let top = &r.profile[0];
        assert_eq!(top.store_pc, Some(Pc::new(1, 1)));
        assert_eq!(top.load_pc, Some(Pc::new(2, 1)));
    }

    #[test]
    fn subthreads_reduce_failed_cycles_for_midthread_loads() {
        let p = raw_program(6000, 3000);
        let mut no_sub = cfg();
        no_sub.subthreads = SubThreadConfig::disabled();
        let mut with_sub = cfg();
        with_sub.subthreads = SubThreadConfig {
            contexts: 8,
            spacing: SpacingPolicy::Every(500),
            exhaustion: ExhaustionPolicy::Merge,
        };
        let r0 = run_with(no_sub, &p);
        let r1 = run_with(with_sub, &p);
        assert!(r0.violations.primary >= 1 && r1.violations.primary >= 1);
        assert!(
            r1.breakdown.failed < r0.breakdown.failed,
            "sub-threads should rewind less: {} vs {}",
            r1.breakdown.failed,
            r0.breakdown.failed
        );
        assert!(r1.total_cycles <= r0.total_cycles);
        assert!(r1.subthreads_started > 0);
    }

    #[test]
    fn no_speculation_mode_sees_no_violations() {
        let p = raw_program(4000, 100);
        let mut c = cfg();
        c.track_dependences = false;
        let r = run_with(c, &p);
        assert_eq!(r.violations.total(), 0);
        assert_eq!(r.breakdown.failed, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let p = raw_program(5000, 2500);
        let a = run_with(cfg(), &p);
        let b = run_with(cfg(), &p);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.breakdown, b.breakdown);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn latch_contention_stalls() {
        let mut b = ProgramBuilder::new("latch");
        b.begin_parallel();
        for _ in 0..2 {
            b.begin_epoch();
            b.latch_acquire(Pc::new(3, 0), LatchId(7));
            b.int_ops(Pc::new(3, 1), 3000);
            b.latch_release(Pc::new(3, 2), LatchId(7));
            b.end_epoch();
        }
        b.end_parallel();
        let p = b.finish();
        let r = run_with(cfg(), &p);
        assert!(r.breakdown.latch > 1000, "latch stall cycles: {}", r.breakdown.latch);
        assert_eq!(r.latch_acquisitions, 2);
        assert_eq!(r.violations.total(), 0);
    }

    #[test]
    fn start_table_secondary_violations_beat_restart_all() {
        // Epoch 0 stores X at its end. Epochs 1..4 load X immediately,
        // then do long independent work. With RestartAll, every
        // violation of epoch 1 also restarts epochs 2 and 3 from scratch;
        // with the start table they only rewind to the sub-thread they
        // were in when epoch 1's restarted sub-thread began.
        let mut b = ProgramBuilder::new("secondary");
        b.begin_parallel();
        b.begin_epoch();
        b.int_ops(Pc::new(1, 0), 6000);
        b.store(Pc::new(1, 1), Addr(0x9000), 8);
        b.end_epoch();
        b.begin_epoch();
        b.load(Pc::new(2, 0), Addr(0x9000), 8);
        b.int_ops(Pc::new(2, 1), 6000);
        b.end_epoch();
        for i in 0..2u16 {
            b.begin_epoch();
            b.int_ops(Pc::new(3 + i, 0), 6000);
            b.end_epoch();
        }
        b.end_parallel();
        let p = b.finish();

        let mut table = cfg();
        table.secondary = SecondaryPolicy::StartTable;
        table.subthreads = SubThreadConfig {
            contexts: 8,
            spacing: SpacingPolicy::Every(500),
            exhaustion: ExhaustionPolicy::Merge,
        };
        let mut all = table;
        all.secondary = SecondaryPolicy::RestartAll;

        let rt = run_with(table, &p);
        let ra = run_with(all, &p);
        assert!(rt.violations.primary >= 1);
        assert!(
            rt.breakdown.failed <= ra.breakdown.failed,
            "start table should not fail more: {} vs {}",
            rt.breakdown.failed,
            ra.breakdown.failed
        );
        assert!(rt.total_cycles <= ra.total_cycles);
    }

    #[test]
    fn commit_order_follows_epoch_order() {
        // Epoch 1 is much shorter than epoch 0 but must commit second;
        // it accrues Sync time while waiting for the token.
        let mut b = ProgramBuilder::new("token");
        b.begin_parallel();
        b.begin_epoch();
        b.int_ops(Pc::new(0, 0), 8000);
        b.end_epoch();
        b.begin_epoch();
        b.int_ops(Pc::new(0, 1), 100);
        b.end_epoch();
        b.end_parallel();
        let p = b.finish();
        let r = run_with(cfg(), &p);
        assert_eq!(r.committed_epochs, 2);
        assert!(r.breakdown.sync > 1000, "sync cycles: {}", r.breakdown.sync);
    }

    #[test]
    fn region_barrier_orders_regions() {
        // parallel region, then a sequential store, then a parallel load:
        // no violation may cross the barrier.
        let mut b = ProgramBuilder::new("barrier");
        b.begin_parallel();
        b.begin_epoch();
        b.load(Pc::new(0, 0), Addr(0xA000), 8);
        b.int_ops(Pc::new(0, 1), 500);
        b.end_epoch();
        b.end_parallel();
        b.store(Pc::new(0, 2), Addr(0xA000), 8);
        b.begin_parallel();
        b.begin_epoch();
        b.load(Pc::new(0, 3), Addr(0xA000), 8);
        b.end_epoch();
        b.end_parallel();
        let p = b.finish();
        let r = run_with(cfg(), &p);
        assert_eq!(r.violations.total(), 0);
        assert_eq!(r.committed_epochs, 3);
    }

    #[test]
    fn update_propagation_avoids_violations_for_late_loads() {
        // Epoch 0 stores early; epoch 1 loads *late* (after long work).
        // By then the store has propagated to the L2: no violation.
        let mut b = ProgramBuilder::new("propagate");
        b.begin_parallel();
        b.begin_epoch();
        b.store(Pc::new(0, 0), Addr(0xB000), 8);
        b.int_ops(Pc::new(0, 1), 200);
        b.end_epoch();
        b.begin_epoch();
        b.int_ops(Pc::new(0, 2), 5000);
        b.load(Pc::new(0, 3), Addr(0xB000), 8);
        b.end_epoch();
        b.end_parallel();
        let p = b.finish();
        let r = run_with(cfg(), &p);
        assert_eq!(r.violations.primary, 0, "late load should see the propagated value");
    }

    #[test]
    fn dependence_predictor_synchronizes_trained_loads() {
        // Eight epochs all read-modify-write one shared counter at their
        // midpoint: the classic pattern the predictor learns.
        let mut b = ProgramBuilder::new("rmw-chain");
        b.begin_parallel();
        for e in 0..8u16 {
            b.begin_epoch();
            b.int_ops(Pc::new(e, 0), 2000);
            b.load(Pc::new(9, 1), Addr(0xC000), 8); // same PC across epochs
            b.store(Pc::new(9, 2), Addr(0xC000), 8);
            b.int_ops(Pc::new(e, 3), 2000);
            b.end_epoch();
        }
        b.end_parallel();
        let p = b.finish();

        let off = cfg();
        let mut on = off;
        on.predictor = crate::PredictorConfig::aggressive();
        let r_off = run_with(off, &p);
        let r_on = run_with(on, &p);
        assert_eq!(r_off.predictor_synchronizations, 0);
        assert!(r_on.predictor_synchronizations > 0, "trained loads must stall");
        assert!(
            r_on.violations.primary < r_off.violations.primary,
            "synchronization avoids violations: {} vs {}",
            r_on.violations.primary,
            r_off.violations.primary
        );
        assert!(r_on.breakdown.sync > 0);
        // Both terminate and commit everything (no sync deadlock).
        assert_eq!(r_on.committed_epochs, 8);
    }

    /// The RMW-chain collider of the predictor test, parameterised by
    /// the shared address (whose hash picks the value-model class).
    fn rmw_chain(addr: Addr, epochs: u16) -> TraceProgram {
        let mut b = ProgramBuilder::new("rmw-chain");
        b.begin_parallel();
        for e in 0..epochs {
            b.begin_epoch();
            b.int_ops(Pc::new(e, 0), 2000);
            b.load(Pc::new(9, 1), addr, 8); // same PC across epochs
            b.store(Pc::new(9, 2), addr, 8);
            b.int_ops(Pc::new(e, 3), 2000);
            b.end_epoch();
        }
        b.end_parallel();
        b.finish()
    }

    #[test]
    fn value_prediction_suppresses_constant_class_raws() {
        // 0xC000 hashes to the constant value-model class: every commit
        // trains the same value, so once the table warms up the exposed
        // load is predicted, the RAW is suppressed, and validation at
        // commit time always passes.
        let p = rmw_chain(Addr(0xC000), 8);
        let off = cfg();
        let mut on = off;
        on.vpredict = crate::VPredictConfig::prophet();
        let r_off = run_with(off, &p);
        let r_on = run_with(on, &p);
        assert_eq!(r_off.predicted_hits, 0);
        assert_eq!(r_off.value_mispredicts, 0);
        assert!(r_on.predicted_hits > 0, "warm table must suppress RAWs");
        assert_eq!(r_on.value_mispredicts, 0, "constant class never validates wrong");
        assert!(
            r_on.violations.primary < r_off.violations.primary,
            "suppression avoids violations: {} vs {}",
            r_on.violations.primary,
            r_off.violations.primary
        );
        assert_eq!(r_on.committed_epochs, 8);
        assert_eq!(r_off.committed_epochs, 8);
    }

    #[test]
    fn value_misprediction_rewinds_instead_of_committing() {
        // 0xC080 hashes to the noisy class: the value changes with every
        // committed store, so an eager (threshold-1) predictor keeps
        // predicting stale values. Every such suppression must be caught
        // by commit-time validation and converted into a rewind — never
        // a wrong commit.
        let p = rmw_chain(Addr(0xC080), 8);
        let mut on = cfg();
        on.vpredict = crate::VPredictConfig { enabled: true, entries: 1024, threshold: 1 };
        let r = run_with(on, &p);
        assert!(r.value_mispredicts > 0, "noisy class must mispredict");
        assert_eq!(r.committed_epochs, 8, "mispredicts rewind, not wedge");
        assert!(r.audit_failures.is_empty(), "{:?}", r.audit_failures);
        assert!(r.protocol_errors.is_empty(), "{:?}", r.protocol_errors);
    }

    #[test]
    fn disabled_value_predictor_changes_nothing() {
        // Table geometry must not leak into timing when the predictor is
        // off: a disabled config with exotic sizing produces the same
        // report as the default, byte for byte.
        let p = rmw_chain(Addr(0xC000), 8);
        let mut exotic = cfg();
        exotic.vpredict = crate::VPredictConfig { enabled: false, entries: 8192, threshold: 3 };
        let r_default = run_with(cfg(), &p);
        let r_exotic = run_with(exotic, &p);
        assert_eq!(
            serde_json::to_string(&r_default).unwrap(),
            serde_json::to_string(&r_exotic).unwrap()
        );
        assert_eq!(r_default.predicted_hits, 0);
        assert_eq!(r_default.value_mispredicts, 0);
    }

    #[test]
    fn context_merging_keeps_checkpoints_recent() {
        // One long epoch (20k ops) with tiny spacing exhausts 4 contexts
        // almost immediately; with merging, a late violation still
        // rewinds only a short distance.
        let mut b = ProgramBuilder::new("merge");
        b.begin_parallel();
        b.begin_epoch();
        b.int_ops(Pc::new(0, 0), 20_000);
        b.store(Pc::new(0, 1), Addr(0xD000), 8);
        b.end_epoch();
        b.begin_epoch();
        b.load(Pc::new(1, 0), Addr(0xD000), 8); // early load: unavoidable
        b.int_ops(Pc::new(1, 1), 19_000);
        b.load(Pc::new(1, 2), Addr(0xD040), 8); // late load
        b.int_ops(Pc::new(1, 3), 1000);
        b.end_epoch();
        b.begin_epoch();
        b.int_ops(Pc::new(2, 0), 19_500);
        b.store(Pc::new(2, 1), Addr(0xD040), 8);
        b.end_epoch();
        b.end_parallel();
        let p = b.finish();

        let mut merge = cfg();
        merge.subthreads = SubThreadConfig {
            contexts: 4,
            spacing: SpacingPolicy::Every(500),
            exhaustion: ExhaustionPolicy::Merge,
        };
        let mut stop = merge;
        stop.subthreads.exhaustion = ExhaustionPolicy::Stop;
        let r_merge = run_with(merge, &p);
        let r_stop = run_with(stop, &p);
        assert!(r_merge.subthread_merges > 0);
        assert_eq!(r_stop.subthread_merges, 0);
        // Note: epoch 1's late load (from epoch 2... epoch 2 is LATER, so
        // it cannot violate epoch 1; the early load from epoch 0 does).
        // What merging must preserve is correctness: everything commits
        // and the accounting identity holds under heavy recycling.
        assert_eq!(r_merge.committed_epochs, 3);
        assert_eq!(r_merge.breakdown.total(), r_merge.total_cycles * 4);
    }

    #[test]
    fn speculative_overflow_violates_and_recovers() {
        // No victim cache, and a speculative thread that writes more
        // same-set lines than the L2's associativity can hold: its state
        // must overflow, the thread restart, and the run still complete.
        let mut b = ProgramBuilder::new("overflow");
        b.begin_parallel();
        b.begin_epoch();
        b.int_ops(Pc::new(0, 0), 30_000); // keep the writer speculative
        b.end_epoch();
        b.begin_epoch();
        // 16KB 4-way 32B L2 = 128 sets; stride 4096 maps to one set.
        for i in 0..8u64 {
            b.store(Pc::new(1, 1), Addr(0x4_0000 + i * 4096), 8);
            b.int_ops(Pc::new(1, 2), 50);
        }
        b.int_ops(Pc::new(1, 3), 1000);
        b.end_epoch();
        b.end_parallel();
        let p = b.finish();
        let mut c = cfg();
        c.victim_entries = 0;
        let r = run_with(c, &p);
        assert!(r.violations.overflow >= 1, "violations: {:?}", r.violations);
        assert_eq!(r.committed_epochs, 2);
    }

    #[test]
    fn victim_cache_absorbs_the_same_overflow() {
        let mut b = ProgramBuilder::new("absorbed");
        b.begin_parallel();
        b.begin_epoch();
        b.int_ops(Pc::new(0, 0), 30_000);
        b.end_epoch();
        b.begin_epoch();
        for i in 0..8u64 {
            b.store(Pc::new(1, 1), Addr(0x4_0000 + i * 4096), 8);
            b.int_ops(Pc::new(1, 2), 50);
        }
        b.int_ops(Pc::new(1, 3), 1000);
        b.end_epoch();
        b.end_parallel();
        let p = b.finish();
        let mut c = cfg();
        c.victim_entries = 64;
        let r = run_with(c, &p);
        assert_eq!(r.violations.overflow, 0, "the victim cache must absorb the spill");
    }

    #[test]
    fn exposed_table_conflicts_degrade_profile_to_unknown_pcs() {
        // A 1-entry exposed-load table: the second exposed load evicts
        // the first, so the violation's load PC is unattributable —
        // exactly the "moderate-sized direct-mapped table" trade-off of
        // §3.1. The violation itself is still detected.
        let mut b = ProgramBuilder::new("conflict");
        b.begin_parallel();
        b.begin_epoch();
        b.int_ops(Pc::new(1, 0), 4000);
        b.store(Pc::new(1, 1), Addr(0x8000), 8);
        b.end_epoch();
        b.begin_epoch();
        b.load(Pc::new(2, 1), Addr(0x8000), 8);
        b.load(Pc::new(2, 2), Addr(0x8000 + 32 * 256), 8); // conflicting table slot
        b.int_ops(Pc::new(2, 3), 4000);
        b.end_epoch();
        b.end_parallel();
        let p = b.finish();
        let mut c = cfg();
        c.exposed_load_entries = 1;
        let r = run_with(c, &p);
        assert!(r.violations.primary >= 1);
        let top = &r.profile[0];
        assert_eq!(top.load_pc, None, "conflicting table entry must be evicted");
        assert_eq!(top.store_pc, Some(Pc::new(1, 1)));
    }

    #[test]
    fn eight_cpu_machine_runs_wide_programs() {
        let mut b = ProgramBuilder::new("wide");
        b.begin_parallel();
        for t in 0..16u16 {
            b.begin_epoch();
            b.int_ops(Pc::new(t, 0), 2000);
            b.store(Pc::new(t, 1), Addr(0x9_0000 + 64 * t as u64), 8);
            b.end_epoch();
        }
        b.end_parallel();
        let p = b.finish();
        let mut c = cfg();
        c.cpus = 8;
        let r = run_with(c, &p);
        assert_eq!(r.committed_epochs, 16);
        assert_eq!(r.breakdown.total(), r.total_cycles * 8);
        // A 4-CPU run of the same program takes longer.
        let r4 = run_with(cfg(), &p);
        assert!(r4.total_cycles > r.total_cycles);
    }

    #[test]
    fn wasted_work_is_measured() {
        let p = raw_program(4000, 100);
        let r = run_with(cfg(), &p);
        assert!(r.dispatched_ops > r.program_ops);
        assert!(r.wasted_work_ratio() > 0.0);
    }

    // --- chaos harness ---

    use crate::chaos::{FaultClass, FaultPlan};

    /// Runs with a fault plan, audits and oracle on, panicking on any
    /// invariant breakage — chaos tests fail loudly.
    fn run_chaos(config: CmpConfig, p: &TraceProgram, plan: FaultPlan) -> SimReport {
        CmpSimulator::new(config)
            .run_with(p, RunOptions { plan: Some(plan), ..RunOptions::default() })
    }

    /// Four independent epochs: no genuine dependences, so any recovery
    /// activity observed under chaos is the harness's doing.
    fn independent_program() -> TraceProgram {
        let mut b = ProgramBuilder::new("independent");
        b.begin_parallel();
        for t in 0..4u16 {
            b.begin_epoch();
            b.int_ops(Pc::new(t, 0), 4000);
            b.store(Pc::new(t, 1), Addr(0xE000 + 64 * t as u64), 8);
            b.end_epoch();
        }
        b.end_parallel();
        b.finish()
    }

    #[test]
    fn spurious_primary_rewinds_without_counting_as_raw() {
        let p = independent_program();
        let r = run_chaos(cfg(), &p, FaultPlan::single(FaultClass::SpuriousPrimary, 300, 0));
        assert_eq!(r.faults.spurious_primary, 1);
        assert_eq!(r.violations.primary, 0, "injected violations are not RAW statistics");
        assert!(r.breakdown.failed > 0, "the rewind must discard real work");
        assert_eq!(r.committed_epochs, 4);
        assert!(r.audit_failures.is_empty());
    }

    #[test]
    fn spurious_secondary_restarts_the_youngest_epoch() {
        let p = independent_program();
        let r = run_chaos(cfg(), &p, FaultPlan::single(FaultClass::SpuriousSecondary, 300, 0));
        assert_eq!(r.faults.spurious_secondary, 1);
        assert!(r.breakdown.failed > 0);
        assert_eq!(r.committed_epochs, 4);
    }

    #[test]
    fn forced_merge_recycles_a_live_context() {
        let p = independent_program();
        let r = run_chaos(cfg(), &p, FaultPlan::single(FaultClass::ForcedMerge, 1000, 0));
        assert_eq!(r.faults.forced_merge, 1);
        assert!(r.subthread_merges >= 1);
        assert_eq!(r.committed_epochs, 4);
    }

    #[test]
    fn delayed_token_stalls_commit_but_not_correctness() {
        let p = independent_program();
        let base = run_with(cfg(), &p);
        let r = run_chaos(cfg(), &p, FaultPlan::single(FaultClass::DelayedToken, 10, 3000));
        assert_eq!(r.faults.delayed_token, 1);
        assert!(r.total_cycles >= 3010, "token withheld until cycle 3010: {}", r.total_cycles);
        assert!(r.total_cycles > base.total_cycles);
        assert!(r.breakdown.sync > base.breakdown.sync, "finished epochs wait on the token");
        assert_eq!(r.committed_epochs, 4);
    }

    #[test]
    fn victim_squeeze_forces_the_overflow_path() {
        // Same spill pattern the 64-entry victim cache absorbs cleanly;
        // squeezing it mid-run must surface overflow violations and the
        // machine must still finish correctly once capacity returns.
        let mut b = ProgramBuilder::new("squeezed");
        b.begin_parallel();
        b.begin_epoch();
        b.int_ops(Pc::new(0, 0), 30_000);
        b.end_epoch();
        b.begin_epoch();
        for i in 0..8u64 {
            b.store(Pc::new(1, 1), Addr(0x4_0000 + i * 4096), 8);
            b.int_ops(Pc::new(1, 2), 50);
        }
        b.int_ops(Pc::new(1, 3), 1000);
        b.end_epoch();
        b.end_parallel();
        let p = b.finish();
        let mut c = cfg();
        c.victim_entries = 64;
        let clean = run_with(c, &p);
        assert_eq!(clean.violations.overflow, 0);
        let r = run_chaos(c, &p, FaultPlan::single(FaultClass::VictimSqueeze, 2000, 400));
        assert_eq!(r.faults.victim_squeeze, 1);
        assert!(r.violations.overflow >= 1, "violations: {:?}", r.violations);
        assert_eq!(r.committed_epochs, 2);
    }

    #[test]
    fn latch_hazard_is_absorbed_as_a_protocol_error() {
        let mut b = ProgramBuilder::new("hazard");
        b.begin_parallel();
        for _ in 0..2 {
            b.begin_epoch();
            b.latch_acquire(Pc::new(3, 0), LatchId(7));
            b.int_ops(Pc::new(3, 1), 3000);
            b.latch_release(Pc::new(3, 2), LatchId(7));
            b.end_epoch();
        }
        b.end_parallel();
        let p = b.finish();
        let r = run_chaos(cfg(), &p, FaultPlan::single(FaultClass::LatchHazard, 500, 0));
        assert_eq!(r.faults.latch_hazard, 1);
        assert!(r.faults.protocol_errors >= 1, "the orphaned release must surface");
        assert!(!r.protocol_errors.is_empty());
        assert!(r.protocol_errors[0].message.contains("latch"));
        assert_eq!(r.committed_epochs, 2, "the machine keeps running");
    }

    #[test]
    fn faults_with_no_target_are_skipped() {
        // A sequential program has no speculative epoch to injure.
        let mut b = ProgramBuilder::new("seq-chaos");
        b.int_ops(Pc::new(0, 0), 2000);
        let p = b.finish();
        let r = run_chaos(cfg(), &p, FaultPlan::single(FaultClass::SpuriousPrimary, 100, 0));
        assert_eq!(r.faults.applied(), 0);
        assert_eq!(r.faults.skipped, 1);
        assert_eq!(r.committed_epochs, 1);
    }

    #[test]
    fn seeded_plans_replay_identically() {
        let p = independent_program();
        let plan = FaultPlan::generate(42, &crate::chaos::ALL_FAULT_CLASSES, 3000, 6);
        let a = run_chaos(cfg(), &p, plan.clone());
        let b = run_chaos(cfg(), &p, plan);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.breakdown, b.breakdown);
        assert_eq!(a.faults, b.faults);
    }

    // --- TSO memory model ---

    use crate::config::MemoryModel;

    fn tso_cfg(buffer_entries: usize) -> CmpConfig {
        let mut c = cfg();
        c.memory_model = MemoryModel::Tso { buffer_entries };
        c
    }

    /// Four independent epochs that keep their store buffers busy: a
    /// store every few ops, all to per-epoch lines.
    fn store_heavy_program() -> TraceProgram {
        let mut b = ProgramBuilder::new("store-heavy");
        b.begin_parallel();
        for t in 0..4u16 {
            b.begin_epoch();
            for i in 0..64u64 {
                b.int_ops(Pc::new(t, 0), 40);
                b.store(Pc::new(t, 1), Addr(0xE000 + 0x1000 * t as u64 + 8 * i), 8);
            }
            b.end_epoch();
        }
        b.end_parallel();
        b.finish()
    }

    #[test]
    fn sc_reports_no_tso_activity() {
        let r = run_with(cfg(), &store_heavy_program());
        assert_eq!(r.buffered_stores, 0);
        assert_eq!(r.forwarded_loads, 0);
        assert_eq!(r.store_drains, 0);
        assert_eq!(r.serializability_breaches, 0);
        assert_eq!(r.breakdown.drain_stall, 0);
    }

    #[test]
    fn tso_buffers_and_drains_every_store() {
        // Debug `run()` arms the invariant auditor and the sequential
        // oracle, so passing proves TSO commits the same logical state.
        let r = run_with(tso_cfg(4), &store_heavy_program());
        assert_eq!(r.committed_epochs, 4);
        assert_eq!(r.buffered_stores, 4 * 64);
        assert_eq!(r.store_drains, r.buffered_stores, "no rewinds: every store drains");
        assert!(r.breakdown.drain_stall > 0, "a 4-entry buffer must backpressure 64 stores");
        assert_eq!(r.serializability_breaches, 0);
        assert!(r.protocol_errors.is_empty(), "{:?}", r.protocol_errors);
    }

    #[test]
    fn tso_detects_raw_dependences_at_drain_time() {
        // The same cross-epoch RAW as the SC test: the store becomes
        // visible only when it drains, and the violation must still be
        // detected, attributed, and recovered through sub-threads.
        let p = raw_program(4000, 100);
        let r = run_with(tso_cfg(4), &p);
        assert!(r.violations.primary >= 1, "violations: {:?}", r.violations);
        assert_eq!(r.committed_epochs, 2);
        let top = &r.profile[0];
        assert_eq!(top.store_pc, Some(Pc::new(1, 1)));
        assert_eq!(top.load_pc, Some(Pc::new(2, 1)));
    }

    #[test]
    fn tso_forwards_same_address_loads_from_the_buffer() {
        let mut b = ProgramBuilder::new("forward");
        b.begin_parallel();
        b.begin_epoch();
        b.int_ops(Pc::new(0, 0), 100);
        b.store(Pc::new(0, 1), Addr(0xF000), 8);
        b.load(Pc::new(0, 2), Addr(0xF000), 8);
        b.int_ops(Pc::new(0, 3), 100);
        b.end_epoch();
        b.end_parallel();
        let p = b.finish();
        let r = run_with(tso_cfg(4), &p);
        assert!(r.forwarded_loads >= 1, "the buffered store must forward");
        assert_eq!(r.committed_epochs, 1);
    }

    #[test]
    fn tso_drains_before_latch_acquisition() {
        let mut b = ProgramBuilder::new("latch-order");
        b.begin_parallel();
        for t in 0..2u16 {
            b.begin_epoch();
            // The stores sit buffered through the int_ops (a busy CPU
            // does not drain), so the acquire meets a 16-deep backlog
            // that outlasts the pipeline: pure drain-stall cycles.
            for i in 0..16u64 {
                b.store(Pc::new(t, 0), Addr(0xE800 + 0x400 * t as u64 + 8 * i), 8);
            }
            b.int_ops(Pc::new(t, 1), 50);
            b.latch_acquire(Pc::new(t, 2), LatchId(3));
            b.int_ops(Pc::new(t, 3), 500);
            b.latch_release(Pc::new(t, 4), LatchId(3));
            b.end_epoch();
        }
        b.end_parallel();
        let p = b.finish();
        let r = run_with(tso_cfg(32), &p);
        assert!(r.breakdown.drain_stall > 0, "the acquire must wait for the drain");
        assert_eq!(r.committed_epochs, 2);
        assert_eq!(r.latch_acquisitions, 2);
    }

    #[test]
    fn tso_run_is_deterministic() {
        let p = store_heavy_program();
        let a = run_with(tso_cfg(4), &p);
        let b = run_with(tso_cfg(4), &p);
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn stuck_drain_is_survived() {
        let p = store_heavy_program();
        let r = run_chaos(tso_cfg(4), &p, FaultPlan::single(FaultClass::StuckDrain, 300, 400));
        assert_eq!(r.faults.stuck_drain, 1, "a busy buffer must be found at cycle 300");
        assert_eq!(r.committed_epochs, 4);
        assert_eq!(r.serializability_breaches, 0);
        assert!(r.protocol_errors.is_empty(), "{:?}", r.protocol_errors);
    }

    #[test]
    fn reordered_drain_is_survived() {
        // Speculative L2 state is keyed by (epoch, sub-thread), not by
        // drain arrival, so an out-of-order drain of two independent
        // stores commits the same logical state — proven by the oracle.
        let p = store_heavy_program();
        let r = run_chaos(tso_cfg(4), &p, FaultPlan::single(FaultClass::ReorderedDrain, 300, 400));
        assert_eq!(r.faults.reordered_drain, 1);
        assert_eq!(r.committed_epochs, 4);
        assert_eq!(r.serializability_breaches, 0);
        assert!(r.protocol_errors.is_empty(), "{:?}", r.protocol_errors);
    }

    #[test]
    fn dropped_entry_is_detected_not_survived() {
        // The store is silently lost from the buffer; the commit-time
        // store-flow audit must report it as a structured protocol
        // error (never a panic) while the machine keeps running.
        let p = store_heavy_program();
        let r = run_chaos(tso_cfg(4), &p, FaultPlan::single(FaultClass::DroppedEntry, 300, 400));
        assert_eq!(r.faults.dropped_entry, 1);
        assert!(r.serializability_breaches >= 1, "the lost store must be detected");
        assert!(
            r.protocol_errors.iter().any(|e| e.message.contains("store-flow")),
            "{:?}",
            r.protocol_errors
        );
        assert_eq!(r.committed_epochs, 4, "detection is evidence, not a crash");
    }

    #[test]
    fn store_buffer_faults_are_skipped_on_sc() {
        let p = store_heavy_program();
        for class in crate::chaos::STORE_BUFFER_FAULT_CLASSES {
            let r = run_chaos(cfg(), &p, FaultPlan::single(class, 300, 400));
            assert_eq!(r.faults.applied(), 0, "{class}: no SC machine has a store buffer");
            assert_eq!(r.faults.skipped, 1);
            assert_eq!(r.serializability_breaches, 0);
        }
    }

    #[test]
    fn sabotaged_rewind_is_caught_by_the_auditor() {
        // Break the recovery path on purpose: skip the speculative-L2
        // cleanup during rewind. The invariant auditor — not a downstream
        // assert — must report the residue immediately after the rewind.
        let p = raw_program(4000, 100);
        let r = CmpSimulator::new(cfg()).run_with(
            &p,
            RunOptions {
                sabotage_rewind: true,
                panic_on_audit_failure: false,
                ..RunOptions::default()
            },
        );
        assert!(
            r.audit_failures.iter().any(|f| f.contains("post-rewind")),
            "auditor must flag the sabotage: {:?}",
            r.audit_failures
        );
    }
}
