//! A small open-addressed hash map keyed by line address.
//!
//! The speculative-L2 metadata table ([`crate::SpecL2`]) is consulted on
//! every load, store, and L1-fill notification, which made `HashMap`'s
//! SipHash the single hottest instruction stream in the simulator.
//! Line addresses are already well-distributed machine words, so a
//! Fibonacci multiply-shift over a power-of-two table with linear
//! probing is both sufficient and an order of magnitude cheaper.
//!
//! Deletions leave tombstones; tombstones are reclaimed on the next
//! rehash. Iteration order is the (deterministic) table order — callers
//! that need a canonical order sort, exactly as they did with the old
//! `HashMap` (whose order was *not* deterministic across processes).

/// Slot states. `FULL` slots hold a live key/value pair; `TOMB` slots
/// are deleted entries that still break probe chains.
const EMPTY: u8 = 0;
const FULL: u8 = 1;
const TOMB: u8 = 2;

const MIN_CAPACITY: usize = 64;

/// An open-addressed `u64 → V` map specialized for line addresses.
#[derive(Debug, Clone, Default)]
pub struct LineMap<V> {
    keys: Vec<u64>,
    vals: Vec<V>,
    ctrl: Vec<u8>,
    /// Live entries.
    len: usize,
    /// Live entries plus tombstones (probe-chain occupancy).
    used: usize,
}

impl<V: Default> LineMap<V> {
    /// An empty map; storage is allocated on first insert.
    pub fn new() -> Self {
        LineMap { keys: Vec::new(), vals: Vec::new(), ctrl: Vec::new(), len: 0, used: 0 }
    }

    /// Fibonacci multiply-shift start index for `line`.
    #[inline]
    fn index_of(&self, line: u64) -> usize {
        debug_assert!(self.ctrl.len().is_power_of_two());
        let h = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - self.ctrl.len().trailing_zeros())) as usize
    }

    /// Probes for `line`; returns the slot holding it, if present.
    #[inline]
    fn slot_of(&self, line: u64) -> Option<usize> {
        if self.ctrl.is_empty() {
            return None;
        }
        let mask = self.ctrl.len() - 1;
        let mut i = self.index_of(line);
        loop {
            match self.ctrl[i] {
                EMPTY => return None,
                FULL if self.keys[i] == line => return Some(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value for `line`, if present.
    #[inline]
    pub fn get(&self, line: u64) -> Option<&V> {
        self.slot_of(line).map(|i| &self.vals[i])
    }

    /// Mutable access to the value for `line`, if present.
    #[inline]
    pub fn get_mut(&mut self, line: u64) -> Option<&mut V> {
        self.slot_of(line).map(|i| &mut self.vals[i])
    }

    /// The value for `line`, inserting `V::default()` if absent.
    #[inline]
    pub fn entry_or_default(&mut self, line: u64) -> &mut V {
        self.reserve_one();
        let mask = self.ctrl.len() - 1;
        let mut i = self.index_of(line);
        let mut insert_at = None;
        loop {
            match self.ctrl[i] {
                EMPTY => {
                    // Reuse the first tombstone on the chain if we
                    // passed one; otherwise claim this empty slot.
                    let slot = insert_at.unwrap_or(i);
                    if self.ctrl[slot] == EMPTY {
                        self.used += 1;
                    }
                    self.ctrl[slot] = FULL;
                    self.keys[slot] = line;
                    self.vals[slot] = V::default();
                    self.len += 1;
                    return &mut self.vals[slot];
                }
                FULL if self.keys[i] == line => return &mut self.vals[i],
                TOMB => {
                    insert_at.get_or_insert(i);
                    i = (i + 1) & mask;
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Removes and returns the value for `line`, if present.
    pub fn remove(&mut self, line: u64) -> Option<V> {
        let i = self.slot_of(line)?;
        self.ctrl[i] = TOMB;
        self.len -= 1;
        Some(std::mem::take(&mut self.vals[i]))
    }

    /// Iterates over live `(line, value)` pairs in table order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.ctrl
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == FULL)
            .map(move |(i, _)| (self.keys[i], &self.vals[i]))
    }

    /// Grows or rehashes so one more insert cannot exceed 7/8 occupancy
    /// (counting tombstones, which lengthen probe chains just like live
    /// entries).
    fn reserve_one(&mut self) {
        let cap = self.ctrl.len();
        if cap > 0 && (self.used + 1) * 8 <= cap * 7 {
            return;
        }
        // Double when genuinely full of live entries; same-size rehash
        // is enough when tombstones are the problem.
        let new_cap = if (self.len + 1) * 4 >= cap.max(1) * 3 {
            (cap * 2).max(MIN_CAPACITY)
        } else {
            cap.max(MIN_CAPACITY)
        };
        let old_keys = std::mem::take(&mut self.keys);
        let mut old_vals = std::mem::take(&mut self.vals);
        let old_ctrl = std::mem::take(&mut self.ctrl);
        self.keys = vec![0; new_cap];
        self.vals = Vec::with_capacity(new_cap);
        self.vals.resize_with(new_cap, V::default);
        self.ctrl = vec![EMPTY; new_cap];
        self.len = 0;
        self.used = 0;
        for (i, &c) in old_ctrl.iter().enumerate() {
            if c == FULL {
                let slot = self.entry_or_default(old_keys[i]);
                *slot = std::mem::take(&mut old_vals[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m: LineMap<u32> = LineMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(32), None);
        *m.entry_or_default(32) = 7;
        *m.entry_or_default(64) = 9;
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(32), Some(&7));
        assert_eq!(m.get_mut(64).map(|v| *v), Some(9));
        assert_eq!(m.remove(32), Some(7));
        assert_eq!(m.remove(32), None);
        assert_eq!(m.get(32), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn entry_is_idempotent() {
        let mut m: LineMap<u32> = LineMap::new();
        *m.entry_or_default(96) = 5;
        assert_eq!(*m.entry_or_default(96), 5, "existing entry must be returned, not reset");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn reinsert_after_remove_reuses_tombstones() {
        let mut m: LineMap<u32> = LineMap::new();
        for line in (0..2048u64).map(|i| i * 32) {
            *m.entry_or_default(line) = line as u32;
        }
        for line in (0..2048u64).map(|i| i * 32) {
            assert_eq!(m.remove(line), Some(line as u32));
        }
        assert!(m.is_empty());
        // Churn through the same key repeatedly: tombstone recycling
        // (or a rehash) must keep this from growing without bound.
        for _ in 0..100_000 {
            *m.entry_or_default(320) = 1;
            m.remove(320);
        }
        assert!(m.ctrl.len() <= 8192, "table grew to {} on pure churn", m.ctrl.len());
    }

    #[test]
    fn survives_growth_across_many_lines() {
        let mut m: LineMap<u64> = LineMap::new();
        // Line-aligned addresses (low bits zero) — the real key shape.
        for i in 0..10_000u64 {
            *m.entry_or_default(i * 32) = i;
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(i * 32), Some(&i), "lost line {}", i * 32);
        }
        assert_eq!(m.iter().count(), 10_000);
        let mut sum = 0u64;
        for (_, v) in m.iter() {
            sum += *v;
        }
        assert_eq!(sum, 9_999 * 10_000 / 2);
    }

    #[test]
    fn colliding_keys_coexist() {
        // Keys engineered to collide: same multiply-shift bucket in a
        // MIN_CAPACITY table differ only below the top log2(cap) bits.
        let mut m: LineMap<u8> = LineMap::new();
        let a = 0u64;
        let b = 1u64 << 5; // tiny distance — adjacent buckets at worst
        *m.entry_or_default(a) = 1;
        *m.entry_or_default(b) = 2;
        assert_eq!(m.get(a), Some(&1));
        assert_eq!(m.get(b), Some(&2));
        m.remove(a);
        assert_eq!(m.get(b), Some(&2), "probe chain must survive a tombstone");
    }
}
