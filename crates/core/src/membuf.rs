//! TSO store buffers and the commit-serializability auditor.
//!
//! Under [`crate::MemoryModel::Tso`] each CPU owns a bounded FIFO
//! [`StoreBuffer`]: a retiring store enters the buffer instead of the
//! memory system, and buffered stores *drain* — are applied to the
//! speculative cache hierarchy, oldest first — at the protocol's
//! ordering points: sync operations, latch acquisition, the
//! homefree-token handoff, and epoch commit (plus whenever the buffer
//! is full and another store wants in). Loads probe their own CPU's
//! buffer youngest-first — TSO's same-address store-to-load forwarding
//! — and only reach the cache hierarchy on a miss. Cycles a CPU spends
//! waiting on a drain are accounted as
//! [`crate::CycleCategory::DrainStall`].
//!
//! The companion [`HbAuditor`] is the commit-time serializability
//! check: it maintains the happens-before order the committed epochs
//! claim (commit-order edges plus per-line write-write edges from the
//! last observed writer) and reports a structured breach — never a
//! panic — whenever adding an epoch would close a cycle, i.e. whenever
//! a commit would have to be ordered *before* something that already
//! committed. The paired store-flow invariant (every logged store is
//! either still buffered or was drained: checked in the simulator at
//! every commit and rewind) is what turns a silently dropped buffer
//! entry into a detected [`crate::ProtocolError`].

use std::collections::HashMap;
use tls_trace::{Addr, Pc};

/// One store held in a CPU's TSO store buffer, carrying everything the
/// memory system needs to apply it at drain time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferedStore {
    /// Op cursor within the owning epoch at dispatch time (rewinds
    /// truncate the buffer by this, exactly like the oracle store log).
    pub cursor: usize,
    /// Store address.
    pub addr: Addr,
    /// Store size in bytes.
    pub size: u8,
    /// Program counter of the store (violation attribution).
    pub pc: Pc,
    /// Sub-thread context the store dispatched under.
    pub sub: u8,
    /// Whether the owning epoch was speculative at dispatch time.
    pub speculative: bool,
}

impl BufferedStore {
    /// Byte range `[addr, addr + size)` of the store.
    fn range(&self) -> (u64, u64) {
        (self.addr.0, self.addr.0 + self.size as u64)
    }
}

/// What probing the store buffer for a load found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardOutcome {
    /// The youngest overlapping store fully covers the load: forward it
    /// (the load completes without touching the cache hierarchy).
    Hit,
    /// An overlapping store only partially covers the load: the buffer
    /// must drain past it before the load can issue (real TSO hardware
    /// stalls exactly here rather than merging bytes).
    Conflict,
    /// No buffered store overlaps the load; it issues to the caches.
    Miss,
}

/// A bounded FIFO store buffer — one per CPU under TSO.
///
/// The buffer is pure mechanism: it holds entries, forwards, drains
/// oldest-first, and truncates on rewind. Counters and drain *policy*
/// (when to drain, what a stall costs) live in the simulator.
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    entries: Vec<BufferedStore>,
    capacity: usize,
}

impl StoreBuffer {
    /// An empty buffer of `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> StoreBuffer {
        StoreBuffer { entries: Vec::with_capacity(capacity.max(1)), capacity: capacity.max(1) }
    }

    /// Entries currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when another store would not fit.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a store at the young end.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full — the simulator drains before
    /// pushing, so a full-buffer push is a protocol bug.
    pub fn push(&mut self, entry: BufferedStore) {
        assert!(
            !self.is_full(),
            "store buffer overflow: push into a full {}-entry buffer",
            self.capacity
        );
        self.entries.push(entry);
    }

    /// Removes and returns the oldest entry (the one a drain applies).
    pub fn pop_oldest(&mut self) -> Option<BufferedStore> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0))
        }
    }

    /// Oldest entry without removing it.
    pub fn peek_oldest(&self) -> Option<&BufferedStore> {
        self.entries.first()
    }

    /// Probes the buffer for a load of `size` bytes at `addr`,
    /// youngest entry first (TSO forwards the *newest* same-address
    /// store).
    pub fn forward(&self, addr: Addr, size: u8) -> ForwardOutcome {
        let (ls, le) = (addr.0, addr.0 + size as u64);
        for e in self.entries.iter().rev() {
            let (ss, se) = e.range();
            if ss < le && ls < se {
                return if ss <= ls && le <= se {
                    ForwardOutcome::Hit
                } else {
                    ForwardOutcome::Conflict
                };
            }
        }
        ForwardOutcome::Miss
    }

    /// Rewind support: discards every entry dispatched at or after op
    /// `cursor`, returning how many were dropped. Entries arrive in
    /// dispatch order so this is normally a suffix, but it is written
    /// as a filter: a chaos reordered-drain fault can leave the two
    /// oldest entries out of cursor order, and a rewind between them
    /// must still keep the older one.
    pub fn truncate_from(&mut self, cursor: usize) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.cursor < cursor);
        before - self.entries.len()
    }

    /// Iterates the buffered entries, oldest first (store-flow audit).
    pub fn iter(&self) -> impl Iterator<Item = &BufferedStore> {
        self.entries.iter()
    }

    /// Remaps sub-thread ids after the owning epoch merged its context
    /// `m` into `m-1` (mirrors the simulator's pending-violation remap:
    /// ids at or above `m` shift down, never below `m-1`).
    pub fn remap_merged_sub(&mut self, m: u8) {
        for e in &mut self.entries {
            if e.sub >= m {
                e.sub = (e.sub - 1).max(m - 1);
            }
        }
    }

    /// Chaos hook ([`crate::chaos::FaultClass::ReorderedDrain`]): swaps
    /// the two oldest entries so the next drain applies them out of
    /// program order. Returns false (and does nothing) with fewer than
    /// two entries buffered.
    pub fn swap_oldest_pair(&mut self) -> bool {
        if self.entries.len() < 2 {
            return false;
        }
        self.entries.swap(0, 1);
        true
    }

    /// Chaos hook ([`crate::chaos::FaultClass::DroppedEntry`]):
    /// silently discards the oldest entry — the store is lost without
    /// ever reaching the memory system. The serializability auditor's
    /// store-flow invariant must detect the hole.
    pub fn drop_oldest(&mut self) -> Option<BufferedStore> {
        self.pop_oldest()
    }
}

/// The commit-time happens-before auditor.
///
/// Nodes are committed epochs; edges are (a) commit order — each commit
/// happens-before the next — and (b) per-line write-write order: the
/// epoch whose store the committed image last absorbed for a line
/// happens-before any epoch that overwrites it. Both edge families must
/// agree with logical epoch order; an epoch that commits with a smaller
/// order than an edge predecessor would close a cycle, and the auditor
/// reports it as a breach (the simulator turns breaches into structured
/// [`crate::ProtocolError`]s, never panics).
#[derive(Debug, Default)]
pub struct HbAuditor {
    /// Logical order of the last committed writer per cache line.
    last_writer: HashMap<u64, u32>,
    /// Order of the most recently committed epoch.
    last_commit: Option<u32>,
    /// Breaches found (count mirrors `SimReport::serializability_breaches`).
    breaches: u64,
}

impl HbAuditor {
    /// A fresh auditor with no committed epochs.
    pub fn new() -> HbAuditor {
        HbAuditor::default()
    }

    /// Breaches found so far.
    pub fn breaches(&self) -> u64 {
        self.breaches
    }

    /// Records the commit of epoch `order` with the given written cache
    /// lines, returning a description of the first happens-before cycle
    /// it would close (or `None` when the commit is serializable).
    pub fn commit_epoch(
        &mut self,
        order: u32,
        lines: impl IntoIterator<Item = u64>,
    ) -> Option<String> {
        let mut breach = None;
        for line in lines {
            match self.last_writer.get(&line) {
                Some(&w) if w >= order => {
                    if breach.is_none() {
                        breach = Some(format!(
                            "happens-before cycle: epoch {order} overwrites line {line:#x} \
                             whose last committed writer is epoch {w}"
                        ));
                    }
                    self.last_writer.insert(line, order.max(w));
                }
                _ => {
                    self.last_writer.insert(line, order);
                }
            }
        }
        if breach.is_none() {
            if let Some(prev) = self.last_commit {
                if order <= prev {
                    breach = Some(format!(
                        "happens-before cycle: epoch {order} committed after epoch {prev} \
                         but is not ordered after it"
                    ));
                }
            }
        }
        self.last_commit = Some(self.last_commit.map_or(order, |p| p.max(order)));
        if breach.is_some() {
            self.breaches += 1;
        }
        breach
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(cursor: usize, addr: u64, size: u8) -> BufferedStore {
        BufferedStore {
            cursor,
            addr: Addr(addr),
            size,
            pc: Pc::new(0, 0),
            sub: 0,
            speculative: true,
        }
    }

    #[test]
    fn fifo_order_and_capacity() {
        let mut b = StoreBuffer::new(2);
        assert!(b.is_empty() && !b.is_full());
        b.push(entry(0, 0x100, 8));
        b.push(entry(1, 0x200, 8));
        assert!(b.is_full());
        assert_eq!(b.pop_oldest().unwrap().addr, Addr(0x100));
        assert_eq!(b.pop_oldest().unwrap().addr, Addr(0x200));
        assert_eq!(b.pop_oldest(), None);
    }

    #[test]
    #[should_panic(expected = "store buffer overflow")]
    fn push_into_full_buffer_panics() {
        let mut b = StoreBuffer::new(1);
        b.push(entry(0, 0x100, 8));
        b.push(entry(1, 0x200, 8));
    }

    #[test]
    fn forwarding_prefers_the_youngest_cover() {
        let mut b = StoreBuffer::new(4);
        b.push(entry(0, 0x100, 8));
        b.push(entry(1, 0x100, 8)); // younger store to the same address
        assert_eq!(b.forward(Addr(0x100), 8), ForwardOutcome::Hit);
        assert_eq!(b.forward(Addr(0x104), 4), ForwardOutcome::Hit);
        assert_eq!(b.forward(Addr(0x180), 8), ForwardOutcome::Miss);
    }

    #[test]
    fn partial_overlap_is_a_conflict() {
        let mut b = StoreBuffer::new(4);
        b.push(entry(0, 0x104, 4));
        // Load of [0x100, 0x108): overlaps but is not covered.
        assert_eq!(b.forward(Addr(0x100), 8), ForwardOutcome::Conflict);
        // A younger full-width store shadows the narrow one.
        b.push(entry(1, 0x100, 8));
        assert_eq!(b.forward(Addr(0x100), 8), ForwardOutcome::Hit);
    }

    #[test]
    fn truncate_from_drops_the_rewound_suffix() {
        let mut b = StoreBuffer::new(4);
        b.push(entry(10, 0x100, 8));
        b.push(entry(20, 0x200, 8));
        b.push(entry(30, 0x300, 8));
        assert_eq!(b.truncate_from(20), 2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.peek_oldest().unwrap().cursor, 10);
        assert_eq!(b.truncate_from(0), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn chaos_hooks_swap_and_drop() {
        let mut b = StoreBuffer::new(4);
        assert!(!b.swap_oldest_pair(), "needs two entries");
        b.push(entry(0, 0x100, 8));
        assert!(!b.swap_oldest_pair());
        b.push(entry(1, 0x200, 8));
        assert!(b.swap_oldest_pair());
        assert_eq!(b.peek_oldest().unwrap().addr, Addr(0x200));
        assert_eq!(b.drop_oldest().unwrap().addr, Addr(0x200));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn merge_remap_shifts_sub_ids_down() {
        let mut b = StoreBuffer::new(4);
        b.push(BufferedStore { sub: 1, ..entry(0, 0x100, 8) });
        b.push(BufferedStore { sub: 2, ..entry(1, 0x200, 8) });
        b.push(BufferedStore { sub: 3, ..entry(2, 0x300, 8) });
        b.remap_merged_sub(2);
        let subs: Vec<u8> = b.iter().map(|e| e.sub).collect();
        assert_eq!(subs, [1, 1, 2]);
    }

    #[test]
    fn hb_auditor_accepts_serializable_commits() {
        let mut a = HbAuditor::new();
        assert_eq!(a.commit_epoch(0, [0x100, 0x140]), None);
        assert_eq!(a.commit_epoch(1, [0x100]), None);
        assert_eq!(a.commit_epoch(2, [0x180]), None);
        assert_eq!(a.breaches(), 0);
    }

    #[test]
    fn hb_auditor_flags_commit_order_cycles() {
        let mut a = HbAuditor::new();
        assert_eq!(a.commit_epoch(1, [0x100]), None);
        let breach = a.commit_epoch(0, [0x200]).expect("out-of-order commit");
        assert!(breach.contains("happens-before cycle"), "{breach}");
        assert_eq!(a.breaches(), 1);
    }

    #[test]
    fn hb_auditor_flags_write_write_inversions() {
        let mut a = HbAuditor::new();
        assert_eq!(a.commit_epoch(2, [0x100]), None);
        assert_eq!(a.commit_epoch(3, []), None);
        // A commit claiming an order at or below the line's last
        // committed writer inverts the WW edge.
        let b = a.commit_epoch(2, [0x100]).expect("WW inversion");
        assert!(b.contains("last committed writer"), "{b}");
        assert_eq!(a.breaches(), 1);
    }
}
