//! Criterion micro-benchmarks of the MiniDB substrate: B+-tree operation
//! cost (with and without trace recording) and database load time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tls_minidb::{BTree, Env, PageAlloc, Tpcc, TpccConfig};

fn tree_with(n: u64, recording: bool) -> (Env, PageAlloc, BTree) {
    let mut env = Env::new();
    let alloc = PageAlloc::new(&mut env, 1);
    let tree = BTree::create(&mut env, &alloc, 64, 2);
    for k in 0..n {
        tree.insert(&mut env, &alloc, k * 2, &[7u8; 64]);
    }
    if recording {
        env.rec.start("bench", false);
    }
    (env, alloc, tree)
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.sample_size(20);
    for recording in [false, true] {
        let label = if recording { "recorded" } else { "raw" };
        g.bench_function(format!("get_100k_{label}"), |b| {
            let (mut env, _alloc, tree) = tree_with(100_000, recording);
            let mut buf = [0u8; 64];
            let mut k = 1u64;
            b.iter(|| {
                k = (k * 2862933555777941757 + 3037000493) % 200_000;
                tree.get(&mut env, k, &mut buf)
            })
        });
        g.bench_function(format!("insert_ascending_{label}"), |b| {
            b.iter_batched(
                || tree_with(10_000, recording),
                |(mut env, alloc, tree)| {
                    for k in 0..1000u64 {
                        tree.insert(&mut env, &alloc, 1_000_000 + k, &[3u8; 64]);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("tpcc_load");
    g.sample_size(10);
    g.bench_function("populate_test_scale", |b| b.iter(|| Tpcc::new(TpccConfig::test())));
    g.finish();
}

criterion_group!(benches, bench_btree, bench_load);
criterion_main!(benches);
