//! Criterion micro-benchmarks of the simulator itself: how fast the
//! timing model runs (host-time per simulated work), per Figure-5
//! experiment. These measure the *reproduction's* performance; the
//! paper's results come from the `table2`/`figure5`/`figure6` binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tls_core::experiment::{run_experiment, BenchmarkPrograms, ExperimentKind};
use tls_core::{CmpConfig, CmpSimulator, SpacingPolicy};
use tls_minidb::{Tpcc, TpccConfig, Transaction};
use tls_trace::{Addr, OpSink, Pc, ProgramBuilder, TraceProgram};

fn machine() -> CmpConfig {
    let mut c = CmpConfig::paper_default();
    c.subthreads.spacing = SpacingPolicy::EvenDivision;
    c.max_cycles = 500_000_000;
    c
}

fn tpcc_programs(txn: Transaction) -> BenchmarkPrograms {
    let (plain, tls) = Tpcc::record_pair(&TpccConfig::test(), txn, 1);
    BenchmarkPrograms { plain, tls }
}

/// A dependence-free compute program: the simulator's fast path.
fn synthetic(epochs: usize, ops: usize) -> TraceProgram {
    let mut b = ProgramBuilder::new("synthetic");
    b.begin_parallel();
    for e in 0..epochs {
        b.begin_epoch();
        for i in 0..ops {
            let pc = Pc::new(e as u16, (i % 64) as u16);
            match i % 5 {
                0 => b.load(pc, Addr(0x1_0000 + e as u64 * 4096 + (i as u64 % 64) * 8), 8),
                1 => b.branch(pc, i % 3 == 0),
                _ => b.int_alu(pc),
            }
        }
        b.end_epoch();
    }
    b.end_parallel();
    b.finish()
}

fn bench_experiments(c: &mut Criterion) {
    let progs = tpcc_programs(Transaction::NewOrder);
    let mut g = c.benchmark_group("figure5_new_order");
    g.sample_size(10);
    for kind in ExperimentKind::ALL {
        g.bench_function(kind.label(), |b| b.iter(|| run_experiment(kind, &machine(), &progs)));
    }
    g.finish();
}

fn bench_simulator_throughput(c: &mut Criterion) {
    let program = synthetic(8, 20_000);
    let ops = program.total_ops() as u64;
    let mut g = c.benchmark_group("simulator_throughput");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(ops));
    g.bench_function("dependence_free_160k_ops", |b| {
        b.iter(|| CmpSimulator::new(machine()).run(&program))
    });
    g.finish();
}

fn bench_violation_churn(c: &mut Criterion) {
    // Every epoch RMWs one shared location mid-thread: constant rewinds.
    let program = tls_core::synthetic::shared_dependences(
        8,
        4000,
        &[tls_core::synthetic::Dependence::new(0.5, 0.5)],
    );
    let mut g = c.benchmark_group("violation_churn");
    g.sample_size(20);
    g.bench_function("shared_counter_8_epochs", |bch| {
        bch.iter_batched(
            || program.clone(),
            |p| CmpSimulator::new(machine()).run(&p),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_trace_recording(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_recording");
    g.sample_size(10);
    g.bench_function("record_new_order", |b| {
        b.iter_batched(
            || Tpcc::new(TpccConfig::test()),
            |mut t| t.record(Transaction::NewOrder, 1),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_experiments,
    bench_simulator_throughput,
    bench_violation_churn,
    bench_trace_recording
);
criterion_main!(benches);
