//! Shared harness code for regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one artifact:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — simulation parameters |
//! | `table2` | Table 2 — benchmark statistics |
//! | `figure5` | Figure 5 — execution-time breakdown, 7 benchmarks × 5 experiments |
//! | `figure6` | Figure 6 — sub-thread count × size sweep |
//! | `figure2` | Figure 1/2 — the sub-thread rewind/tuning microbenchmark |
//! | `ablations` | §2.1/§2.2 design ablations (victim cache, start table, spacing) |
//! | `tuning_curve` | §3.2 — profiler-guided iterative optimization |
//! | `scalability` | extension — CPU-count scaling (2/4/8) |
//! | `spec_contrast` | §1 context — SPEC-like vs database-like regimes |
//! | `probe` | development probe (all experiments for one benchmark) |
//!
//! The per-figure binaries are thin wrappers over the declarative plans in
//! `tls-harness` — `cargo run -p tls-harness --bin suite` runs all of them
//! in one parallel, snapshot-cached pass. The evaluation vocabulary
//! ([`Scale`], [`instances`], [`paper_machine`], the stack renderers)
//! lives in `tls-harness::eval` and is re-exported here unchanged.
//!
//! Pass `--scale test` for a fast run or `--scale paper` (default) for the
//! full-size workload; `--json DIR` additionally writes machine-readable
//! results.

#![forbid(unsafe_code)]

use tls_core::experiment::BenchmarkPrograms;
use tls_minidb::{Tpcc, TpccConfig, Transaction};

pub use tls_harness::eval::{
    breakdown_row, initials, instances, paper_machine, render_stack, Scale,
};

/// Records the (plain, TLS) program pair for one benchmark.
pub fn record_benchmark(cfg: &TpccConfig, txn: Transaction, count: usize) -> BenchmarkPrograms {
    let (plain, tls) = Tpcc::record_pair(cfg, txn, count);
    BenchmarkPrograms { plain, tls }
}

/// The optional `--json DIR` output directory.
pub fn json_dir(args: &[String]) -> Option<std::path::PathBuf> {
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

/// Writes `value` as pretty JSON under `dir/name.json` when requested.
pub fn write_json<T: serde::Serialize>(dir: &Option<std::path::PathBuf>, name: &str, value: &T) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, serde_json::to_string_pretty(value).expect("serialize"))
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses() {
        let args = vec!["--scale".to_string(), "test".to_string()];
        assert_eq!(Scale::parse(&args), Scale::Test);
        assert_eq!(Scale::parse(&[]), Scale::Paper);
    }

    #[test]
    fn render_stack_length_tracks_total() {
        let stack = vec![("Idle", 0.5), ("Busy", 0.5)];
        let bar = render_stack(&stack);
        assert_eq!(bar.len(), 50);
        assert!(bar.starts_with('I') && bar.ends_with('B'));
        let half = vec![("Busy", 0.25)];
        assert_eq!(render_stack(&half).len(), 12);
    }

    #[test]
    fn record_benchmark_produces_both_traces() {
        let progs = record_benchmark(&TpccConfig::test(), Transaction::NewOrder, 1);
        assert_eq!(progs.plain.stats().epochs, 0);
        assert!(progs.tls.stats().epochs >= 5);
    }
}
