//! Shared harness code for regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one artifact:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — simulation parameters |
//! | `table2` | Table 2 — benchmark statistics |
//! | `figure5` | Figure 5 — execution-time breakdown, 7 benchmarks × 5 experiments |
//! | `figure6` | Figure 6 — sub-thread count × size sweep |
//! | `figure2` | Figure 1/2 — the sub-thread rewind/tuning microbenchmark |
//! | `ablations` | §2.1/§2.2 design ablations (victim cache, start table, spacing) |
//! | `tuning_curve` | §3.2 — profiler-guided iterative optimization |
//! | `scalability` | extension — CPU-count scaling (2/4/8) |
//! | `spec_contrast` | §1 context — SPEC-like vs database-like regimes |
//! | `probe` | development probe (all experiments for one benchmark) |
//!
//! Pass `--scale test` for a fast run or `--scale paper` (default) for the
//! full-size workload; `--json DIR` additionally writes machine-readable
//! results.

#![forbid(unsafe_code)]

use tls_core::experiment::BenchmarkPrograms;
use tls_core::{CmpConfig, SimReport};
use tls_minidb::{Tpcc, TpccConfig, Transaction};

/// How many transaction instances each benchmark records, per the
/// transaction's size (small transactions record more instances so runs
/// are not dominated by a single parameter draw).
pub fn instances(txn: Transaction, scale: Scale) -> usize {
    let base = match txn {
        Transaction::NewOrder => 4,
        Transaction::NewOrder150 => 1,
        Transaction::Delivery => 1,
        Transaction::DeliveryOuter => 1,
        Transaction::StockLevel => 2,
        Transaction::Payment => 6,
        Transaction::OrderStatus => 6,
    };
    match scale {
        Scale::Paper => base,
        Scale::Test => base,
    }
}

/// Workload scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full single-warehouse TPC-C (the paper's configuration).
    Paper,
    /// Milliseconds-fast scaled-down population.
    Test,
}

impl Scale {
    /// The matching TPC-C configuration.
    pub fn tpcc(self) -> TpccConfig {
        match self {
            Scale::Paper => TpccConfig::paper(),
            Scale::Test => TpccConfig::test(),
        }
    }

    /// Parses `--scale` arguments.
    pub fn parse(args: &[String]) -> Scale {
        match args.iter().position(|a| a == "--scale") {
            Some(i) => match args.get(i + 1).map(String::as_str) {
                Some("test") => Scale::Test,
                Some("paper") | None => Scale::Paper,
                Some(other) => panic!("unknown scale '{other}' (use: paper, test)"),
            },
            None => Scale::Paper,
        }
    }
}

/// Records the (plain, TLS) program pair for one benchmark.
pub fn record_benchmark(cfg: &TpccConfig, txn: Transaction, count: usize) -> BenchmarkPrograms {
    let (plain, tls) = Tpcc::record_pair(cfg, txn, count);
    BenchmarkPrograms { plain, tls }
}

/// The optional `--json DIR` output directory.
pub fn json_dir(args: &[String]) -> Option<std::path::PathBuf> {
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

/// Writes `value` as pretty JSON under `dir/name.json` when requested.
pub fn write_json<T: serde::Serialize>(dir: &Option<std::path::PathBuf>, name: &str, value: &T) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, serde_json::to_string_pretty(value).expect("serialize"))
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}

/// One row of a breakdown table, normalized to a reference cycle count.
pub fn breakdown_row(report: &SimReport, reference: u64) -> String {
    let stack = report.normalized_stack(reference);
    let total: f64 = stack.iter().map(|(_, v)| v).sum();
    let cells: Vec<String> =
        stack.iter().map(|(n, v)| format!("{}={:5.3}", initials(n), v)).collect();
    format!("{} | total={:5.3}", cells.join(" "), total)
}

/// Renders a normalized breakdown as an ASCII stacked bar, 50 characters
/// per 1.0 of normalized time: `I` idle, `F` failed, `L` latch, `S` sync,
/// `M` cache miss, `B` busy — the Figure 5 bars in terminal form.
pub fn render_stack(stack: &[(&'static str, f64)]) -> String {
    const CHARS_PER_UNIT: f64 = 50.0;
    let mut bar = String::new();
    let mut carry = 0.0;
    for (name, value) in stack {
        let glyph = match *name {
            "Idle" => 'I',
            "Failed" => 'F',
            "Latch Stall" => 'L',
            "Sync" => 'S',
            "Cache Miss" => 'M',
            "Busy" => 'B',
            other => panic!("unknown category {other}"),
        };
        // Carry fractional cells so the bar length tracks the total.
        let exact = value * CHARS_PER_UNIT + carry;
        let cells = exact.floor() as usize;
        carry = exact - cells as f64;
        bar.extend(std::iter::repeat_n(glyph, cells));
    }
    bar
}

fn initials(name: &str) -> &'static str {
    match name {
        "Idle" => "idle",
        "Failed" => "fail",
        "Latch Stall" => "ltch",
        "Sync" => "sync",
        "Cache Miss" => "miss",
        "Busy" => "busy",
        other => panic!("unknown category {other}"),
    }
}

/// The paper's 4-CPU machine (Table 1 + baseline sub-threads).
pub fn paper_machine() -> CmpConfig {
    let mut cfg = CmpConfig::paper_default();
    // Safety valve: no benchmark should exceed this.
    cfg.max_cycles = 4_000_000_000;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses() {
        let args = vec!["--scale".to_string(), "test".to_string()];
        assert_eq!(Scale::parse(&args), Scale::Test);
        assert_eq!(Scale::parse(&[]), Scale::Paper);
    }

    #[test]
    fn render_stack_length_tracks_total() {
        let stack = vec![("Idle", 0.5), ("Busy", 0.5)];
        let bar = render_stack(&stack);
        assert_eq!(bar.len(), 50);
        assert!(bar.starts_with('I') && bar.ends_with('B'));
        let half = vec![("Busy", 0.25)];
        assert_eq!(render_stack(&half).len(), 12);
    }

    #[test]
    fn record_benchmark_produces_both_traces() {
        let progs = record_benchmark(&TpccConfig::test(), Transaction::NewOrder, 1);
        assert_eq!(progs.plain.stats().epochs, 0);
        assert!(progs.tls.stats().epochs >= 5);
    }
}
