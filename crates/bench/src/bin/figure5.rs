//! Regenerates **Figure 5**: overall performance of the optimized
//! benchmarks on a 4-CPU system.
//!
//! For each of the seven benchmarks, runs the five experiments
//! (SEQUENTIAL, TLS-SEQ, NO SUB-THREAD, BASELINE, NO SPECULATION) and
//! prints the execution-time breakdown normalized to SEQUENTIAL — the
//! stacked bars of Figure 5(a)–(g) — plus the speedups the paper quotes
//! (1.9–2.9× for three of the five transactions).
//!
//! Thin wrapper over the `figure5` plan in `tls-harness`; the `suite`
//! binary runs the same plan alongside every other artifact.
//!
//! Usage: `cargo run --release -p tls-bench --bin figure5 [--scale paper|test] [--json DIR]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    tls_harness::suite::run_single_plan("figure5", &args);
}
