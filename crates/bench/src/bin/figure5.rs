//! Regenerates **Figure 5**: overall performance of the optimized
//! benchmarks on a 4-CPU system.
//!
//! For each of the seven benchmarks, runs the five experiments
//! (SEQUENTIAL, TLS-SEQ, NO SUB-THREAD, BASELINE, NO SPECULATION) and
//! prints the execution-time breakdown normalized to SEQUENTIAL — the
//! stacked bars of Figure 5(a)–(g) — plus the speedups the paper quotes
//! (1.9–2.9× for three of the five transactions).
//!
//! Usage: `cargo run --release -p tls-bench --bin figure5 [--scale paper|test] [--json DIR]`

use serde::Serialize;
use tls_bench::{instances, json_dir, paper_machine, record_benchmark, render_stack, write_json, Scale};
use tls_core::experiment::{run_benchmark, ExperimentKind};
use tls_core::SimReport;
use tls_minidb::Transaction;

#[derive(Serialize)]
struct Bar {
    experiment: &'static str,
    total_cycles: u64,
    speedup_vs_sequential: f64,
    normalized_stack: Vec<(&'static str, f64)>,
    violations_primary: u64,
    violations_secondary: u64,
    violations_overflow: u64,
}

#[derive(Serialize)]
struct Panel {
    benchmark: &'static str,
    transactions: usize,
    bars: Vec<Bar>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::parse(&args);
    let machine = paper_machine();
    let mut panels = Vec::new();

    for txn in Transaction::ALL {
        let count = instances(txn, scale);
        let progs = record_benchmark(&scale.tpcc(), txn, count);
        let results = run_benchmark(&machine, &progs);
        let seq_cycles = results
            .iter()
            .find(|(k, _)| *k == ExperimentKind::Sequential)
            .map(|(_, r)| r.total_cycles)
            .expect("sequential bar present");

        println!("\nFigure 5: {} ({} transactions)", txn.label(), count);
        println!("{:-<120}", "");
        println!(
            "{:<15} {:>7} | {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} | {:>6}",
            "experiment", "speedup", "idle", "fail", "latch", "sync", "miss", "busy", "total"
        );
        let bars = results
            .iter()
            .map(|(kind, r)| {
                print_bar(kind.label(), r, seq_cycles);
                Bar {
                    experiment: kind.label(),
                    total_cycles: r.total_cycles,
                    speedup_vs_sequential: seq_cycles as f64 / r.total_cycles.max(1) as f64,
                    normalized_stack: r.normalized_stack(seq_cycles),
                    violations_primary: r.violations.primary,
                    violations_secondary: r.violations.secondary,
                    violations_overflow: r.violations.overflow,
                }
            })
            .collect();
        panels.push(Panel { benchmark: txn.label(), transactions: count, bars });
    }

    println!("\nSummary (speedup of BASELINE over SEQUENTIAL):");
    for p in &panels {
        let s = p
            .bars
            .iter()
            .find(|b| b.experiment == "BASELINE")
            .map(|b| b.speedup_vs_sequential)
            .unwrap_or(0.0);
        println!("  {:<16} {:.2}x", p.benchmark, s);
    }
    write_json(&json_dir(&args), "figure5", &panels);
}

fn print_bar(label: &str, r: &SimReport, seq: u64) {
    let stack = r.normalized_stack(seq);
    let v: Vec<f64> = stack.iter().map(|(_, x)| *x).collect();
    println!(
        "{:<15} {:>6.2}x | {:>6.3} {:>6.3} {:>6.3} {:>6.3} {:>6.3} {:>6.3} | {:>6.3}",
        label,
        seq as f64 / r.total_cycles.max(1) as f64,
        v[0],
        v[1],
        v[2],
        v[3],
        v[4],
        v[5],
        v.iter().sum::<f64>()
    );
    println!("{:>24}{}", "", render_stack(&stack));
}
