//! Development probe: run one benchmark through all five Figure-5
//! experiments and print the raw dynamics (used to calibrate the workload
//! against Table 2 / Figure 5 shapes; not itself a paper artifact).

use tls_bench::{breakdown_row, paper_machine, record_benchmark, Scale};
use tls_core::experiment::{run_benchmark, ExperimentKind};
use tls_minidb::Transaction;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::parse(&args);
    let which = args.iter().find(|a| !a.starts_with("--") && *a != "test" && *a != "paper");
    let txns: Vec<Transaction> = match which {
        // A name was given: it must parse. Silently running all seven
        // benchmarks on a typo wastes minutes and hides the mistake.
        Some(name) => match Transaction::from_cli_name(name) {
            Some(t) => vec![t],
            None => {
                eprintln!("unknown benchmark '{name}'; valid benchmarks:");
                for t in Transaction::ALL {
                    eprintln!("  {}", t.trace_name());
                }
                std::process::exit(2);
            }
        },
        None => Transaction::ALL.to_vec(),
    };
    let machine = paper_machine();
    for txn in txns {
        let count = tls_bench::instances(txn, scale);
        let progs = record_benchmark(&scale.tpcc(), txn, count);
        let stats = progs.tls.stats();
        println!(
            "\n=== {} ({} txns): {} ops, {} epochs avg {:.0} ops, coverage {:.1}%",
            txn.label(),
            count,
            stats.total_ops,
            stats.epochs,
            stats.avg_epoch_ops(),
            100.0 * stats.coverage()
        );
        let results = run_benchmark(&machine, &progs);
        let seq = results
            .iter()
            .find(|(k, _)| *k == ExperimentKind::Sequential)
            .map(|(_, r)| r.total_cycles)
            .unwrap();
        for (kind, r) in &results {
            println!(
                "{:14} {:>12} cyc  speedup {:5.2}  viol p/s/o {:>4}/{:>4}/{:>3}  subs {:>4}  {}",
                kind.label(),
                r.total_cycles,
                seq as f64 / r.total_cycles as f64,
                r.violations.primary,
                r.violations.secondary,
                r.violations.overflow,
                r.subthreads_started,
                breakdown_row(r, seq),
            );
            if args.iter().any(|a| a == "--profile") {
                for e in r.profile.iter().take(6) {
                    println!(
                        "    load {:?} <- store {:?}: {} failed cycles over {} violations",
                        e.load_pc, e.store_pc, e.failed_cycles, e.violations
                    );
                }
            }
        }
    }
}
