//! Extension study: the checked-in example workload spec run through
//! record → simulate → report (sequential reference, TLS baseline, and a
//! sub-thread spacing sweep).
//!
//! Thin wrapper over the `workload` plan in `tls-harness`. To run an
//! arbitrary spec file instead of the example, use the suite verb:
//! `suite workload <spec.json>`.
//!
//! Usage: `cargo run --release -p tls-bench --bin workload [--scale paper|test] [--json DIR]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    tls_harness::suite::run_single_plan("workload", &args);
}
