//! Regenerates the **Figure 1 / Figure 2** microbenchmark: how sub-threads
//! change the payoff of removing a data dependence.
//!
//! Two speculative threads; thread 1 stores `*p` early (20%) and `*q`
//! late (80%); thread 2 loads `*p` at 10% and `*q` at 70% of its own
//! execution. Four configurations are measured: {with, without} the `*p`
//! dependence × {all-or-nothing, sub-threads}, plus the idealized
//! NO SPECULATION execution of Figure 2(c).
//!
//! Expected shapes (the paper's Figure 2):
//!
//! * **(a)** all-or-nothing: removing `*p` does **not** help — the `*q`
//!   violation still rewinds the whole thread;
//! * **(b)** sub-threads: removing `*p` **does** help — only the work
//!   after the last checkpoint before the `*q` load is re-executed.
//!
//! Thin wrapper over the `figure2` plan in `tls-harness`; the `suite`
//! binary runs the same plan alongside every other artifact.
//!
//! Usage: `cargo run --release -p tls-bench --bin figure2 [--json DIR]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    tls_harness::suite::run_single_plan("figure2", &args);
}
