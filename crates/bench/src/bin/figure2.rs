//! Regenerates the **Figure 1 / Figure 2** microbenchmark: how sub-threads
//! change the payoff of removing a data dependence.
//!
//! Two speculative threads; thread 1 stores `*p` early (20%) and `*q`
//! late (80%); thread 2 loads `*p` at 10% and `*q` at 70% of its own
//! execution. Four configurations are measured: {with, without} the `*p`
//! dependence × {all-or-nothing, sub-threads}, plus the idealized
//! NO SPECULATION execution of Figure 2(c).
//!
//! Expected shapes (the paper's Figure 2):
//!
//! * **(a)** all-or-nothing: removing `*p` does **not** help — and can
//!   hurt — because the `*q` violation still rewinds the whole thread
//!   ("removing the early dependence only delays the inevitable
//!   re-execution"), and without the early restart's stagger the late
//!   dependence fires from a deeper position.
//! * **(b)** with sub-threads, each removed dependence improves
//!   performance incrementally.
//!
//! Usage: `cargo run --release -p tls-bench --bin figure2 [--json DIR]`

use serde::Serialize;
use tls_bench::{json_dir, paper_machine, write_json};
use tls_core::{CmpSimulator, SubThreadConfig};
use tls_trace::{Addr, OpSink, Pc, ProgramBuilder, TraceProgram};

const WORK: usize = 40_000;
const P: Addr = Addr(0x10_0000);
const Q: Addr = Addr(0x10_0040);

/// Builds the two-thread program; `with_p` keeps the early dependence.
fn program(with_p: bool) -> TraceProgram {
    let mut b = ProgramBuilder::new(if with_p { "fig2-with-p" } else { "fig2-without-p" });
    b.begin_parallel();
    // Thread 1: producer.
    b.begin_epoch();
    b.int_ops(Pc::new(1, 0), WORK / 5);
    b.store(Pc::new(1, 1), P, 8); // *p = ... at 20%
    b.int_ops(Pc::new(1, 2), WORK * 3 / 5);
    b.store(Pc::new(1, 3), Q, 8); // *q = ... at 80%
    b.int_ops(Pc::new(1, 4), WORK / 5);
    b.end_epoch();
    // Thread 2: consumer.
    b.begin_epoch();
    b.int_ops(Pc::new(2, 0), WORK / 10);
    if with_p {
        b.load(Pc::new(2, 1), P, 8); // ... = *p at 10%
    }
    b.int_ops(Pc::new(2, 2), WORK * 6 / 10);
    b.load(Pc::new(2, 3), Q, 8); // ... = *q at 70%
    b.int_ops(Pc::new(2, 4), WORK * 3 / 10);
    b.end_epoch();
    b.end_parallel();
    b.finish()
}

#[derive(Serialize)]
struct Row {
    config: String,
    cycles: u64,
    violations: u64,
    failed_cpu_cycles: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let base = paper_machine();
    let mut rows = Vec::new();

    println!("Figure 2 microbenchmark ({} ops per thread)", WORK);
    println!("{:-<72}", "");
    for (mode, subs) in [("all-or-nothing", SubThreadConfig::disabled()),
        ("sub-threads", SubThreadConfig::baseline())]
    {
        for with_p in [true, false] {
            let mut cfg = base;
            cfg.subthreads = subs;
            let r = CmpSimulator::new(cfg).run(&program(with_p));
            let label = format!(
                "{mode:<15} {}",
                if with_p { "with *p and *q" } else { "*p removed    " }
            );
            println!(
                "{label}  {:>8} cycles  {:>2} violations  {:>8} failed",
                r.total_cycles,
                r.violations.total(),
                r.breakdown.failed
            );
            rows.push(Row {
                config: label,
                cycles: r.total_cycles,
                violations: r.violations.total(),
                failed_cpu_cycles: r.breakdown.failed,
            });
        }
    }
    // Figure 2(c): idealized parallel execution.
    let mut cfg = base;
    cfg.track_dependences = false;
    let r = CmpSimulator::new(cfg).run(&program(true));
    println!(
        "{:<31}  {:>8} cycles (idealized, Figure 2c)",
        "no-speculation bound", r.total_cycles
    );
    rows.push(Row {
        config: "no-speculation bound".into(),
        cycles: r.total_cycles,
        violations: 0,
        failed_cpu_cycles: 0,
    });

    // The paper's qualitative claims, checked.
    let get = |needle: &str| rows.iter().find(|r| r.config.contains(needle)).unwrap().cycles;
    let aon_with = rows[0].cycles;
    let aon_without = rows[1].cycles;
    let sub_with = rows[2].cycles;
    let sub_without = rows[3].cycles;
    let _ = get;
    println!("{:-<72}", "");
    println!(
        "all-or-nothing: removing *p changed {} -> {} cycles ({})",
        aon_with,
        aon_without,
        if aon_without >= aon_with { "no better, as Figure 2(a) warns" } else { "better" }
    );
    println!(
        "sub-threads:    removing *p changed {} -> {} cycles ({})",
        sub_with,
        sub_without,
        if sub_without <= sub_with { "improved, as Figure 2(b) promises" } else { "worse" }
    );
    write_json(&json_dir(&args), "figure2", &rows);
}
