//! Kernel microbenchmarks: host cost of the simulator's hot paths,
//! written to `BENCH_kernel.json` so future PRs can spot kernel
//! regressions without re-deriving a measurement protocol.
//!
//! Three layers are measured:
//!
//! 1. **`SpecL2` accesses** — ns/op for speculative reads and writes
//!    against a resident working set (the per-memory-op cost of the
//!    protocol engine).
//! 2. **Commit/rewind** — ns/op for a full speculative-epoch lifecycle
//!    (touch lines, then commit or rewind them).
//! 3. **Whole-machine runs** — simulated Mcycles per host-second on
//!    synthetic programs, with idle-cycle fast-forward on vs off. The
//!    `ff_speedup` ratio is the direct before/after of the fast-forward
//!    optimization; the reports are asserted identical both ways. Each
//!    run is also timed with an [`Observer`] attached
//!    (`mcycles_per_host_s_obs_on` / `obs_overhead`) — the observed
//!    report is asserted identical too, and the overhead column is the
//!    evidence behind the "<3% with the sink on" claim in
//!    `EXPERIMENTS.md`.
//!
//! Usage: `kernel [--out PATH]` (default `BENCH_kernel.json`).

#![forbid(unsafe_code)]

use serde::Serialize;
use std::time::Instant;
use tls_core::synthetic::{shared_dependences, Dependence};
use tls_core::{
    AccessCtx, CmpConfig, CmpSimulator, L2Outcome, Observer, RunOptions, SpacingPolicy, SpecL2,
};
use tls_trace::{Addr, OpSink, Pc, ProgramBuilder, TraceProgram};

#[derive(Serialize)]
struct OpBench {
    name: &'static str,
    ns_per_op: f64,
    ops: u64,
}

#[derive(Serialize)]
struct RunBench {
    name: &'static str,
    sim_cycles: u64,
    mcycles_per_host_s_ff_on: f64,
    mcycles_per_host_s_ff_off: f64,
    ff_speedup: f64,
    /// Throughput with an event sink + metrics recorder attached
    /// (fast-forward on). The observed report is asserted identical.
    mcycles_per_host_s_obs_on: f64,
    /// Host-time cost of observation: obs-on wall time over plain wall
    /// time (1.00 = free; the acceptance bar is <= 1.03).
    obs_overhead: f64,
}

#[derive(Serialize)]
struct PagerBench {
    /// Pool frames of the measured run.
    frames: usize,
    /// ns per pin (hit + miss paths combined) across the oracle
    /// workload, pool thrashing.
    ns_per_pin: f64,
    /// ns per crash point for a full REDO recovery + logical diff.
    ns_per_crash_point: f64,
    /// Crash points checked (all green, or the bench aborts).
    crash_points: u64,
    /// The run's buffer-pool counters.
    counters: tls_minidb::PagerCounters,
}

#[derive(Serialize)]
struct WorkloadCompilerBench {
    /// Spec compiled (the example spec the suite's `workload` plan runs).
    spec: &'static str,
    /// Host ms for one full compile (two recordings: plain + TLS).
    compile_ms: f64,
    /// Recorded ops per host-second across both recordings.
    ops_per_host_s: f64,
    /// Total ops of the `(plain, tls)` pair.
    program_ops: u64,
    /// Speculative scan epochs the TLS recording carries.
    scan_epochs: u64,
    /// Ops inside those epochs.
    scan_epoch_ops: u64,
    /// Simulated Mcycles per host-second running the TLS recording.
    sim_mcycles_per_host_s: f64,
}

#[derive(Serialize)]
struct TraceStoreBench {
    /// Dynamic ops of the measured snapshot (both programs of the pair).
    trace_ops: u64,
    /// Snapshot size on disk in bytes.
    trace_bytes: u64,
    /// ns per op for the owned warm path: read the file, parse the
    /// structure, copy every record into heap programs, fingerprint both
    /// (what every warm store open cost before the zero-copy store).
    decode_ns_per_op: f64,
    /// Ops per host-second through the owned decode path.
    decode_ops_per_s: f64,
    /// ns per op for the zero-copy warm path: map the file, validate the
    /// container + bank once, stream both fingerprints — no op copies.
    mmap_ns_per_op: f64,
    /// Ops per host-second through the mapped path.
    mmap_ops_per_s: f64,
    /// decode time over map time for the same snapshot.
    mmap_speedup: f64,
    /// Grid points of the timed warm sweep below.
    sweep_points: usize,
    /// Batched sweep throughput at test scale, trace snapshots warm but
    /// report cache cold — so this times map-once + simulate, the
    /// engine's steady state on new grids.
    sweep_points_per_hour: f64,
}

#[derive(Serialize)]
struct VpredictBench {
    /// ns per predictor training (tag match, confidence update).
    ns_per_train: f64,
    /// ns per prediction probe against a warm table.
    ns_per_probe: f64,
    /// ns per commit-time validation (synthetic value-model evaluation
    /// plus the predicted-value comparison).
    ns_per_validate: f64,
    /// Simulated cycles of the collider program, predictor off.
    sim_cycles_off: u64,
    /// Simulated cycles with the Prophet-style predictor on (lower:
    /// suppressed RAWs stop burning failed cycles).
    sim_cycles_on: u64,
    mcycles_per_host_s_off: f64,
    mcycles_per_host_s_on: f64,
    /// Host wall-time ratio on/off for the same program (the price of
    /// probe + train + validate inside the simulation loop).
    host_overhead: f64,
    /// Suppressed RAWs that validated at commit in the measured run.
    predicted_hits: u64,
    /// Suppressions that failed validation and rewound.
    value_mispredicts: u64,
}

#[derive(Serialize)]
struct MembufBench {
    /// ns per buffered store (FIFO push into a non-full buffer).
    ns_per_buffered_store: f64,
    /// ns per same-address load probe against a warm buffer (youngest-
    /// first scan ending in a forwarding hit).
    ns_per_forwarded_load: f64,
    /// ns per full drain of a 32-entry buffer (fill + pop to empty).
    ns_per_full_drain: f64,
    /// Simulated cycles of the RMW collider on the SC baseline.
    sim_cycles_sc: u64,
    /// Simulated cycles under `MemoryModel::Tso { buffer_entries: 8 }`.
    sim_cycles_tso: u64,
    mcycles_per_host_s_sc: f64,
    mcycles_per_host_s_tso: f64,
    /// Host wall-time ratio tso/sc for the same program (the price of
    /// buffer probes + the drain engine inside the simulation loop).
    host_overhead: f64,
    /// Stores buffered in the measured TSO run (must be nonzero).
    buffered_stores: u64,
    /// Loads forwarded from the buffer in the measured TSO run.
    forwarded_loads: u64,
    /// Drain-stall cycles of the measured TSO run.
    drain_stall_cycles: u64,
}

#[derive(Serialize)]
struct KernelBench {
    ops: Vec<OpBench>,
    runs: Vec<RunBench>,
    pager: PagerBench,
    workload: WorkloadCompilerBench,
    trace_store: TraceStoreBench,
    vpredict: VpredictBench,
    membuf: MembufBench,
}

fn machine() -> CmpConfig {
    let mut c = CmpConfig::paper_default();
    c.subthreads.spacing = SpacingPolicy::EvenDivision;
    c.max_cycles = 500_000_000;
    c
}

/// Median-of-samples wall time for `f`, in seconds.
fn time_s<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            criterion_black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn criterion_black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn spec_l2(cfg: &CmpConfig) -> SpecL2 {
    SpecL2::new(cfg.l2, cfg.mem, cfg.victim_entries, cfg.cpus, cfg.subthreads.contexts, true)
}

/// ns/op for speculative loads over a line-resident working set.
fn bench_read(cfg: &CmpConfig) -> OpBench {
    let mut l2 = spec_l2(cfg);
    let lines: Vec<Addr> = (0..256u64).map(|i| Addr(0x4_0000 + i * 64)).collect();
    let ctx = AccessCtx { cpu: 1, sub: 1, speculative: true };
    // Warm the set so the steady state is all hits.
    let mut out = L2Outcome::default();
    for &a in &lines {
        l2.read_into(0, a, 8, ctx, &mut out);
    }
    const ROUNDS: u64 = 2000;
    let ops = ROUNDS * lines.len() as u64;
    let secs = time_s(5, || {
        for r in 0..ROUNDS {
            for &a in &lines {
                l2.read_into(r, a, 8, ctx, &mut out);
            }
        }
    });
    OpBench { name: "specl2_read_hit", ns_per_op: secs * 1e9 / ops as f64, ops }
}

/// ns/op for speculative stores that cross-check reader lists.
fn bench_write(cfg: &CmpConfig) -> OpBench {
    let mut l2 = spec_l2(cfg);
    let lines: Vec<Addr> = (0..256u64).map(|i| Addr(0x8_0000 + i * 64)).collect();
    let reader = AccessCtx { cpu: 2, sub: 0, speculative: true };
    let writer = AccessCtx { cpu: 1, sub: 1, speculative: true };
    let mut out = L2Outcome::default();
    for &a in &lines {
        l2.read_into(0, a, 8, reader, &mut out);
    }
    const ROUNDS: u64 = 2000;
    let ops = ROUNDS * lines.len() as u64;
    let secs = time_s(5, || {
        for r in 0..ROUNDS {
            for &a in &lines {
                l2.write_into(r, a, 8, writer, &mut out);
            }
        }
    });
    OpBench { name: "specl2_write_readers", ns_per_op: secs * 1e9 / ops as f64, ops }
}

/// ns/op for a touch-then-commit / touch-then-rewind epoch lifecycle.
fn bench_commit_rewind(cfg: &CmpConfig) -> Vec<OpBench> {
    let ctx = AccessCtx { cpu: 1, sub: 0, speculative: true };
    let lines: Vec<Addr> = (0..512u64).map(|i| Addr(0xC_0000 + i * 64)).collect();
    const ROUNDS: u64 = 200;
    let ops = ROUNDS * lines.len() as u64;
    let mut overflow = Vec::new();
    let mut out = L2Outcome::default();

    let mut l2 = spec_l2(cfg);
    let commit_secs = time_s(5, || {
        for r in 0..ROUNDS {
            for &a in &lines {
                l2.write_into(r, a, 8, ctx, &mut out);
            }
            overflow.clear();
            l2.commit_into(ctx.cpu, &mut overflow);
        }
    });

    let mut l2 = spec_l2(cfg);
    let rewind_secs = time_s(5, || {
        for r in 0..ROUNDS {
            for &a in &lines {
                l2.write_into(r, a, 8, ctx, &mut out);
            }
            l2.rewind(ctx.cpu, 0);
        }
    });

    vec![
        OpBench { name: "specl2_touch_commit", ns_per_op: commit_secs * 1e9 / ops as f64, ops },
        OpBench { name: "specl2_touch_rewind", ns_per_op: rewind_secs * 1e9 / ops as f64, ops },
    ]
}

/// A dependence-free compute-heavy program (the dispatch-bound regime).
fn compute_heavy(epochs: usize, ops: usize) -> TraceProgram {
    let mut b = ProgramBuilder::new("kernel-compute");
    b.begin_parallel();
    for e in 0..epochs {
        b.begin_epoch();
        for i in 0..ops {
            let pc = Pc::new(e as u16, (i % 64) as u16);
            match i % 5 {
                0 => b.load(pc, Addr(0x1_0000 + e as u64 * 4096 + (i as u64 % 64) * 8), 8),
                1 => b.branch(pc, i % 3 == 0),
                _ => b.int_alu(pc),
            }
        }
        b.end_epoch();
    }
    b.end_parallel();
    b.finish()
}

/// A miss-heavy program: strided loads far apart, so cores spend most
/// cycles waiting on 75-cycle memory fills (the fast-forward regime).
fn memory_bound(epochs: usize, loads: usize) -> TraceProgram {
    let mut b = ProgramBuilder::new("kernel-membound");
    b.begin_parallel();
    for e in 0..epochs {
        b.begin_epoch();
        for i in 0..loads {
            let pc = Pc::new(e as u16, (i % 64) as u16);
            // Distinct lines, > L2 apart in the steady state.
            b.load(pc, Addr(0x100_0000 + (e as u64 * loads as u64 + i as u64) * 4096), 8);
            b.int_alu(pc);
        }
        b.end_epoch();
    }
    b.end_parallel();
    b.finish()
}

fn bench_run(name: &'static str, program: &TraceProgram) -> RunBench {
    let cfg = machine();
    let opts_on = RunOptions { audit: false, oracle: false, ..RunOptions::default() };
    let opts_off = RunOptions { fast_forward: false, ..opts_on.clone() };

    let on = CmpSimulator::new(cfg).run_with(program, opts_on.clone());
    let off = CmpSimulator::new(cfg).run_with(program, opts_off.clone());
    let (a, b) = (serde_json::to_string(&on).unwrap(), serde_json::to_string(&off).unwrap());
    assert_eq!(a, b, "{name}: fast-forward changed the report");
    let mut observer = Observer::with_defaults(cfg.cpus);
    let observed =
        CmpSimulator::new(cfg).run_observed(program, opts_on.clone(), Some(&mut observer));
    assert_eq!(
        a,
        serde_json::to_string(&observed).unwrap(),
        "{name}: observation changed the report"
    );

    let cycles = on.total_cycles;
    let s_on = time_s(5, || CmpSimulator::new(cfg).run_with(program, opts_on.clone()));
    let s_off = time_s(5, || CmpSimulator::new(cfg).run_with(program, opts_off.clone()));
    // One observer reused across samples: the ring overwrites in place,
    // so the measurement captures the steady-state hook cost rather
    // than a fresh 40 MB ring allocation per run.
    let mut obs = Observer::with_defaults(cfg.cpus);
    let s_obs =
        time_s(5, || CmpSimulator::new(cfg).run_observed(program, opts_on.clone(), Some(&mut obs)));
    RunBench {
        name,
        sim_cycles: cycles,
        mcycles_per_host_s_ff_on: cycles as f64 / 1e6 / s_on,
        mcycles_per_host_s_ff_off: cycles as f64 / 1e6 / s_off,
        ff_speedup: s_off / s_on,
        mcycles_per_host_s_obs_on: cycles as f64 / 1e6 / s_obs,
        obs_overhead: s_obs / s_on,
    }
}

/// Host cost of the MiniDB buffer-pool hot paths: pin/miss/evict
/// traffic from the recovery-oracle workload, plus full REDO recovery
/// per crash point. Every crash point is also *checked* — a red oracle
/// aborts the bench rather than reporting a timing for wrong results.
fn bench_pager() -> PagerBench {
    use tls_core::DiskFaultPlan;
    use tls_minidb::oracle::run_workload;

    const FRAMES: usize = 24;
    const MTRS: usize = 24;
    let secs = time_s(3, || run_workload(1, MTRS, FRAMES, DiskFaultPlan::default(), false));
    let w = run_workload(1, MTRS, FRAMES, DiskFaultPlan::default(), false);
    let counters = w.pager().counters();
    let pins = (counters.hits + counters.misses).max(1);
    let crash_points = w.last_lsn() + 1;
    let check_secs =
        time_s(3, || w.check_all_crash_points().expect("recovery oracle must be green"));
    PagerBench {
        frames: FRAMES,
        ns_per_pin: secs * 1e9 / pins as f64,
        ns_per_crash_point: check_secs * 1e9 / crash_points as f64,
        crash_points,
        counters,
    }
}

/// Host cost of the declarative-workload compiler: spec → `(plain, tls)`
/// trace pair, plus the simulator's throughput on the compiled TLS
/// recording. The scan-epoch counters are asserted non-zero — a compile
/// that stopped parallelizing scans would report a timing for the wrong
/// program.
fn bench_workload_compiler() -> WorkloadCompilerBench {
    use tls_harness::workload::{compile, WorkloadSpec};
    use tls_trace::SCAN_LOOP_MODULE;

    let spec = WorkloadSpec::example();
    let compile_secs = time_s(3, || compile(&spec));
    let c = compile(&spec);
    let program_ops = (c.plain.total_ops() + c.tls.total_ops()) as u64;
    let (scan_epochs, scan_epoch_ops) = c.tls.epochs_of_module(SCAN_LOOP_MODULE);
    assert!(scan_epochs > 0, "example spec must compile speculative scan epochs");

    let cfg = machine();
    let opts = RunOptions { audit: false, oracle: false, ..RunOptions::default() };
    let rep = CmpSimulator::new(cfg).run_with(&c.tls, opts.clone());
    let sim_secs = time_s(3, || CmpSimulator::new(cfg).run_with(&c.tls, opts.clone()));
    WorkloadCompilerBench {
        spec: "example",
        compile_ms: compile_secs * 1e3,
        ops_per_host_s: program_ops as f64 / compile_secs,
        program_ops,
        scan_epochs,
        scan_epoch_ops,
        sim_mcycles_per_host_s: rep.total_cycles as f64 / 1e6 / sim_secs,
    }
}

/// Host cost of the snapshot read paths, owned decode vs zero-copy map,
/// on a real recorded benchmark — plus the batched sweep engine's
/// points/hour at test scale. Both decoders are verified against each
/// other before timing: a fast path serving different ops would be a
/// timing for the wrong data.
fn bench_trace_store() -> TraceStoreBench {
    use std::sync::Arc;
    use tls_harness::codec::{decode_pair_file, program_bytes};
    use tls_harness::mapped::{MapOutcome, TraceView};
    use tls_harness::store::{HarnessStore, StoredPrograms, TraceKey};
    use tls_harness::sweep::{run_sweep, SweepOptions, SweepPlan, SweepSpec};
    use tls_harness::Scale;
    use tls_minidb::Transaction;

    let dir = std::env::temp_dir().join(format!("tls-kernel-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let traces = dir.join("traces");
    let store = HarnessStore::new(Some(traces.clone()), true);
    // A big-enough recording that per-op cost dominates per-open cost
    // (the syscall + container validation amortize away, as they do on
    // the multi-megabyte paper-scale snapshots).
    let key = TraceKey { cfg: Scale::Test.tpcc(), txn: Transaction::Payment, count: 128 };
    store.programs(&key);
    let path = traces.join(key.file_name());
    let hash = key.hash();
    let bytes = std::fs::read(&path).expect("snapshot written");
    let trace_bytes = bytes.len() as u64;

    // Cross-check the two read paths before timing either.
    let owned = decode_pair_file(&bytes, hash).expect("owned decode");
    let MapOutcome::Mapped(view) = TraceView::open(&path, hash) else {
        panic!("fresh snapshot must map");
    };
    assert_eq!(program_bytes(&view.tls().to_program()), program_bytes(&owned.tls));
    let trace_ops = (owned.plain.view().total_ops() + owned.tls.view().total_ops()) as u64;

    // Both timings produce the same end state — a StoredPrograms with
    // both fingerprints computed, ready for report-cache lookups.
    let decode_secs = time_s(7, || {
        let bytes = std::fs::read(&path).expect("read snapshot");
        StoredPrograms::new(decode_pair_file(&bytes, hash).expect("owned decode"))
    });
    let mmap_secs = time_s(7, || match TraceView::open(&path, hash) {
        MapOutcome::Mapped(v) => StoredPrograms::from_view(Arc::new(*v)),
        other => panic!("snapshot stopped mapping: {other:?}"),
    });

    // Sweep throughput: snapshots warm, report cache cold — every point
    // simulates, no point re-decodes.
    let grid = r#"{
        "name": "kernel",
        "benchmark": "payment",
        "count": 1,
        "seeds": [1, 2],
        "spacings": [1000, 2500, 5000, 10000],
        "contexts": [2, 4],
        "mem_latencies": [50, 75]
    }"#;
    let plan = SweepPlan::new(SweepSpec::parse(grid).expect("grid parses"), Scale::Test);
    let opts = SweepOptions {
        scale: Scale::Test,
        jobs: 1,
        out_dir: dir.join("out"),
        trace_dir: Some(traces.clone()),
        baseline_sample: 0,
        quiet: true,
        ..SweepOptions::default()
    };
    run_sweep(&plan, &opts).expect("prewarm sweep"); // record both seeds
    let _ = std::fs::remove_dir_all(traces.join("reports"));
    let _ = std::fs::remove_file(opts.out_dir.join("sweep_kernel.jsonl"));
    let out = run_sweep(&plan, &opts).expect("timed sweep");
    let sweep_points = out.executed_points;
    let sweep_pph = 3600.0 * sweep_points as f64 / out.wall_s.max(1e-9);

    let _ = std::fs::remove_dir_all(&dir);
    TraceStoreBench {
        trace_ops,
        trace_bytes,
        decode_ns_per_op: decode_secs * 1e9 / trace_ops as f64,
        decode_ops_per_s: trace_ops as f64 / decode_secs,
        mmap_ns_per_op: mmap_secs * 1e9 / trace_ops as f64,
        mmap_ops_per_s: trace_ops as f64 / mmap_secs,
        mmap_speedup: decode_secs / mmap_secs,
        sweep_points,
        sweep_points_per_hour: sweep_pph,
    }
}

/// Host cost of the value-prediction paths: the predictor's train and
/// probe table operations, the commit-time validation kernel, and the
/// whole-machine throughput delta on a cross-epoch RMW collider whose
/// shared value the last-value predictor learns. The collider run
/// asserts `predicted_hits > 0` — a predictor that stopped suppressing
/// would make the on/off delta a timing of nothing.
fn bench_vpredict() -> VpredictBench {
    use tls_core::{value_model, VPredictConfig, ValuePredictor};

    // Table micro-ops over a 256-PC working set (warm, steady state).
    let pcs: Vec<Pc> = (0..256u16).map(|i| Pc::new(i / 64 + 1, i % 64)).collect();
    let mut p = ValuePredictor::new(&VPredictConfig::prophet());
    for &pc in &pcs {
        p.train(pc, 7);
        p.train(pc, 7);
    }
    const ROUNDS: u64 = 4000;
    let ops = ROUNDS * pcs.len() as u64;
    let train_secs = time_s(5, || {
        for _ in 0..ROUNDS {
            for &pc in &pcs {
                p.train(pc, 7);
            }
        }
    });
    let probe_secs = time_s(5, || {
        let mut hits = 0u64;
        for _ in 0..ROUNDS {
            for &pc in &pcs {
                hits += p.probe(pc).is_some() as u64;
            }
        }
        hits
    });
    let validate_secs = time_s(5, || {
        let mut wrong = 0u64;
        for r in 0..ROUNDS {
            for (i, _) in pcs.iter().enumerate() {
                let addr = Addr(0x4_0000 + i as u64 * 8);
                wrong += (value_model(addr, r) != 7) as u64;
            }
        }
        wrong
    });

    // Whole-machine delta: every epoch read-modify-writes one shared
    // word at a constant-class address (0xC000 hashes to the constant
    // value model), so a warm table turns the RAW chain into silent
    // hits.
    let mut b = ProgramBuilder::new("kernel-vpredict");
    b.begin_parallel();
    for e in 0..16u16 {
        b.begin_epoch();
        b.int_ops(Pc::new(e, 0), 2000);
        b.load(Pc::new(99, 1), Addr(0xC000), 8);
        b.store(Pc::new(99, 2), Addr(0xC000), 8);
        b.int_ops(Pc::new(e, 3), 2000);
        b.end_epoch();
    }
    b.end_parallel();
    let program = b.finish();

    let cfg_off = machine();
    let mut cfg_on = cfg_off;
    cfg_on.vpredict = VPredictConfig::prophet();
    let opts = RunOptions { audit: false, oracle: false, ..RunOptions::default() };
    let off = CmpSimulator::new(cfg_off).run_with(&program, opts.clone());
    let on = CmpSimulator::new(cfg_on).run_with(&program, opts.clone());
    assert!(on.predicted_hits > 0, "collider must exercise suppression");
    let s_off = time_s(5, || CmpSimulator::new(cfg_off).run_with(&program, opts.clone()));
    let s_on = time_s(5, || CmpSimulator::new(cfg_on).run_with(&program, opts.clone()));

    VpredictBench {
        ns_per_train: train_secs * 1e9 / ops as f64,
        ns_per_probe: probe_secs * 1e9 / ops as f64,
        ns_per_validate: validate_secs * 1e9 / ops as f64,
        sim_cycles_off: off.total_cycles,
        sim_cycles_on: on.total_cycles,
        mcycles_per_host_s_off: off.total_cycles as f64 / 1e6 / s_off,
        mcycles_per_host_s_on: on.total_cycles as f64 / 1e6 / s_on,
        host_overhead: s_on / s_off,
        predicted_hits: on.predicted_hits,
        value_mispredicts: on.value_mispredicts,
    }
}

/// Host cost of the TSO store-buffer paths: the buffer's push, forward
/// and drain micro-ops, and the whole-machine SC-vs-TSO throughput
/// delta on the RMW collider. SC mode is asserted byte-invisible — a
/// config that carried a TSO geometry and was reset to SC must produce
/// the identical report — and the TSO run is asserted to actually
/// buffer and forward (a timing of an idle buffer would measure
/// nothing).
fn bench_membuf() -> MembufBench {
    use tls_core::{BufferedStore, ForwardOutcome, MemoryModel, StoreBuffer};

    let entry = |i: u64| BufferedStore {
        cursor: i as usize,
        addr: Addr(0x6000 + (i % 64) * 8),
        size: 8,
        pc: Pc::new(1, (i % 64) as u16),
        sub: 0,
        speculative: true,
    };

    // Push/pop steady state: the buffer cycles between 31 and 32 live
    // entries, so every push pays the realistic non-empty-Vec cost.
    const ROUNDS: u64 = 200_000;
    let mut buf = StoreBuffer::new(32);
    for i in 0..31 {
        buf.push(entry(i));
    }
    let push_secs = time_s(5, || {
        for i in 0..ROUNDS {
            buf.push(entry(i));
            buf.pop_oldest();
        }
    });

    // Forwarding probe: youngest entry hits immediately (the common
    // same-address store-then-load pattern).
    let probe_addr = buf.iter().last().expect("non-empty").addr;
    let forward_secs = time_s(5, || {
        let mut hits = 0u64;
        for _ in 0..ROUNDS {
            hits += matches!(buf.forward(probe_addr, 8), ForwardOutcome::Hit) as u64;
        }
        hits
    });

    // Full drain: fill 32 entries, pop to empty.
    const DRAIN_ROUNDS: u64 = 20_000;
    let mut buf = StoreBuffer::new(32);
    let drain_secs = time_s(5, || {
        for _ in 0..DRAIN_ROUNDS {
            for i in 0..32 {
                buf.push(entry(i));
            }
            while buf.pop_oldest().is_some() {}
        }
    });

    // Whole-machine delta on the same collider bench_vpredict uses.
    let mut b = ProgramBuilder::new("kernel-membuf");
    b.begin_parallel();
    for e in 0..16u16 {
        b.begin_epoch();
        b.int_ops(Pc::new(e, 0), 2000);
        b.load(Pc::new(99, 1), Addr(0xC000), 8);
        b.store(Pc::new(99, 2), Addr(0xC000), 8);
        b.int_ops(Pc::new(e, 3), 2000);
        b.end_epoch();
    }
    b.end_parallel();
    let program = b.finish();

    let cfg_sc = machine();
    let mut cfg_tso = cfg_sc;
    cfg_tso.memory_model = MemoryModel::Tso { buffer_entries: 8 };
    let opts = RunOptions { audit: false, oracle: false, ..RunOptions::default() };
    let sc = CmpSimulator::new(cfg_sc).run_with(&program, opts.clone());
    let tso = CmpSimulator::new(cfg_tso).run_with(&program, opts.clone());
    assert!(tso.buffered_stores > 0, "collider must buffer stores under TSO");
    // SC after a TSO geometry must be byte-identical to plain SC.
    let mut cfg_reset = cfg_tso;
    cfg_reset.memory_model = MemoryModel::Sc;
    let reset = CmpSimulator::new(cfg_reset).run_with(&program, opts.clone());
    assert_eq!(
        serde_json::to_string(&sc).unwrap(),
        serde_json::to_string(&reset).unwrap(),
        "SC report changed after carrying a TSO geometry"
    );
    let s_sc = time_s(5, || CmpSimulator::new(cfg_sc).run_with(&program, opts.clone()));
    let s_tso = time_s(5, || CmpSimulator::new(cfg_tso).run_with(&program, opts.clone()));

    MembufBench {
        ns_per_buffered_store: push_secs * 1e9 / ROUNDS as f64,
        ns_per_forwarded_load: forward_secs * 1e9 / ROUNDS as f64,
        ns_per_full_drain: drain_secs * 1e9 / DRAIN_ROUNDS as f64,
        sim_cycles_sc: sc.total_cycles,
        sim_cycles_tso: tso.total_cycles,
        mcycles_per_host_s_sc: sc.total_cycles as f64 / 1e6 / s_sc,
        mcycles_per_host_s_tso: tso.total_cycles as f64 / 1e6 / s_tso,
        host_overhead: s_tso / s_sc,
        buffered_stores: tso.buffered_stores,
        forwarded_loads: tso.forwarded_loads,
        drain_stall_cycles: tso.breakdown.drain_stall,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_kernel.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            other => {
                eprintln!("unknown argument '{other}'\nusage: kernel [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let cfg = machine();
    let mut ops = vec![bench_read(&cfg), bench_write(&cfg)];
    ops.extend(bench_commit_rewind(&cfg));

    let runs = vec![
        bench_run("compute_heavy_160k_ops", &compute_heavy(8, 20_000)),
        bench_run("memory_bound_8k_misses", &memory_bound(8, 1_000)),
        bench_run("violation_churn", &shared_dependences(8, 4_000, &[Dependence::new(0.5, 0.5)])),
    ];

    for b in &ops {
        println!("{:<24} {:>9.1} ns/op  ({} ops)", b.name, b.ns_per_op, b.ops);
    }
    for r in &runs {
        println!(
            "{:<24} {:>7.2} Mc/s ff-on  {:>7.2} Mc/s ff-off  ({:.2}x, {} cycles)  \
             {:>7.2} Mc/s obs-on ({:.3}x)",
            r.name,
            r.mcycles_per_host_s_ff_on,
            r.mcycles_per_host_s_ff_off,
            r.ff_speedup,
            r.sim_cycles,
            r.mcycles_per_host_s_obs_on,
            r.obs_overhead
        );
    }

    let pager = bench_pager();
    let c = &pager.counters;
    println!(
        "{:<24} {:>9.1} ns/pin  {:>9.0} ns/crash-point ({} points green)",
        "pager_oracle", pager.ns_per_pin, pager.ns_per_crash_point, pager.crash_points
    );
    println!(
        "{:<24} hits {} misses {} evictions {} flushes {} replays {} mtrs {}",
        "pager_counters", c.hits, c.misses, c.evictions, c.flushes, c.recovery_replays, c.mtrs
    );

    let workload = bench_workload_compiler();
    println!(
        "{:<24} {:>9.2} ms/compile  {:>7.2} Mops/s  ({} ops, {} scan epochs, {} scan ops)  \
         {:>7.2} Mc/s sim",
        "workload_compiler",
        workload.compile_ms,
        workload.ops_per_host_s / 1e6,
        workload.program_ops,
        workload.scan_epochs,
        workload.scan_epoch_ops,
        workload.sim_mcycles_per_host_s
    );

    let trace_store = bench_trace_store();
    println!(
        "{:<24} {:>9.2} ns/op decode  {:>9.3} ns/op mmap  ({:.2}x; {} ops, {} bytes)",
        "trace_store",
        trace_store.decode_ns_per_op,
        trace_store.mmap_ns_per_op,
        trace_store.mmap_speedup,
        trace_store.trace_ops,
        trace_store.trace_bytes
    );
    println!(
        "{:<24} {:>9.0} points/hour warm ({} points, test scale)",
        "sweep_engine", trace_store.sweep_points_per_hour, trace_store.sweep_points
    );

    let vpredict = bench_vpredict();
    println!(
        "{:<24} {:>6.1} ns/train  {:>6.1} ns/probe  {:>6.1} ns/validate  \
         {:>7.2} Mc/s off  {:>7.2} Mc/s on ({:.3}x host, {} hits, {} mispredicts)",
        "vpredict",
        vpredict.ns_per_train,
        vpredict.ns_per_probe,
        vpredict.ns_per_validate,
        vpredict.mcycles_per_host_s_off,
        vpredict.mcycles_per_host_s_on,
        vpredict.host_overhead,
        vpredict.predicted_hits,
        vpredict.value_mispredicts
    );

    let membuf = bench_membuf();
    println!(
        "{:<24} {:>6.1} ns/store  {:>6.1} ns/forward  {:>8.1} ns/drain32  \
         {:>7.2} Mc/s sc  {:>7.2} Mc/s tso ({:.3}x host, {} buffered, {} forwarded)",
        "membuf",
        membuf.ns_per_buffered_store,
        membuf.ns_per_forwarded_load,
        membuf.ns_per_full_drain,
        membuf.mcycles_per_host_s_sc,
        membuf.mcycles_per_host_s_tso,
        membuf.host_overhead,
        membuf.buffered_stores,
        membuf.forwarded_loads
    );

    let mut json = serde_json::to_string_pretty(&KernelBench {
        ops,
        runs,
        pager,
        workload,
        trace_store,
        vpredict,
        membuf,
    })
    .expect("serialize kernel bench");
    json.push('\n');
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
