//! Regenerates the **§3.2 iterative tuning process**: profile-guided
//! removal of performance-critical dependences.
//!
//! For each cumulative optimization step (unoptimized engine → per-thread
//! log buffers → no global statistics → latch-free structures), records a
//! NEW ORDER trace from an engine built at that level, runs it on the
//! BASELINE machine, and prints the speedup plus the profiler's
//! most-damaging dependences — the feedback a programmer would use to
//! decide the *next* optimization, exactly the loop of §3.2.
//!
//! Usage: `cargo run --release -p tls-bench --bin tuning_curve [--scale paper|test] [--json DIR]`

use serde::Serialize;
use tls_bench::{instances, json_dir, paper_machine, write_json, Scale};
use tls_core::experiment::{run_experiment, BenchmarkPrograms, ExperimentKind};
use tls_core::CmpSimulator;
use tls_minidb::{OptLevel, Tpcc, Transaction};

#[derive(Serialize)]
struct Step {
    step: &'static str,
    cycles: u64,
    speedup_vs_sequential: f64,
    failed_cpu_cycles: u64,
    latch_cpu_cycles: u64,
    violations: u64,
    top_dependences: Vec<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::parse(&args);
    let machine = paper_machine();
    let txn = Transaction::NewOrder;
    let count = instances(txn, scale);

    // The reference: the unmodified engine running sequentially.
    let mut plain_cfg = scale.tpcc();
    plain_cfg.opts = OptLevel::none();
    let plain = Tpcc::new(plain_cfg).record_plain(txn, count);
    let seq = run_experiment(
        ExperimentKind::Sequential,
        &machine,
        &BenchmarkPrograms { plain: plain.clone(), tls: plain.clone() },
    )
    .total_cycles;
    println!("NEW ORDER tuning curve (SEQUENTIAL = {seq} cycles)");
    println!("{:-<100}", "");

    let mut steps = Vec::new();
    for (name, opts) in OptLevel::tuning_steps() {
        let mut cfg = scale.tpcc();
        cfg.opts = opts;
        let program = Tpcc::new(cfg).record(txn, count);
        let r = CmpSimulator::new(machine).run(&program);
        let speedup = seq as f64 / r.total_cycles as f64;
        println!(
            "{:<28} {:>10} cycles  speedup {:>5.2}x  failed {:>9}  latch {:>8}  {:>3} violations",
            name,
            r.total_cycles,
            speedup,
            r.breakdown.failed,
            r.breakdown.latch,
            r.violations.total()
        );
        let top: Vec<String> = r
            .profile
            .iter()
            .take(3)
            .map(|e| {
                format!(
                    "load {} <- store {}: {} failed cycles ({} violations)",
                    e.load_pc.map(|p| p.to_string()).unwrap_or_else(|| "?".into()),
                    e.store_pc.map(|p| p.to_string()).unwrap_or_else(|| "?".into()),
                    e.failed_cycles,
                    e.violations
                )
            })
            .collect();
        for t in &top {
            println!("        {t}");
        }
        steps.push(Step {
            step: name,
            cycles: r.total_cycles,
            speedup_vs_sequential: speedup,
            failed_cpu_cycles: r.breakdown.failed,
            latch_cpu_cycles: r.breakdown.latch,
            violations: r.violations.total(),
            top_dependences: top,
        });
    }

    println!("{:-<100}", "");
    let first = steps.first().expect("steps");
    let last = steps.last().expect("steps");
    println!(
        "Tuning took NEW ORDER from {:.2}x to {:.2}x — the §3.2 iterative process.",
        first.speedup_vs_sequential, last.speedup_vs_sequential
    );
    write_json(&json_dir(&args), "tuning_curve", &steps);
}
