//! Regenerates the **§3.2 iterative tuning process**: profile-guided
//! removal of performance-critical dependences, one NEW ORDER trace per
//! cumulative optimization step.
//!
//! Thin wrapper over the `tuning_curve` plan in `tls-harness`; the
//! `suite` binary runs the same plan alongside every other artifact.
//!
//! Usage: `cargo run --release -p tls-bench --bin tuning_curve [--scale paper|test] [--json DIR]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    tls_harness::suite::run_single_plan("tuning_curve", &args);
}
