//! The recovery-chaos grid: the crash-recovery oracle over a seed grid,
//! every crash point, every disk-fault class.
//!
//! For each seed the oracle workload runs through a thrashing buffer
//! pool whose simulated disk injects seeded faults (torn writes, lost
//! writes, bit flips), then REDO recovery is checked at **every**
//! durable-log LSN: recovered logical contents must match the shadow
//! journal byte-for-byte. Any divergence — or any page quarantined by
//! recovery — writes evidence files under `<out>/quarantine/` and exits
//! non-zero. CI gates on this binary: 100% oracle agreement or red.
//!
//! Usage: `recovery [--seeds N] [--out DIR] [--smoke]`
//!   --seeds N   seeds in the grid (default 16)
//!   --out DIR   report + evidence directory (default results/recovery)
//!   --smoke     tiny grid (4 seeds, fewer mini-transactions) for quick checks

#![forbid(unsafe_code)]

use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;
use tls_core::{DiskFaultPlan, ALL_DISK_FAULT_CLASSES};
use tls_minidb::oracle::{run_indexed_workload, run_workload, OracleWorkload};

const FRAMES: usize = 20;

#[derive(Serialize)]
struct SeedResult {
    seed: u64,
    /// Whether this seed ran the indexed workload variant (a secondary
    /// index maintained in every mini-transaction, its contents part of
    /// the crash-point diff).
    indexed: bool,
    crash_points: u64,
    faults_injected: usize,
    disk_writes: u64,
    evictions: u64,
    flushes: u64,
    recovery_replays: u64,
    checksum_failures: u64,
    stale_reads: u64,
    green: bool,
    failure: Option<String>,
}

#[derive(Serialize)]
struct RecoveryReport {
    seeds: Vec<SeedResult>,
    total_crash_points: u64,
    total_faults: usize,
    all_green: bool,
    wall_s: f64,
}

/// The seed's workload: even grid positions run the two-tree base
/// workload, odd ones the indexed variant whose crash-point diff also
/// covers recovered secondary-index contents.
fn workload_for(seed: u64, indexed: bool, mtrs: usize) -> OracleWorkload {
    // Faults dense across the write stream (a run issues a few dozen
    // disk writes), all three classes.
    let plan = DiskFaultPlan::generate(seed, &ALL_DISK_FAULT_CLASSES, 48, 32);
    if indexed {
        run_indexed_workload(seed, mtrs, FRAMES, plan, false)
    } else {
        run_workload(seed, mtrs, FRAMES, plan, false)
    }
}

fn run_seed(seed: u64, indexed: bool, mtrs: usize) -> SeedResult {
    let w = workload_for(seed, indexed, mtrs);
    let c = w.pager().counters();
    let faults = w.pager().disk().faults_injected().len();
    let writes = w.pager().disk().writes_issued();
    let (green, crash_points, failure) = match w.check_all_crash_points() {
        Ok(points) => (true, points, None),
        Err(e) => (false, 0, Some(e)),
    };
    SeedResult {
        seed,
        indexed,
        crash_points,
        faults_injected: faults,
        disk_writes: writes,
        evictions: c.evictions,
        flushes: c.flushes,
        recovery_replays: c.recovery_replays,
        checksum_failures: c.checksum_failures,
        stale_reads: c.stale_reads,
        green,
        failure,
    }
}

/// On a red seed, preserve the evidence: re-run recovery at every crash
/// point and write one `page_<region>.reason.txt` per quarantined page
/// (plus the oracle's divergence message) under `<out>/quarantine/`.
fn write_evidence(out: &std::path::Path, r: &SeedResult, mtrs: usize) {
    let qdir = out.join("quarantine");
    if let Err(e) = std::fs::create_dir_all(&qdir) {
        eprintln!("warning: cannot create {}: {e}", qdir.display());
        return;
    }
    let msg = r.failure.as_deref().unwrap_or("unknown divergence");
    let report = format!("seed: {}\nfailure: {msg}\n", r.seed);
    let _ = std::fs::write(qdir.join(format!("seed_{}.failure.txt", r.seed)), report);

    // Collect quarantined pages across the grid for this seed.
    let w = workload_for(r.seed, r.indexed, mtrs);
    for k in 0..=w.last_lsn() {
        let world = w.pager().crash_point(k);
        for q in &world.quarantined {
            let name = format!("page_{:#x}.reason.txt", q.region);
            let body = format!(
                "seed: {}\ncrash_lsn: {k}\nregion: {:#x}\nreason: {}\n",
                r.seed, q.region, q.reason
            );
            let _ = std::fs::write(qdir.join(name), body);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds = 16u64;
    let mut out = PathBuf::from("results/recovery");
    let mut mtrs = 24usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--seeds needs a number"));
            }
            "--out" => out = PathBuf::from(it.next().expect("--out needs a value")),
            "--smoke" => {
                seeds = 4;
                mtrs = 8;
            }
            other => {
                eprintln!(
                    "unknown argument '{other}'\nusage: recovery [--seeds N] [--out DIR] [--smoke]"
                );
                std::process::exit(2);
            }
        }
    }

    let t0 = Instant::now();
    let results: Vec<SeedResult> = (0..seeds)
        .map(|s| {
            // Spread seeds so neighboring grids don't share fault plans;
            // odd positions run the indexed workload variant.
            let seed = s.wrapping_mul(0x9E37_79B9).wrapping_add(7);
            let r = run_seed(seed, s % 2 == 1, mtrs);
            println!(
                "seed {seed:>12}{}: {} crash points, {} faults, {} evictions, {} replays — {}",
                if r.indexed { " (indexed)" } else { "" },
                r.crash_points,
                r.faults_injected,
                r.evictions,
                r.recovery_replays,
                if r.green { "green" } else { "RED" }
            );
            if !r.green {
                eprintln!("  {}", r.failure.as_deref().unwrap_or(""));
                write_evidence(&out, &r, mtrs);
            }
            r
        })
        .collect();

    let all_green = results.iter().all(|r| r.green);
    let report = RecoveryReport {
        total_crash_points: results.iter().map(|r| r.crash_points).sum(),
        total_faults: results.iter().map(|r| r.faults_injected).sum(),
        all_green,
        wall_s: t0.elapsed().as_secs_f64(),
        seeds: results,
    };
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("warning: cannot create {}: {e}", out.display());
    }
    let mut json = serde_json::to_string_pretty(&report).expect("serialize recovery report");
    json.push('\n');
    let path = out.join("recovery.json");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!(
        "{} seeds, {} crash points, {} faults injected in {:.1}s — {}",
        seeds,
        report.total_crash_points,
        report.total_faults,
        report.wall_s,
        if all_green { "oracle 100% green" } else { "ORACLE DISAGREEMENT" }
    );
    eprintln!("wrote {}", path.display());
    if !all_green {
        std::process::exit(1);
    }
}
