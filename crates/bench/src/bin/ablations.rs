//! Design-choice ablations called out in DESIGN.md §5:
//!
//! 1. **Secondary-violation selectivity** (Figure 4): the sub-thread
//!    start table vs restarting every later thread from scratch.
//! 2. **Victim-cache capacity** (§2.1): the paper sizes it at 64 entries
//!    "large enough to avoid stalling threads due to cache overflows for
//!    our worst case".
//! 3. **Context-exhaustion policy**: merge-and-recycle vs stop (the
//!    reconstruction documented in DESIGN.md).
//!
//! Usage: `cargo run --release -p tls-bench --bin ablations [--scale paper|test] [--json DIR]`

use serde::Serialize;
use tls_bench::{instances, json_dir, paper_machine, record_benchmark, write_json, Scale};
use tls_core::{CmpSimulator, ExhaustionPolicy, PredictorConfig, SecondaryPolicy, SimReport, SubThreadConfig};
use tls_minidb::Transaction;

#[derive(Serialize)]
struct Entry {
    ablation: &'static str,
    benchmark: &'static str,
    variant: String,
    cycles: u64,
    failed: u64,
    violations_secondary: u64,
    violations_overflow: u64,
}

fn entry(
    ablation: &'static str,
    benchmark: &'static str,
    variant: String,
    r: &SimReport,
) -> Entry {
    Entry {
        ablation,
        benchmark,
        variant,
        cycles: r.total_cycles,
        failed: r.breakdown.failed,
        violations_secondary: r.violations.secondary,
        violations_overflow: r.violations.overflow,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::parse(&args);
    let base = paper_machine();
    let mut out = Vec::new();

    // --- 1. Secondary-violation selectivity (Figure 4). ---
    println!("Ablation 1: secondary violations (Figure 4a vs 4b)");
    for txn in [Transaction::NewOrder150, Transaction::DeliveryOuter] {
        let progs = record_benchmark(&scale.tpcc(), txn, instances(txn, scale));
        for policy in [SecondaryPolicy::StartTable, SecondaryPolicy::RestartAll] {
            let mut cfg = base;
            cfg.secondary = policy;
            let r = CmpSimulator::new(cfg).run(&progs.tls);
            println!(
                "  {:<16} {:<12} {:>10} cycles, {:>9} failed, {:>4} secondary",
                txn.label(),
                format!("{policy:?}"),
                r.total_cycles,
                r.breakdown.failed,
                r.violations.secondary
            );
            out.push(entry("secondary-policy", txn.label(), format!("{policy:?}"), &r));
        }
    }

    // --- 2. Victim-cache capacity (§2.1). ---
    println!("\nAblation 2: speculative victim-cache capacity");
    {
        let txn = Transaction::NewOrder150;
        let progs = record_benchmark(&scale.tpcc(), txn, instances(txn, scale));
        for entries in [0usize, 16, 64, 256] {
            let mut cfg = base;
            cfg.victim_entries = entries;
            let r = CmpSimulator::new(cfg).run(&progs.tls);
            println!(
                "  {:<16} {:>4} entries {:>10} cycles, {:>4} overflow violations",
                txn.label(),
                entries,
                r.total_cycles,
                r.violations.overflow
            );
            out.push(entry("victim-capacity", txn.label(), format!("{entries}"), &r));
        }
    }

    // --- 3. Context exhaustion: merge vs stop. ---
    println!("\nAblation 3: context exhaustion (merge-and-recycle vs stop)");
    for txn in [Transaction::NewOrder, Transaction::DeliveryOuter] {
        let progs = record_benchmark(&scale.tpcc(), txn, instances(txn, scale));
        for policy in [ExhaustionPolicy::Merge, ExhaustionPolicy::Stop] {
            let mut cfg = base;
            cfg.subthreads.exhaustion = policy;
            let r = CmpSimulator::new(cfg).run(&progs.tls);
            println!(
                "  {:<16} {:<6} {:>10} cycles, {:>9} failed, {:>5} merges",
                txn.label(),
                format!("{policy:?}"),
                r.total_cycles,
                r.breakdown.failed,
                r.subthread_merges
            );
            out.push(entry("exhaustion-policy", txn.label(), format!("{policy:?}"), &r));
        }
    }

    // --- 4. The §1.2 alternative: dependence prediction + synchronization. ---
    println!("\nAblation 4: dependence predictor vs sub-threads (§1.2)");
    for txn in [Transaction::NewOrder, Transaction::NewOrder150] {
        let progs = record_benchmark(&scale.tpcc(), txn, instances(txn, scale));
        let variants: [(&str, _, _); 3] = [
            ("sub-threads (baseline)", SubThreadConfig::baseline(), PredictorConfig::disabled()),
            ("predictor only", SubThreadConfig::disabled(), PredictorConfig::aggressive()),
            ("both", SubThreadConfig::baseline(), PredictorConfig::aggressive()),
        ];
        for (name, subs, pred) in variants {
            let mut cfg = base;
            cfg.subthreads = subs;
            cfg.predictor = pred;
            let r = CmpSimulator::new(cfg).run(&progs.tls);
            println!(
                "  {:<16} {:<22} {:>10} cycles, {:>9} failed, {:>9} sync cyc, {:>4} stalled loads",
                txn.label(),
                name,
                r.total_cycles,
                r.breakdown.failed,
                r.breakdown.sync,
                r.predictor_synchronizations
            );
            out.push(entry("dependence-predictor", txn.label(), name.to_string(), &r));
        }
    }

    // --- 5. L1 sub-thread awareness (§2.2: "not worthwhile"). ---
    println!("\nAblation 5: sub-thread-aware L1 invalidation (§2.2)");
    for txn in [Transaction::NewOrder, Transaction::NewOrder150] {
        let progs = record_benchmark(&scale.tpcc(), txn, instances(txn, scale));
        for aware in [false, true] {
            let mut cfg = base;
            cfg.l1_subthread_aware = aware;
            let r = CmpSimulator::new(cfg).run(&progs.tls);
            println!(
                "  {:<16} aware={:<5} {:>10} cycles, {:>8} L1 invalidations, {:>8} L1 misses",
                txn.label(),
                aware,
                r.total_cycles,
                r.l1.invalidations,
                r.l1.misses()
            );
            out.push(entry("l1-subthread-aware", txn.label(), format!("{aware}"), &r));
        }
    }

    write_json(&json_dir(&args), "ablations", &out);
}
