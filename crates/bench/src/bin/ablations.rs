//! Design-choice ablations called out in DESIGN.md §5: secondary-violation
//! selectivity (Figure 4), victim-cache capacity (§2.1), context
//! exhaustion, dependence prediction (§1.2), L1 sub-thread awareness
//! (§2.2).
//!
//! Thin wrapper over the `ablations` plan in `tls-harness`; the `suite`
//! binary runs the same plan alongside every other artifact.
//!
//! Usage: `cargo run --release -p tls-bench --bin ablations [--scale paper|test] [--json DIR]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    tls_harness::suite::run_single_plan("ablations", &args);
}
