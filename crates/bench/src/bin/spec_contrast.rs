//! Context experiment: why prior (SPEC-style) TLS work did not need
//! sub-threads — small/independent threads vs the paper's large/dependent
//! database threads, on the same machine.
//!
//! Thin wrapper over the `spec_contrast` plan in `tls-harness`; the
//! `suite` binary runs the same plan alongside every other artifact.
//!
//! Usage: `cargo run --release -p tls-bench --bin spec_contrast [--json DIR]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    tls_harness::suite::run_single_plan("spec_contrast", &args);
}
