//! Context experiment: why prior TLS work did not need sub-threads.
//!
//! The paper's motivation contrasts database threads (tens of thousands
//! of instructions, frequent dependences) with the SPEC-style threads of
//! earlier TLS studies ("a few hundred to a few thousand dynamic
//! instructions per thread" with "very infrequent data dependences").
//! This binary simulates both regimes on the same machine and shows that
//! all-or-nothing TLS is indeed sufficient for the small/independent
//! regime while collapsing on the large/dependent one — the paper's
//! opening argument, reproduced.
//!
//! Usage: `cargo run --release -p tls-bench --bin spec_contrast [--json DIR]`

use serde::Serialize;
use tls_bench::{json_dir, paper_machine, write_json};
use tls_core::synthetic::{shared_dependences, Dependence};
use tls_core::{CmpSimulator, SubThreadConfig};

#[derive(Serialize)]
struct Row {
    regime: &'static str,
    threads: usize,
    ops_per_thread: usize,
    dependences: usize,
    all_or_nothing_speedup: f64,
    subthread_speedup: f64,
}

fn speedups(threads: usize, ops: usize, deps: &[Dependence]) -> (f64, f64) {
    let p = shared_dependences(threads, ops, deps);
    let serial = tls_core::experiment::serialize_program(&p);
    let base = paper_machine();
    let seq = CmpSimulator::new(base).run(&serial).total_cycles as f64;
    let mut aon = base;
    aon.subthreads = SubThreadConfig::disabled();
    let a = seq / CmpSimulator::new(aon).run(&p).total_cycles as f64;
    let s = seq / CmpSimulator::new(base).run(&p).total_cycles as f64;
    (a, s)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Read-modify-write dependences spread through the thread body, as
    // database code has (each shared structure is read and written at
    // the same relative position in every thread).
    let dep = |n: usize| -> Vec<Dependence> {
        (0..n)
            .map(|i| {
                let at = 0.3 + 0.6 * i as f64 / n.max(1) as f64;
                Dependence::new(at, at)
            })
            .collect()
    };
    let cases = [
        ("SPEC-like: small, independent", 32, 800, 0),
        ("SPEC-like: small, one dependence", 32, 800, 1),
        ("database-like: large, dependent", 8, 60_000, 6),
    ];
    println!(
        "{:<36} {:>8} {:>10} {:>6} {:>16} {:>13}",
        "regime", "threads", "ops/thread", "deps", "all-or-nothing", "sub-threads"
    );
    let mut rows = Vec::new();
    for (name, threads, ops, ndeps) in cases {
        let (aon, sub) = speedups(threads, ops, &dep(ndeps));
        println!(
            "{name:<36} {threads:>8} {ops:>10} {ndeps:>6} {aon:>15.2}x {sub:>12.2}x"
        );
        rows.push(Row {
            regime: name,
            threads,
            ops_per_thread: ops,
            dependences: ndeps,
            all_or_nothing_speedup: aon,
            subthread_speedup: sub,
        });
    }
    println!(
        "\nAll-or-nothing TLS suffices for the small/independent regime of prior\n\
         work; only the large/dependent regime (the paper's) needs sub-threads."
    );
    write_json(&json_dir(&args), "spec_contrast", &rows);
}
