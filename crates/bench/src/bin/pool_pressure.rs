//! Extension study: buffer-pool pressure × sub-thread spacing for
//! NEW ORDER recorded through the disk-backed MiniDB pager.
//!
//! Thin wrapper over the `pool_pressure` plan in `tls-harness`; the
//! `suite` binary runs the same plan alongside every other artifact.
//!
//! Usage: `cargo run --release -p tls-bench --bin pool_pressure [--scale paper|test] [--json DIR]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    tls_harness::suite::run_single_plan("pool_pressure", &args);
}
