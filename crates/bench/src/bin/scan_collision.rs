//! Extension study: long speculative range scans colliding with Zipfian
//! point updates, swept over key skew × sub-thread spacing.
//!
//! Thin wrapper over the `scan_collision` plan in `tls-harness`; the
//! `suite` binary runs the same plan alongside every other artifact.
//!
//! Usage: `cargo run --release -p tls-bench --bin scan_collision [--scale paper|test] [--json DIR]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    tls_harness::suite::run_single_plan("scan_collision", &args);
}
