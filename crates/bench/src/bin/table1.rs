//! Regenerates **Table 1**: the simulation parameters.
//!
//! Usage: `cargo run -p tls-bench --bin table1 [--json DIR]`

use tls_bench::{json_dir, paper_machine};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = paper_machine();
    println!("Table 1. Simulation parameters.");
    println!("================================");
    println!("Pipeline parameters");
    println!("  Issue width                {}", cfg.cpu.issue_width);
    println!(
        "  Functional units           {} Int, {} FP, {} Mem, {} Branch",
        cfg.cpu.int_ports, cfg.cpu.fp_ports, cfg.cpu.mem_ports, cfg.cpu.branch_ports
    );
    println!("  Reorder buffer size        {}", cfg.cpu.rob_entries);
    println!("  Integer multiply           {} cycles", tls_trace::latency::INT_MUL);
    println!("  Integer divide             {} cycles", tls_trace::latency::INT_DIV);
    println!("  All other integer          {} cycle", tls_trace::latency::INT);
    println!("  FP divide                  {} cycles", tls_trace::latency::FP_DIV);
    println!("  FP square root             {} cycles", tls_trace::latency::FP_SQRT);
    println!("  All other FP               {} cycles", tls_trace::latency::FP);
    println!(
        "  Branch prediction          GShare ({} KB, {} history bits)",
        cfg.cpu.gshare_bytes / 1024,
        cfg.cpu.gshare_history_bits
    );
    println!("Memory parameters");
    println!("  Cache line size            {} B", cfg.l1.line_bytes);
    println!(
        "  Instruction/data cache     {} KB, {}-way set-assoc",
        cfg.l1.size_bytes / 1024,
        cfg.l1.ways
    );
    println!(
        "  Unified secondary cache    {} MB, {}-way set-assoc, {} banks",
        cfg.l2.size_bytes / (1024 * 1024),
        cfg.l2.ways,
        cfg.mem.l2_banks
    );
    println!("  Speculative victim cache   {} entries", cfg.victim_entries);
    println!(
        "  Miss handlers              {} for data, {} for insts",
        cfg.mem.data_mshrs, cfg.mem.inst_mshrs
    );
    println!(
        "  Crossbar interconnect      {} B per cycle per bank",
        cfg.l1.line_bytes as u64 / cfg.mem.bank_service_cycles
    );
    println!("  Min. miss latency to L2    {} cycles", cfg.mem.l2_min_latency);
    println!("  Min. miss latency to mem   {} cycles", cfg.mem.mem_min_latency);
    println!("  Main memory bandwidth      1 access per {} cycles", cfg.mem.mem_issue_interval);
    println!("TLS parameters");
    println!("  CPUs                       {}", cfg.cpus);
    println!("  Sub-thread contexts        {}", cfg.subthreads.contexts);
    println!("  Sub-thread spacing         {:?}", cfg.subthreads.spacing);
    println!("  Context exhaustion         {:?}", cfg.subthreads.exhaustion);
    println!("  Secondary violations       {:?}", cfg.secondary);
    println!("  L2 speculative bits/line   {}", cfg.spec_bits_per_line());
    tls_bench::write_json(&json_dir(&args), "table1", &cfg);
}
