//! Observed single-benchmark run: exports a Perfetto/Chrome
//! `trace_event` timeline plus a sampled metrics time series.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tls-bench --bin timeline -- new_order --out results
//! cargo run --release -p tls-bench --bin timeline -- payment --scale test
//! ```
//!
//! Open the resulting `trace_<benchmark>.perfetto.json` in
//! <https://ui.perfetto.dev> ("Open trace file"): each CPU is a track,
//! epochs nest their sub-thread slices, violations appear as instant
//! markers and rewound sub-thread spans sit on a separate `(rewound)`
//! track.

use std::path::PathBuf;
use tls_harness::{observe_run, HarnessStore, ObserveRequest, Scale};
use tls_minidb::Transaction;

const USAGE: &str = "\
usage: timeline <benchmark> [--scale paper|test] [--out DIR]
                [--traces DIR | --no-cache]
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut txn = None;
    let mut scale = Scale::Paper;
    let mut out_dir = PathBuf::from("results");
    let mut trace_dir = Some(PathBuf::from("traces"));
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().map(String::as_str) {
                Some("paper") => scale = Scale::Paper,
                Some("test") => scale = Scale::Test,
                other => fail(&format!("--scale needs paper or test, got {other:?}")),
            },
            "--out" => match it.next() {
                Some(v) => out_dir = PathBuf::from(v),
                None => fail("--out needs a value"),
            },
            "--traces" => match it.next() {
                Some(v) => trace_dir = Some(PathBuf::from(v)),
                None => fail("--traces needs a value"),
            },
            "--no-cache" => trace_dir = None,
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            name if txn.is_none() => match Transaction::from_cli_name(name) {
                Some(t) => txn = Some(t),
                None => {
                    eprintln!("unknown benchmark '{name}'; valid benchmarks:");
                    for t in Transaction::ALL {
                        eprintln!("  {}", t.trace_name());
                    }
                    std::process::exit(2);
                }
            },
            other => fail(&format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    let Some(txn) = txn else {
        eprintln!("timeline: which benchmark? valid benchmarks:");
        for t in Transaction::ALL {
            eprintln!("  {}", t.trace_name());
        }
        std::process::exit(2);
    };

    let store = HarnessStore::new(trace_dir, true);
    let req = ObserveRequest::new(txn, scale, out_dir);
    match observe_run(&store, &req) {
        Ok(out) => {
            println!(
                "{}: {} cycles, {} event(s) kept ({} dropped), report drift: none",
                txn.label(),
                out.report.total_cycles,
                out.events_kept,
                out.events_dropped
            );
            println!("wrote {}", out.trace_path.display());
            println!("wrote {}", out.metrics_path.display());
            println!("open the trace in https://ui.perfetto.dev (Open trace file)");
        }
        Err(e) => fail(&e),
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
