//! Regenerates **Figure 6**: performance of the optimized benchmarks when
//! varying the number of sub-threads per thread (2, 4, 8) and the number
//! of speculative instructions per sub-thread.
//!
//! The paper's observations to check against:
//!
//! * adding sub-threads never hurts ("the additional cache state required
//!   to support sub-threads does not exceed the capacity of the L2");
//! * more sub-threads increase covered fraction and checkpoint density;
//! * ~5000 instructions per sub-thread with 8 contexts is near-best on
//!   average.
//!
//! Thin wrapper over the `figure6` plan in `tls-harness`; the `suite`
//! binary runs the same plan alongside every other artifact.
//!
//! Usage: `cargo run --release -p tls-bench --bin figure6 [--scale paper|test] [--json DIR]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    tls_harness::suite::run_single_plan("figure6", &args);
}
