//! Regenerates **Figure 6**: performance of the optimized benchmarks when
//! varying the number of sub-threads per thread (2, 4, 8) and the number
//! of speculative instructions per sub-thread.
//!
//! The paper's observations to check against:
//!
//! * adding sub-threads never hurts ("the additional cache state required
//!   to support sub-threads does not exceed the capacity of the L2");
//! * more sub-threads increase covered fraction and checkpoint density;
//! * ~5000 instructions per sub-thread with 8 contexts is near-best on
//!   average.
//!
//! Usage: `cargo run --release -p tls-bench --bin figure6 [--scale paper|test] [--json DIR]`

use serde::Serialize;
use tls_bench::{instances, json_dir, paper_machine, record_benchmark, write_json, Scale};
use tls_core::{CmpSimulator, ExhaustionPolicy, SpacingPolicy, SubThreadConfig};
use tls_minidb::Transaction;

const SPACINGS: [u64; 6] = [1000, 2500, 5000, 10_000, 25_000, 50_000];
const CONTEXTS: [u8; 3] = [2, 4, 8];

/// The five TLS-profitable benchmarks shown in Figure 6 (a)–(e).
const BENCHMARKS: [Transaction; 5] = [
    Transaction::NewOrder,
    Transaction::NewOrder150,
    Transaction::Delivery,
    Transaction::DeliveryOuter,
    Transaction::StockLevel,
];

#[derive(Serialize)]
struct Point {
    contexts: u8,
    spacing: u64,
    total_cycles: u64,
    failed_cpu_cycles: u64,
    violations: u64,
    subthreads_started: u64,
}

#[derive(Serialize)]
struct Panel {
    benchmark: &'static str,
    sequential_cycles: u64,
    points: Vec<Point>,
    even_division: Vec<Point>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::parse(&args);
    let base = paper_machine();
    let mut panels = Vec::new();

    for txn in BENCHMARKS {
        let count = instances(txn, scale);
        let progs = record_benchmark(&scale.tpcc(), txn, count);
        let seq = {
            let r = tls_core::experiment::run_experiment(
                tls_core::ExperimentKind::Sequential,
                &base,
                &progs,
            );
            r.total_cycles
        };
        println!("\nFigure 6: {} (SEQUENTIAL = {} cycles)", txn.label(), seq);
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "contexts", "1000", "2500", "5000", "10000", "25000", "50000", "even"
        );
        let mut points = Vec::new();
        let mut even = Vec::new();
        for contexts in CONTEXTS {
            let mut row = format!("{contexts:<10}");
            for spacing in SPACINGS {
                let mut cfg = base;
                cfg.subthreads = SubThreadConfig {
                    contexts,
                    spacing: SpacingPolicy::Every(spacing),
                    exhaustion: ExhaustionPolicy::Merge,
                };
                let r = CmpSimulator::new(cfg).run(&progs.tls);
                row.push_str(&format!(" {:>8.2}x", seq as f64 / r.total_cycles as f64));
                points.push(Point {
                    contexts,
                    spacing,
                    total_cycles: r.total_cycles,
                    failed_cpu_cycles: r.breakdown.failed,
                    violations: r.violations.total(),
                    subthreads_started: r.subthreads_started,
                });
            }
            let mut cfg = base;
            cfg.subthreads = SubThreadConfig {
                contexts,
                spacing: SpacingPolicy::EvenDivision,
                exhaustion: ExhaustionPolicy::Merge,
            };
            let r = CmpSimulator::new(cfg).run(&progs.tls);
            row.push_str(&format!(" {:>8.2}x", seq as f64 / r.total_cycles as f64));
            even.push(Point {
                contexts,
                spacing: 0,
                total_cycles: r.total_cycles,
                failed_cpu_cycles: r.breakdown.failed,
                violations: r.violations.total(),
                subthreads_started: r.subthreads_started,
            });
            println!("{row}");
        }
        panels.push(Panel {
            benchmark: txn.label(),
            sequential_cycles: seq,
            points,
            even_division: even,
        });
    }
    write_json(&json_dir(&args), "figure6", &panels);
}
