//! Chaos sweep: deterministic fault injection × seeds → survival matrix.
//!
//! Records scaled-down TPC-C transactions, then replays each program
//! under every fault class (plus a mixed row) across N seeded fault
//! plans. Each row carries an **expectation**:
//!
//! * `survive` — the run neither panics nor trips the invariant
//!   auditor, the sequential differential oracle matches, every epoch
//!   commits, and the serializability auditor stays silent. Latch-hazard
//!   protocol errors are expected degradation, not failures.
//! * `detect` — the fault corrupts state the protocol *cannot* mask
//!   (today: a silently dropped store-buffer entry), so the cell passes
//!   only when at least one fault applied **and** the commit-time
//!   serializability auditor reported it as a structured store-flow
//!   protocol error — never a panic — while every epoch still committed.
//!   Plans whose events all miss the workload's store-active region are
//!   rejection-resampled (bounded, deterministic): an ineffective drop
//!   tests nothing, and a cell that stays ineffective still fails.
//!
//! The six protocol fault classes run on the SC baseline machine; the
//! three store-buffer classes (and the mixed row) run under
//! `MemoryModel::Tso` so drains exist to sabotage.
//!
//! Usage: `cargo run --release -p tls-bench --bin chaos -- [--smoke] [--seeds N] [--json DIR]`
//!
//! Exits non-zero unless every cell meets its row's expectation.

use serde::Serialize;
use tls_bench::{json_dir, paper_machine, write_json, Scale};
use tls_core::{
    CmpSimulator, FaultClass, FaultPlan, MemoryModel, RunOptions, SpacingPolicy, ALL_FAULT_CLASSES,
    STORE_BUFFER_FAULT_CLASSES,
};
use tls_harness::runner::capture;
use tls_minidb::{tpcc::consistency, OptLevel, Tpcc, Transaction};
use tls_trace::TraceProgram;

/// One (class, seed) cell of the survival matrix.
#[derive(Serialize)]
struct Cell {
    seed: u64,
    plan_seed: u64,
    /// Whether the cell met its row's expectation.
    survived: bool,
    faults_applied: u64,
    faults_skipped: u64,
    protocol_errors: u64,
    serializability_breaches: u64,
    violations: u64,
    total_cycles: u64,
    detail: String,
}

/// One row: a workload under one fault class across all seeds.
#[derive(Serialize)]
struct Row {
    workload: String,
    class: String,
    /// `sc` or `tso<N>`: the machine the row ran on.
    memory_model: String,
    /// `survive` or `detect`.
    expectation: String,
    seeds: usize,
    survived: usize,
    cells: Vec<Cell>,
}

#[derive(Serialize)]
struct Matrix {
    smoke: bool,
    seeds: usize,
    events_per_plan: usize,
    rows: Vec<Row>,
    survival_pct: f64,
}

/// What a row's cells must demonstrate.
#[derive(Clone, Copy, PartialEq)]
enum Expectation {
    Survive,
    Detect,
}

impl Expectation {
    fn name(self) -> &'static str {
        match self {
            Expectation::Survive => "survive",
            Expectation::Detect => "detect",
        }
    }
}

/// One row of the matrix: which faults, which machine, which outcome.
struct RowSpec {
    name: String,
    set: Vec<FaultClass>,
    tso: bool,
    expectation: Expectation,
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn seeds_arg(args: &[String], default: usize) -> usize {
    args.iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seeds takes a number"))
        .unwrap_or(default)
}

/// Records `count` instances of `txn` at test scale and verifies the
/// database still satisfies the TPC-C consistency conditions afterwards —
/// the workload itself must be sound before we start injecting faults.
fn record(txn: Transaction, count: usize) -> (String, TraceProgram) {
    let mut cfg = Scale::Test.tpcc();
    // The unoptimized engine: shared WAL tail, global statistics, real
    // latches. Chaos wants the dependence-heavy configuration — the
    // optimized one is latch-free, so latch-hazard faults would never
    // find a target.
    cfg.opts = OptLevel::none();
    let mut tpcc = Tpcc::new(cfg);
    let program = tpcc.record(txn, count);
    if let Err(errors) = consistency::check(&mut tpcc) {
        eprintln!("TPC-C consistency violated after recording {txn:?}:");
        for e in errors {
            eprintln!("  {e}");
        }
        std::process::exit(2);
    }
    (format!("{txn:?}x{count}"), program)
}

/// A fault-free baseline pinning the horizon plans draw cycles from and
/// the epoch count every chaos run must still commit.
fn baseline_of(sim: &CmpSimulator, wname: &str, program: &TraceProgram) -> (u64, u64) {
    let baseline = sim
        .run_with(program, RunOptions { panic_on_audit_failure: false, ..RunOptions::default() });
    if !baseline.audit_failures.is_empty() {
        eprintln!("baseline run of {wname} fails its own audit:");
        for f in &baseline.audit_failures {
            eprintln!("  {f}");
        }
        std::process::exit(2);
    }
    if baseline.serializability_breaches > 0 {
        eprintln!("baseline run of {wname} breaches serializability without faults");
        std::process::exit(2);
    }
    (baseline.total_cycles, baseline.committed_epochs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = flag(&args, "--smoke");
    let seeds = seeds_arg(&args, 16).max(1);
    let events = if smoke { 3 } else { 5 };
    let json = json_dir(&args).or_else(|| Some(std::path::PathBuf::from("results")));

    let workloads: Vec<(String, TraceProgram)> = if smoke {
        vec![record(Transaction::NewOrder, 2)]
    } else {
        vec![
            record(Transaction::NewOrder, 2),
            record(Transaction::Payment, 4),
            record(Transaction::StockLevel, 2),
        ]
    };

    // Every fault class alone — protocol classes on the SC machine,
    // store-buffer classes on TSO (dropped entries must be *detected*) —
    // plus one mixed row drawing every survivable class on TSO.
    let is_store_buffer = |c: FaultClass| STORE_BUFFER_FAULT_CLASSES.contains(&c);
    let mut rows_spec: Vec<RowSpec> = ALL_FAULT_CLASSES
        .iter()
        .map(|&c| RowSpec {
            name: c.to_string(),
            set: vec![c],
            tso: is_store_buffer(c),
            expectation: if c == FaultClass::DroppedEntry {
                Expectation::Detect
            } else {
                Expectation::Survive
            },
        })
        .collect();
    let survivable: Vec<FaultClass> =
        ALL_FAULT_CLASSES.iter().copied().filter(|&c| c != FaultClass::DroppedEntry).collect();
    rows_spec.push(RowSpec {
        name: "mixed".into(),
        set: survivable,
        tso: true,
        expectation: Expectation::Survive,
    });

    let mut machine = paper_machine();
    // The paper's every-5000-instructions spacing never spawns a second
    // checkpoint on test-scale epochs; divide evenly instead so forced
    // merges (and start-table traffic) have real targets to hit.
    machine.subthreads.spacing = SpacingPolicy::EvenDivision;
    let sim_sc = CmpSimulator::new(machine);
    let mut tso_machine = machine;
    tso_machine.memory_model = MemoryModel::Tso { buffer_entries: 4 };
    let sim_tso = CmpSimulator::new(tso_machine);

    let mut rows = Vec::new();
    let (mut total, mut passed) = (0usize, 0usize);

    println!("Chaos survival matrix ({seeds} seeds, {events} faults/plan)");
    println!("{:=<72}", "");
    for (wi, (wname, program)) in workloads.iter().enumerate() {
        let (sc_horizon, sc_expected) = baseline_of(&sim_sc, wname, program);
        let (tso_horizon, tso_expected) = baseline_of(&sim_tso, wname, program);
        println!(
            "{wname}: {} epochs, {} cycles fault-free (sc), {} cycles (tso4)",
            sc_expected, sc_horizon, tso_horizon
        );

        for (ci, spec) in rows_spec.iter().enumerate() {
            let (sim, horizon, expected) = if spec.tso {
                (&sim_tso, tso_horizon, tso_expected)
            } else {
                (&sim_sc, sc_horizon, sc_expected)
            };
            let mut cells = Vec::new();
            let mut line = format!("  {:<20} {:<8}", spec.name, spec.expectation.name());
            for seed in 0..seeds as u64 {
                let base_seed = 0xC4A0_5EED ^ (seed << 24) ^ ((ci as u64) << 8) ^ wi as u64;
                // Detect rows rejection-sample ineffective plans: a drop
                // whose events all land after the workload's last
                // buffered store never fires, and a fault that never
                // fires tests nothing. Re-derive the plan seed (bounded,
                // deterministic) until at least one fault applies; a
                // cell that stays ineffective after every attempt still
                // fails loudly below.
                let attempts: u64 = if spec.expectation == Expectation::Detect { 8 } else { 1 };
                let mut plan_seed = base_seed;
                let mut r = None;
                for attempt in 0..attempts {
                    plan_seed = base_seed ^ (attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let plan = FaultPlan::generate(plan_seed, &spec.set, horizon, events);
                    // One panic-capture engine for the whole workspace:
                    // the hardened runner primitive, not a local
                    // catch_unwind.
                    let key = format!("{wname}/{}/seed{seed}/try{attempt}", spec.name);
                    let run =
                        capture(&key, || sim.run_with(program, RunOptions::chaos(plan.clone())));
                    let effective = !matches!(&run, Ok(rep) if rep.faults.applied() == 0);
                    r = Some(run);
                    if effective {
                        break;
                    }
                }
                let r = r.expect("at least one attempt runs");
                let (survived, detail, report) = match r {
                    Err(f) => (false, format!("panicked: {}", f.message), None),
                    Ok(rep) => {
                        let verdict = if !rep.audit_failures.is_empty() {
                            Some(rep.audit_failures.join("; "))
                        } else if rep.committed_epochs != expected {
                            Some(format!("committed {}/{} epochs", rep.committed_epochs, expected))
                        } else {
                            match spec.expectation {
                                Expectation::Survive if rep.serializability_breaches > 0 => {
                                    Some(format!(
                                        "{} serializability breach(es) on a survivable class",
                                        rep.serializability_breaches
                                    ))
                                }
                                Expectation::Detect if rep.faults.applied() == 0 => Some(format!(
                                    "no fault applied in {attempts} plan(s): nothing to detect"
                                )),
                                Expectation::Detect if rep.serializability_breaches == 0 => {
                                    Some(format!(
                                        "{} dropped store(s) silently survived",
                                        rep.faults.applied()
                                    ))
                                }
                                Expectation::Detect
                                    if !rep
                                        .protocol_errors
                                        .iter()
                                        .any(|e| e.message.contains("store-flow")) =>
                                {
                                    Some("breach without a store-flow protocol error".to_string())
                                }
                                _ => None,
                            }
                        };
                        match verdict {
                            Some(d) => (false, d, Some(rep)),
                            None => (true, String::new(), Some(rep)),
                        }
                    }
                };
                total += 1;
                passed += survived as usize;
                line.push(if survived { '.' } else { 'X' });
                let rep = report.as_ref();
                cells.push(Cell {
                    seed,
                    plan_seed,
                    survived,
                    faults_applied: rep.map_or(0, |r| r.faults.applied()),
                    faults_skipped: rep.map_or(0, |r| r.faults.skipped),
                    protocol_errors: rep.map_or(0, |r| r.protocol_errors.len() as u64),
                    serializability_breaches: rep.map_or(0, |r| r.serializability_breaches),
                    violations: rep.map_or(0, |r| r.violations.total()),
                    total_cycles: rep.map_or(0, |r| r.total_cycles),
                    detail,
                });
            }
            let ok = cells.iter().filter(|c| c.survived).count();
            line.push_str(&format!("  {ok}/{seeds}"));
            println!("{line}");
            rows.push(Row {
                workload: wname.clone(),
                class: spec.name.clone(),
                memory_model: if spec.tso { "tso4".into() } else { "sc".into() },
                expectation: spec.expectation.name().into(),
                seeds,
                survived: ok,
                cells,
            });
        }
    }

    let survival_pct = 100.0 * passed as f64 / total.max(1) as f64;
    println!("{:=<72}", "");
    println!("expectation met: {passed}/{total} ({survival_pct:.1}%)");
    for row in rows.iter().filter(|r| r.survived < r.seeds) {
        for c in row.cells.iter().filter(|c| !c.survived) {
            println!(
                "FAIL {} / {} [{}] seed {} (plan_seed {:#x}): {}",
                row.workload, row.class, row.expectation, c.seed, c.plan_seed, c.detail
            );
        }
    }

    let matrix = Matrix { smoke, seeds, events_per_plan: events, rows, survival_pct };
    write_json(&json, "chaos_survival", &matrix);

    if passed != total {
        std::process::exit(1);
    }
}
