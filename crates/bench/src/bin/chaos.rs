//! Chaos sweep: deterministic fault injection × seeds → survival matrix.
//!
//! Records scaled-down TPC-C transactions, then replays each program under
//! every fault class (plus a mixed-class row) across N seeded fault plans.
//! A run *survives* when it neither panics nor trips the invariant
//! auditor, the sequential differential oracle matches, and every epoch
//! commits. Latch-hazard protocol errors are expected degradation, not
//! failures — they are reported per cell but do not fail the run.
//!
//! Usage: `cargo run --release -p tls-bench --bin chaos -- [--smoke] [--seeds N] [--json DIR]`
//!
//! Exits non-zero unless survival is 100%.

use serde::Serialize;
use tls_bench::{json_dir, paper_machine, write_json, Scale};
use tls_core::{CmpSimulator, FaultClass, FaultPlan, RunOptions, SpacingPolicy, ALL_FAULT_CLASSES};
use tls_harness::runner::capture;
use tls_minidb::{tpcc::consistency, OptLevel, Tpcc, Transaction};
use tls_trace::TraceProgram;

/// One (class, seed) cell of the survival matrix.
#[derive(Serialize)]
struct Cell {
    seed: u64,
    plan_seed: u64,
    survived: bool,
    faults_applied: u64,
    faults_skipped: u64,
    protocol_errors: u64,
    violations: u64,
    total_cycles: u64,
    detail: String,
}

/// One row: a workload under one fault class across all seeds.
#[derive(Serialize)]
struct Row {
    workload: String,
    class: String,
    seeds: usize,
    survived: usize,
    cells: Vec<Cell>,
}

#[derive(Serialize)]
struct Matrix {
    smoke: bool,
    seeds: usize,
    events_per_plan: usize,
    rows: Vec<Row>,
    survival_pct: f64,
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn seeds_arg(args: &[String], default: usize) -> usize {
    args.iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seeds takes a number"))
        .unwrap_or(default)
}

/// Records `count` instances of `txn` at test scale and verifies the
/// database still satisfies the TPC-C consistency conditions afterwards —
/// the workload itself must be sound before we start injecting faults.
fn record(txn: Transaction, count: usize) -> (String, TraceProgram) {
    let mut cfg = Scale::Test.tpcc();
    // The unoptimized engine: shared WAL tail, global statistics, real
    // latches. Chaos wants the dependence-heavy configuration — the
    // optimized one is latch-free, so latch-hazard faults would never
    // find a target.
    cfg.opts = OptLevel::none();
    let mut tpcc = Tpcc::new(cfg);
    let program = tpcc.record(txn, count);
    if let Err(errors) = consistency::check(&mut tpcc) {
        eprintln!("TPC-C consistency violated after recording {txn:?}:");
        for e in errors {
            eprintln!("  {e}");
        }
        std::process::exit(2);
    }
    (format!("{txn:?}x{count}"), program)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = flag(&args, "--smoke");
    let seeds = seeds_arg(&args, 8).max(1);
    let events = if smoke { 3 } else { 5 };
    let json = json_dir(&args).or_else(|| Some(std::path::PathBuf::from("results")));

    let workloads: Vec<(String, TraceProgram)> = if smoke {
        vec![record(Transaction::NewOrder, 2)]
    } else {
        vec![
            record(Transaction::NewOrder, 2),
            record(Transaction::Payment, 4),
            record(Transaction::StockLevel, 2),
        ]
    };

    // Every fault class alone, plus one mixed row drawing from all of them.
    let mut classes: Vec<(String, Vec<FaultClass>)> =
        ALL_FAULT_CLASSES.iter().map(|&c| (c.to_string(), vec![c])).collect();
    classes.push(("mixed".into(), ALL_FAULT_CLASSES.to_vec()));

    let mut machine = paper_machine();
    // The paper's every-5000-instructions spacing never spawns a second
    // checkpoint on test-scale epochs; divide evenly instead so forced
    // merges (and start-table traffic) have real targets to hit.
    machine.subthreads.spacing = SpacingPolicy::EvenDivision;
    let sim = CmpSimulator::new(machine);
    let mut rows = Vec::new();
    let (mut total, mut passed) = (0usize, 0usize);

    println!("Chaos survival matrix ({seeds} seeds, {events} faults/plan)");
    println!("{:=<72}", "");
    for (wi, (wname, program)) in workloads.iter().enumerate() {
        // Fault-free baseline fixes the cycle horizon faults are drawn
        // from and the epoch count every chaos run must still commit.
        let baseline = sim.run_with(
            program,
            RunOptions { panic_on_audit_failure: false, ..RunOptions::default() },
        );
        if !baseline.audit_failures.is_empty() {
            eprintln!("baseline run of {wname} fails its own audit:");
            for f in &baseline.audit_failures {
                eprintln!("  {f}");
            }
            std::process::exit(2);
        }
        let horizon = baseline.total_cycles;
        let expected = baseline.committed_epochs;
        println!("{wname}: {} epochs, {} cycles fault-free", expected, horizon);

        for (ci, (cname, set)) in classes.iter().enumerate() {
            let mut cells = Vec::new();
            let mut line = format!("  {cname:<20}");
            for seed in 0..seeds as u64 {
                let plan_seed = 0xC4A0_5EED ^ (seed << 24) ^ ((ci as u64) << 8) ^ wi as u64;
                let plan = FaultPlan::generate(plan_seed, set, horizon, events);
                // One panic-capture engine for the whole workspace: the
                // hardened runner primitive, not a local catch_unwind.
                let key = format!("{wname}/{cname}/seed{seed}");
                let r = capture(&key, || sim.run_with(program, RunOptions::chaos(plan.clone())));
                let (survived, detail, report) = match r {
                    Err(f) => (false, format!("panicked: {}", f.message), None),
                    Ok(rep) => {
                        if !rep.audit_failures.is_empty() {
                            (false, rep.audit_failures.join("; "), Some(rep))
                        } else if rep.committed_epochs != expected {
                            let d =
                                format!("committed {}/{} epochs", rep.committed_epochs, expected);
                            (false, d, Some(rep))
                        } else {
                            (true, String::new(), Some(rep))
                        }
                    }
                };
                total += 1;
                passed += survived as usize;
                line.push(if survived { '.' } else { 'X' });
                let rep = report.as_ref();
                cells.push(Cell {
                    seed,
                    plan_seed,
                    survived,
                    faults_applied: rep.map_or(0, |r| r.faults.applied()),
                    faults_skipped: rep.map_or(0, |r| r.faults.skipped),
                    protocol_errors: rep.map_or(0, |r| r.protocol_errors.len() as u64),
                    violations: rep.map_or(0, |r| r.violations.total()),
                    total_cycles: rep.map_or(0, |r| r.total_cycles),
                    detail,
                });
            }
            let ok = cells.iter().filter(|c| c.survived).count();
            line.push_str(&format!("  {ok}/{seeds}"));
            println!("{line}");
            rows.push(Row {
                workload: wname.clone(),
                class: cname.clone(),
                seeds,
                survived: ok,
                cells,
            });
        }
    }

    let survival_pct = 100.0 * passed as f64 / total.max(1) as f64;
    println!("{:=<72}", "");
    println!("survival: {passed}/{total} ({survival_pct:.1}%)");
    for row in rows.iter().filter(|r| r.survived < r.seeds) {
        for c in row.cells.iter().filter(|c| !c.survived) {
            println!(
                "FAIL {} / {} seed {} (plan_seed {:#x}): {}",
                row.workload, row.class, c.seed, c.plan_seed, c.detail
            );
        }
    }

    let matrix = Matrix { smoke, seeds, events_per_plan: events, rows, survival_pct };
    write_json(&json, "chaos_survival", &matrix);

    if passed != total {
        std::process::exit(1);
    }
}
