//! Extension study: sub-threads vs dependence synchronization vs value
//! prediction (and value + sub-threads combined), over NEW ORDER and a
//! skewed scan-collision workload × checkpoint spacing.
//!
//! Thin wrapper over the `prediction_frontier` plan in `tls-harness`;
//! the `suite` binary runs the same plan alongside every other artifact.
//!
//! Usage: `cargo run --release -p tls-bench --bin prediction_frontier [--scale paper|test] [--json DIR]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    tls_harness::suite::run_single_plan("prediction_frontier", &args);
}
