//! Extension study: CPU-count scaling.
//!
//! The paper evaluates a 4-CPU chip and notes the design "could be
//! extended" (§2); the speculative-state encoding here supports up to 8
//! CPUs × 8 sub-thread contexts. This binary sweeps 2/4/8 CPUs for the
//! TLS-profitable benchmarks and reports speedup over SEQUENTIAL plus
//! where the scaling saturates (thread supply, dependences, or commit
//! serialization).
//!
//! Usage: `cargo run --release -p tls-bench --bin scalability [--scale paper|test] [--json DIR]`

use serde::Serialize;
use tls_bench::{instances, json_dir, paper_machine, record_benchmark, write_json, Scale};
use tls_core::CmpSimulator;
use tls_minidb::Transaction;

const CPUS: [usize; 3] = [2, 4, 8];
const BENCHMARKS: [Transaction; 4] = [
    Transaction::NewOrder,
    Transaction::NewOrder150,
    Transaction::DeliveryOuter,
    Transaction::StockLevel,
];

#[derive(Serialize)]
struct Point {
    benchmark: &'static str,
    cpus: usize,
    cycles: u64,
    speedup: f64,
    idle_fraction: f64,
    failed_fraction: f64,
    violations: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::parse(&args);
    let base = paper_machine();
    let mut out = Vec::new();

    println!(
        "{:<16} {:>6} {:>12} {:>9} {:>7} {:>7} {:>6}",
        "benchmark", "cpus", "cycles", "speedup", "idle", "failed", "viol"
    );
    for txn in BENCHMARKS {
        let progs = record_benchmark(&scale.tpcc(), txn, instances(txn, scale));
        // SEQUENTIAL reference on the 4-CPU machine (one busy CPU).
        let seq = tls_core::experiment::run_experiment(
            tls_core::ExperimentKind::Sequential,
            &base,
            &progs,
        )
        .total_cycles;
        for cpus in CPUS {
            let mut cfg = base;
            cfg.cpus = cpus;
            let r = CmpSimulator::new(cfg).run(&progs.tls);
            let total = r.breakdown.total().max(1) as f64;
            let p = Point {
                benchmark: txn.label(),
                cpus,
                cycles: r.total_cycles,
                speedup: seq as f64 / r.total_cycles as f64,
                idle_fraction: r.breakdown.idle as f64 / total,
                failed_fraction: r.breakdown.failed as f64 / total,
                violations: r.violations.total(),
            };
            println!(
                "{:<16} {:>6} {:>12} {:>8.2}x {:>6.1}% {:>6.1}% {:>6}",
                p.benchmark,
                p.cpus,
                p.cycles,
                p.speedup,
                100.0 * p.idle_fraction,
                100.0 * p.failed_fraction,
                p.violations
            );
            out.push(p);
        }
    }
    write_json(&json_dir(&args), "scalability", &out);
}
