//! Extension study: CPU-count scaling (2/4/8) for the TLS-profitable
//! benchmarks, speedup over SEQUENTIAL.
//!
//! Thin wrapper over the `scalability` plan in `tls-harness`; the `suite`
//! binary runs the same plan alongside every other artifact.
//!
//! Usage: `cargo run --release -p tls-bench --bin scalability [--scale paper|test] [--json DIR]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    tls_harness::suite::run_single_plan("scalability", &args);
}
