//! Extension study: TSO store buffers vs the SC baseline — buffer depth
//! × mechanism (sub-threads, value + sub-threads) × checkpoint spacing,
//! over NEW ORDER and a skewed scan-collision workload, with drain-stall
//! cycles and serializability-breach counts beside the speedups.
//!
//! Thin wrapper over the `memory_order` plan in `tls-harness`; the
//! `suite` binary runs the same plan alongside every other artifact.
//!
//! Usage: `cargo run --release -p tls-bench --bin memory_order [--scale paper|test] [--json DIR]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    tls_harness::suite::run_single_plan("memory_order", &args);
}
