//! Regenerates **Table 2**: benchmark statistics.
//!
//! For every benchmark: sequential execution time (Mcycles), TLS
//! coverage, average speculative-thread size, speculative instructions
//! per thread, and threads per transaction.
//!
//! Thin wrapper over the `table2` plan in `tls-harness`; the `suite`
//! binary runs the same plan alongside every other artifact.
//!
//! Usage: `cargo run --release -p tls-bench --bin table2 [--scale paper|test] [--json DIR]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    tls_harness::suite::run_single_plan("table2", &args);
}
