//! Regenerates **Table 2**: benchmark statistics.
//!
//! For every benchmark: sequential execution time (Mcycles), TLS
//! coverage, average speculative-thread size, speculative instructions
//! per thread, and threads per transaction.
//!
//! Usage: `cargo run --release -p tls-bench --bin table2 [--scale paper|test] [--json DIR]`

use serde::Serialize;
use tls_bench::{instances, json_dir, paper_machine, record_benchmark, write_json, Scale};
use tls_core::experiment::{run_experiment, ExperimentKind};
use tls_minidb::Transaction;

#[derive(Serialize)]
struct Row {
    benchmark: &'static str,
    exec_mcycles: f64,
    coverage_pct: f64,
    avg_thread_size: f64,
    spec_insts_per_thread: f64,
    threads_per_txn: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::parse(&args);
    let machine = paper_machine();
    let mut rows = Vec::new();
    println!("Table 2. Benchmark statistics.");
    println!("{:=<100}", "");
    println!(
        "{:<16} {:>12} {:>10} {:>14} {:>18} {:>12}",
        "Benchmark", "Exec (Mcyc)", "Coverage", "Thread size", "SpecInsts/thread", "Threads/txn"
    );
    for txn in Transaction::ALL {
        let count = instances(txn, scale);
        let progs = record_benchmark(&scale.tpcc(), txn, count);
        let stats = progs.tls.stats();
        let seq = run_experiment(ExperimentKind::Sequential, &machine, &progs);
        // "Spec. Insts per Thread": instructions a thread executes
        // speculatively — all of its instructions except those it runs
        // after becoming the oldest (non-speculative) thread. We report
        // the epoch body minus the spawn scaffolding.
        let spec_per_thread = stats.avg_epoch_ops()
            - tls_minidb::SPAWN_OVERHEAD_OPS as f64;
        let row = Row {
            benchmark: txn.label(),
            exec_mcycles: seq.total_cycles as f64 / 1e6,
            coverage_pct: 100.0 * stats.coverage(),
            avg_thread_size: stats.avg_epoch_ops(),
            spec_insts_per_thread: spec_per_thread,
            threads_per_txn: stats.epochs as f64 / count as f64,
        };
        println!(
            "{:<16} {:>12.1} {:>9.0}% {:>13.0}k {:>17.0}k {:>12.1}",
            row.benchmark,
            row.exec_mcycles,
            row.coverage_pct,
            row.avg_thread_size / 1000.0,
            row.spec_insts_per_thread / 1000.0,
            row.threads_per_txn
        );
        rows.push(row);
    }
    write_json(&json_dir(&args), "table2", &rows);
}
