//! Property tests of the core timing model: whatever the instruction
//! stream, the pipeline must respect conservation and monotonicity laws.

use proptest::prelude::*;
use tls_cpu::{Core, CpuConfig};
use tls_trace::{Addr, Pc, TraceOp};

#[derive(Debug, Clone)]
enum GenOp {
    Int(u8, u8),
    Fp(u8, u8),
    Load(u8),
    Store(u8),
    Branch(bool),
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        5 => (1u8..=12, 0u8..8).prop_map(|(l, d)| GenOp::Int(l, d)),
        1 => (2u8..=20, 0u8..8).prop_map(|(l, d)| GenOp::Fp(l, d)),
        2 => (0u8..16).prop_map(GenOp::Load),
        1 => (0u8..16).prop_map(GenOp::Store),
        1 => any::<bool>().prop_map(GenOp::Branch),
    ]
}

fn to_trace(ops: &[GenOp]) -> Vec<TraceOp> {
    ops.iter()
        .enumerate()
        .map(|(i, op)| {
            let pc = Pc::new(1, (i % 48) as u16);
            match *op {
                GenOp::Int(l, d) => TraceOp::int_alu(pc, l).with_dep(d as u16),
                GenOp::Fp(l, d) => TraceOp::fp_alu(pc, l).with_dep(d as u16),
                GenOp::Load(s) => TraceOp::load(pc, Addr(0x1000 + s as u64 * 8), 8),
                GenOp::Store(s) => TraceOp::store(pc, Addr(0x1000 + s as u64 * 8), 8),
                GenOp::Branch(t) => TraceOp::branch(pc, t),
            }
        })
        .collect()
}

/// Runs `ops` to completion with a fixed memory latency; returns cycles.
fn run(cfg: CpuConfig, ops: &[TraceOp], mem_latency: u64) -> u64 {
    let mut core = Core::new(cfg);
    let mut next = 0;
    let mut cycle = 0u64;
    loop {
        core.begin_cycle(cycle);
        let r = core.retire();
        if next == ops.len() && r.rob_len == 0 {
            return cycle;
        }
        while next < ops.len() && core.can_dispatch() {
            core.dispatch(&ops[next], |start, _, _| start + mem_latency);
            next += 1;
        }
        cycle += 1;
        assert!(cycle < 10_000_000, "pipeline wedged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Cycles are bounded below by width and above by fully-serial
    /// execution.
    #[test]
    fn cycles_within_physical_bounds(ops in proptest::collection::vec(gen_op(), 1..300)) {
        let trace = to_trace(&ops);
        let cfg = CpuConfig::paper_default();
        let cycles = run(cfg, &trace, 10);
        let n = trace.len() as u64;
        prop_assert!(cycles >= n / cfg.issue_width as u64);
        // Upper bound: every op fully serialized at its worst latency,
        // plus worst-case front-end stalls per op.
        let worst: u64 = trace.iter().map(|o| match o.kind() {
            tls_trace::OpKind::IntAlu { latency } | tls_trace::OpKind::FpAlu { latency } => {
                latency as u64
            }
            tls_trace::OpKind::Load { .. } => 10,
            _ => 1,
        }).sum();
        let stall_budget = n * (cfg.mispredict_penalty + cfg.icache_miss_penalty + 2);
        prop_assert!(cycles <= worst + stall_budget + 64,
            "cycles {cycles} vs bound {}", worst + stall_budget + 64);
    }

    /// Slower memory never makes the program finish earlier.
    #[test]
    fn memory_latency_is_monotone(
        ops in proptest::collection::vec(gen_op(), 1..200),
        lat_a in 1u64..50,
        lat_b in 1u64..50,
    ) {
        let trace = to_trace(&ops);
        let (lo, hi) = (lat_a.min(lat_b), lat_a.max(lat_b));
        let fast = run(CpuConfig::paper_default(), &trace, lo);
        let slow = run(CpuConfig::paper_default(), &trace, hi);
        prop_assert!(fast <= slow, "latency {lo} took {fast}, latency {hi} took {slow}");
    }

    /// A wider machine never loses to a narrower one.
    #[test]
    fn issue_width_is_monotone(ops in proptest::collection::vec(gen_op(), 1..200)) {
        let trace = to_trace(&ops);
        let mut narrow = CpuConfig::paper_default();
        narrow.issue_width = 1;
        let mut wide = CpuConfig::paper_default();
        wide.issue_width = 8;
        let n = run(narrow, &trace, 10);
        let w = run(wide, &trace, 10);
        prop_assert!(w <= n, "wide {w} vs narrow {n}");
    }

    /// Every dispatched instruction retires exactly once.
    #[test]
    fn dispatch_equals_retire(ops in proptest::collection::vec(gen_op(), 1..300)) {
        let trace = to_trace(&ops);
        let mut core = Core::new(CpuConfig::paper_default());
        let mut next = 0;
        let mut cycle = 0u64;
        loop {
            core.begin_cycle(cycle);
            let r = core.retire();
            if next == trace.len() && r.rob_len == 0 {
                break;
            }
            while next < trace.len() && core.can_dispatch() {
                core.dispatch(&trace[next], |s, _, _| s + 5);
                next += 1;
            }
            cycle += 1;
        }
        prop_assert_eq!(core.stats().dispatched, trace.len() as u64);
        prop_assert_eq!(core.stats().retired, trace.len() as u64);
    }
}
