//! The per-CPU pipeline model.

use crate::{CpuConfig, FuPorts, Gshare, ICache};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use tls_trace::{Addr, OpKind, TraceOp};

/// Which side of the memory interface an access is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// A data load; its completion cycle gates dependent instructions.
    Load,
    /// A data store; it drains through the write-through hierarchy.
    Store,
}

/// What the head of the reorder buffer is waiting on, when retirement
/// stalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadStall {
    /// Nothing — the ROB is empty.
    None,
    /// The oldest instruction is an outstanding load (a cache miss, from
    /// the accounting point of view).
    Memory,
    /// The oldest instruction is still executing (ALU latency, store
    /// drain, branch resolution).
    Execute,
}

/// Result of one retirement step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetireResult {
    /// Instructions retired this cycle (0..=issue width).
    pub retired: usize,
    /// Why the next instruction could not retire, if any.
    pub head_stall: HeadStall,
    /// Occupancy of the reorder buffer after retirement.
    pub rob_len: usize,
}

/// Cumulative core counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Instructions dispatched into the ROB.
    pub dispatched: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Pipeline flushes requested by the TLS layer (violations).
    pub flushes: u64,
    /// Instruction-cache fetch misses.
    pub icache_misses: u64,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    completion: u64,
    is_load: bool,
}

/// One out-of-order core.
///
/// Driving protocol, once per simulated cycle:
///
/// 1. [`begin_cycle`](Core::begin_cycle) with the current cycle number;
/// 2. [`retire`](Core::retire) — in-order retirement of completed work;
/// 3. repeatedly [`dispatch`](Core::dispatch) while
///    [`can_dispatch`](Core::can_dispatch) and instructions are available.
///
/// The core never sees latch operations — the TLS layer serializes those
/// itself — and has no notion of threads or speculation: rewinds reach it
/// only as [`flush`](Core::flush).
#[derive(Debug, Clone)]
pub struct Core {
    cfg: CpuConfig,
    rob: VecDeque<RobEntry>,
    int_ports: FuPorts,
    fp_ports: FuPorts,
    mem_ports: FuPorts,
    br_ports: FuPorts,
    predictor: Gshare,
    icache: Option<ICache>,
    /// Completion cycles of recently dispatched ops, for dependence
    /// distances.
    recent: VecDeque<u64>,
    fetch_stall_until: u64,
    cur_cycle: u64,
    dispatched_this_cycle: usize,
    stats: CoreStats,
}

impl Core {
    /// A fresh core at cycle 0.
    pub fn new(cfg: CpuConfig) -> Self {
        Core {
            rob: VecDeque::with_capacity(cfg.rob_entries),
            int_ports: FuPorts::new(cfg.int_ports),
            fp_ports: FuPorts::new(cfg.fp_ports),
            mem_ports: FuPorts::new(cfg.mem_ports),
            br_ports: FuPorts::new(cfg.branch_ports),
            predictor: Gshare::new(cfg.gshare_bytes, cfg.gshare_history_bits),
            icache: (cfg.icache_bytes > 0).then(|| ICache::new(cfg.icache_bytes, cfg.icache_ways)),
            recent: VecDeque::with_capacity(cfg.dep_window),
            fetch_stall_until: 0,
            cur_cycle: 0,
            dispatched_this_cycle: 0,
            cfg,
            stats: CoreStats::default(),
        }
    }

    /// The configuration this core was built with.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Starts a new cycle. Cycles must be non-decreasing.
    pub fn begin_cycle(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.cur_cycle, "time ran backwards");
        self.cur_cycle = cycle;
        self.dispatched_this_cycle = 0;
    }

    /// True if another instruction may dispatch this cycle: issue width
    /// not exhausted, ROB space available, and the front end is not
    /// refilling after a mispredict or flush.
    pub fn can_dispatch(&self) -> bool {
        self.dispatched_this_cycle < self.cfg.issue_width
            && self.rob.len() < self.cfg.rob_entries
            && self.cur_cycle >= self.fetch_stall_until
    }

    /// Dispatches one instruction. For loads and stores, `mem` is invoked
    /// with `(execute_cycle, address, kind)` and must return the access
    /// completion cycle (`>= execute_cycle`). Returns the instruction's
    /// completion cycle.
    ///
    /// # Panics
    ///
    /// Panics if called while [`can_dispatch`](Core::can_dispatch) is
    /// false, or on a latch op (those never reach the core).
    pub fn dispatch(&mut self, op: &TraceOp, mem: impl FnOnce(u64, Addr, MemKind) -> u64) -> u64 {
        assert!(self.can_dispatch(), "dispatch while the core is stalled");
        // Instruction fetch: a miss stalls the front end for the L2
        // round trip (the op itself still dispatches this cycle — it was
        // already in the fetch buffer; its successors pay the stall).
        if let Some(ic) = self.icache.as_mut() {
            if !ic.fetch(op.pc()) {
                self.stats.icache_misses += 1;
                self.fetch_stall_until =
                    self.fetch_stall_until.max(self.cur_cycle + self.cfg.icache_miss_penalty);
            }
        }
        let mut ready = self.cur_cycle;
        let dep = op.dep() as usize;
        if dep > 0 && dep <= self.recent.len() {
            ready = ready.max(self.recent[self.recent.len() - dep]);
        }
        let (completion, is_load) = match op.kind() {
            OpKind::IntAlu { latency } => {
                let occ = Self::occupancy(latency);
                let start = self.int_ports.book(ready, occ);
                (start + latency as u64, false)
            }
            OpKind::FpAlu { latency } => {
                let occ = Self::occupancy(latency);
                let start = self.fp_ports.book(ready, occ);
                (start + latency as u64, false)
            }
            OpKind::Branch { taken } => {
                let start = self.br_ports.book(ready, 1);
                let completion = start + 1;
                self.stats.branches += 1;
                if !self.predictor.predict_and_update(op.pc(), taken) {
                    self.stats.mispredicts += 1;
                    self.fetch_stall_until =
                        self.fetch_stall_until.max(completion + self.cfg.mispredict_penalty);
                }
                (completion, false)
            }
            OpKind::Load { addr, .. } => {
                let start = self.mem_ports.book(ready, 1);
                let completion = mem(start, addr, MemKind::Load);
                debug_assert!(completion >= start, "memory completed before it started");
                self.stats.loads += 1;
                (completion, true)
            }
            OpKind::Store { addr, .. } => {
                let start = self.mem_ports.book(ready, 1);
                let completion = mem(start, addr, MemKind::Store);
                debug_assert!(completion >= start, "memory completed before it started");
                self.stats.stores += 1;
                (completion, false)
            }
            OpKind::LatchAcquire(_) | OpKind::LatchRelease(_) => {
                panic!("latch ops are synchronized by the TLS layer, not the core")
            }
        };
        self.rob.push_back(RobEntry { completion: completion.max(self.cur_cycle + 1), is_load });
        if self.recent.len() == self.cfg.dep_window {
            self.recent.pop_front();
        }
        self.recent.push_back(completion);
        self.dispatched_this_cycle += 1;
        self.stats.dispatched += 1;
        completion
    }

    /// Divides occupy their unit for the full latency; everything else is
    /// pipelined.
    fn occupancy(latency: u8) -> u64 {
        if latency >= 8 {
            latency as u64
        } else {
            1
        }
    }

    /// Retires completed instructions in order, up to the issue width.
    pub fn retire(&mut self) -> RetireResult {
        let mut retired = 0;
        while retired < self.cfg.issue_width {
            match self.rob.front() {
                Some(e) if e.completion <= self.cur_cycle => {
                    self.rob.pop_front();
                    retired += 1;
                }
                _ => break,
            }
        }
        self.stats.retired += retired as u64;
        let head_stall = match self.rob.front() {
            None => HeadStall::None,
            Some(e) if e.is_load => HeadStall::Memory,
            Some(_) => HeadStall::Execute,
        };
        RetireResult { retired, head_stall, rob_len: self.rob.len() }
    }

    /// Squashes all in-flight instructions (TLS violation recovery) and
    /// stalls the front end for the refill penalty.
    pub fn flush(&mut self) {
        self.rob.clear();
        self.recent.clear();
        self.int_ports.flush();
        self.fp_ports.flush();
        self.mem_ports.flush();
        self.br_ports.flush();
        self.fetch_stall_until = self.cur_cycle + self.cfg.mispredict_penalty;
        if let Some(ic) = self.icache.as_mut() {
            ic.redirect();
        }
        self.stats.flushes += 1;
    }

    /// True when nothing is in flight (an epoch may commit only once its
    /// core has drained).
    pub fn is_drained(&self) -> bool {
        self.rob.is_empty()
    }

    /// True while the front end is refilling (mispredict or flush).
    pub fn fetch_stalled(&self) -> bool {
        self.cur_cycle < self.fetch_stall_until
    }

    /// Completion cycle of the oldest in-flight instruction, if any.
    ///
    /// Until that cycle an otherwise-quiescent core cannot retire (and,
    /// with a full ROB, cannot dispatch either), so this is a wake-up
    /// candidate for an event-driven caller.
    pub fn next_retire_cycle(&self) -> Option<u64> {
        self.rob.front().map(|e| e.completion)
    }

    /// The cycle at which the front end resumes fetching after the most
    /// recent mispredict or flush (may be in the past).
    pub fn fetch_resume_cycle(&self) -> u64 {
        self.fetch_stall_until
    }

    /// In-flight instructions in the reorder buffer (occupancy gauge
    /// for the observability layer's sampled metrics).
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The branch predictor (exposed for reporting).
    pub fn predictor(&self) -> &Gshare {
        &self.predictor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tls_trace::{latency, Pc};

    fn no_mem(_: u64, _: Addr, _: MemKind) -> u64 {
        unreachable!("no memory op expected")
    }

    /// Runs `ops` to completion on a paper-default core with `mem_latency`
    /// for every memory access; returns total cycles.
    fn run(cfg: CpuConfig, ops: &[TraceOp], mem_latency: u64) -> u64 {
        let mut core = Core::new(cfg);
        let mut next = 0;
        let mut cycle = 0;
        loop {
            core.begin_cycle(cycle);
            let r = core.retire();
            if next == ops.len() && r.rob_len == 0 {
                return cycle;
            }
            while next < ops.len() && core.can_dispatch() {
                core.dispatch(&ops[next], |start, _, _| start + mem_latency);
                next += 1;
            }
            cycle += 1;
        }
    }

    #[test]
    fn independent_int_stream_is_port_limited() {
        // 2 int ports: 400 independent 1-cycle int ops take ~200 cycles.
        let ops: Vec<TraceOp> =
            (0..400).map(|_| TraceOp::int_alu(Pc::new(0, 1), latency::INT)).collect();
        let cycles = run(CpuConfig::paper_default(), &ops, 0);
        assert!((200..=215).contains(&cycles), "got {cycles}");
    }

    #[test]
    fn dependence_chain_serializes() {
        // Each op depends on the previous one: IPC 1.
        let ops: Vec<TraceOp> =
            (0..100).map(|_| TraceOp::int_alu(Pc::new(0, 1), latency::INT).with_dep(1)).collect();
        let cycles = run(CpuConfig::paper_default(), &ops, 0);
        assert!((100..=110).contains(&cycles), "got {cycles}");
    }

    #[test]
    fn divide_latency_dominates() {
        let ops: Vec<TraceOp> =
            (0..4).map(|_| TraceOp::int_alu(Pc::new(0, 2), latency::INT_DIV).with_dep(1)).collect();
        let cycles = run(CpuConfig::paper_default(), &ops, 0);
        assert!(cycles >= 4 * 76, "got {cycles}");
    }

    #[test]
    fn load_latency_blocks_dependents() {
        let ops = vec![
            TraceOp::load(Pc::new(0, 3), Addr(64), 8),
            TraceOp::int_alu(Pc::new(0, 4), latency::INT).with_dep(1),
        ];
        let cycles = run(CpuConfig::paper_default(), &ops, 50);
        assert!(cycles >= 51, "got {cycles}");
    }

    #[test]
    fn independent_loads_overlap() {
        // One mem port, 75-cycle misses, but non-blocking: 8 loads should
        // take ~75 + 8, not 8 * 75.
        let ops: Vec<TraceOp> =
            (0..8).map(|i| TraceOp::load(Pc::new(0, 5), Addr(64 * i), 8)).collect();
        let cycles = run(CpuConfig::paper_default(), &ops, 75);
        assert!(cycles < 150, "got {cycles}");
    }

    #[test]
    fn mispredicts_stall_the_front_end() {
        // Random-looking branch outcomes: many mispredicts, so 100
        // branches take far longer than 100 port-limited cycles.
        let mut taken = false;
        let mut flips = 0u32;
        let ops: Vec<TraceOp> = (0..100)
            .map(|i| {
                // A pattern long enough (period 26) that an 8-bit history
                // cannot capture it while it warms up.
                flips += 1;
                if flips.is_multiple_of(13) || i % 7 == 0 {
                    taken = !taken;
                }
                TraceOp::branch(Pc::new(0, (i % 3) as u16), taken)
            })
            .collect();
        let mut core = Core::new(CpuConfig::paper_default());
        let mut next = 0;
        let mut cycle = 0;
        loop {
            core.begin_cycle(cycle);
            let r = core.retire();
            if next == ops.len() && r.rob_len == 0 {
                break;
            }
            while next < ops.len() && core.can_dispatch() {
                core.dispatch(&ops[next], no_mem);
                next += 1;
            }
            cycle += 1;
        }
        assert!(core.stats().mispredicts > 0);
        assert!(cycle > 100, "mispredict penalties should slow this down, got {cycle}");
    }

    #[test]
    fn rob_fills_behind_a_long_miss() {
        let mut ops = vec![TraceOp::load(Pc::new(0, 6), Addr(0), 8)];
        for _ in 0..300 {
            ops.push(TraceOp::int_alu(Pc::new(0, 7), latency::INT));
        }
        let mut core = Core::new(CpuConfig::paper_default());
        let mut next = 0;
        let mut saw_full_rob = false;
        let mut saw_mem_stall = false;
        for cycle in 0..2000 {
            core.begin_cycle(cycle);
            let r = core.retire();
            if r.retired == 0 && r.head_stall == HeadStall::Memory {
                saw_mem_stall = true;
            }
            if r.rob_len == core.config().rob_entries {
                saw_full_rob = true;
            }
            while next < ops.len() && core.can_dispatch() {
                core.dispatch(&ops[next], |start, _, _| start + 500);
                next += 1;
            }
            if next == ops.len() && core.is_drained() {
                break;
            }
        }
        assert!(saw_mem_stall, "head should have blocked on the miss");
        assert!(saw_full_rob, "128 younger ops should have filled the ROB");
    }

    #[test]
    fn flush_clears_inflight_work() {
        let mut core = Core::new(CpuConfig::paper_default());
        core.begin_cycle(0);
        core.dispatch(&TraceOp::load(Pc::new(0, 8), Addr(0), 8), |s, _, _| s + 1000);
        assert!(!core.is_drained());
        core.flush();
        assert!(core.is_drained());
        assert!(core.fetch_stalled() || core.config().mispredict_penalty == 0);
        assert_eq!(core.stats().flushes, 1);
    }

    #[test]
    #[should_panic(expected = "latch ops")]
    fn latch_op_panics() {
        let mut core = Core::new(CpuConfig::paper_default());
        core.begin_cycle(0);
        core.dispatch(&TraceOp::latch_acquire(Pc::new(0, 9), tls_trace::LatchId(0)), no_mem);
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn overdispatch_panics() {
        let mut core = Core::new(CpuConfig::scalar_test());
        core.begin_cycle(0);
        core.dispatch(&TraceOp::int_alu(Pc::new(0, 0), 1), no_mem);
        // width 1: second dispatch in the same cycle must panic
        core.dispatch(&TraceOp::int_alu(Pc::new(0, 0), 1), no_mem);
    }

    #[test]
    fn retire_is_in_order_and_width_limited() {
        // No instruction cache: cold fetch misses would stall the front
        // end and obscure the width check.
        let mut cfg = CpuConfig::paper_default();
        cfg.icache_bytes = 0;
        let mut core = Core::new(cfg);
        core.begin_cycle(0);
        for _ in 0..4 {
            core.dispatch(&TraceOp::int_alu(Pc::new(0, 0), 1), no_mem);
        }
        core.begin_cycle(1);
        for _ in 0..4 {
            core.dispatch(&TraceOp::int_alu(Pc::new(0, 0), 1), no_mem);
        }
        core.begin_cycle(2);
        let r = core.retire();
        assert!(r.retired <= 4);
        assert!(r.rob_len >= 4 - r.retired);
    }

    #[test]
    fn cold_icache_miss_stalls_the_front_end() {
        let mut core = Core::new(CpuConfig::paper_default());
        core.begin_cycle(0);
        core.dispatch(&TraceOp::int_alu(Pc::new(7, 0), 1), no_mem);
        assert_eq!(core.stats().icache_misses, 1);
        assert!(!core.can_dispatch(), "fetch refill in progress");
        core.begin_cycle(core.config().icache_miss_penalty);
        assert!(core.can_dispatch());
        // Same line again: warm.
        core.dispatch(&TraceOp::int_alu(Pc::new(7, 0), 1), no_mem);
        assert_eq!(core.stats().icache_misses, 1);
    }
}
