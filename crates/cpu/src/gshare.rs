//! The gshare branch predictor (Table 1: "GShare (16KB, 8 history bits)").

use tls_trace::Pc;

/// A gshare predictor: a table of 2-bit saturating counters indexed by the
/// branch PC XORed with the global branch-history register.
///
/// ```
/// use tls_cpu::Gshare;
/// use tls_trace::Pc;
///
/// let mut p = Gshare::new(16 * 1024, 8);
/// let pc = Pc::new(1, 1);
/// // An always-taken branch trains quickly.
/// for _ in 0..4 { p.predict_and_update(pc, true); }
/// assert!(p.predict_and_update(pc, true));
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    mask: u32,
    history: u32,
    history_mask: u32,
    lookups: u64,
    mispredicts: u64,
}

impl Gshare {
    /// A predictor with `table_bytes` of 2-bit counters (4 counters per
    /// byte) and `history_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics if `table_bytes` is zero or the entry count is not a power
    /// of two, or if `history_bits` exceeds 31.
    pub fn new(table_bytes: usize, history_bits: u32) -> Self {
        let entries = table_bytes * 4;
        assert!(entries > 0 && entries.is_power_of_two(), "gshare table must be a power of two");
        assert!(history_bits <= 31, "history too long");
        Gshare {
            // Initialize to weakly taken: backward loop branches predict
            // well from the start, as real tables warmed by prior code do.
            counters: vec![2; entries],
            mask: entries as u32 - 1,
            history: 0,
            history_mask: (1u32 << history_bits) - 1,
            lookups: 0,
            mispredicts: 0,
        }
    }

    fn index(&self, pc: Pc) -> usize {
        // Branch PCs are word-granular; fold the history into the low bits.
        ((pc.0 ^ self.history) & self.mask) as usize
    }

    /// Predicts the branch at `pc`, then updates the counter and global
    /// history with the actual outcome. Returns whether the *prediction*
    /// was correct.
    pub fn predict_and_update(&mut self, pc: Pc, taken: bool) -> bool {
        let i = self.index(pc);
        let predicted_taken = self.counters[i] >= 2;
        let correct = predicted_taken == taken;
        self.lookups += 1;
        if !correct {
            self.mispredicts += 1;
        }
        if taken {
            self.counters[i] = (self.counters[i] + 1).min(3);
        } else {
            self.counters[i] = self.counters[i].saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u32) & self.history_mask;
        correct
    }

    /// Branches predicted so far.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction ratio in `0..=1` (0 before any lookup).
    pub fn mispredict_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = Gshare::new(1024, 8);
        let pc = Pc::new(0, 4);
        for _ in 0..8 {
            p.predict_and_update(pc, true);
        }
        assert!(p.predict_and_update(pc, true));
        // After heavy taken-training, a single not-taken mispredicts.
        assert!(!p.predict_and_update(pc, false));
    }

    #[test]
    fn learns_a_history_pattern() {
        // Alternating T/N/T/N is perfectly predictable with history.
        let mut p = Gshare::new(4096, 8);
        let pc = Pc::new(0, 8);
        let mut outcome = false;
        for _ in 0..64 {
            outcome = !outcome;
            p.predict_and_update(pc, outcome);
        }
        let before = p.mispredicts();
        for _ in 0..64 {
            outcome = !outcome;
            p.predict_and_update(pc, outcome);
        }
        assert_eq!(p.mispredicts(), before, "pattern should be fully learned");
    }

    #[test]
    fn ratio_accounts_lookups() {
        let mut p = Gshare::new(64, 2);
        let pc = Pc::new(0, 0);
        p.predict_and_update(pc, true);
        p.predict_and_update(pc, true);
        assert_eq!(p.lookups(), 2);
        assert!(p.mispredict_ratio() <= 0.5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_table_panics() {
        let _ = Gshare::new(3, 2);
    }
}
