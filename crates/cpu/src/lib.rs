//! Out-of-order core timing model for the sub-thread TLS simulator.
//!
//! Models the paper's CPUs: "4-way issue, out-of-order, superscalar
//! processors similar to the MIPS R10000, but modernized to have a
//! 128-entry reorder buffer", with the functional-unit mix, latencies and
//! gshare branch predictor of Table 1.
//!
//! The model is trace-driven and interacts with the rest of the simulated
//! chip through two seams:
//!
//! * the **instruction side** — the TLS layer feeds [`Core::dispatch`] one
//!   decoded [`TraceOp`](tls_trace::TraceOp) at a time, up to the issue
//!   width per cycle, as long as [`Core::can_dispatch`] allows;
//! * the **memory side** — loads and stores call back into a
//!   caller-supplied closure that models the cache hierarchy (and, in
//!   `tls-core`, performs speculative bookkeeping and violation checks) and
//!   returns the access completion cycle.
//!
//! Retirement is in-order via [`Core::retire`], whose result also
//! classifies what the head of the reorder buffer is blocked on — the raw
//! material for the Figure 5 execution-time breakdown.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod core;
mod gshare;
mod icache;
mod ports;

pub use crate::core::{Core, CoreStats, HeadStall, MemKind, RetireResult};
pub use config::CpuConfig;
pub use gshare::Gshare;
pub use icache::ICache;
pub use ports::FuPorts;
