//! Core pipeline parameters (Table 1 of the paper).

use serde::{Deserialize, Serialize};

/// Configuration of one out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Instructions dispatched and retired per cycle (Table 1: 4).
    pub issue_width: usize,
    /// Reorder-buffer entries (Table 1: 128).
    pub rob_entries: usize,
    /// Integer ALU ports (Table 1: 2).
    pub int_ports: usize,
    /// Floating-point ports (Table 1: 2).
    pub fp_ports: usize,
    /// Memory (load/store) ports (Table 1: 1).
    pub mem_ports: usize,
    /// Branch ports (Table 1: 1).
    pub branch_ports: usize,
    /// Cycles the front end needs to refill after a mispredicted branch
    /// resolves.
    pub mispredict_penalty: u64,
    /// gshare pattern-history-table size in bytes of 2-bit counters
    /// (Table 1: 16 KB).
    pub gshare_bytes: usize,
    /// gshare global-history length in bits (Table 1: 8).
    pub gshare_history_bits: u32,
    /// How many recently-dispatched instructions dependence distances may
    /// refer back to (a modeling window, not hardware state).
    pub dep_window: usize,
    /// Instruction-cache capacity in bytes (Table 1: 32 KB; 0 disables
    /// instruction-fetch modeling).
    pub icache_bytes: usize,
    /// Instruction-cache associativity (Table 1: 4).
    pub icache_ways: usize,
    /// Front-end stall on an instruction-cache miss (the L2 round trip).
    pub icache_miss_penalty: u64,
}

impl CpuConfig {
    /// The paper's Table 1 core.
    pub fn paper_default() -> Self {
        CpuConfig {
            issue_width: 4,
            rob_entries: 128,
            int_ports: 2,
            fp_ports: 2,
            mem_ports: 1,
            branch_ports: 1,
            mispredict_penalty: 10,
            gshare_bytes: 16 * 1024,
            gshare_history_bits: 8,
            dep_window: 64,
            icache_bytes: 32 * 1024,
            icache_ways: 4,
            icache_miss_penalty: 10,
        }
    }

    /// A tiny single-issue core, useful for making timing effects obvious
    /// in unit tests.
    pub fn scalar_test() -> Self {
        CpuConfig {
            issue_width: 1,
            rob_entries: 8,
            int_ports: 1,
            fp_ports: 1,
            mem_ports: 1,
            branch_ports: 1,
            mispredict_penalty: 4,
            gshare_bytes: 64,
            gshare_history_bits: 4,
            dep_window: 8,
            icache_bytes: 0,
            icache_ways: 1,
            icache_miss_penalty: 4,
        }
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_1() {
        let c = CpuConfig::paper_default();
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.rob_entries, 128);
        assert_eq!((c.int_ports, c.fp_ports, c.mem_ports, c.branch_ports), (2, 2, 1, 1));
        assert_eq!(c.gshare_bytes, 16 * 1024);
        assert_eq!(c.gshare_history_bits, 8);
    }
}
