//! The instruction cache (Table 1: 32 KB, 4-way, 32-byte lines).
//!
//! Trace PCs are synthetic *(module, site)* identifiers rather than laid
//! out code, so instruction fetch is modeled by mapping each static site
//! to a 16-byte code block in a dedicated address region: sites of the
//! same module pack into shared cache lines, like the basic blocks of one
//! compiled function. Misses stall the front end for the L2 round trip.
//!
//! With the workloads' few hundred static sites the steady-state is
//! nearly all hits — instruction fetch is not where database transactions
//! spend their time — but cold misses and post-violation refills are
//! modeled, completing the Table 1 machine.

use tls_trace::Pc;

/// Bytes of "code" each static site occupies.
const BYTES_PER_SITE: u64 = 16;
/// Line size (matches the data hierarchy).
const LINE_BYTES: u64 = 32;

/// A set-associative instruction cache over synthesized code addresses.
#[derive(Debug, Clone)]
pub struct ICache {
    /// `tags[set * ways + way]` = line tag + 1 (0 = invalid).
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    sets: usize,
    ways: usize,
    tick: u64,
    last_line: u64,
    accesses: u64,
    misses: u64,
}

impl ICache {
    /// An instruction cache of `size_bytes` with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics unless the resulting set count is a nonzero power of two.
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        let sets = size_bytes / (ways * LINE_BYTES as usize);
        assert!(sets > 0 && sets.is_power_of_two(), "icache sets must be a power of two");
        ICache {
            tags: vec![0; sets * ways],
            stamps: vec![0; sets * ways],
            sets,
            ways,
            tick: 0,
            last_line: u64::MAX,
            accesses: 0,
            misses: 0,
        }
    }

    fn line_of(pc: Pc) -> u64 {
        (pc.0 as u64 * BYTES_PER_SITE) / LINE_BYTES
    }

    /// Fetches the instruction at `pc`. Returns true if the fetch hit
    /// (or stayed within the currently-streaming line).
    pub fn fetch(&mut self, pc: Pc) -> bool {
        let line = Self::line_of(pc);
        if line == self.last_line {
            return true; // same line as the previous fetch: streamed
        }
        self.last_line = line;
        self.accesses += 1;
        self.tick += 1;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        let tag = line + 1;
        for w in 0..self.ways {
            if self.tags[base + w] == tag {
                self.stamps[base + w] = self.tick;
                return true;
            }
        }
        // Miss: fill over the LRU way.
        self.misses += 1;
        let lru = (0..self.ways).min_by_key(|&w| self.stamps[base + w]).expect("ways > 0");
        self.tags[base + lru] = tag;
        self.stamps[base + lru] = self.tick;
        false
    }

    /// Forgets the streaming state (pipeline flush / thread switch).
    pub fn redirect(&mut self) {
        self.last_line = u64::MAX;
    }

    /// Line-granular fetches issued (excluding same-line streaming).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Fetch misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = ICache::new(32 * 1024, 4);
        let pc = Pc::new(1, 0);
        assert!(!c.fetch(pc));
        c.redirect();
        assert!(c.fetch(pc));
    }

    #[test]
    fn same_line_streaming_is_free() {
        let mut c = ICache::new(32 * 1024, 4);
        // Sites 0 and 1 of a module share a 32-byte line (16 B each).
        assert!(!c.fetch(Pc::new(1, 0)));
        assert!(c.fetch(Pc::new(1, 1)));
        assert_eq!(c.accesses(), 1, "streaming fetches are not re-probed");
    }

    #[test]
    fn distinct_modules_use_distinct_lines() {
        let mut c = ICache::new(32 * 1024, 4);
        assert!(!c.fetch(Pc::new(1, 0)));
        assert!(!c.fetch(Pc::new(2, 0)));
        c.redirect();
        assert!(c.fetch(Pc::new(1, 0)));
    }

    #[test]
    fn conflict_misses_evict_lru() {
        let mut c = ICache::new(4 * 32 * 4, 4); // 4 sets, 4 ways
                                                // Five lines mapping to the same set (stride = sets * line).
        let stride_sites = (4 * LINE_BYTES / BYTES_PER_SITE) as u16;
        for i in 0..5u16 {
            let _ = c.fetch(Pc::new(0, i * stride_sites));
        }
        c.redirect();
        // The oldest is gone, the newest four are resident.
        assert!(!c.fetch(Pc::new(0, 0)));
        c.redirect();
        assert!(c.fetch(Pc::new(0, 4 * stride_sites)));
    }

    #[test]
    fn miss_ratio_settles_for_small_footprints() {
        let mut c = ICache::new(32 * 1024, 4);
        for round in 0..10 {
            for site in 0..100u16 {
                let hit = c.fetch(Pc::new(3, site * 2));
                if round > 0 {
                    assert!(hit, "steady state must hit (site {site})");
                }
            }
            c.redirect();
        }
    }
}
