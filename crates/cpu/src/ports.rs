//! Functional-unit issue ports.
//!
//! Each port accepts one new operation per cycle (fully pipelined). The
//! long dividers are the exception: an integer or FP divide occupies its
//! port for its whole latency, matching the unpipelined divide units of
//! the R10000 the paper models.

/// A group of identical, pipelined issue ports.
#[derive(Debug, Clone)]
pub struct FuPorts {
    next_free: Vec<u64>,
    booked: u64,
}

impl FuPorts {
    /// `n` ports, all free at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one port");
        FuPorts { next_free: vec![0; n], booked: 0 }
    }

    /// Books the earliest-available port for an op that is ready at
    /// `ready` and occupies the port for `occupancy` cycles. Returns the
    /// cycle execution starts.
    pub fn book(&mut self, ready: u64, occupancy: u64) -> u64 {
        let port =
            self.next_free.iter_mut().min_by_key(|c| **c).expect("port group is never empty");
        let start = ready.max(*port);
        *port = start + occupancy.max(1);
        self.booked += 1;
        start
    }

    /// Total operations booked.
    pub fn booked(&self) -> u64 {
        self.booked
    }

    /// Releases all ports (pipeline flush).
    pub fn flush(&mut self) {
        self.next_free.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_port_accepts_one_per_cycle() {
        let mut p = FuPorts::new(1);
        assert_eq!(p.book(10, 1), 10);
        assert_eq!(p.book(10, 1), 11);
        assert_eq!(p.book(10, 1), 12);
    }

    #[test]
    fn two_ports_double_throughput() {
        let mut p = FuPorts::new(2);
        assert_eq!(p.book(5, 1), 5);
        assert_eq!(p.book(5, 1), 5);
        assert_eq!(p.book(5, 1), 6);
    }

    #[test]
    fn unpipelined_occupancy_blocks_the_port() {
        let mut p = FuPorts::new(1);
        assert_eq!(p.book(0, 76), 0); // integer divide
        assert_eq!(p.book(1, 1), 76);
    }

    #[test]
    fn flush_frees_ports() {
        let mut p = FuPorts::new(1);
        p.book(0, 100);
        p.flush();
        assert_eq!(p.book(0, 1), 0);
    }
}
