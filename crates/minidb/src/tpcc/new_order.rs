//! The NEW ORDER transaction (TPC-C §2.4) — the paper's headline
//! benchmark.
//!
//! Prologue (sequential): read WAREHOUSE and CUSTOMER, read-increment the
//! district's `next_o_id`, insert the ORDER and NEW-ORDER rows.
//!
//! Parallelized loop — one epoch per order line: read ITEM, read-update
//! STOCK, insert the ORDER-LINE row, log everything. Cross-epoch
//! dependences arise from ORDER-LINE leaf inserts (shared page header and
//! cell shifts), occasional STOCK item collisions and page splits, and
//! the end-of-epoch LSN reservation.

use super::schema::{field, key, module, width};
use super::Tpcc;
use tls_trace::Pc;

const M: u16 = module::TXN_NEW_ORDER;

// Sites within the transaction module.
const BEGIN: u16 = 0;
const WH_READ: u16 = 1;
const DIST_READ: u16 = 2;
const DIST_BUMP: u16 = 3;
const CUST_READ: u16 = 4;
const ORDER_INS: u16 = 5;
const SPAWN: u16 = 6;
const LINE_BEGIN: u16 = 7;
const ITEM_READ: u16 = 8;
const STOCK_UPD: u16 = 9;
const OL_INS: u16 = 10;
const LINE_END: u16 = 11;
const COMMIT: u16 = 12;

/// Runs one NEW ORDER with `min_lines..=max_lines` order lines.
pub fn run(t: &mut Tpcc, min_lines: u32, max_lines: u32) {
    let db = t.db;
    let tb = t.tables;
    // Parameter generation per the run rules.
    let d_id = t.pick_district();
    let c_id = t.pick_customer();
    let n_lines = t.uniform(min_lines, max_lines);
    let items = t.pick_items(n_lines as usize);
    let qtys: Vec<u32> = (0..n_lines).map(|_| t.uniform(1, 10)).collect();
    let scratch = t.scratch();

    // ---- Prologue: transaction begin, locking, parent rows. ----
    t.work(Pc::new(M, BEGIN), scratch, 4);
    let env = &mut t.env;

    let wa = tb.warehouse.get_addr(env, key::warehouse(1)).expect("warehouse");
    let _w_tax = env.load_u32(Pc::new(M, WH_READ), wa.offset(field::W_TAX));

    let da = tb.district.get_addr(env, key::district(d_id)).expect("district");
    let o_id = env.load_u32(Pc::new(M, DIST_READ), da.offset(field::D_NEXT_O_ID));
    let _d_tax = env.load_u32(Pc::new(M, DIST_READ), da.offset(field::D_TAX));
    env.alu(Pc::new(M, DIST_BUMP), 3);
    env.store_u32(Pc::new(M, DIST_BUMP), da.offset(field::D_NEXT_O_ID), o_id + 1);

    let ca = tb.customer.get_addr(env, key::customer(d_id, c_id)).expect("customer");
    let _disc = env.load_u32(Pc::new(M, CUST_READ), ca.offset(field::C_DISCOUNT));
    env.store_u32(Pc::new(M, CUST_READ), ca.offset(field::C_LAST_ORDER), o_id);
    t.work(Pc::new(M, CUST_READ), scratch, 4);

    let env = &mut t.env;
    let mut orow = vec![0u8; width::ORDERS as usize];
    orow[field::O_C_ID as usize..][..4].copy_from_slice(&c_id.to_le_bytes());
    orow[field::O_OL_CNT as usize..][..4].copy_from_slice(&n_lines.to_le_bytes());
    orow[field::O_ENTRY_D as usize..][..8].copy_from_slice(&(o_id as u64).to_le_bytes());
    tb.orders.insert(env, &db.alloc, key::order(d_id, o_id), &orow);
    let oa = tb.orders.get_addr(env, key::order(d_id, o_id)).expect("just inserted");
    db.log(env, width::ORDERS as u64, None);
    db.bump_stats(env);
    tb.new_order.insert(env, &db.alloc, key::order(d_id, o_id), &[0u8; 8]);
    db.log(env, width::NEW_ORDER as u64, None);
    db.bump_stats(env);
    // Maintain the order-by-customer secondary index in the same
    // mini-transaction: its page writes are logged and recovered exactly
    // like the base-table insert above.
    let order_by_customer = crate::query::SecondaryIndex::new(tb.order_customer);
    assert!(order_by_customer.insert(
        env,
        &db.alloc,
        key::order_customer(d_id, c_id, o_id),
        key::order(d_id, o_id),
    ));
    db.log(env, width::ORDER_CUSTOMER as u64, None);
    db.bump_stats(env);
    t.work(Pc::new(M, ORDER_INS), scratch, 7);

    // ---- The parallelized order-line loop. ----
    t.env.rec.begin_parallel();
    for l in 0..n_lines {
        t.env.rec.begin_epoch(Pc::new(M, SPAWN));
        let line_scratch = t.env.alloc(256, 64);
        let mut local = t.db.opts.per_thread_log.then(|| t.db.local_log(&mut t.env));
        let i_id = items[l as usize];
        let qty = qtys[l as usize];

        t.work(Pc::new(M, LINE_BEGIN), line_scratch, 2);

        // ITEM read.
        let env = &mut t.env;
        let ia = tb.item.get_addr(env, key::item(i_id)).expect("item");
        let price = env.load_u32(Pc::new(M, ITEM_READ), ia.offset(field::I_PRICE));
        let _name = env.load_u64(Pc::new(M, ITEM_READ), ia.offset(field::I_NAME_HASH));
        t.work(Pc::new(M, ITEM_READ), line_scratch, 2);

        // STOCK read-modify-write.
        let env = &mut t.env;
        let sa = tb.stock.get_addr(env, key::item(i_id)).expect("stock");
        let q = env.load_u32(Pc::new(M, STOCK_UPD), sa.offset(field::S_QUANTITY));
        env.alu(Pc::new(M, STOCK_UPD), 4);
        let new_q = if q >= qty + 10 { q - qty } else { q + 91 - qty };
        env.store_u32(Pc::new(M, STOCK_UPD), sa.offset(field::S_QUANTITY), new_q);
        let ytd = env.load_u64(Pc::new(M, STOCK_UPD), sa.offset(field::S_YTD));
        env.store_u64(Pc::new(M, STOCK_UPD), sa.offset(field::S_YTD), ytd + qty as u64);
        let cnt = env.load_u32(Pc::new(M, STOCK_UPD), sa.offset(field::S_ORDER_CNT));
        env.store_u32(Pc::new(M, STOCK_UPD), sa.offset(field::S_ORDER_CNT), cnt + 1);
        db.log(env, width::STOCK as u64, local.as_mut());
        db.bump_stats(env);
        t.work(Pc::new(M, STOCK_UPD), line_scratch, 2);

        // ORDER-LINE insert.
        let env = &mut t.env;
        let amount = price as u64 * qty as u64;
        let mut lrow = vec![0u8; width::ORDER_LINE as usize];
        lrow[field::OL_I_ID as usize..][..4].copy_from_slice(&i_id.to_le_bytes());
        lrow[field::OL_SUPPLY_W_ID as usize..][..4].copy_from_slice(&1u32.to_le_bytes());
        lrow[field::OL_QUANTITY as usize..][..4].copy_from_slice(&qty.to_le_bytes());
        lrow[field::OL_AMOUNT as usize..][..8].copy_from_slice(&amount.to_le_bytes());
        tb.order_line.insert(env, &db.alloc, key::order_line(d_id, o_id, l + 1), &lrow);
        db.log(env, width::ORDER_LINE as u64, local.as_mut());
        db.bump_stats(env);
        t.work(Pc::new(M, OL_INS), line_scratch, 2);

        // Accumulate the order total in the shared ORDER row — the
        // intra-transaction dependence every line shares (all epochs
        // read-modify-write the same field, at matching positions).
        let env = &mut t.env;
        let tot = env.load_u64(Pc::new(M, LINE_END), oa.offset(field::O_TOTAL));
        env.alu(Pc::new(M, LINE_END), 4);
        env.store_u64(Pc::new(M, LINE_END), oa.offset(field::O_TOTAL), tot + amount);
        env.alu(Pc::new(M, LINE_END), 8);
        let _ = &local;
        t.env.rec.end_epoch();
    }
    t.env.rec.end_parallel();

    // ---- Commit processing: merge the speculative threads' private log
    // buffers into the shared log, in commit order (non-speculative work,
    // performed while holding the homefree token). ----
    if db.opts.per_thread_log {
        for _ in 0..n_lines {
            db.wal
                .reserve(&mut t.env, 64, !db.opts.latch_free)
                .expect("reservation fits the shared log");
        }
    }
    t.work(Pc::new(M, COMMIT), scratch, 7);
}

#[cfg(test)]
mod tests {
    use super::super::{schema, Tpcc, TpccConfig, Transaction};
    use schema::{field, key};

    #[test]
    fn inserts_order_rows_and_updates_stock() {
        let mut t = Tpcc::new(TpccConfig::test());
        let orders_before = t.tables.orders.count(&mut t.env);
        let ol_before = t.tables.order_line.count(&mut t.env);
        t.run_one(Transaction::NewOrder);
        let orders_after = t.tables.orders.count(&mut t.env);
        let ol_after = t.tables.order_line.count(&mut t.env);
        assert_eq!(orders_after, orders_before + 1);
        assert!((5..=15).contains(&(ol_after - ol_before)));
    }

    #[test]
    fn district_counter_advances_per_order() {
        let mut t = Tpcc::new(TpccConfig::test());
        let before: Vec<u32> = (1..=t.cfg.districts)
            .map(|d| {
                let a = t.tables.district.get_addr(&mut t.env, key::district(d)).unwrap();
                t.env.mem.peek_u32(a.offset(field::D_NEXT_O_ID))
            })
            .collect();
        for _ in 0..8 {
            t.run_one(Transaction::NewOrder);
        }
        let after: Vec<u32> = (1..=t.cfg.districts)
            .map(|d| {
                let a = t.tables.district.get_addr(&mut t.env, key::district(d)).unwrap();
                t.env.mem.peek_u32(a.offset(field::D_NEXT_O_ID))
            })
            .collect();
        let advanced: u32 = after.iter().zip(&before).map(|(a, b)| a - b).sum();
        assert_eq!(advanced, 8);
    }

    #[test]
    fn trace_has_one_epoch_per_line() {
        let mut t = Tpcc::new(TpccConfig::test());
        let p = t.record(Transaction::NewOrder, 1);
        let s = p.stats();
        assert!((5..=15).contains(&s.epochs), "epochs {}", s.epochs);
        assert!(s.coverage() > 0.3, "coverage {}", s.coverage());
    }

    #[test]
    fn new_order_150_has_ten_times_the_epochs() {
        let mut t = Tpcc::new(TpccConfig::test());
        let p = t.record(Transaction::NewOrder150, 1);
        let s = p.stats();
        assert!((50..=150).contains(&s.epochs), "epochs {}", s.epochs);
        assert!(s.coverage() > 0.8);
    }
}
