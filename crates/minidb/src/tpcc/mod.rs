//! The TPC-C workload (single warehouse), recorded as trace programs.
//!
//! All five TPC-C transactions are implemented against the MiniDB engine,
//! plus the paper's two variants (NEW ORDER 150 with 50–150 items, and
//! DELIVERY with its *outer* loop parallelized). Each transaction marks
//! its main loop as parallel; recording in TLS mode turns iterations into
//! epochs.
//!
//! Parameters follow the TPC-C run rules (NURand selection, 1% of it
//! omitted: we skip the intentional 1% aborted NEW ORDER since the paper
//! measures committed-transaction latency). As in the paper, terminal
//! I/O, query planning and wait times are not modeled, and the buffer
//! pool is memory-resident.

pub mod consistency;
mod delivery;
mod load;
mod new_order;
mod order_status;
mod payment;
pub mod schema;
mod stock_level;

use crate::pager::Pager;
use crate::{Db, Env, OptLevel, PagerCounters};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tls_core::DiskFaultPlan;
use tls_trace::{Addr, Pc, TraceProgram};

pub use schema::Tables;

/// Workload scale and engine options.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TpccConfig {
    /// Districts per warehouse (TPC-C: 10).
    pub districts: u32,
    /// Rows in ITEM/STOCK (TPC-C: 100 000).
    pub items: u32,
    /// Customers per district (TPC-C: 3 000).
    pub customers_per_district: u32,
    /// Orders pre-loaded per district (TPC-C: 3 000, the newest third
    /// undelivered).
    pub initial_orders_per_district: u32,
    /// RNG seed; identical seeds give identical transaction parameters.
    pub seed: u64,
    /// Engine optimization level (see [`OptLevel`]).
    pub opts: OptLevel,
    /// DBMS work amplification: overhead instruction groups emitted per
    /// engine primitive, standing in for the buffer-pool/latching/cursor
    /// code a production engine runs around each access. Calibrated so
    /// paper-scale NEW ORDER threads are ≈60k dynamic instructions.
    pub work_scale: u32,
}

impl TpccConfig {
    /// The paper's scale: full TPC-C single-warehouse population.
    pub fn paper() -> Self {
        TpccConfig {
            districts: 10,
            items: 100_000,
            customers_per_district: 3_000,
            initial_orders_per_district: 3_000,
            seed: 0x5EED_2006,
            opts: OptLevel::fully_optimized(),
            work_scale: 950,
        }
    }

    /// A mid-size configuration: large enough for the paper's violation
    /// dynamics (threads of a few thousand instructions, meaningful
    /// sub-thread checkpoints), small enough for debug-build test runs.
    pub fn small() -> Self {
        TpccConfig {
            districts: 10,
            items: 5_000,
            customers_per_district: 300,
            initial_orders_per_district: 100,
            seed: 0x5EED_2006,
            opts: OptLevel::fully_optimized(),
            work_scale: 60,
        }
    }

    /// A milliseconds-fast configuration for tests.
    pub fn test() -> Self {
        TpccConfig {
            districts: 10,
            items: 400,
            customers_per_district: 60,
            initial_orders_per_district: 15,
            seed: 0x5EED_2006,
            opts: OptLevel::fully_optimized(),
            work_scale: 4,
        }
    }

    /// Validates scale invariants.
    ///
    /// # Panics
    ///
    /// Panics if the scale is too small for the workload (NEW ORDER 150
    /// draws up to 150 distinct items; DELIVERY needs pending orders).
    pub fn validate(&self) {
        assert!(self.items >= 300, "need at least 300 items for distinct draws");
        assert!(self.districts >= 1 && self.districts <= 10);
        assert!(self.customers_per_district >= 10);
        assert!(self.initial_orders_per_district >= 10);
    }
}

/// The seven benchmarks of the evaluation (five transactions + two
/// variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transaction {
    /// NEW ORDER, 5–15 items.
    NewOrder,
    /// NEW ORDER scaled to 50–150 items (the paper's NEW ORDER 150).
    NewOrder150,
    /// PAYMENT.
    Payment,
    /// ORDER STATUS.
    OrderStatus,
    /// DELIVERY with the inner (order-line) loop parallelized.
    Delivery,
    /// DELIVERY with the outer (district) loop parallelized.
    DeliveryOuter,
    /// STOCK LEVEL.
    StockLevel,
}

impl Transaction {
    /// All seven benchmarks, in Table 2 order.
    pub const ALL: [Transaction; 7] = [
        Transaction::NewOrder,
        Transaction::NewOrder150,
        Transaction::Delivery,
        Transaction::DeliveryOuter,
        Transaction::StockLevel,
        Transaction::Payment,
        Transaction::OrderStatus,
    ];

    /// The paper's display name.
    pub fn label(&self) -> &'static str {
        match self {
            Transaction::NewOrder => "NEW ORDER",
            Transaction::NewOrder150 => "NEW ORDER 150",
            Transaction::Payment => "PAYMENT",
            Transaction::OrderStatus => "ORDER STATUS",
            Transaction::Delivery => "DELIVERY",
            Transaction::DeliveryOuter => "DELIVERY OUTER",
            Transaction::StockLevel => "STOCK LEVEL",
        }
    }

    /// Identifier used as the trace-program name.
    pub fn trace_name(&self) -> &'static str {
        match self {
            Transaction::NewOrder => "new_order",
            Transaction::NewOrder150 => "new_order_150",
            Transaction::Payment => "payment",
            Transaction::OrderStatus => "order_status",
            Transaction::Delivery => "delivery",
            Transaction::DeliveryOuter => "delivery_outer",
            Transaction::StockLevel => "stock_level",
        }
    }

    /// Parses a benchmark name as spelled on a command line.
    ///
    /// Accepts the [`trace_name`](Self::trace_name) spelling
    /// (`new_order`) as well as the paper's display
    /// [`label`](Self::label) (`NEW ORDER`) in any case, with spaces or
    /// dashes in place of underscores. Returns `None` for anything
    /// else — callers should list [`Transaction::ALL`] in their error
    /// message rather than silently falling back.
    pub fn from_cli_name(name: &str) -> Option<Transaction> {
        let normalized: String = name
            .trim()
            .chars()
            .map(|c| match c {
                ' ' | '-' => '_',
                c => c.to_ascii_lowercase(),
            })
            .collect();
        Transaction::ALL.iter().copied().find(|t| t.trace_name() == normalized)
    }
}

/// A loaded TPC-C database plus the machinery to run and record
/// transactions against it.
#[derive(Debug)]
pub struct Tpcc {
    /// The recorded execution environment.
    pub env: Env,
    /// The engine.
    pub db: Db,
    /// The table catalog.
    pub tables: Tables,
    /// The workload configuration.
    pub cfg: TpccConfig,
    rng: StdRng,
    history_seq: u64,
}

impl Tpcc {
    /// Creates and populates a database (recording off during load).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: TpccConfig) -> Self {
        cfg.validate();
        let mut env = Env::new();
        let db = Db::new(&mut env, cfg.opts);
        let tables = Tables::create(&mut env, &db);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        load::populate(&mut env, &db, &tables, &cfg, &mut rng);
        // Transactions draw from a stream independent of load order.
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0xACE1_ACE1);
        Tpcc { env, db, tables, cfg, rng, history_seq: 1 << 32 }
    }

    /// Records `count` back-to-back instances of `txn` as a
    /// TLS-parallelized trace.
    pub fn record(&mut self, txn: Transaction, count: usize) -> TraceProgram {
        self.record_mode(txn, count, true)
    }

    /// Records `count` instances with the parallel markers ignored (the
    /// SEQUENTIAL trace).
    pub fn record_plain(&mut self, txn: Transaction, count: usize) -> TraceProgram {
        self.record_mode(txn, count, false)
    }

    fn record_mode(&mut self, txn: Transaction, count: usize, tls: bool) -> TraceProgram {
        self.env.rec.start(txn.trace_name(), tls);
        for _ in 0..count {
            self.run_one(txn);
        }
        self.env.rec.finish()
    }

    /// Attaches a disk-backed buffer pool under the engine: every table
    /// page becomes evictable through a pool of `frames` frames whose
    /// simulated disk applies `plan`. The current database contents
    /// become the fault-exempt bootstrap checkpoint; each subsequent
    /// [`Self::run_one`] executes as one logged mini-transaction, so the
    /// run is crash-recoverable at any durable-log LSN.
    ///
    /// # Panics
    ///
    /// Panics if a pager is already attached, or (later, on first
    /// eviction) if `frames` is smaller than one transaction's pinned
    /// working set.
    pub fn attach_pager(&mut self, frames: usize, plan: DiskFaultPlan, observe: bool) {
        let permanents: Vec<(Addr, u64)> =
            self.tables.all().iter().map(|t| t.meta_region()).collect();
        let pager = Box::new(Pager::new(&mut self.env, frames, plan, observe));
        self.env.attach_pager(pager, &permanents);
    }

    /// Buffer-pool counters, if a pool is attached.
    pub fn pager_counters(&self) -> Option<PagerCounters> {
        self.env.pager().map(|p| p.counters())
    }

    /// Executes one transaction (recording optional). With a buffer pool
    /// attached the transaction runs as one mini-transaction: its pages
    /// stay pinned until the end, then the WAL logs every change.
    pub fn run_one(&mut self, txn: Transaction) {
        self.env.mtr_begin();
        match txn {
            Transaction::NewOrder => new_order::run(self, 5, 15),
            Transaction::NewOrder150 => new_order::run(self, 50, 150),
            Transaction::Payment => payment::run(self),
            Transaction::OrderStatus => order_status::run(self),
            Transaction::Delivery => delivery::run(self, delivery::Variant::Inner),
            Transaction::DeliveryOuter => delivery::run(self, delivery::Variant::Outer),
            Transaction::StockLevel => stock_level::run(self),
        }
        self.env.mtr_end();
    }

    /// Draws the next transaction type per the TPC-C mix weights
    /// (§5.2.3: 45% NEW ORDER, 43% PAYMENT, 4% each ORDER STATUS,
    /// DELIVERY, STOCK LEVEL).
    pub fn next_mix_transaction(&mut self) -> Transaction {
        match self.rng.gen_range(1..=100u32) {
            1..=45 => Transaction::NewOrder,
            46..=88 => Transaction::Payment,
            89..=92 => Transaction::OrderStatus,
            93..=96 => Transaction::Delivery,
            _ => Transaction::StockLevel,
        }
    }

    /// Records `count` transactions of the standard TPC-C mix as one TLS
    /// trace program — the paper runs transactions one at a time, so the
    /// mix concatenates as back-to-back regions.
    pub fn record_mix(&mut self, count: usize) -> TraceProgram {
        self.env.rec.start("tpcc_mix", true);
        for _ in 0..count {
            let txn = self.next_mix_transaction();
            self.run_one(txn);
        }
        self.env.rec.finish()
    }

    /// Records the (plain, TLS) trace pair of a benchmark from two
    /// identically-seeded databases: the plain instance runs the
    /// unmodified engine ([`OptLevel::none`]), the TLS instance the
    /// engine configured in `cfg`.
    pub fn record_pair(
        cfg: &TpccConfig,
        txn: Transaction,
        count: usize,
    ) -> (TraceProgram, TraceProgram) {
        let mut plain_cfg = cfg.clone();
        plain_cfg.opts = OptLevel::none();
        let mut plain_db = Tpcc::new(plain_cfg);
        let plain = plain_db.record_plain(txn, count);
        let mut tls_db = Tpcc::new(cfg.clone());
        let tls = tls_db.record(txn, count);
        (plain, tls)
    }

    // ------------------------------------------------------------------
    // TPC-C parameter generation (run rules §2.1.5 / NURand).

    /// TPC-C NURand(A, x, y) with the standard C constant derived from
    /// the seed.
    pub(crate) fn nurand(&mut self, a: u32, x: u32, y: u32) -> u32 {
        let c = (self.cfg.seed as u32) % (a + 1);
        let r1 = self.rng.gen_range(0..=a);
        let r2 = self.rng.gen_range(x..=y);
        (((r1 | r2) + c) % (y - x + 1)) + x
    }

    /// A NURand customer id.
    pub(crate) fn pick_customer(&mut self) -> u32 {
        self.nurand(1023, 1, self.cfg.customers_per_district)
    }

    /// A NURand item id.
    pub(crate) fn pick_item(&mut self) -> u32 {
        self.nurand(8191, 1, self.cfg.items)
    }

    /// A uniform district id.
    pub(crate) fn pick_district(&mut self) -> u32 {
        self.rng.gen_range(1..=self.cfg.districts)
    }

    /// A uniform value in `lo..=hi`.
    pub(crate) fn uniform(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.gen_range(lo..=hi)
    }

    /// `n` distinct NURand item ids.
    pub(crate) fn pick_items(&mut self, n: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let i = self.pick_item();
            if !out.contains(&i) {
                out.push(i);
            }
        }
        out
    }

    /// A NURand customer last-name hash (TPC-C picks among 1000 syllable
    /// triples; the hash stands in for the name bytes). Scaled-down
    /// populations only assign the first `customers_per_district` names,
    /// so the draw is capped to names that exist.
    pub(crate) fn pick_lastname_hash(&mut self) -> u64 {
        let max_name = 999.min(self.cfg.customers_per_district - 1);
        lastname_hash(self.nurand(255, 0, max_name))
    }

    /// The next history key.
    pub(crate) fn next_history_key(&mut self) -> u64 {
        self.history_seq += 1;
        self.history_seq
    }

    /// Allocates a thread-private scratch block for overhead emission.
    pub(crate) fn scratch(&mut self) -> Addr {
        self.env.alloc(256, 64)
    }

    /// Emits `mult ×` the configured DBMS overhead at `pc`.
    pub(crate) fn work(&mut self, pc: Pc, scratch: Addr, mult: u32) {
        let groups = (self.cfg.work_scale * mult) as usize;
        self.env.overhead(pc, scratch, groups);
    }

    /// Emits `num/den ×` the configured DBMS overhead at `pc` (for the
    /// lightweight read paths: index-only scans, stock probes).
    pub(crate) fn work_frac(&mut self, pc: Pc, scratch: Addr, num: u32, den: u32) {
        let groups = (self.cfg.work_scale * num).div_ceil(den) as usize;
        self.env.overhead(pc, scratch, groups);
    }
}

/// The stable hash of TPC-C last name number `idx` (0..=999).
pub fn lastname_hash(idx: u32) -> u64 {
    // splitmix64 of the index: stable, well spread.
    let mut z = idx as u64 ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nurand_stays_in_range() {
        let mut t = Tpcc::new(TpccConfig::test());
        for _ in 0..500 {
            let c = t.pick_customer();
            assert!((1..=t.cfg.customers_per_district).contains(&c));
            let i = t.pick_item();
            assert!((1..=t.cfg.items).contains(&i));
        }
    }

    #[test]
    fn pick_items_are_distinct() {
        let mut t = Tpcc::new(TpccConfig::test());
        let items = t.pick_items(150);
        let set: std::collections::HashSet<_> = items.iter().collect();
        assert_eq!(set.len(), 150);
    }

    #[test]
    fn identical_seeds_give_identical_parameters() {
        let mut a = Tpcc::new(TpccConfig::test());
        let mut b = Tpcc::new(TpccConfig::test());
        for _ in 0..100 {
            assert_eq!(a.pick_customer(), b.pick_customer());
            assert_eq!(a.pick_item(), b.pick_item());
        }
    }

    #[test]
    fn all_seven_benchmarks_are_listed() {
        assert_eq!(Transaction::ALL.len(), 7);
        let labels: std::collections::HashSet<_> =
            Transaction::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), 7);
    }

    #[test]
    fn cli_names_round_trip() {
        for t in Transaction::ALL {
            assert_eq!(Transaction::from_cli_name(t.trace_name()), Some(t));
            assert_eq!(Transaction::from_cli_name(t.label()), Some(t));
            assert_eq!(Transaction::from_cli_name(&t.label().to_lowercase()), Some(t));
        }
        assert_eq!(Transaction::from_cli_name("new-order"), Some(Transaction::NewOrder));
        assert_eq!(Transaction::from_cli_name("  NEW_ORDER_150 "), Some(Transaction::NewOrder150));
        assert_eq!(Transaction::from_cli_name("neworder"), None);
        assert_eq!(Transaction::from_cli_name(""), None);
    }

    #[test]
    fn mix_records_and_stays_consistent() {
        let mut t = Tpcc::new(TpccConfig::test());
        let p = t.record_mix(20);
        assert!(p.total_ops() > 0);
        assert!(p.stats().epochs > 0, "the mix includes parallelizable transactions");
        consistency::check(&mut t).expect("consistent after the mix");
    }

    #[test]
    fn mix_weights_roughly_match_the_spec() {
        let mut t = Tpcc::new(TpccConfig::test());
        let mut counts = std::collections::HashMap::new();
        for _ in 0..2000 {
            *counts.entry(t.next_mix_transaction().label()).or_insert(0u32) += 1;
        }
        let no = counts["NEW ORDER"] as f64 / 2000.0;
        let pay = counts["PAYMENT"] as f64 / 2000.0;
        assert!((0.40..0.50).contains(&no), "NEW ORDER fraction {no}");
        assert!((0.38..0.48).contains(&pay), "PAYMENT fraction {pay}");
    }

    #[test]
    fn lastname_hash_is_stable_and_spread() {
        assert_eq!(lastname_hash(5), lastname_hash(5));
        let distinct: std::collections::HashSet<_> = (0..1000).map(lastname_hash).collect();
        assert_eq!(distinct.len(), 1000);
    }
}
