//! The PAYMENT transaction (TPC-C §2.5).
//!
//! Almost entirely sequential — warehouse/district/customer updates and a
//! HISTORY insert — with one small parallelizable piece: scanning the
//! customer last-name index when the customer is selected by name (60% of
//! executions). The paper reports 3% coverage and no TLS benefit; this
//! implementation reproduces that shape.

use super::schema::{field, key, module, width};
use super::Tpcc;
use tls_trace::Pc;

const M: u16 = module::TXN_PAYMENT;

const BEGIN: u16 = 0;
const WH_UPD: u16 = 1;
const DIST_UPD: u16 = 2;
const NAME_SCAN: u16 = 3;
const SPAWN: u16 = 4;
const CUST_UPD: u16 = 5;
const HIST_INS: u16 = 6;
const COMMIT: u16 = 7;

/// Candidate customers examined per epoch of the name scan.
const SCAN_CHUNK: usize = 8;

/// Runs one PAYMENT.
pub fn run(t: &mut Tpcc) {
    let db = t.db;
    let tb = t.tables;
    let d_id = t.pick_district();
    let by_name = t.uniform(1, 100) <= 60;
    let amount = t.uniform(100, 500_000) as u64;
    let scratch = t.scratch();

    t.work(Pc::new(M, BEGIN), scratch, 7);

    // WAREHOUSE and DISTRICT year-to-date updates.
    let env = &mut t.env;
    let wa = tb.warehouse.get_addr(env, key::warehouse(1)).expect("warehouse");
    let w_ytd = env.load_u64(Pc::new(M, WH_UPD), wa.offset(field::W_YTD));
    env.store_u64(Pc::new(M, WH_UPD), wa.offset(field::W_YTD), w_ytd + amount);
    let da = tb.district.get_addr(env, key::district(d_id)).expect("district");
    let d_ytd = env.load_u64(Pc::new(M, DIST_UPD), da.offset(field::D_YTD));
    env.store_u64(Pc::new(M, DIST_UPD), da.offset(field::D_YTD), d_ytd + amount);
    t.work(Pc::new(M, DIST_UPD), scratch, 7);

    // Resolve the customer.
    let c_id = if by_name {
        let hash = t.pick_lastname_hash();
        // Collect the matching index entries (cursor positioning).
        let env = &mut t.env;
        let prefix = key::customer_name_prefix(d_id, hash) >> 16;
        let mut matches: Vec<u32> = Vec::new();
        tb.customer_name.scan_from(env, key::customer_name(d_id, hash, 0), |env2, k, v| {
            if k >> 16 != prefix {
                return false;
            }
            let c = env2.load_u64(Pc::new(M, NAME_SCAN), v) as u32;
            matches.push(c);
            true
        });
        // Verify each candidate row — the small parallelizable loop.
        t.env.rec.begin_parallel();
        for chunk in matches.chunks(SCAN_CHUNK) {
            t.env.rec.begin_epoch(Pc::new(M, SPAWN));
            let cscratch = t.env.alloc(256, 64);
            for &c in chunk {
                let env = &mut t.env;
                let ca = tb.customer.get_addr(env, key::customer(d_id, c)).expect("customer");
                let _h = env.load_u64(Pc::new(M, NAME_SCAN), ca.offset(field::C_LAST_HASH));
                env.alu(Pc::new(M, NAME_SCAN), 6);
                t.work_frac(Pc::new(M, NAME_SCAN), cscratch, 1, 8);
            }
            t.env.rec.end_epoch();
        }
        t.env.rec.end_parallel();
        // TPC-C: position on the middle match (ordered by first name).
        matches[matches.len() / 2]
    } else {
        t.pick_customer()
    };

    // Customer update.
    let env = &mut t.env;
    let ca = tb.customer.get_addr(env, key::customer(d_id, c_id)).expect("customer");
    let bal = env.load_u64(Pc::new(M, CUST_UPD), ca.offset(field::C_BALANCE));
    env.store_u64(Pc::new(M, CUST_UPD), ca.offset(field::C_BALANCE), bal.wrapping_sub(amount));
    let ytd = env.load_u64(Pc::new(M, CUST_UPD), ca.offset(field::C_YTD_PAYMENT));
    env.store_u64(Pc::new(M, CUST_UPD), ca.offset(field::C_YTD_PAYMENT), ytd + amount);
    let cnt = env.load_u32(Pc::new(M, CUST_UPD), ca.offset(field::C_PAYMENT_CNT));
    env.store_u32(Pc::new(M, CUST_UPD), ca.offset(field::C_PAYMENT_CNT), cnt + 1);
    db.log(env, width::CUSTOMER as u64, None);
    db.bump_stats(env);
    t.work(Pc::new(M, CUST_UPD), scratch, 9);

    // HISTORY insert.
    let hkey = t.next_history_key();
    let env = &mut t.env;
    let hrow = vec![0u8; width::HISTORY as usize];
    tb.history.insert(env, &db.alloc, key::history(hkey), &hrow);
    db.log(env, width::HISTORY as u64, None);
    db.bump_stats(env);
    t.work(Pc::new(M, HIST_INS), scratch, 7);

    t.work(Pc::new(M, COMMIT), scratch, 7);
}

#[cfg(test)]
mod tests {
    use super::super::{Tpcc, TpccConfig, Transaction};

    #[test]
    fn payment_inserts_history_and_keeps_low_coverage() {
        let mut t = Tpcc::new(TpccConfig::test());
        let before = t.tables.history.count(&mut t.env);
        let p = t.record(Transaction::Payment, 4);
        let after = t.tables.history.count(&mut t.env);
        assert_eq!(after, before + 4);
        let s = p.stats();
        // PAYMENT is mostly sequential (paper: 3% coverage).
        assert!(s.coverage() < 0.35, "coverage {}", s.coverage());
    }

    #[test]
    fn warehouse_ytd_accumulates() {
        use super::super::schema::{field, key};
        let mut t = Tpcc::new(TpccConfig::test());
        let wa = t.tables.warehouse.get_addr(&mut t.env, key::warehouse(1)).unwrap();
        let before = t.env.mem.peek_u64(wa.offset(field::W_YTD));
        t.run_one(Transaction::Payment);
        t.run_one(Transaction::Payment);
        let after = t.env.mem.peek_u64(wa.offset(field::W_YTD));
        assert!(after > before);
    }
}
