//! The ORDER STATUS transaction (TPC-C §2.6).
//!
//! Read-only: resolve the customer (by name 60% of the time), read their
//! balance, find their most recent order, and read its order lines. The
//! order-line loop is parallelized, but the threads are small and the
//! prologue substantial (paper: 38% coverage, no speedup).
//!
//! Both lookups route through the query front end: the by-name path is a
//! [`SecondaryIndex::scan`] over the customer-name index with exact
//! prefix bounds, and the most-recent-order lookup probes the
//! order-by-customer index for the order's primary key.

use super::schema::{field, key, module};
use super::Tpcc;
use crate::query::SecondaryIndex;
use tls_trace::Pc;

const M: u16 = module::TXN_ORDER_STATUS;

const BEGIN: u16 = 0;
const NAME_SCAN: u16 = 1;
const CUST_READ: u16 = 2;
const ORDER_READ: u16 = 3;
const SPAWN: u16 = 4;
const LINE_READ: u16 = 5;
const COMMIT: u16 = 6;

/// Runs one ORDER STATUS.
pub fn run(t: &mut Tpcc) {
    let tb = t.tables;
    let d_id = t.pick_district();
    let by_name = t.uniform(1, 100) <= 60;
    let scratch = t.scratch();

    t.work(Pc::new(M, BEGIN), scratch, 2);

    let c_id = if by_name {
        let hash = t.pick_lastname_hash();
        let env = &mut t.env;
        // Index range scan with exact prefix bounds: c_id occupies the
        // low 16 bits, so `(prefix, 0) .. (prefix + 1, 0)` covers every
        // customer sharing the name.
        let lo = key::customer_name(d_id, hash, 0);
        let by_last_name = SecondaryIndex::new(tb.customer_name);
        let mut matches: Vec<u32> = Vec::new();
        by_last_name.scan(env, Pc::new(M, NAME_SCAN), lo, lo + (1 << 16), |_, _, c| {
            matches.push(c as u32);
            true
        });
        matches[matches.len() / 2]
    } else {
        t.pick_customer()
    };

    // Customer status.
    let env = &mut t.env;
    let ca = tb.customer.get_addr(env, key::customer(d_id, c_id)).expect("customer");
    let _bal = env.load_u64(Pc::new(M, CUST_READ), ca.offset(field::C_BALANCE));
    let o_id = env.load_u32(Pc::new(M, CUST_READ), ca.offset(field::C_LAST_ORDER));
    t.work(Pc::new(M, CUST_READ), scratch, 2);

    // The most recent order. A customer may never have ordered (possible
    // at full TPC-C scale too, since orders pick customers at random).
    if o_id == 0 {
        let env = &mut t.env;
        env.cmp_branch(Pc::new(M, ORDER_READ), false);
        t.work(Pc::new(M, COMMIT), scratch, 1);
        return;
    }
    let env = &mut t.env;
    // Resolve the order through the order-by-customer index: the probe
    // yields the ORDER primary key the entry stores.
    let by_customer = SecondaryIndex::new(tb.order_customer);
    let okey = by_customer
        .probe(env, Pc::new(M, ORDER_READ), key::order_customer(d_id, c_id, o_id))
        .expect("customer's last order is indexed");
    let oa = tb.orders.get_addr(env, okey).expect("order exists");
    let ol_cnt = env.load_u32(Pc::new(M, ORDER_READ), oa.offset(field::O_OL_CNT));
    let _carrier = env.load_u32(Pc::new(M, ORDER_READ), oa.offset(field::O_CARRIER_ID));
    t.work(Pc::new(M, ORDER_READ), scratch, 1);

    // Parallelized order-line reads, four lines per epoch (the cursor
    // batch size): ~2-3 threads per transaction, as in Table 2.
    t.env.rec.begin_parallel();
    let mut ol = 1;
    while ol <= ol_cnt {
        let hi = (ol + 3).min(ol_cnt);
        t.env.rec.begin_epoch(Pc::new(M, SPAWN));
        let lscratch = t.env.alloc(256, 64);
        for l in ol..=hi {
            let env = &mut t.env;
            let la = tb
                .order_line
                .get_addr(env, key::order_line(d_id, o_id, l))
                .expect("order line exists");
            let _i = env.load_u32(Pc::new(M, LINE_READ), la.offset(field::OL_I_ID));
            let _a = env.load_u64(Pc::new(M, LINE_READ), la.offset(field::OL_AMOUNT));
            let _d = env.load_u64(Pc::new(M, LINE_READ), la.offset(field::OL_DELIVERY_D));
            env.alu(Pc::new(M, LINE_READ), 8);
            t.work_frac(Pc::new(M, LINE_READ), lscratch, 1, 4);
        }
        t.env.rec.end_epoch();
        ol = hi + 1;
    }
    t.env.rec.end_parallel();

    t.work(Pc::new(M, COMMIT), scratch, 2);
}

#[cfg(test)]
mod tests {
    use super::super::{Tpcc, TpccConfig, Transaction};

    #[test]
    fn order_status_is_read_only() {
        let mut t = Tpcc::new(TpccConfig::test());
        let orders = t.tables.orders.count(&mut t.env);
        let lines = t.tables.order_line.count(&mut t.env);
        t.run_one(Transaction::OrderStatus);
        assert_eq!(t.tables.orders.count(&mut t.env), orders);
        assert_eq!(t.tables.order_line.count(&mut t.env), lines);
    }

    #[test]
    fn trace_has_moderate_coverage_and_small_epochs() {
        // At test scale most customers have never ordered, so whether a
        // given ORDER STATUS reaches the parallel order-line loop is a
        // seeded-RNG draw. Ten transactions make at least one ordered
        // customer a certainty for any reasonable stream while keeping
        // the run deterministic.
        let mut t = Tpcc::new(TpccConfig::test());
        let p = t.record(Transaction::OrderStatus, 10);
        let s = p.stats();
        assert!(s.epochs >= 3, "one epoch per line read, got {}", s.epochs);
        assert!(s.coverage() < 0.75, "coverage {}", s.coverage());
    }
}
