//! Initial database population (TPC-C §4.3, scaled).
//!
//! Runs with recording off: the load is setup, not workload. Keys are
//! inserted in ascending order so leaves fill without shifts, exactly as
//! a bulk loader would.

use super::schema::{field, key, width, Tables};
use super::{lastname_hash, TpccConfig};
use crate::{Db, Env};
use rand::rngs::StdRng;
use rand::Rng;
use tls_trace::Addr;

/// Fills all tables.
pub fn populate(env: &mut Env, db: &Db, tables: &Tables, cfg: &TpccConfig, rng: &mut StdRng) {
    assert!(!env.rec.recording(), "load must not be recorded");

    // ITEM + STOCK.
    for i_id in 1..=cfg.items {
        let mut row = vec![0u8; width::ITEM as usize];
        put_u32(&mut row, field::I_PRICE, rng.gen_range(100..=10_000));
        put_u64(&mut row, field::I_NAME_HASH, lastname_hash(i_id % 1000));
        tables.item.insert(env, &db.alloc, key::item(i_id), &row);

        let mut srow = vec![0u8; width::STOCK as usize];
        put_u32(&mut srow, field::S_QUANTITY, rng.gen_range(10..=100));
        tables.stock.insert(env, &db.alloc, key::item(i_id), &srow);
    }

    // WAREHOUSE (single warehouse).
    let mut wrow = vec![0u8; width::WAREHOUSE as usize];
    put_u32(&mut wrow, field::W_TAX, rng.gen_range(0..=2000));
    tables.warehouse.insert(env, &db.alloc, key::warehouse(1), &wrow);

    for d_id in 1..=cfg.districts {
        // DISTRICT: next order id continues past the loaded orders.
        let mut drow = vec![0u8; width::DISTRICT as usize];
        put_u32(&mut drow, field::D_NEXT_O_ID, cfg.initial_orders_per_district + 1);
        put_u32(&mut drow, field::D_TAX, rng.gen_range(0..=2000));
        tables.district.insert(env, &db.alloc, key::district(d_id), &drow);

        // CUSTOMER + name index.
        for c_id in 1..=cfg.customers_per_district {
            let last = lastname_hash(customer_name_idx(c_id));
            let mut crow = vec![0u8; width::CUSTOMER as usize];
            put_u64(&mut crow, field::C_BALANCE, 0);
            put_u64(&mut crow, field::C_LAST_HASH, last);
            put_u32(&mut crow, field::C_DISCOUNT, rng.gen_range(0..=5000));
            tables.customer.insert(env, &db.alloc, key::customer(d_id, c_id), &crow);
            tables.customer_name.insert(
                env,
                &db.alloc,
                key::customer_name(d_id, last, c_id),
                &(c_id as u64).to_le_bytes(),
            );
        }

        // ORDERS, ORDER-LINE, NEW-ORDER. The newest third of the orders
        // is undelivered (TPC-C loads 900 of 3000 into NEW-ORDER).
        let delivered_upto = cfg.initial_orders_per_district * 2 / 3;
        for o_id in 1..=cfg.initial_orders_per_district {
            let c_id = rng.gen_range(1..=cfg.customers_per_district);
            let ol_cnt = rng.gen_range(5..=15u32);
            let delivered = o_id <= delivered_upto;

            let mut orow = vec![0u8; width::ORDERS as usize];
            put_u32(&mut orow, field::O_C_ID, c_id);
            put_u32(
                &mut orow,
                field::O_CARRIER_ID,
                if delivered { rng.gen_range(1..=10) } else { 0 },
            );
            put_u64(&mut orow, field::O_ENTRY_D, o_id as u64);
            put_u32(&mut orow, field::O_OL_CNT, ol_cnt);
            tables.orders.insert(env, &db.alloc, key::order(d_id, o_id), &orow);
            tables.order_customer.insert(
                env,
                &db.alloc,
                key::order_customer(d_id, c_id, o_id),
                &key::order(d_id, o_id).to_le_bytes(),
            );

            for ol in 1..=ol_cnt {
                let mut lrow = vec![0u8; width::ORDER_LINE as usize];
                put_u32(&mut lrow, field::OL_I_ID, rng.gen_range(1..=cfg.items));
                put_u32(&mut lrow, field::OL_SUPPLY_W_ID, 1);
                put_u64(&mut lrow, field::OL_DELIVERY_D, if delivered { o_id as u64 } else { 0 });
                put_u32(&mut lrow, field::OL_QUANTITY, rng.gen_range(1..=10));
                put_u64(&mut lrow, field::OL_AMOUNT, rng.gen_range(1..=999_999));
                tables.order_line.insert(env, &db.alloc, key::order_line(d_id, o_id, ol), &lrow);
            }

            if !delivered {
                tables.new_order.insert(env, &db.alloc, key::order(d_id, o_id), &[0u8; 8]);
            }

            // Track the customer's most recent order.
            let caddr =
                tables.customer.get_addr(env, key::customer(d_id, c_id)).expect("customer loaded");
            poke_u32(env, caddr.offset(field::C_LAST_ORDER), o_id);
        }
    }
}

fn customer_name_idx(c_id: u32) -> u32 {
    // TPC-C: the first 1000 customers get names 0..999 in order, the rest
    // NURand-like; a simple mix keeps names repeating like the spec's.
    if c_id <= 1000 {
        c_id - 1
    } else {
        (c_id * 2654435761) % 1000
    }
}

fn put_u32(row: &mut [u8], off: u64, v: u32) {
    row[off as usize..off as usize + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(row: &mut [u8], off: u64, v: u64) {
    row[off as usize..off as usize + 8].copy_from_slice(&v.to_le_bytes());
}

fn poke_u32(env: &mut Env, addr: Addr, v: u32) {
    env.mem.poke_u32(addr, v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OptLevel, Tpcc};

    #[test]
    fn population_matches_scale() {
        let t = Tpcc::new(TpccConfig::test());
        let mut tt = t;
        let cfg = tt.cfg.clone();
        let env = &mut tt.env;
        assert_eq!(tt.tables.item.count(env), cfg.items as u64);
        assert_eq!(tt.tables.stock.count(env), cfg.items as u64);
        assert_eq!(
            tt.tables.customer.count(env),
            (cfg.districts * cfg.customers_per_district) as u64
        );
        assert_eq!(
            tt.tables.orders.count(env),
            (cfg.districts * cfg.initial_orders_per_district) as u64
        );
        assert_eq!(tt.tables.order_customer.count(env), tt.tables.orders.count(env));
        let undelivered = cfg.initial_orders_per_district - cfg.initial_orders_per_district * 2 / 3;
        assert_eq!(tt.tables.new_order.count(env), (cfg.districts * undelivered) as u64);
        assert!(
            tt.tables.order_line.count(env)
                >= (cfg.districts * cfg.initial_orders_per_district * 5) as u64
        );
    }

    #[test]
    fn district_next_order_id_is_loaded() {
        let mut t = Tpcc::new(TpccConfig::test());
        let cfg = t.cfg.clone();
        let da = t.tables.district.get_addr(&mut t.env, key::district(1)).unwrap();
        assert_eq!(t.env.mem.peek_u32(da), cfg.initial_orders_per_district + 1);
    }

    #[test]
    fn load_is_identical_across_opt_levels() {
        // Engine options change physical logging, not the loaded rows.
        let mut a_cfg = TpccConfig::test();
        a_cfg.opts = OptLevel::none();
        let mut a = Tpcc::new(a_cfg);
        let mut b = Tpcc::new(TpccConfig::test());
        let ka = a.tables.customer.get_addr(&mut a.env, key::customer(3, 7)).unwrap();
        let kb = b.tables.customer.get_addr(&mut b.env, key::customer(3, 7)).unwrap();
        let ra = a.env.mem.bytes(ka, width::CUSTOMER as usize).to_vec();
        let rb = b.env.mem.bytes(kb, width::CUSTOMER as usize).to_vec();
        assert_eq!(ra, rb);
    }
}
