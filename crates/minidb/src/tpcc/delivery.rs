//! The DELIVERY transaction (TPC-C §2.7), in both parallelizations the
//! paper evaluates.
//!
//! For each of the 10 districts: pop the oldest NEW-ORDER entry, stamp
//! the ORDER with a carrier, stamp every ORDER-LINE with the delivery
//! date while summing the amounts, and credit the customer's balance.
//!
//! * [`Variant::Inner`] parallelizes the order-line loop (63% coverage,
//!   small threads).
//! * [`Variant::Outer`] parallelizes the district loop (99% coverage,
//!   threads an order of magnitude larger) — the configuration where the
//!   paper sees the largest sub-thread benefit, because the district
//!   epochs share NEW-ORDER leaf pages (deletes shift cells under later
//!   districts' min-scans) and each epoch ends with the LSN reservation.

use super::schema::{field, key, module, width};
use super::Tpcc;
use tls_trace::Pc;

const M: u16 = module::TXN_DELIVERY;

const BEGIN: u16 = 0;
const NO_SCAN: u16 = 1;
const NO_DELETE: u16 = 2;
const ORDER_UPD: u16 = 3;
const SPAWN: u16 = 4;
const LINE_UPD: u16 = 5;
const CUST_UPD: u16 = 6;
const RESULT: u16 = 7;
const COMMIT: u16 = 8;

/// Which loop is parallelized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Parallelize the per-order-line loop within each district.
    Inner,
    /// Parallelize the per-district loop (DELIVERY OUTER).
    Outer,
}

/// Runs one DELIVERY.
pub fn run(t: &mut Tpcc, variant: Variant) {
    let db = t.db;
    let tb = t.tables;
    let carrier = t.uniform(1, 10);
    let districts = t.cfg.districts;
    let scratch = t.scratch();
    // The result buffer the terminal reads: ten adjacent u64 slots —
    // adjacent epochs share its cache lines.
    let results = t.env.alloc(8 * (districts as u64 + 1), 8);
    // The delivered/skipped gauge the result record aggregates. Every
    // district updates it right after consuming its NEW-ORDER entry —
    // early in the district's work. Under DELIVERY OUTER this is the
    // paper's "data dependence early in the thread's execution [that]
    // causes all but the non-speculative thread to restart": cheap to
    // contain with sub-threads, but a full 450k-instruction restart
    // (plus secondary restarts of every later thread) without them.
    let delivered_count = t.env.alloc(8, 8);
    t.env.mem.poke_u64(delivered_count, 0);

    t.work(Pc::new(M, BEGIN), scratch, 3);

    if variant == Variant::Outer {
        t.env.rec.begin_parallel();
    }
    for d_id in 1..=districts {
        if variant == Variant::Outer {
            t.env.rec.begin_epoch(Pc::new(M, SPAWN));
        }
        let dscratch = t.env.alloc(256, 64);
        let mut local = t.db.opts.per_thread_log.then(|| t.db.local_log(&mut t.env));
        t.work(Pc::new(M, NO_SCAN), dscratch, 4);

        // Oldest undelivered order of this district.
        let env = &mut t.env;
        let found = tb.new_order.min_from(env, key::order(d_id, 0));
        let o_id = match found {
            Some((k, _)) if (k >> 32) as u32 == d_id => (k & 0xFFFF_FFFF) as u32,
            _ => {
                // No pending order for this district (TPC-C allows it).
                if variant == Variant::Outer {
                    t.env.rec.end_epoch();
                }
                continue;
            }
        };
        tb.new_order.delete(env, key::order(d_id, o_id));
        let n = env.load_u64(Pc::new(M, NO_DELETE), delivered_count);
        env.alu(Pc::new(M, NO_DELETE), 2);
        env.store_u64(Pc::new(M, NO_DELETE), delivered_count, n + 1);
        db.log(env, width::NEW_ORDER as u64, local.as_mut());
        db.bump_stats(env);
        t.work(Pc::new(M, NO_DELETE), dscratch, 6);

        // Stamp the order with the carrier.
        let env = &mut t.env;
        let oa = tb.orders.get_addr(env, key::order(d_id, o_id)).expect("order");
        let c_id = env.load_u32(Pc::new(M, ORDER_UPD), oa.offset(field::O_C_ID));
        let ol_cnt = env.load_u32(Pc::new(M, ORDER_UPD), oa.offset(field::O_OL_CNT));
        env.store_u32(Pc::new(M, ORDER_UPD), oa.offset(field::O_CARRIER_ID), carrier);
        db.log(env, width::ORDERS as u64, local.as_mut());
        t.work(Pc::new(M, ORDER_UPD), dscratch, 5);

        // Stamp and sum the order lines. The SUM(ol_amount) aggregate
        // lives in a per-district memory cell: every line's epoch
        // read-modify-writes it near its end — the aggregation dependence
        // of the parallelized inner loop (position-correlated, so
        // sub-threads contain its violations).
        let sum_cell = t.env.alloc(8, 8);
        t.env.mem.poke_u64(sum_cell, 0);
        if variant == Variant::Inner {
            t.env.rec.begin_parallel();
        }
        for ol in 1..=ol_cnt {
            if variant == Variant::Inner {
                t.env.rec.begin_epoch(Pc::new(M, SPAWN));
            }
            let lscratch = t.env.alloc(256, 64);
            let mut line_local = (variant == Variant::Inner && t.db.opts.per_thread_log)
                .then(|| t.db.local_log(&mut t.env));
            let env = &mut t.env;
            let la =
                tb.order_line.get_addr(env, key::order_line(d_id, o_id, ol)).expect("order line");
            let amount = env.load_u64(Pc::new(M, LINE_UPD), la.offset(field::OL_AMOUNT));
            env.store_u64(Pc::new(M, LINE_UPD), la.offset(field::OL_DELIVERY_D), 1 + o_id as u64);
            let log_target =
                if variant == Variant::Inner { line_local.as_mut() } else { local.as_mut() };
            db.log(env, width::ORDER_LINE as u64, log_target);
            db.bump_stats(env);
            t.work(Pc::new(M, LINE_UPD), lscratch, 4);
            let env = &mut t.env;
            let sum = env.load_u64(Pc::new(M, LINE_UPD), sum_cell);
            env.alu(Pc::new(M, LINE_UPD), 3);
            env.store_u64(Pc::new(M, LINE_UPD), sum_cell, sum + amount);
            let _ = &line_local;
            if variant == Variant::Inner {
                t.env.rec.end_epoch();
            }
        }
        if variant == Variant::Inner {
            t.env.rec.end_parallel();
        }

        // Credit the customer with the aggregated total.
        let env = &mut t.env;
        let total = env.load_u64(Pc::new(M, CUST_UPD), sum_cell);
        let ca = tb.customer.get_addr(env, key::customer(d_id, c_id)).expect("customer");
        let bal = env.load_u64(Pc::new(M, CUST_UPD), ca.offset(field::C_BALANCE));
        env.store_u64(Pc::new(M, CUST_UPD), ca.offset(field::C_BALANCE), bal.wrapping_add(total));
        let cnt = env.load_u32(Pc::new(M, CUST_UPD), ca.offset(field::C_DELIVERY_CNT));
        env.store_u32(Pc::new(M, CUST_UPD), ca.offset(field::C_DELIVERY_CNT), cnt + 1);
        db.log(env, width::CUSTOMER as u64, local.as_mut());
        t.work(Pc::new(M, CUST_UPD), dscratch, 7);

        // Report the delivered order id (shared result buffer; stores
        // only, so versioning absorbs it without violations).
        let env = &mut t.env;
        env.store_u64(Pc::new(M, RESULT), results.offset(8 * d_id as u64), o_id as u64);
        let _ = &local;
        if variant == Variant::Outer {
            t.env.rec.end_epoch();
        }
    }
    if variant == Variant::Outer {
        t.env.rec.end_parallel();
    }

    // Merge per-thread log buffers at commit (non-speculative).
    if db.opts.per_thread_log {
        for _ in 0..districts {
            db.wal
                .reserve(&mut t.env, 256, !db.opts.latch_free)
                .expect("reservation fits the shared log");
        }
    }
    t.work(Pc::new(M, COMMIT), scratch, 3);
}

#[cfg(test)]
mod tests {
    use super::super::{Tpcc, TpccConfig, Transaction};

    #[test]
    fn delivery_consumes_new_order_rows() {
        let mut t = Tpcc::new(TpccConfig::test());
        let pending = t.tables.new_order.count(&mut t.env);
        t.run_one(Transaction::Delivery);
        let after = t.tables.new_order.count(&mut t.env);
        assert_eq!(after, pending - t.cfg.districts as u64);
    }

    #[test]
    fn both_variants_deliver_the_same_orders() {
        let mut a = Tpcc::new(TpccConfig::test());
        let mut b = Tpcc::new(TpccConfig::test());
        a.run_one(Transaction::Delivery);
        b.run_one(Transaction::DeliveryOuter);
        assert_eq!(a.tables.new_order.count(&mut a.env), b.tables.new_order.count(&mut b.env));
    }

    #[test]
    fn outer_variant_has_district_sized_epochs() {
        let mut t = Tpcc::new(TpccConfig::test());
        let p = t.record(Transaction::DeliveryOuter, 1);
        let s = p.stats();
        assert_eq!(s.epochs, t.cfg.districts as usize);
        assert!(s.coverage() > 0.85, "coverage {}", s.coverage());
    }

    #[test]
    fn inner_variant_has_line_sized_epochs_and_lower_coverage() {
        let mut ti = Tpcc::new(TpccConfig::test());
        let pi = ti.record(Transaction::Delivery, 1);
        let mut to = Tpcc::new(TpccConfig::test());
        let po = to.record(Transaction::DeliveryOuter, 1);
        let si = pi.stats();
        let so = po.stats();
        assert!(si.epochs > so.epochs, "{} vs {}", si.epochs, so.epochs);
        assert!(si.avg_epoch_ops() < so.avg_epoch_ops());
        assert!(si.coverage() < so.coverage());
    }

    #[test]
    fn delivered_lines_are_stamped() {
        use super::super::schema::{field, key};
        let mut t = Tpcc::new(TpccConfig::test());
        // Find the oldest pending order of district 1 before delivering.
        let (k, _) = t.tables.new_order.min_from(&mut t.env, key::order(1, 0)).unwrap();
        let o_id = (k & 0xFFFF_FFFF) as u32;
        t.run_one(Transaction::Delivery);
        let la =
            t.tables.order_line.get_addr(&mut t.env, key::order_line(1, o_id, 1)).expect("line");
        assert_ne!(t.env.mem.peek_u64(la.offset(field::OL_DELIVERY_D)), 0);
    }
}
