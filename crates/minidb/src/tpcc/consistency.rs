//! TPC-C consistency conditions (spec §3.3.2), adapted to this schema.
//!
//! These run against the live database (recording must be off) and
//! validate that the transaction implementations maintain the invariants
//! the spec demands — the strongest whole-engine check we have, exercised
//! by the test suite after arbitrary transaction mixes.

use super::schema::{field, key};
use super::Tpcc;

/// Runs all consistency conditions; returns every violation found.
///
/// # Panics
///
/// Panics if called while the recorder is running (the checks would
/// pollute the trace).
pub fn check(t: &mut Tpcc) -> Result<(), Vec<String>> {
    assert!(!t.env.rec.recording(), "consistency checks must not be recorded");
    // The checks scan whole tables; run them direct (the pager is a
    // residency layer — the bytes are in simulated memory either way)
    // rather than pinning entire trees through a small pool.
    let pager = t.env.detach_pager();
    let mut errors = Vec::new();
    condition_1_warehouse_ytd(t, &mut errors);
    condition_2_order_ids(t, &mut errors);
    condition_3_new_order_subset(t, &mut errors);
    condition_4_order_line_counts(t, &mut errors);
    condition_5_delivery_stamps(t, &mut errors);
    condition_6_secondary_indexes(t, &mut errors);
    if let Some(p) = pager {
        t.env.restore_pager(p);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// W_YTD equals the sum of the districts' D_YTD (spec condition 1).
fn condition_1_warehouse_ytd(t: &mut Tpcc, errors: &mut Vec<String>) {
    let wa = t.tables.warehouse.get_addr(&mut t.env, key::warehouse(1)).expect("warehouse");
    let w_ytd = t.env.mem.peek_u64(wa.offset(field::W_YTD));
    let mut sum = 0u64;
    for d in 1..=t.cfg.districts {
        let da = t.tables.district.get_addr(&mut t.env, key::district(d)).expect("district");
        sum += t.env.mem.peek_u64(da.offset(field::D_YTD));
    }
    if w_ytd != sum {
        errors.push(format!("C1: W_YTD {w_ytd} != sum(D_YTD) {sum}"));
    }
}

/// For each district, D_NEXT_O_ID - 1 equals the maximum order id in
/// ORDER (spec condition 2); district order ids are dense from 1.
fn condition_2_order_ids(t: &mut Tpcc, errors: &mut Vec<String>) {
    for d in 1..=t.cfg.districts {
        let da = t.tables.district.get_addr(&mut t.env, key::district(d)).expect("district");
        let next = t.env.mem.peek_u32(da.offset(field::D_NEXT_O_ID));
        let mut max_o = 0u32;
        let mut count = 0u32;
        t.tables.orders.scan_from(&mut t.env, key::order(d, 0), |_, k, _| {
            if (k >> 32) as u32 != d {
                return false;
            }
            max_o = max_o.max((k & 0xFFFF_FFFF) as u32);
            count += 1;
            true
        });
        if next != max_o + 1 {
            errors.push(format!("C2: district {d} next_o_id {next} != max(o_id)+1 {}", max_o + 1));
        }
        if count != max_o {
            errors.push(format!("C2: district {d} has {count} orders but max id {max_o}"));
        }
    }
}

/// Every NEW-ORDER row has a matching ORDER row that is undelivered
/// (spec condition 3 analog).
fn condition_3_new_order_subset(t: &mut Tpcc, errors: &mut Vec<String>) {
    let mut pending: Vec<u64> = Vec::new();
    t.tables.new_order.scan_from(&mut t.env, 0, |_, k, _| {
        pending.push(k);
        true
    });
    for k in pending {
        match t.tables.orders.get_addr(&mut t.env, k) {
            None => errors.push(format!("C3: NEW-ORDER {k:#x} has no ORDER row")),
            Some(oa) => {
                let carrier = t.env.mem.peek_u32(oa.offset(field::O_CARRIER_ID));
                if carrier != 0 {
                    errors.push(format!("C3: NEW-ORDER {k:#x} already delivered"));
                }
            }
        }
    }
}

/// For each order, O_OL_CNT equals its ORDER-LINE row count (spec
/// condition 3/4 analog). Sampled: the newest and oldest orders of each
/// district (a full join is O(rows) and the sampled ends are where
/// inserts/deletes happen).
fn condition_4_order_line_counts(t: &mut Tpcc, errors: &mut Vec<String>) {
    for d in 1..=t.cfg.districts {
        let da = t.tables.district.get_addr(&mut t.env, key::district(d)).expect("district");
        let newest = t.env.mem.peek_u32(da.offset(field::D_NEXT_O_ID)) - 1;
        for o_id in [1, newest] {
            let Some(oa) = t.tables.orders.get_addr(&mut t.env, key::order(d, o_id)) else {
                continue;
            };
            let want = t.env.mem.peek_u32(oa.offset(field::O_OL_CNT));
            let mut got = 0u32;
            t.tables.order_line.scan_from(&mut t.env, key::order_line(d, o_id, 0), |_, k, _| {
                if k >> 8 != key::order_line(d, o_id, 0) >> 8 {
                    return false;
                }
                got += 1;
                true
            });
            if want != got {
                errors.push(format!(
                    "C4: district {d} order {o_id} claims {want} lines, found {got}"
                ));
            }
        }
    }
}

/// Delivered orders have every line stamped with a delivery date, and
/// undelivered orders have none (DELIVERY's postcondition).
fn condition_5_delivery_stamps(t: &mut Tpcc, errors: &mut Vec<String>) {
    for d in 1..=t.cfg.districts {
        // The oldest remaining NEW-ORDER entry is the delivery frontier:
        // everything older must be stamped, everything pending must not.
        let frontier = t
            .tables
            .new_order
            .min_from(&mut t.env, key::order(d, 0))
            .filter(|(k, _)| (k >> 32) as u32 == d)
            .map(|(k, _)| (k & 0xFFFF_FFFF) as u32);
        let probe: Vec<(u32, bool)> = match frontier {
            // (order, expect_delivered)
            Some(f) => vec![(f.saturating_sub(1), true), (f, false)],
            None => vec![],
        };
        for (o_id, expect_delivered) in probe {
            if o_id == 0 {
                continue;
            }
            let Some(oa) = t.tables.orders.get_addr(&mut t.env, key::order(d, o_id)) else {
                continue;
            };
            let ol_cnt = t.env.mem.peek_u32(oa.offset(field::O_OL_CNT));
            for ol in 1..=ol_cnt {
                let Some(la) =
                    t.tables.order_line.get_addr(&mut t.env, key::order_line(d, o_id, ol))
                else {
                    errors.push(format!("C5: missing line {ol} of order {o_id} district {d}"));
                    continue;
                };
                let stamped = t.env.mem.peek_u64(la.offset(field::OL_DELIVERY_D)) != 0;
                if stamped != expect_delivered {
                    errors.push(format!(
                        "C5: district {d} order {o_id} line {ol}: stamped={stamped}, \
                         expected delivered={expect_delivered}"
                    ));
                }
            }
        }
    }
}

/// Secondary indexes are exact: every index entry points at a live row
/// whose indexed fields match the entry, and every row is reachable
/// through each of its indexes (customer-name and order-by-customer).
fn condition_6_secondary_indexes(t: &mut Tpcc, errors: &mut Vec<String>) {
    // Customer-name index: entry → customer.
    let mut name_entries: Vec<(u64, u64)> = Vec::new();
    t.tables.customer_name.scan_from(&mut t.env, 0, |env, k, v| {
        name_entries.push((k, env.mem.peek_u64(v)));
        true
    });
    for (k, stored) in name_entries {
        let d = (k >> 56) as u32;
        let c = (k & 0xFFFF) as u32;
        if stored != c as u64 {
            errors.push(format!("C6: name entry {k:#x} stores c_id {stored}, key says {c}"));
            continue;
        }
        match t.tables.customer.get_addr(&mut t.env, key::customer(d, c)) {
            None => errors.push(format!("C6: name entry {k:#x} has no customer row")),
            Some(ca) => {
                let last = t.env.mem.peek_u64(ca.offset(field::C_LAST_HASH));
                if last & 0xFF_FFFF_FFFF != (k >> 16) & 0xFF_FFFF_FFFF {
                    errors.push(format!("C6: name entry {k:#x} last-name hash mismatch"));
                }
            }
        }
    }
    // Customer → entry.
    let mut customers: Vec<u64> = Vec::new();
    t.tables.customer.scan_from(&mut t.env, 0, |_, k, _| {
        customers.push(k);
        true
    });
    for k in customers {
        let (d, c) = ((k >> 32) as u32, (k & 0xFFFF_FFFF) as u32);
        let ca = t.tables.customer.get_addr(&mut t.env, k).expect("scanned row");
        let last = t.env.mem.peek_u64(ca.offset(field::C_LAST_HASH));
        if t.tables.customer_name.get_addr(&mut t.env, key::customer_name(d, last, c)).is_none() {
            errors.push(format!("C6: customer ({d},{c}) unreachable via the name index"));
        }
    }
    // Order-by-customer index: entry → order.
    let mut oc_entries: Vec<(u64, u64)> = Vec::new();
    t.tables.order_customer.scan_from(&mut t.env, 0, |env, k, v| {
        oc_entries.push((k, env.mem.peek_u64(v)));
        true
    });
    for (k, pkey) in oc_entries {
        let d = (k >> 48) as u32;
        let c = ((k >> 32) & 0xFFFF) as u32;
        let o = (k & 0xFFFF_FFFF) as u32;
        if pkey != key::order(d, o) {
            errors.push(format!("C6: order-customer entry {k:#x} stores wrong key {pkey:#x}"));
            continue;
        }
        match t.tables.orders.get_addr(&mut t.env, pkey) {
            None => errors.push(format!("C6: order-customer entry {k:#x} has no order row")),
            Some(oa) => {
                let oc = t.env.mem.peek_u32(oa.offset(field::O_C_ID));
                if oc != c {
                    errors.push(format!(
                        "C6: order ({d},{o}) belongs to customer {oc}, indexed under {c}"
                    ));
                }
            }
        }
    }
    // Order → entry.
    let mut orders: Vec<u64> = Vec::new();
    t.tables.orders.scan_from(&mut t.env, 0, |_, k, _| {
        orders.push(k);
        true
    });
    for k in orders {
        let (d, o) = ((k >> 32) as u32, (k & 0xFFFF_FFFF) as u32);
        let oa = t.tables.orders.get_addr(&mut t.env, k).expect("scanned row");
        let c = t.env.mem.peek_u32(oa.offset(field::O_C_ID));
        let ik = key::order_customer(d, c, o);
        match t.tables.order_customer.get_addr(&mut t.env, ik) {
            None => {
                errors.push(format!("C6: order ({d},{o}) unreachable via order-customer index"));
            }
            Some(va) => {
                if t.env.mem.peek_u64(va) != k {
                    errors.push(format!("C6: order ({d},{o}) index entry stores a foreign key"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Tpcc, TpccConfig, Transaction};
    use super::check;

    #[test]
    fn fresh_database_is_consistent() {
        let mut t = Tpcc::new(TpccConfig::test());
        check(&mut t).expect("freshly loaded database");
    }

    #[test]
    fn consistency_survives_every_transaction_type() {
        let mut t = Tpcc::new(TpccConfig::test());
        for txn in Transaction::ALL {
            t.run_one(txn);
            if let Err(es) = check(&mut t) {
                panic!("after {}: {:?}", txn.label(), es);
            }
        }
    }

    #[test]
    fn secondary_indexes_stay_consistent_direct_and_paged() {
        use tls_core::DiskFaultPlan;
        // Direct mode: the standard mix, then the full check (which
        // includes condition 6's both-direction index audit).
        let mut direct = Tpcc::new(TpccConfig::test());
        for _ in 0..20 {
            let txn = direct.next_mix_transaction();
            direct.run_one(txn);
        }
        check(&mut direct).expect("index consistency after the mix, direct");

        // Paged mode: same mix through a thrashing pool. `check` detaches
        // the pager for its scans and restores it afterwards.
        let mut paged = Tpcc::new(TpccConfig::test());
        let pages = paged.env.registered_pages();
        paged.attach_pager(pages * 3 / 5, DiskFaultPlan::default(), false);
        for _ in 0..20 {
            let txn = paged.next_mix_transaction();
            paged.run_one(txn);
        }
        check(&mut paged).expect("index consistency after the mix, paged");
        assert!(paged.env.paged(), "pager restored after the check");
    }

    #[test]
    fn consistency_survives_a_long_mix() {
        let mut t = Tpcc::new(TpccConfig::test());
        for i in 0..40 {
            let txn = match i % 10 {
                0..=3 => Transaction::NewOrder,
                4..=7 => Transaction::Payment,
                8 => Transaction::Delivery,
                _ => Transaction::OrderStatus,
            };
            t.run_one(txn);
        }
        check(&mut t).expect("after 40 mixed transactions");
    }
}
