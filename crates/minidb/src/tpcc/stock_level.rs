//! The STOCK LEVEL transaction (TPC-C §2.8).
//!
//! Joins the district's 20 most recent orders' ORDER-LINEs against STOCK
//! and counts *distinct* items whose quantity is below a threshold. The
//! scan is parallelized in chunks of two orders per epoch (≈10 threads,
//! matching Table 2). The distinct-set — a small hash table shared by all
//! epochs — is the transaction's hard-to-remove cross-thread dependence:
//! the paper notes STOCK LEVEL's remaining failed speculation comes from
//! "actual data dependences ... difficult to optimize away".
//!
//! The district scan routes through the query front end: each epoch runs
//! a [`RangeScan`] over its ORDER chunk (one descent, then a leaf-chain
//! walk), and the per-order line→stock step is an
//! [`index_nested_loop_join`] with the below-threshold test expressed as
//! a [`FieldPred`] on the joined STOCK row.

use super::schema::{field, key, module};
use super::Tpcc;
use crate::query::{index_nested_loop_join, CmpOp, FieldPred, FieldWidth, RangeScan};
use tls_trace::Pc;

const M: u16 = module::TXN_STOCK_LEVEL;

const BEGIN: u16 = 0;
const DIST_READ: u16 = 1;
const SPAWN: u16 = 2;
const LINE_READ: u16 = 3;
const STOCK_READ: u16 = 4;
const SEEN_SET: u16 = 5;
const COMMIT: u16 = 6;

/// Orders examined (TPC-C: the last 20).
const ORDERS_SCANNED: u32 = 20;
/// Orders per epoch.
const CHUNK: u32 = 2;
/// Buckets in the distinct-item hash table.
const SEEN_BUCKETS: u64 = 256;

/// Runs one STOCK LEVEL.
pub fn run(t: &mut Tpcc) {
    let tb = t.tables;
    let d_id = t.pick_district();
    let threshold = t.uniform(10, 20);
    let scratch = t.scratch();
    // The shared distinct-item set (transaction-local, epoch-shared).
    let seen = t.env.alloc(8 * SEEN_BUCKETS, 64);
    for b in 0..SEEN_BUCKETS {
        t.env.mem.poke_u64(seen.offset(8 * b), 0);
    }

    t.work_frac(Pc::new(M, BEGIN), scratch, 1, 2);

    let env = &mut t.env;
    let da = tb.district.get_addr(env, key::district(d_id)).expect("district");
    let next_o = env.load_u32(Pc::new(M, DIST_READ), da.offset(field::D_NEXT_O_ID));
    let lo = next_o.saturating_sub(ORDERS_SCANNED).max(1);
    t.work_frac(Pc::new(M, DIST_READ), scratch, 1, 4);

    // The below-threshold test, as a residual predicate on the joined
    // STOCK row (one recorded load + branch, as before).
    let below = FieldPred {
        offset: field::S_QUANTITY,
        width: FieldWidth::U32,
        op: CmpOp::Lt,
        value: threshold as u64,
    };
    let line_groups = t.cfg.work_scale.div_ceil(20) as usize;

    t.env.rec.begin_parallel();
    let mut o = lo;
    while o < next_o {
        let hi = (o + CHUNK).min(next_o);
        t.env.rec.begin_epoch(Pc::new(M, SPAWN));
        let cscratch = t.env.alloc(256, 64);
        let env = &mut t.env;
        // One range scan per chunk: a single descent to the chunk's first
        // order, then a leaf-chain walk (missing orders simply don't
        // appear in the range).
        let chunk = RangeScan::new(key::order(d_id, o), key::order(d_id, hi));
        chunk.run(&tb.orders, env, Pc::new(M, LINE_READ), |env, ok, oa| {
            let o_id = (ok & 0xFFFF_FFFF) as u32;
            let _ol_cnt = env.load_u32(Pc::new(M, LINE_READ), oa.offset(field::O_OL_CNT));
            // ORDER-LINE ⋈ STOCK through the item key.
            let lines =
                RangeScan::new(key::order_line(d_id, o_id, 0), key::order_line(d_id, o_id + 1, 0));
            index_nested_loop_join(
                env,
                Pc::new(M, STOCK_READ),
                &tb.order_line,
                &lines,
                &tb.stock,
                |env, _, la| env.load_u32(Pc::new(M, LINE_READ), la.offset(field::OL_I_ID)) as u64,
                |env, _, _, ik, sa| {
                    let i_id = ik;
                    let is_low = below.matches(env, Pc::new(M, STOCK_READ), sa);
                    // Distinct-set membership probe on every joined line
                    // (the DISTINCT aggregation), inserting when below
                    // threshold. Probes are exposed loads of the shared
                    // table; inserts violate later probes of the same
                    // bucket — the transaction's hard-to-remove
                    // dependence.
                    let mut b = i_id.wrapping_mul(0x9E37_79B9) % SEEN_BUCKETS;
                    loop {
                        let slot = seen.offset(8 * b);
                        let cur = env.load_u64(Pc::new(M, SEEN_SET), slot);
                        env.cmp_branch(Pc::new(M, SEEN_SET), cur != 0);
                        if cur == i_id {
                            break;
                        }
                        if cur == 0 {
                            if is_low {
                                env.store_u64(Pc::new(M, SEEN_SET), slot, i_id);
                            }
                            break;
                        }
                        b = (b + 1) % SEEN_BUCKETS;
                    }
                    env.overhead(Pc::new(M, STOCK_READ), cscratch, line_groups);
                    true
                },
            );
            true
        });
        t.env.rec.end_epoch();
        o = hi;
    }
    t.env.rec.end_parallel();

    // Count the distinct set (sequential epilogue).
    let env = &mut t.env;
    let mut low = 0u64;
    for b in 0..SEEN_BUCKETS / 4 {
        // Sampled count pass: the real engine walks its hash set.
        let v = env.load_u64(Pc::new(M, COMMIT), seen.offset(8 * b * 4));
        if v != 0 {
            low += 1;
        }
        env.cmp_branch(Pc::new(M, COMMIT), v != 0);
    }
    let _ = low;
    t.work_frac(Pc::new(M, COMMIT), scratch, 1, 2);
}

#[cfg(test)]
mod tests {
    use super::super::{Tpcc, TpccConfig, Transaction};

    #[test]
    fn stock_level_is_read_only_on_tables() {
        let mut t = Tpcc::new(TpccConfig::test());
        let stock = t.tables.stock.count(&mut t.env);
        let lines = t.tables.order_line.count(&mut t.env);
        t.run_one(Transaction::StockLevel);
        assert_eq!(t.tables.stock.count(&mut t.env), stock);
        assert_eq!(t.tables.order_line.count(&mut t.env), lines);
    }

    #[test]
    fn scan_is_chunked_into_about_ten_epochs() {
        let mut t = Tpcc::new(TpccConfig::test());
        let p = t.record(Transaction::StockLevel, 1);
        let s = p.stats();
        assert!((4..=10).contains(&s.epochs), "epochs {}", s.epochs);
        assert!(s.coverage() > 0.5, "coverage {}", s.coverage());
    }
}
