//! The TPC-C schema: tables, row layouts and key encodings.
//!
//! Single warehouse (the paper's configuration: intra-transaction
//! parallelism means one warehouse suffices), ten districts, scaled row
//! counts. Rows are fixed-width byte records; field offsets below. Keys
//! pack the TPC-C composite keys into `u64`s so one B+-tree
//! implementation serves every table.

use crate::{BTree, Db, Env};

/// Profiling module ids (appear in [`Pc`](tls_trace::Pc) values and in
/// the dependence profiler's output).
pub mod module {
    /// The ITEM table.
    pub const ITEM: u16 = 0x10;
    /// The WAREHOUSE table.
    pub const WAREHOUSE: u16 = 0x11;
    /// The DISTRICT table.
    pub const DISTRICT: u16 = 0x12;
    /// The CUSTOMER table.
    pub const CUSTOMER: u16 = 0x13;
    /// The customer last-name secondary index.
    pub const CUSTOMER_NAME: u16 = 0x14;
    /// The STOCK table.
    pub const STOCK: u16 = 0x15;
    /// The ORDER table.
    pub const ORDERS: u16 = 0x16;
    /// The NEW-ORDER table.
    pub const NEW_ORDER: u16 = 0x17;
    /// The ORDER-LINE table.
    pub const ORDER_LINE: u16 = 0x18;
    /// The HISTORY table.
    pub const HISTORY: u16 = 0x19;
    /// The order-by-customer secondary index.
    pub const ORDER_CUSTOMER: u16 = 0x1A;
    /// NEW ORDER transaction code.
    pub const TXN_NEW_ORDER: u16 = 0x20;
    /// PAYMENT transaction code.
    pub const TXN_PAYMENT: u16 = 0x21;
    /// ORDER STATUS transaction code.
    pub const TXN_ORDER_STATUS: u16 = 0x22;
    /// DELIVERY transaction code.
    pub const TXN_DELIVERY: u16 = 0x23;
    /// STOCK LEVEL transaction code.
    pub const TXN_STOCK_LEVEL: u16 = 0x24;
    /// Loader / common transaction scaffolding.
    pub const TXN_COMMON: u16 = 0x25;
}

/// Row widths in bytes.
pub mod width {
    /// ITEM row.
    pub const ITEM: u16 = 48;
    /// WAREHOUSE row.
    pub const WAREHOUSE: u16 = 64;
    /// DISTRICT row.
    pub const DISTRICT: u16 = 64;
    /// CUSTOMER row.
    pub const CUSTOMER: u16 = 96;
    /// Customer-name index entry.
    pub const CUSTOMER_NAME: u16 = 8;
    /// STOCK row.
    pub const STOCK: u16 = 64;
    /// ORDER row.
    pub const ORDERS: u16 = 32;
    /// NEW-ORDER row.
    pub const NEW_ORDER: u16 = 8;
    /// ORDER-LINE row.
    pub const ORDER_LINE: u16 = 80;
    /// HISTORY row.
    pub const HISTORY: u16 = 40;
    /// Order-by-customer index entry (one primary key).
    pub const ORDER_CUSTOMER: u16 = 8;
}

/// Field offsets within rows.
pub mod field {
    /// ITEM: price (u32).
    pub const I_PRICE: u64 = 0;
    /// ITEM: name hash (u64).
    pub const I_NAME_HASH: u64 = 8;
    /// WAREHOUSE: year-to-date total (u64).
    pub const W_YTD: u64 = 0;
    /// WAREHOUSE: tax rate (u32, basis points).
    pub const W_TAX: u64 = 8;
    /// DISTRICT: next order id (u32).
    pub const D_NEXT_O_ID: u64 = 0;
    /// DISTRICT: tax rate (u32).
    pub const D_TAX: u64 = 4;
    /// DISTRICT: year-to-date total (u64).
    pub const D_YTD: u64 = 8;
    /// CUSTOMER: balance (u64, cents, wrapping).
    pub const C_BALANCE: u64 = 0;
    /// CUSTOMER: year-to-date payment (u64).
    pub const C_YTD_PAYMENT: u64 = 8;
    /// CUSTOMER: payment count (u32).
    pub const C_PAYMENT_CNT: u64 = 16;
    /// CUSTOMER: delivery count (u32).
    pub const C_DELIVERY_CNT: u64 = 20;
    /// CUSTOMER: last-name hash (u64).
    pub const C_LAST_HASH: u64 = 24;
    /// CUSTOMER: discount (u32, basis points).
    pub const C_DISCOUNT: u64 = 32;
    /// CUSTOMER: most recent order id (u32).
    pub const C_LAST_ORDER: u64 = 36;
    /// STOCK: quantity (u32).
    pub const S_QUANTITY: u64 = 0;
    /// STOCK: year-to-date (u64).
    pub const S_YTD: u64 = 8;
    /// STOCK: order count (u32).
    pub const S_ORDER_CNT: u64 = 16;
    /// STOCK: remote count (u32).
    pub const S_REMOTE_CNT: u64 = 20;
    /// ORDER: customer id (u32).
    pub const O_C_ID: u64 = 0;
    /// ORDER: carrier id (u32).
    pub const O_CARRIER_ID: u64 = 4;
    /// ORDER: entry date (u64).
    pub const O_ENTRY_D: u64 = 8;
    /// ORDER: order-line count (u32).
    pub const O_OL_CNT: u64 = 16;
    /// ORDER: accumulated total amount (u64, cents).
    pub const O_TOTAL: u64 = 24;
    /// ORDER-LINE: item id (u32).
    pub const OL_I_ID: u64 = 0;
    /// ORDER-LINE: supplying warehouse (u32).
    pub const OL_SUPPLY_W_ID: u64 = 4;
    /// ORDER-LINE: delivery date (u64; 0 = undelivered).
    pub const OL_DELIVERY_D: u64 = 8;
    /// ORDER-LINE: quantity (u32).
    pub const OL_QUANTITY: u64 = 16;
    /// ORDER-LINE: amount (u64, cents).
    pub const OL_AMOUNT: u64 = 24;
}

/// Key encoders. Districts are 1-based and ≤ 255; order ids < 2^24;
/// customer ids < 2^16; line numbers ≤ 255.
pub mod key {
    /// ITEM / STOCK key.
    pub fn item(i_id: u32) -> u64 {
        i_id as u64
    }

    /// WAREHOUSE key.
    pub fn warehouse(w_id: u32) -> u64 {
        w_id as u64
    }

    /// DISTRICT key.
    pub fn district(d_id: u32) -> u64 {
        d_id as u64
    }

    /// CUSTOMER key: `(d_id, c_id)`.
    pub fn customer(d_id: u32, c_id: u32) -> u64 {
        ((d_id as u64) << 32) | c_id as u64
    }

    /// Customer-name index key: `(d_id, last-name hash, c_id)`.
    pub fn customer_name(d_id: u32, last_hash: u64, c_id: u32) -> u64 {
        ((d_id as u64) << 56) | ((last_hash & 0xFF_FFFF_FFFF) << 16) | c_id as u64
    }

    /// Prefix of [`customer_name`] keys for `(d_id, last_hash)`; entries
    /// match while `k >> 16` equals `customer_name(d, h, 0) >> 16`.
    pub fn customer_name_prefix(d_id: u32, last_hash: u64) -> u64 {
        customer_name(d_id, last_hash, 0)
    }

    /// ORDER / NEW-ORDER key: `(d_id, o_id)`.
    pub fn order(d_id: u32, o_id: u32) -> u64 {
        ((d_id as u64) << 32) | o_id as u64
    }

    /// Order-by-customer index key: `(d_id, c_id, o_id)`. Entries of one
    /// customer are adjacent, ordered by order id; the stored value is
    /// the [`order`] primary key.
    pub fn order_customer(d_id: u32, c_id: u32, o_id: u32) -> u64 {
        ((d_id as u64) << 48) | ((c_id as u64) << 32) | o_id as u64
    }

    /// ORDER-LINE key: `(d_id, o_id, ol_number)`.
    pub fn order_line(d_id: u32, o_id: u32, ol: u32) -> u64 {
        ((d_id as u64) << 40) | ((o_id as u64) << 8) | ol as u64
    }

    /// HISTORY key (a monotonic sequence).
    pub fn history(seq: u64) -> u64 {
        seq
    }
}

/// The table catalog: one B+-tree per TPC-C table plus the customer
/// last-name index. Copyable — all state is in simulated memory.
#[derive(Debug, Clone, Copy)]
pub struct Tables {
    /// ITEM (read-only after load).
    pub item: BTree,
    /// WAREHOUSE.
    pub warehouse: BTree,
    /// DISTRICT.
    pub district: BTree,
    /// CUSTOMER.
    pub customer: BTree,
    /// Customer last-name secondary index.
    pub customer_name: BTree,
    /// STOCK.
    pub stock: BTree,
    /// ORDER.
    pub orders: BTree,
    /// NEW-ORDER (pending deliveries).
    pub new_order: BTree,
    /// ORDER-LINE.
    pub order_line: BTree,
    /// HISTORY (append-only).
    pub history: BTree,
    /// Order-by-customer secondary index.
    pub order_customer: BTree,
}

impl Tables {
    /// All eleven trees, in catalog order.
    pub fn all(&self) -> [BTree; 11] {
        [
            self.item,
            self.warehouse,
            self.district,
            self.customer,
            self.customer_name,
            self.stock,
            self.orders,
            self.new_order,
            self.order_line,
            self.history,
            self.order_customer,
        ]
    }

    /// Creates all tables (empty).
    pub fn create(env: &mut Env, db: &Db) -> Tables {
        Tables {
            item: db.create_tree(env, width::ITEM, module::ITEM),
            warehouse: db.create_tree(env, width::WAREHOUSE, module::WAREHOUSE),
            district: db.create_tree(env, width::DISTRICT, module::DISTRICT),
            customer: db.create_tree(env, width::CUSTOMER, module::CUSTOMER),
            customer_name: db.create_tree(env, width::CUSTOMER_NAME, module::CUSTOMER_NAME),
            stock: db.create_tree(env, width::STOCK, module::STOCK),
            orders: db.create_tree(env, width::ORDERS, module::ORDERS),
            new_order: db.create_tree(env, width::NEW_ORDER, module::NEW_ORDER),
            order_line: db.create_tree(env, width::ORDER_LINE, module::ORDER_LINE),
            history: db.create_tree(env, width::HISTORY, module::HISTORY),
            order_customer: db.create_tree(env, width::ORDER_CUSTOMER, module::ORDER_CUSTOMER),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_order_preserving() {
        assert!(key::customer(1, 5) < key::customer(1, 6));
        assert!(key::customer(1, 65_535) < key::customer(2, 0));
        assert!(key::order(3, 10) < key::order(3, 11));
        assert!(key::order(3, u32::MAX) < key::order(4, 0));
        assert!(key::order_line(2, 7, 1) < key::order_line(2, 7, 2));
        assert!(key::order_line(2, 7, 255) < key::order_line(2, 8, 1));
        assert!(key::order_line(2, 0xFF_FFFF, 255) < key::order_line(3, 0, 1));
        assert!(key::order_customer(1, 5, 10) < key::order_customer(1, 5, 11));
        assert!(key::order_customer(1, 5, u32::MAX) < key::order_customer(1, 6, 0));
        assert!(key::order_customer(1, 65_535, u32::MAX) < key::order_customer(2, 0, 0));
    }

    #[test]
    fn customer_name_prefix_matches_same_name_only() {
        let a = key::customer_name(1, 0xABCD, 10);
        let b = key::customer_name(1, 0xABCD, 20);
        let c = key::customer_name(1, 0xABCE, 10);
        let p = key::customer_name_prefix(1, 0xABCD) >> 16;
        assert_eq!(a >> 16, p);
        assert_eq!(b >> 16, p);
        assert_ne!(c >> 16, p);
    }

    #[test]
    fn tables_create_with_distinct_modules() {
        let mut env = Env::new();
        let db = Db::new(&mut env, crate::OptLevel::none());
        let t = Tables::create(&mut env, &db);
        let modules = [
            t.item.module(),
            t.warehouse.module(),
            t.district.module(),
            t.customer.module(),
            t.customer_name.module(),
            t.stock.module(),
            t.orders.module(),
            t.new_order.module(),
            t.order_line.module(),
            t.history.module(),
            t.order_customer.module(),
        ];
        let set: std::collections::HashSet<_> = modules.iter().collect();
        assert_eq!(set.len(), modules.len());
    }
}
