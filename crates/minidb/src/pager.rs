//! The buffer pool: a real pager over the simulated address space.
//!
//! The paper's TPC-C threads spend their time inside BerkeleyDB's buffer
//! pool, log and B-trees — shared structures whose incidental dependences
//! are exactly what sub-threads tolerate. This module adds the missing
//! member of that trio: a fixed set of frames with pin/unpin discipline,
//! clock eviction, checksummed on-"disk" pages and ARIES-style REDO
//! recovery from the [`DurableWal`].
//!
//! # Design: a residency layer, not a relocation layer
//!
//! Pages keep their simulated addresses forever — the pager tracks
//! *residency*, not placement. A pin of a resident page is a recorded
//! probe of the shared frame directory (the buffer-pool hash lookup every
//! engine pays); a miss additionally evicts a victim and "reads the page
//! in", both as recorded accesses over real simulated memory. With no
//! pager attached ([`Env::pin_page`](crate::Env::pin_page) is a no-op)
//! the engine emits byte-identical traces to every earlier revision, so
//! checked-in baselines stay valid; with a pager attached the frame
//! directory becomes one more genuine source of cross-thread dependences,
//! like the paper's buffer pool.
//!
//! # Durability protocol
//!
//! * Work is bracketed into **mini-transactions** (one per TPC-C
//!   transaction). Pages pinned inside an mtr are never evictable.
//! * At [`mtr_end`](Pager::mtr_end) each touched region is diffed against
//!   its last logged image: the first change to a region logs a full page
//!   image, later changes log byte-range deltas, then a commit record
//!   seals the mtr. This is the page-LSN discipline: every region knows
//!   the LSN of its last logged change.
//! * A flush writes `envelope(page_lsn, content)` to the [`SimDisk`];
//!   **write-ahead is enforced by a debug assert** — flushed bytes must
//!   equal the last logged image, so no unlogged modification can ever
//!   reach disk.
//! * [`recover`] replays the log onto a crashed disk image: each region
//!   starts from its disk copy if the envelope checksum validates
//!   (torn writes and bit flips are *always* caught, never silently
//!   served), else from its first full-page image in the log; regions
//!   recoverable neither way are quarantined with a reason.

use crate::disk::SimDisk;
use crate::page::{envelope_decode, envelope_encode, PAGE_SIZE};
use crate::wal::{DurableWal, WalPayload, WalRecord};
use crate::{Env, LatchName, SimMemory};
use std::collections::HashMap;
use tls_core::DiskFaultPlan;
use tls_obs::{Event, EventKind};
use tls_trace::{Addr, OpSink, Pc, TraceOp};

/// Profiling module id of the pager's recorded accesses.
pub const PAGER_MODULE: u16 = 0x09;

const SITE_HIT: u16 = 0;
const SITE_MISS: u16 = 1;
const SITE_EVICT: u16 = 2;
const SITE_READIN: u16 = 3;

/// Stride of the recorded transfer loops: one 8-byte access per cache
/// line of the 4 KiB page (64 ops per page move).
const XFER_STRIDE: u64 = 64;

/// Monotonic counters surfaced into `BENCH_suite.json` and the kernel
/// bench printout.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct PagerCounters {
    /// Pins satisfied by a resident frame.
    pub hits: u64,
    /// Pins that had to read the page in.
    pub misses: u64,
    /// Frames reclaimed by the clock hand.
    pub evictions: u64,
    /// Dirty pages written to the simulated disk.
    pub flushes: u64,
    /// Disk envelopes rejected by the checksum on read-in.
    pub checksum_failures: u64,
    /// Disk envelopes rejected as stale (lost write: valid checksum,
    /// old LSN).
    pub stale_reads: u64,
    /// Live read-repairs: a rejected disk copy replaced by replaying
    /// logged state.
    pub recovery_replays: u64,
    /// Mini-transactions committed.
    pub mtrs: u64,
    /// High-water mark of pages pinned by a single mini-transaction —
    /// the hard floor for pool sizing (pinned pages are unevictable).
    pub max_pinned: u64,
}

#[derive(Debug)]
struct RegionState {
    len: usize,
    /// The region's content as of its last logged record — the only
    /// bytes a flush is allowed to write (write-ahead).
    last_logged: Vec<u8>,
    /// LSN of the region's most recent log record (0 = never logged).
    page_lsn: u64,
    /// `page_lsn` at the time of the last disk write; `page_lsn >
    /// flushed_lsn` means dirty.
    flushed_lsn: u64,
    /// Whether a full-page image exists in the log, making the region
    /// recoverable even from a corrupt disk copy.
    has_fpi: bool,
    resident: bool,
    /// Pinned by the current mini-transaction (unevictable).
    pinned: bool,
    /// Clock reference bit.
    referenced: bool,
    /// Meta blocks: always resident, never evicted, diffed every mtr.
    permanent: bool,
}

/// The buffer pool. Owned by [`Env`] while attached; all bookkeeping is
/// host-side except the recorded frame-directory and transfer accesses.
#[derive(Debug)]
pub struct Pager {
    frames: usize,
    resident_pages: usize,
    regions: HashMap<u64, RegionState>,
    /// Page regions in registration order — the clock's circular order.
    pages: Vec<u64>,
    hand: usize,
    disk: SimDisk,
    wal: DurableWal,
    in_mtr: bool,
    mtr_pinned: Vec<u64>,
    mtr_seq: u64,
    /// Simulated frame directory: `frames` 8-byte cells probed by every
    /// pin — the shared structure whose accesses collide across
    /// speculative threads.
    dir: Addr,
    counters: PagerCounters,
    events: Option<Vec<Event>>,
    event_seq: u64,
}

impl Pager {
    /// Creates a pool of `frames` frames whose disk applies `plan`.
    /// `observe` enables the host-side event buffer (guaranteed not to
    /// change recorded traces — asserted by tests).
    pub fn new(env: &mut Env, frames: usize, plan: DiskFaultPlan, observe: bool) -> Self {
        assert!(frames >= 2, "a pool needs at least two frames");
        let dir = env.alloc(frames as u64 * 8, 64);
        let mut disk = SimDisk::new();
        disk.set_plan(plan);
        Pager {
            frames,
            resident_pages: 0,
            regions: HashMap::new(),
            pages: Vec::new(),
            hand: 0,
            disk,
            wal: DurableWal::new(),
            in_mtr: false,
            mtr_pinned: Vec::new(),
            mtr_seq: 0,
            dir,
            counters: PagerCounters::default(),
            events: observe.then(Vec::new),
            event_seq: 0,
        }
    }

    fn emit_event(&mut self, kind: EventKind, a: u64, b: u64) {
        self.event_seq += 1;
        if let Some(buf) = self.events.as_mut() {
            buf.push(Event {
                cycle: self.event_seq,
                a,
                b,
                epoch: u32::MAX,
                kind,
                cpu: Event::NO_CPU,
                sub: 0,
            });
        }
    }

    /// Registers an existing page (called for every page in the
    /// [`Env`] registry at attach). Starts non-resident: the first pin
    /// reads it in, so a cold pool behaves like a cold pool.
    pub fn register_page(&mut self, mem: &SimMemory, base: Addr) {
        let content = mem.bytes(base, PAGE_SIZE as usize).to_vec();
        self.regions.insert(
            base.0,
            RegionState {
                len: PAGE_SIZE as usize,
                last_logged: content,
                page_lsn: 0,
                flushed_lsn: 0,
                has_fpi: false,
                resident: false,
                pinned: false,
                referenced: false,
                permanent: false,
            },
        );
        self.pages.push(base.0);
    }

    /// Registers a permanent region (tree meta block): always resident,
    /// never evicted, diffed at every mtr commit.
    pub fn register_permanent(&mut self, mem: &SimMemory, base: Addr, len: u64) {
        let content = mem.bytes(base, len as usize).to_vec();
        self.regions.insert(
            base.0,
            RegionState {
                len: len as usize,
                last_logged: content,
                page_lsn: 0,
                flushed_lsn: 0,
                has_fpi: false,
                resident: true,
                pinned: false,
                referenced: false,
                permanent: true,
            },
        );
    }

    /// Registers a page allocated *during* the paged run (a B-tree
    /// split): resident, pinned for the current mtr, no disk copy yet —
    /// its first commit logs a full image.
    pub fn register_new_page(&mut self, env: &mut Env, base: Addr) {
        if self.resident_pages >= self.frames {
            self.evict_one(env);
        }
        self.regions.insert(
            base.0,
            RegionState {
                len: PAGE_SIZE as usize,
                last_logged: vec![0; PAGE_SIZE as usize],
                page_lsn: 0,
                flushed_lsn: 0,
                has_fpi: false,
                resident: true,
                pinned: self.in_mtr,
                referenced: true,
                permanent: false,
            },
        );
        self.pages.push(base.0);
        self.resident_pages += 1;
        if self.in_mtr {
            self.mtr_pinned.push(base.0);
        }
    }

    /// Writes every region's envelope to disk fault-free: the initial
    /// database files, durable before the measured run starts. Must be
    /// called once, after registration, before the first mtr.
    pub fn bootstrap_checkpoint(&mut self) {
        assert_eq!(self.wal.last_lsn(), 0, "bootstrap after logging started");
        let mut ids: Vec<u64> = self.regions.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let st = &self.regions[&id];
            self.disk.bootstrap(id, envelope_encode(st.page_lsn, &st.last_logged));
        }
    }

    /// Opens a mini-transaction. Every paged access must happen inside
    /// one.
    pub fn mtr_begin(&mut self) {
        assert!(!self.in_mtr, "nested mini-transactions");
        self.in_mtr = true;
    }

    /// Pins a page for the current mtr, recording the frame-directory
    /// probe (hit) or the full miss path (latch, eviction, read-in).
    ///
    /// # Panics
    ///
    /// Panics outside an mtr, on an unregistered page, or when every
    /// frame is pinned (pool smaller than one mtr's working set).
    pub fn pin(&mut self, env: &mut Env, base: Addr) {
        assert!(self.in_mtr, "paged access outside a mini-transaction");
        let slot = self.dir_slot(base.0);
        let st = self
            .regions
            .get(&base.0)
            .unwrap_or_else(|| panic!("pin of unregistered page {:#x}", base.0));
        if st.permanent {
            return; // metas are not frame-managed
        }
        if st.resident {
            self.counters.hits += 1;
            let pc = Pc::new(PAGER_MODULE, SITE_HIT);
            env.load_u64(pc, self.dir.offset(slot * 8));
            env.alu(pc, 2);
        } else {
            self.counters.misses += 1;
            let pc = Pc::new(PAGER_MODULE, SITE_MISS);
            env.latch_acquire(pc, LatchName::Pager.id());
            env.load_u64(pc, self.dir.offset(slot * 8));
            env.alu(pc, 4);
            if self.resident_pages >= self.frames {
                self.evict_one(env);
            }
            self.read_in(env, base.0);
            env.store_u64(pc, self.dir.offset(slot * 8), base.0);
            env.latch_release(pc, LatchName::Pager.id());
            let st = self.regions.get_mut(&base.0).expect("registered");
            st.resident = true;
            self.resident_pages += 1;
        }
        let st = self.regions.get_mut(&base.0).expect("registered");
        st.referenced = true;
        if !st.pinned {
            st.pinned = true;
            self.mtr_pinned.push(base.0);
        }
    }

    fn dir_slot(&self, region: u64) -> u64 {
        (region / PAGE_SIZE) % self.frames as u64
    }

    /// Clock sweep: second chance on the reference bit, skipping pinned
    /// and non-resident pages. Flushes the victim first if dirty.
    fn evict_one(&mut self, env: &mut Env) {
        let n = self.pages.len();
        let mut spared = 0;
        for _ in 0..2 * n + 1 {
            let id = self.pages[self.hand % n];
            self.hand = (self.hand + 1) % n;
            let st = self.regions.get_mut(&id).expect("page state");
            if !st.resident || st.pinned {
                continue;
            }
            if st.referenced {
                st.referenced = false;
                spared += 1;
                continue;
            }
            // Victim found.
            let dirty = st.page_lsn > st.flushed_lsn;
            if dirty {
                self.flush_region(env, id);
            }
            let st = self.regions.get_mut(&id).expect("page state");
            st.resident = false;
            self.resident_pages -= 1;
            self.counters.evictions += 1;
            let pc = Pc::new(PAGER_MODULE, SITE_EVICT);
            for i in 0..(PAGE_SIZE / XFER_STRIDE) {
                env.load_u64(pc, Addr(id).offset(i * XFER_STRIDE));
            }
            let slot = self.dir_slot(id);
            env.store_u64(pc, self.dir.offset(slot * 8), 0);
            self.emit_event(EventKind::FrameEvict, id, dirty as u64);
            return;
        }
        panic!(
            "no evictable frame: {} frames, {} resident, {spared} spared — \
             pool smaller than one mini-transaction's working set",
            self.frames, self.resident_pages
        );
    }

    /// Writes a region's last-logged image to disk. The write-ahead
    /// invariant in one debug assert: an unpinned page's memory content
    /// equals its last logged image, so flushing `last_logged` flushes
    /// only logged bytes.
    fn flush_region(&mut self, env: &mut Env, region: u64) {
        let st = self.regions.get_mut(&region).expect("page state");
        debug_assert_eq!(
            env.mem.bytes(Addr(region), st.len),
            &st.last_logged[..],
            "write-ahead violated: page {region:#x} has unlogged modifications at flush"
        );
        let envelope = envelope_encode(st.page_lsn, &st.last_logged);
        let lsn = st.page_lsn;
        st.flushed_lsn = lsn;
        self.disk.write(region, envelope, self.wal.last_lsn());
        self.counters.flushes += 1;
        self.emit_event(EventKind::FrameFlush, region, lsn);
    }

    /// Reads a page in from disk, validating the envelope. A checksum
    /// failure (torn write, bit flip) or stale LSN (lost write) is never
    /// silently served: the page is repaired from its logged image and
    /// counted as a live recovery replay.
    fn read_in(&mut self, env: &mut Env, region: u64) {
        let st = self.regions.get(&region).expect("page state");
        let expect_lsn = st.page_lsn;
        let len = st.len;
        let content = match self.disk.image_of(region) {
            Some(envelope) => match envelope_decode(&envelope) {
                Ok((lsn, payload)) if lsn == expect_lsn && payload.len() == len => payload.to_vec(),
                Ok(_) => {
                    self.counters.stale_reads += 1;
                    self.counters.recovery_replays += 1;
                    self.emit_event(EventKind::RecoveryReplay, region, expect_lsn);
                    self.regions[&region].last_logged.clone()
                }
                Err(_) => {
                    self.counters.checksum_failures += 1;
                    self.counters.recovery_replays += 1;
                    self.emit_event(EventKind::RecoveryReplay, region, expect_lsn);
                    self.regions[&region].last_logged.clone()
                }
            },
            // Never flushed (a clean-evicted page allocated mid-run):
            // the logged image is authoritative.
            None => self.regions[&region].last_logged.clone(),
        };
        env.mem.write_bytes(Addr(region), &content);
        let pc = Pc::new(PAGER_MODULE, SITE_READIN);
        for i in 0..(len as u64 / XFER_STRIDE) {
            env.rec.emit(TraceOp::store(pc, Addr(region).offset(i * XFER_STRIDE), 8));
        }
    }

    /// Commits the mini-transaction: diffs every pinned page and every
    /// permanent region against its last logged image, logs a full-page
    /// image (first change) or byte-range deltas (later changes), seals
    /// with a commit record, and unpins.
    pub fn mtr_end(&mut self, env: &mut Env) {
        assert!(self.in_mtr, "mtr_end without mtr_begin");
        self.counters.max_pinned = self.counters.max_pinned.max(self.mtr_pinned.len() as u64);
        let mut to_log: Vec<u64> = std::mem::take(&mut self.mtr_pinned);
        let mut perms: Vec<u64> =
            self.regions.iter().filter(|(_, st)| st.permanent).map(|(id, _)| *id).collect();
        perms.sort_unstable();
        to_log.extend(perms);
        for region in to_log {
            let st = self.regions.get_mut(&region).expect("page state");
            let current = env.mem.bytes(Addr(region), st.len).to_vec();
            if current != st.last_logged {
                let lsn = if st.has_fpi {
                    let ranges = diff_ranges(&st.last_logged, &current);
                    self.wal.append(WalPayload::Delta { region, ranges })
                } else {
                    st.has_fpi = true;
                    self.wal.append(WalPayload::Image { region, bytes: current.clone() })
                };
                st.page_lsn = lsn;
                st.last_logged = current;
            }
            st.pinned = false;
        }
        self.mtr_seq += 1;
        self.wal.append(WalPayload::Commit { mtr: self.mtr_seq });
        self.counters.mtrs += 1;
        self.in_mtr = false;
    }

    /// Flushes every dirty region (a clean checkpoint; used by tests and
    /// shutdown paths — recovery never requires it).
    pub fn flush_all(&mut self, env: &mut Env) {
        assert!(!self.in_mtr, "checkpoint inside a mini-transaction");
        let mut ids: Vec<u64> = self
            .regions
            .iter()
            .filter(|(_, st)| st.page_lsn > st.flushed_lsn)
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            self.flush_region(env, id);
        }
    }

    /// Counter snapshot.
    pub fn counters(&self) -> PagerCounters {
        self.counters
    }

    /// The durable log.
    pub fn wal(&self) -> &DurableWal {
        &self.wal
    }

    /// The simulated disk.
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// Direct disk mutation for corruption tests (quarantine paths that
    /// the fault grid cannot reach, because write-ahead keeps every
    /// journaled write recoverable).
    pub fn disk_mut(&mut self) -> &mut SimDisk {
        &mut self.disk
    }

    /// LSN of the last durable record — the upper bound of the
    /// crash-at-LSN grid.
    pub fn last_lsn(&self) -> u64 {
        self.wal.last_lsn()
    }

    /// Recovers the world as a crash at durable-log position `k` would
    /// leave it: the disk image cut at `k`, replayed with the log prefix
    /// of `k` records.
    pub fn crash_point(&self, k: u64) -> RecoveredWorld {
        recover(&self.disk.crash_image(k), self.wal.crash_prefix(k))
    }

    /// Drains the observation event buffer (empty when `observe` was
    /// false).
    pub fn take_events(&mut self) -> Vec<Event> {
        self.events.take().unwrap_or_default()
    }
}

/// Ascending, non-overlapping changed byte ranges between two images,
/// coalescing gaps of up to 8 unchanged bytes (delta records stay small
/// without fragmenting per byte).
fn diff_ranges(old: &[u8], new: &[u8]) -> Vec<(u32, Vec<u8>)> {
    assert_eq!(old.len(), new.len(), "region length changed");
    let mut ranges: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut i = 0usize;
    while i < new.len() {
        if old[i] == new[i] {
            i += 1;
            continue;
        }
        let start = i;
        let mut end = i + 1;
        let mut gap = 0usize;
        for (j, (&o, &n)) in old.iter().zip(new.iter()).enumerate().skip(end) {
            if o == n {
                gap += 1;
                if gap > 8 {
                    break;
                }
            } else {
                gap = 0;
                end = j + 1;
            }
        }
        ranges.push((start as u32, new[start..end].to_vec()));
        i = end;
    }
    ranges
}

/// A region recovery could not rebuild, with the reason — mirrors the
/// harness snapshot-store quarantine idiom (evidence over silence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedPage {
    /// Region base address.
    pub region: u64,
    /// Why it could not be recovered.
    pub reason: String,
}

/// The result of REDO recovery: a rebuilt memory image plus an audit of
/// what it took.
#[derive(Debug)]
pub struct RecoveredWorld {
    /// The rebuilt simulated memory — every recovered region at its
    /// original address (read it through
    /// [`BTree::open_existing`](crate::BTree::open_existing)).
    pub mem: SimMemory,
    /// Mini-transactions whose commit records survived: the oracle
    /// replays exactly this many batches of its shadow journal.
    pub durable_mtrs: u64,
    /// LSN of the last durable commit (0 when none).
    pub durable_lsn: u64,
    /// Full-page images applied.
    pub images_applied: u64,
    /// Delta records applied.
    pub deltas_applied: u64,
    /// Regions recoverable from neither disk nor log.
    pub quarantined: Vec<QuarantinedPage>,
}

/// ARIES-style REDO: replays the durable log prefix onto a (possibly
/// corrupt) disk image.
///
/// Per region, the starting point is the disk copy when its envelope
/// checksum validates and its LSN is not from the future; otherwise the
/// region's first full-page image in the log. Records with `lsn` beyond
/// the starting point are applied in order. Records after the last
/// commit (a crash mid-mtr) and records failing their CRC (a torn log
/// tail) are dropped before replay.
pub fn recover(disk_image: &HashMap<u64, Vec<u8>>, records: &[WalRecord]) -> RecoveredWorld {
    // 1. The structurally valid prefix: contiguous LSNs, valid CRCs.
    let mut valid = 0usize;
    for r in records {
        if r.lsn == valid as u64 + 1 && r.verify() {
            valid += 1;
        } else {
            break;
        }
    }
    // 2. Drop the trailing uncommitted run.
    let last_commit = records[..valid]
        .iter()
        .rposition(|r| matches!(r.payload, WalPayload::Commit { .. }))
        .map(|i| i + 1)
        .unwrap_or(0);
    let durable = &records[..last_commit];
    let durable_lsn = last_commit as u64;
    let durable_mtrs =
        durable.iter().filter(|r| matches!(r.payload, WalPayload::Commit { .. })).count() as u64;

    // 3. Records per region, in log order.
    let mut by_region: HashMap<u64, Vec<&WalRecord>> = HashMap::new();
    for r in durable {
        if let Some(region) = r.payload.region() {
            by_region.entry(region).or_default().push(r);
        }
    }

    // 4. Rebuild each region.
    let mut regions: Vec<u64> =
        disk_image.keys().copied().chain(by_region.keys().copied()).collect();
    regions.sort_unstable();
    regions.dedup();

    let mut rebuilt: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut quarantined = Vec::new();
    let mut images_applied = 0u64;
    let mut deltas_applied = 0u64;
    let no_records = Vec::new();
    for region in regions {
        let disk_start = disk_image
            .get(&region)
            .and_then(|e| envelope_decode(e).ok())
            .map(|(lsn, payload)| (lsn, payload.to_vec()))
            // A disk LSN beyond the durable log would mean unlogged
            // durable data — impossible under write-ahead, so treat it
            // as corruption rather than trusting it.
            .filter(|(lsn, _)| *lsn <= durable_lsn);
        let (mut lsn, mut bytes, mut have_base) = match disk_start {
            Some((l, b)) => (l, b, true),
            None => (0, Vec::new(), false),
        };
        let mut fault: Option<String> = None;
        for r in by_region.get(&region).unwrap_or(&no_records) {
            if have_base && r.lsn <= lsn {
                continue; // already reflected in the starting image
            }
            match &r.payload {
                WalPayload::Image { bytes: b, .. } => {
                    bytes = b.clone();
                    lsn = r.lsn;
                    have_base = true;
                    images_applied += 1;
                }
                WalPayload::Delta { ranges, .. } => {
                    if !have_base {
                        fault =
                            Some(format!("delta at lsn {} with no recoverable base image", r.lsn));
                        break;
                    }
                    for (off, repl) in ranges {
                        let s = *off as usize;
                        if s + repl.len() > bytes.len() {
                            fault = Some(format!(
                                "delta at lsn {} out of bounds ({}+{} > {})",
                                r.lsn,
                                s,
                                repl.len(),
                                bytes.len()
                            ));
                            break;
                        }
                        bytes[s..s + repl.len()].copy_from_slice(repl);
                    }
                    if fault.is_some() {
                        break;
                    }
                    lsn = r.lsn;
                    deltas_applied += 1;
                }
                WalPayload::Commit { .. } => unreachable!("commits carry no region"),
            }
        }
        if let Some(reason) = fault {
            quarantined.push(QuarantinedPage { region, reason });
            continue;
        }
        if !have_base {
            quarantined.push(QuarantinedPage {
                region,
                reason: "no valid disk image and no full-page image in the log".into(),
            });
            continue;
        }
        rebuilt.push((region, bytes));
    }

    // 5. Materialize the memory image at the original addresses.
    let mut mem = SimMemory::new();
    if let Some(end) = rebuilt.iter().map(|(r, b)| r + b.len() as u64).max() {
        mem.grow(end);
    }
    for (region, bytes) in &rebuilt {
        mem.write_bytes(Addr(*region), bytes);
    }
    RecoveredWorld { mem, durable_mtrs, durable_lsn, images_applied, deltas_applied, quarantined }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalPayload;

    #[test]
    fn diff_ranges_finds_and_coalesces_changes() {
        let old = vec![0u8; 64];
        let mut new = old.clone();
        new[3] = 1;
        new[5] = 2; // gap of 1 -> coalesced
        new[40] = 3; // far away -> own range
        let ranges = diff_ranges(&old, &new);
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0], (3, vec![1, 0, 2]));
        assert_eq!(ranges[1], (40, vec![3]));
        // Applying the ranges reproduces `new`.
        let mut applied = old.clone();
        for (off, repl) in &ranges {
            applied[*off as usize..*off as usize + repl.len()].copy_from_slice(repl);
        }
        assert_eq!(applied, new);
    }

    #[test]
    fn diff_ranges_empty_when_identical() {
        let img = vec![7u8; 32];
        assert!(diff_ranges(&img, &img).is_empty());
    }

    #[test]
    fn recover_prefers_disk_then_replays_deltas() {
        let mut wal = DurableWal::new();
        wal.append(WalPayload::Image { region: 0x1000, bytes: vec![1; 8] });
        wal.append(WalPayload::Commit { mtr: 1 });
        wal.append(WalPayload::Delta { region: 0x1000, ranges: vec![(0, vec![9])] });
        wal.append(WalPayload::Commit { mtr: 2 });
        // Disk holds the image as of lsn 1; deltas after it replay.
        let mut disk = HashMap::new();
        disk.insert(0x1000u64, envelope_encode(1, &[1u8; 8]));
        let w = recover(&disk, wal.records());
        assert_eq!(w.durable_mtrs, 2);
        assert_eq!(w.durable_lsn, 4);
        assert_eq!(w.deltas_applied, 1);
        assert_eq!(w.images_applied, 0, "disk base made the image redundant");
        assert_eq!(w.mem.bytes(Addr(0x1000), 8), &[9, 1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn recover_rebuilds_corrupt_disk_from_the_log() {
        let mut wal = DurableWal::new();
        wal.append(WalPayload::Image { region: 0x1000, bytes: vec![1; 8] });
        wal.append(WalPayload::Delta { region: 0x1000, ranges: vec![(7, vec![5])] });
        wal.append(WalPayload::Commit { mtr: 1 });
        let mut disk = HashMap::new();
        let mut bad = envelope_encode(2, &[1u8; 8]);
        bad[20] ^= 0x40; // flip a payload bit: checksum must catch it
        disk.insert(0x1000u64, bad);
        let w = recover(&disk, wal.records());
        assert!(w.quarantined.is_empty());
        assert_eq!(w.images_applied, 1);
        assert_eq!(w.mem.bytes(Addr(0x1000), 8), &[1, 1, 1, 1, 1, 1, 1, 5]);
    }

    #[test]
    fn recover_drops_the_uncommitted_tail() {
        let mut wal = DurableWal::new();
        wal.append(WalPayload::Image { region: 0x1000, bytes: vec![1; 4] });
        wal.append(WalPayload::Commit { mtr: 1 });
        wal.append(WalPayload::Delta { region: 0x1000, ranges: vec![(0, vec![9])] });
        // No commit for the delta: a crash mid-mtr.
        let w = recover(&HashMap::new(), wal.records());
        assert_eq!(w.durable_mtrs, 1);
        assert_eq!(w.mem.bytes(Addr(0x1000), 4), &[1, 1, 1, 1]);
    }

    #[test]
    fn recover_quarantines_the_unrecoverable_with_a_reason() {
        let mut wal = DurableWal::new();
        wal.append(WalPayload::Delta { region: 0x2000, ranges: vec![(0, vec![9])] });
        wal.append(WalPayload::Commit { mtr: 1 });
        let mut disk = HashMap::new();
        let mut bad = envelope_encode(0, &[3u8; 8]);
        bad[0] ^= 1; // corrupt header: no valid base anywhere
        disk.insert(0x2000u64, bad);
        let w = recover(&disk, wal.records());
        assert_eq!(w.quarantined.len(), 1);
        assert_eq!(w.quarantined[0].region, 0x2000);
        assert!(w.quarantined[0].reason.contains("no recoverable base image"));
    }

    #[test]
    fn recover_distrusts_future_disk_lsns() {
        // Disk claims lsn 7 but the durable log only reaches 2: the
        // envelope is self-consistent yet impossible under write-ahead.
        let mut wal = DurableWal::new();
        wal.append(WalPayload::Image { region: 0x1000, bytes: vec![4; 8] });
        wal.append(WalPayload::Commit { mtr: 1 });
        let mut disk = HashMap::new();
        disk.insert(0x1000u64, envelope_encode(7, &[9u8; 8]));
        let w = recover(&disk, wal.records());
        assert!(w.quarantined.is_empty());
        assert_eq!(w.mem.bytes(Addr(0x1000), 8), &[4; 8], "log image wins");
    }
}
