//! MiniDB: the workload substrate of the sub-thread TLS reproduction.
//!
//! The paper evaluates sub-threads on TPC-C transactions running over
//! BerkeleyDB. Running a 2005-era C library inside a Rust architectural
//! simulator is not possible, so this crate rebuilds the relevant parts of
//! a database back end from scratch — **executing over a simulated flat
//! address space** so that every byte the engine touches emits a trace
//! operation with a real address:
//!
//! * [`SimMemory`] — the simulated memory image (allocator + byte store);
//! * [`Env`] — recorded accessors (`load_u64`, `store_bytes`, …) that
//!   pair each real data access with an emitted
//!   [`TraceOp`](tls_trace::TraceOp);
//! * [`Page`]/[`BTree`] — slotted pages and B+-trees with fixed-size
//!   cells: descents, splits and cell shifts all touch simulated memory,
//!   so page headers and interior nodes become genuine sources of
//!   cross-thread dependences, exactly like the "internal database
//!   structures" the paper blames for violations;
//! * [`Wal`] — a write-ahead log whose shared tail pointer is the classic
//!   removable dependence (and whose per-thread buffering is the classic
//!   fix, toggled by [`OptLevel`]);
//! * [`Db`] — the catalog tying trees, log and latches together;
//! * [`query`] — the query front end: predicate-filtered range scans,
//!   secondary indexes (maintained inside mini-transactions, so paging,
//!   WAL logging and REDO recovery cover them), and an index-nested-loop
//!   join operator;
//! * [`tpcc`] — the five TPC-C transactions (plus the paper's two
//!   variants), parameterized per the TPC-C run rules, recording either a
//!   plain trace or a TLS-parallelized trace.
//!
//! # Example
//!
//! ```
//! use tls_minidb::{Tpcc, TpccConfig, Transaction};
//!
//! let mut tpcc = Tpcc::new(TpccConfig::test());
//! let program = tpcc.record(Transaction::NewOrder, 1);
//! let stats = program.stats();
//! assert!(stats.epochs >= 5, "one epoch per order line");
//! assert!(stats.coverage() > 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btree;
mod db;
mod disk;
mod env;
pub mod oracle;
mod page;
mod pager;
pub mod query;
mod simmem;
pub mod tpcc;
mod wal;

pub use btree::{BTree, PageAlloc};
pub use db::{Db, LatchName, OptLevel};
pub use disk::{AppliedFault, SimDisk};
pub use env::{Env, Recorder, SPAWN_OVERHEAD_OPS};
pub use page::{
    envelope_decode, envelope_encode, fnv1a64, EnvelopeError, Page, PageError, PageKind,
    ENVELOPE_HEADER, PAGE_SIZE,
};
pub use pager::{recover, Pager, PagerCounters, QuarantinedPage, RecoveredWorld, PAGER_MODULE};
pub use query::{index_nested_loop_join, CmpOp, FieldPred, FieldWidth, RangeScan, SecondaryIndex};
pub use simmem::SimMemory;
pub use tpcc::{Tpcc, TpccConfig, Transaction};
pub use wal::{DurableWal, LocalLog, Wal, WalFull, WalPayload, WalRecord};
