//! Query primitives over MiniDB B+-trees: predicate-filtered range
//! scans, secondary indexes, and an index-nested-loop join.
//!
//! These are the building blocks of the declarative query front end.
//! Everything here executes through [`Env`] accessors, so every byte a
//! scan or probe touches emits a recorded trace operation — and because
//! index maintenance runs through ordinary [`BTree`] operations inside
//! the caller's mini-transaction, paged mode, WAL logging and REDO
//! recovery cover secondary indexes with no extra machinery.
//!
//! The TPC-C transactions route real queries through these operators
//! (ORDER STATUS's customer-by-last-name lookup, STOCK LEVEL's district
//! scan and its ORDER-LINE ⋈ STOCK join), and the harness workload
//! compiler lowers declarative specs onto the same primitives.

use crate::{BTree, Env, PageAlloc};
use tls_trace::{Addr, Pc};

/// Width of the row field a predicate inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldWidth {
    /// A little-endian `u32` field.
    U32,
    /// A little-endian `u64` field.
    U64,
}

/// Comparison operator of a [`FieldPred`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `field < value`
    Lt,
    /// `field >= value`
    Ge,
    /// `field == value`
    Eq,
    /// `field != value`
    Ne,
}

/// A residual predicate over one fixed-offset field of a row.
///
/// Evaluation is recorded: one load of the field plus one conditional
/// branch with the observed outcome — exactly what a compiled filter
/// would execute.
#[derive(Debug, Clone, Copy)]
pub struct FieldPred {
    /// Byte offset of the field within the row.
    pub offset: u64,
    /// Field width.
    pub width: FieldWidth,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand-side constant.
    pub value: u64,
}

impl FieldPred {
    /// Evaluates the predicate against the row at `row`, emitting the
    /// recorded load and branch at `pc`.
    pub fn matches(&self, env: &mut Env, pc: Pc, row: Addr) -> bool {
        let field = row.offset(self.offset);
        let v = match self.width {
            FieldWidth::U32 => env.load_u32(pc, field) as u64,
            FieldWidth::U64 => env.load_u64(pc, field),
        };
        let hit = match self.op {
            CmpOp::Lt => v < self.value,
            CmpOp::Ge => v >= self.value,
            CmpOp::Eq => v == self.value,
            CmpOp::Ne => v != self.value,
        };
        env.cmp_branch(pc, hit);
        hit
    }
}

/// A half-open key range `[lo, hi)` with an optional residual predicate,
/// executable over any [`BTree`].
#[derive(Debug, Clone, Copy)]
pub struct RangeScan {
    /// First key of the range (inclusive).
    pub lo: u64,
    /// End of the range (exclusive).
    pub hi: u64,
    /// Residual row filter, applied to every key-qualifying row.
    pub pred: Option<FieldPred>,
}

impl RangeScan {
    /// An unfiltered scan of `[lo, hi)`.
    pub fn new(lo: u64, hi: u64) -> Self {
        RangeScan { lo, hi, pred: None }
    }

    /// Adds a residual predicate.
    pub fn filter(mut self, pred: FieldPred) -> Self {
        self.pred = Some(pred);
        self
    }

    /// Runs the scan over `tree`: one descent to `lo`, then a leaf-chain
    /// walk until `hi`. Rows failing the predicate are skipped (the
    /// filter's load/branch is still recorded); `f` runs for every
    /// qualifying row and may stop the scan by returning `false`.
    /// Returns the number of qualifying rows visited.
    pub fn run(
        &self,
        tree: &BTree,
        env: &mut Env,
        pc: Pc,
        mut f: impl FnMut(&mut Env, u64, Addr) -> bool,
    ) -> u64 {
        let mut matched = 0u64;
        tree.scan_from(env, self.lo, |env, k, addr| {
            if k >= self.hi {
                return false;
            }
            if let Some(p) = &self.pred {
                if !p.matches(env, pc, addr) {
                    return true;
                }
            }
            matched += 1;
            f(env, k, addr)
        });
        matched
    }
}

/// A secondary index: a B+-tree whose fixed 8-byte entries map an index
/// key to the primary key of a base-table row.
///
/// The index is an ordinary tree in the catalog — created through
/// [`Db::create_tree`](crate::Db::create_tree), registered with the
/// pager alongside every other table — so maintenance performed inside a
/// mini-transaction is WAL-logged and REDO-recovered exactly like base
/// table writes.
#[derive(Debug, Clone, Copy)]
pub struct SecondaryIndex {
    tree: BTree,
}

impl SecondaryIndex {
    /// Wraps an index tree.
    ///
    /// # Panics
    ///
    /// Panics unless the tree's value size is 8 (one primary key).
    pub fn new(tree: BTree) -> Self {
        assert_eq!(tree.value_size(), 8, "index entries hold one 8-byte primary key");
        SecondaryIndex { tree }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &BTree {
        &self.tree
    }

    /// Inserts the entry `index_key → primary_key`. Returns `false` if
    /// the index key already exists.
    pub fn insert(
        &self,
        env: &mut Env,
        alloc: &PageAlloc,
        index_key: u64,
        primary_key: u64,
    ) -> bool {
        self.tree.insert(env, alloc, index_key, &primary_key.to_le_bytes())
    }

    /// Removes the entry at `index_key`. Returns `false` if absent.
    pub fn remove(&self, env: &mut Env, index_key: u64) -> bool {
        self.tree.delete(env, index_key)
    }

    /// Probes the index at `index_key` and returns the stored primary
    /// key (a recorded load at `pc`).
    pub fn probe(&self, env: &mut Env, pc: Pc, index_key: u64) -> Option<u64> {
        let entry = self.tree.get_addr(env, index_key)?;
        Some(env.load_u64(pc, entry))
    }

    /// Range-scans the index over `[lo, hi)`, loading each entry's
    /// primary key (a recorded load at `pc`) and passing it to `f` along
    /// with the index key. Returns the number of entries visited.
    pub fn scan(
        &self,
        env: &mut Env,
        pc: Pc,
        lo: u64,
        hi: u64,
        mut f: impl FnMut(&mut Env, u64, u64) -> bool,
    ) -> u64 {
        RangeScan::new(lo, hi).run(&self.tree, env, pc, |env, ikey, entry| {
            let pkey = env.load_u64(pc, entry);
            f(env, ikey, pkey)
        })
    }

    /// Index lookup join: range-scans the index over `[lo, hi)` and
    /// resolves every entry's primary key against `base`, invoking `f`
    /// with the index key, primary key and base-row address. Entries
    /// whose base row is missing are a corrupt index — the lookup
    /// panics, because transactions maintain index and base row in the
    /// same mini-transaction.
    pub fn lookup(
        &self,
        env: &mut Env,
        pc: Pc,
        base: &BTree,
        lo: u64,
        hi: u64,
        mut f: impl FnMut(&mut Env, u64, u64, Addr) -> bool,
    ) -> u64 {
        self.scan(env, pc, lo, hi, |env, ikey, pkey| {
            let row = base.get_addr(env, pkey).expect("index entry points at a live row");
            f(env, ikey, pkey, row)
        })
    }
}

/// Index-nested-loop join: runs `scan` over `outer`, computes an inner
/// key for every qualifying outer row with `inner_key` (which should
/// emit the recorded loads it performs), probes `inner` with it, and
/// invokes `f` for every matching pair. Outer rows with no inner match
/// are recorded as a not-taken branch and skipped. Returns the number of
/// joined pairs.
pub fn index_nested_loop_join(
    env: &mut Env,
    pc: Pc,
    outer: &BTree,
    scan: &RangeScan,
    inner: &BTree,
    mut inner_key: impl FnMut(&mut Env, u64, Addr) -> u64,
    mut f: impl FnMut(&mut Env, u64, Addr, u64, Addr) -> bool,
) -> u64 {
    let mut joined = 0u64;
    scan.run(outer, env, pc, |env, ok, oaddr| {
        let ik = inner_key(env, ok, oaddr);
        let hit = inner.get_addr(env, ik);
        env.cmp_branch(pc, hit.is_some());
        match hit {
            Some(iaddr) => {
                joined += 1;
                f(env, ok, oaddr, ik, iaddr)
            }
            None => true,
        }
    });
    joined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Db, OptLevel};

    fn setup(value_size: u16) -> (Env, Db, BTree) {
        let mut env = Env::new();
        let db = Db::new(&mut env, OptLevel::none());
        let tree = db.create_tree(&mut env, value_size, 0x60);
        (env, db, tree)
    }

    fn row16(bits: u64) -> [u8; 16] {
        let mut r = [0u8; 16];
        r[..8].copy_from_slice(&bits.to_le_bytes());
        r[8..12].copy_from_slice(&((bits as u32) & 0xFFFF).to_le_bytes());
        r
    }

    #[test]
    fn range_scan_respects_bounds_and_predicate() {
        let (mut env, db, tree) = setup(16);
        for k in 0..200u64 {
            tree.insert(&mut env, &db.alloc, k, &row16(k * 3));
        }
        let pc = Pc::new(0x61, 0);
        // Keys in [50, 120) whose u64 field is >= 210 (k >= 70).
        let scan = RangeScan::new(50, 120).filter(FieldPred {
            offset: 0,
            width: FieldWidth::U64,
            op: CmpOp::Ge,
            value: 210,
        });
        let mut seen = Vec::new();
        let n = scan.run(&tree, &mut env, pc, |_, k, _| {
            seen.push(k);
            true
        });
        assert_eq!(n, 50);
        assert_eq!(seen.first(), Some(&70));
        assert_eq!(seen.last(), Some(&119));
    }

    #[test]
    fn range_scan_early_stop_counts_visited_rows() {
        let (mut env, db, tree) = setup(16);
        for k in 0..50u64 {
            tree.insert(&mut env, &db.alloc, k, &row16(k));
        }
        let mut seen = 0;
        let n = RangeScan::new(10, 40).run(&tree, &mut env, Pc::new(0x61, 1), |_, _, _| {
            seen += 1;
            seen < 5
        });
        assert_eq!(n, 5);
    }

    #[test]
    fn secondary_index_round_trips_and_joins_to_base() {
        let (mut env, db, base) = setup(16);
        let idx = SecondaryIndex::new(db.create_tree(&mut env, 8, 0x62));
        let pc = Pc::new(0x63, 0);
        for k in 0..100u64 {
            base.insert(&mut env, &db.alloc, k, &row16(k));
            // Index key reverses the ordering so index order != base order.
            idx.insert(&mut env, &db.alloc, 1000 - k, k);
        }
        assert_eq!(idx.probe(&mut env, pc, 1000 - 42), Some(42));
        assert_eq!(idx.probe(&mut env, pc, 5000), None);
        let mut pairs = Vec::new();
        // Index holds keys 901..=1000; [900, 905) sees 901..=904.
        let n = idx.lookup(&mut env, pc, &base, 900, 905, |env, ikey, pkey, row| {
            pairs.push((ikey, pkey, env.load_u64(pc, row)));
            true
        });
        assert_eq!(n, 4);
        assert_eq!(pairs[0], (901, 99, 99));
        assert!(pairs.iter().all(|&(i, p, v)| i == 1000 - p && v == p));
        assert!(idx.remove(&mut env, 1000 - 42));
        assert_eq!(idx.probe(&mut env, pc, 1000 - 42), None);
    }

    #[test]
    fn index_nested_loop_join_skips_unmatched_outer_rows() {
        let (mut env, db, outer) = setup(16);
        let inner = db.create_tree(&mut env, 16, 0x64);
        let pc = Pc::new(0x65, 0);
        for k in 0..60u64 {
            outer.insert(&mut env, &db.alloc, k, &row16(k % 7));
        }
        for k in 0..4u64 {
            inner.insert(&mut env, &db.alloc, k, &row16(k * 100));
        }
        // Outer field (k % 7) is the inner key: only rows with k % 7 < 4 join.
        let scan = RangeScan::new(0, 60);
        let mut joined = Vec::new();
        let n = index_nested_loop_join(
            &mut env,
            pc,
            &outer,
            &scan,
            &inner,
            |env, _, oaddr| env.load_u64(pc, oaddr),
            |env, ok, _, ik, iaddr| {
                joined.push((ok, ik, env.load_u64(pc, iaddr)));
                true
            },
        );
        let expect = (0..60u64).filter(|k| k % 7 < 4).count() as u64;
        assert_eq!(n, expect);
        assert_eq!(n, joined.len() as u64);
        assert!(joined.iter().all(|&(ok, ik, v)| ik == ok % 7 && v == ik * 100));
    }

    #[test]
    fn predicate_operators_cover_all_cases() {
        let (mut env, db, tree) = setup(16);
        tree.insert(&mut env, &db.alloc, 1, &row16(10));
        let pc = Pc::new(0x66, 0);
        let row = tree.get_addr(&mut env, 1).unwrap();
        let pred = |op, value| FieldPred { offset: 0, width: FieldWidth::U64, op, value };
        assert!(pred(CmpOp::Lt, 11).matches(&mut env, pc, row));
        assert!(!pred(CmpOp::Lt, 10).matches(&mut env, pc, row));
        assert!(pred(CmpOp::Ge, 10).matches(&mut env, pc, row));
        assert!(pred(CmpOp::Eq, 10).matches(&mut env, pc, row));
        assert!(pred(CmpOp::Ne, 9).matches(&mut env, pc, row));
        // u32 width reads only the low half.
        let p32 = FieldPred { offset: 8, width: FieldWidth::U32, op: CmpOp::Eq, value: 10 };
        assert!(p32.matches(&mut env, pc, row));
    }
}
