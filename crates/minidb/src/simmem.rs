//! The simulated flat memory image.
//!
//! All engine data lives in one growable byte array addressed by
//! [`Addr`]. Access goes through [`Env`](crate::Env), which records trace
//! ops; this module is the raw, unrecorded storage (also used by the
//! loader, which populates the database without recording).

use tls_trace::Addr;

/// A growable, byte-addressed memory image with a bump allocator.
///
/// Addresses start at 64 so that 0 can serve as a null page id / null
/// pointer in on-"disk" structures.
#[derive(Debug, Clone)]
pub struct SimMemory {
    data: Vec<u8>,
    brk: u64,
}

const BASE: u64 = 64;

impl SimMemory {
    /// An empty memory image.
    pub fn new() -> Self {
        SimMemory { data: Vec::new(), brk: BASE }
    }

    /// Allocates `size` bytes aligned to `align` (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, size: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.brk + align - 1) & !(align - 1);
        self.brk = addr + size;
        self.ensure(self.brk);
        Addr(addr)
    }

    fn ensure(&mut self, end: u64) {
        if (self.data.len() as u64) < end {
            self.data.resize(end as usize, 0);
        }
    }

    /// Bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.brk - BASE
    }

    /// Extends the image so addresses below `end` are valid — used by
    /// recovery, which rebuilds a memory image from a disk snapshot at
    /// the original addresses instead of re-running the allocator.
    pub fn grow(&mut self, end: u64) {
        self.brk = self.brk.max(end);
        self.ensure(self.brk);
    }

    /// Diagnosable bounds check shared by [`Self::bytes`] and
    /// [`Self::write_bytes`]: chaos failures (a faulted pointer chased
    /// off a corrupt page) must name the access, not die in a bare
    /// slice index.
    #[track_caller]
    fn check_range(&self, what: &str, addr: Addr, len: usize) {
        let end = (addr.0 as usize).saturating_add(len);
        if addr.0 < BASE || end > self.data.len() {
            panic!(
                "simulated memory {what} out of range: addr {:#x} len {} \
                 (allocated {:#x}..{:#x}, {} bytes)",
                addr.0,
                len,
                BASE,
                self.brk,
                self.allocated()
            );
        }
    }

    /// Reads `N` bytes at `addr` (little-endian helpers below build on
    /// this).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access — the engine never reads memory it
    /// did not allocate — naming the address, length and allocated
    /// extent.
    #[track_caller]
    pub fn bytes(&self, addr: Addr, len: usize) -> &[u8] {
        self.check_range("read", addr, len);
        let start = addr.0 as usize;
        &self.data[start..start + len]
    }

    /// Writes `src` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access, naming the address, length and
    /// allocated extent.
    #[track_caller]
    pub fn write_bytes(&mut self, addr: Addr, src: &[u8]) {
        self.check_range("write", addr, src.len());
        let start = addr.0 as usize;
        self.data[start..start + src.len()].copy_from_slice(src);
    }

    /// Reads a little-endian u64.
    pub fn peek_u64(&self, addr: Addr) -> u64 {
        u64::from_le_bytes(self.bytes(addr, 8).try_into().expect("8 bytes"))
    }

    /// Writes a little-endian u64.
    pub fn poke_u64(&mut self, addr: Addr, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian u32.
    pub fn peek_u32(&self, addr: Addr) -> u32 {
        u32::from_le_bytes(self.bytes(addr, 4).try_into().expect("4 bytes"))
    }

    /// Writes a little-endian u32.
    pub fn poke_u32(&mut self, addr: Addr, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian u16.
    pub fn peek_u16(&self, addr: Addr) -> u16 {
        u16::from_le_bytes(self.bytes(addr, 2).try_into().expect("2 bytes"))
    }

    /// Writes a little-endian u16.
    pub fn poke_u16(&mut self, addr: Addr, v: u16) {
        self.write_bytes(addr, &v.to_le_bytes());
    }
}

impl Default for SimMemory {
    fn default() -> Self {
        SimMemory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut m = SimMemory::new();
        let a = m.alloc(10, 8);
        assert_eq!(a.0 % 8, 0);
        let b = m.alloc(10, 64);
        assert_eq!(b.0 % 64, 0);
        assert!(b.0 >= a.0 + 10);
    }

    #[test]
    fn null_address_is_never_allocated() {
        let mut m = SimMemory::new();
        let a = m.alloc(1, 1);
        assert!(a.0 >= 64);
    }

    #[test]
    fn scalar_round_trips() {
        let mut m = SimMemory::new();
        let a = m.alloc(32, 8);
        m.poke_u64(a, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.peek_u64(a), 0xDEAD_BEEF_CAFE_F00D);
        m.poke_u32(a.offset(8), 42);
        assert_eq!(m.peek_u32(a.offset(8)), 42);
        m.poke_u16(a.offset(12), 7);
        assert_eq!(m.peek_u16(a.offset(12)), 7);
        // Independent slots do not clobber each other.
        assert_eq!(m.peek_u64(a), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn byte_slices_round_trip() {
        let mut m = SimMemory::new();
        let a = m.alloc(16, 1);
        m.write_bytes(a, b"hello world!");
        assert_eq!(m.bytes(a, 12), b"hello world!");
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let m = SimMemory::new();
        let _ = m.peek_u64(Addr(1 << 40));
    }

    #[test]
    #[should_panic(expected = "read out of range: addr 0x10000000000 len 8")]
    fn out_of_bounds_read_names_the_access() {
        let m = SimMemory::new();
        let _ = m.peek_u64(Addr(1 << 40));
    }

    #[test]
    #[should_panic(expected = "write out of range")]
    fn out_of_bounds_write_names_the_access() {
        let mut m = SimMemory::new();
        m.alloc(16, 8);
        m.write_bytes(Addr(80), &[0u8; 16]);
    }

    #[test]
    fn oob_panic_reports_the_allocated_extent() {
        let mut m = SimMemory::new();
        m.alloc(100, 8);
        let err = std::panic::catch_unwind(|| {
            let _ = m.bytes(Addr(200), 8);
        })
        .expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("allocated 0x40..0xa4"), "{msg}");
        assert!(msg.contains("100 bytes"), "{msg}");
    }

    #[test]
    fn grow_extends_the_addressable_image() {
        let mut m = SimMemory::new();
        m.grow(4096);
        m.write_bytes(Addr(4000), b"tail");
        assert_eq!(m.bytes(Addr(4000), 4), b"tail");
        // grow never shrinks.
        m.alloc(64, 8);
        m.grow(10);
        assert!(m.allocated() >= 4096 - 64);
    }
}
